# Build and run the medad fleet service. The module is stdlib-only, so the
# build needs no module downloads and the final image is a bare binary on
# a minimal base.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/medad ./cmd/medad

FROM alpine:3.20
RUN adduser -D -u 10001 medad && mkdir -p /var/lib/medad && chown medad /var/lib/medad
COPY --from=build /out/medad /usr/local/bin/medad
USER medad
VOLUME /var/lib/medad
EXPOSE 7080
# Fleet service only: the single-chip device protocol and the debug mux are
# off by default; override the command to enable them.
ENTRYPOINT ["/usr/local/bin/medad"]
CMD ["-api", "0.0.0.0:7080", "-listen", "", "-http", "", "-data", "/var/lib/medad"]
