package meda_test

import (
	"math"
	"strings"
	"testing"

	"meda"
)

// TestPublicAPIEndToEnd drives the whole stack through the facade: build a
// chip, compile a benchmark, execute it adaptively, and synthesize a single
// strategy.
func TestPublicAPIEndToEnd(t *testing.T) {
	src := meda.NewSource(2021)
	cfg := meda.DefaultChipConfig()
	c, err := meda.NewChip(cfg, src.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := meda.CompileBenchmark(meda.CovidRAT, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), c, meda.NewAdaptiveRouter(), src.Split("sim"))
	exec, err := runner.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("COVID-RAT failed: %+v", exec)
	}
	if c.TotalActuations() == 0 {
		t.Error("execution caused no wear")
	}
}

func TestPublicSynthesis(t *testing.T) {
	rj := meda.RoutingJob{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 3, YB: 3},
		Goal:   meda.Rect{XA: 8, YA: 8, XB: 10, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 10, YB: 10},
	}
	res, err := meda.Synthesize(rj, func(x, y int) float64 { return 1 }, meda.DefaultSynthOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-7) > 1e-9 {
		t.Errorf("expected cycles = %v, want 7", res.Value)
	}
	if res.Stats.States != 67 {
		t.Errorf("states = %d, want 67", res.Stats.States)
	}
}

func TestPublicQueryParsing(t *testing.T) {
	q, err := meda.ParseQuery("Rmin=? [ G !hazard & F goal ]")
	if err != nil {
		t.Fatal(err)
	}
	if q.Avoid != "hazard" || q.Reach != "goal" {
		t.Errorf("query = %+v", q)
	}
	if _, err := meda.ParseQuery("gibberish"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestPublicTrial(t *testing.T) {
	cfg := meda.DefaultTrialConfig(7)
	cfg.Executions = 1
	res, err := meda.RunTrial(cfg, meda.MasterMix, meda.NewBaselineRouter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes != 1 {
		t.Fatalf("trial = %+v", res)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	cfg := meda.DefaultChipConfig()
	cfg.Faults = meda.FaultPlan{
		Mode: meda.FaultClustered, Fraction: 0.05, FailAfterLo: 1, FailAfterHi: 3,
	}
	c, err := meda.NewChip(cfg, meda.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	// Trip every fault and check the health matrix exposes dead clusters.
	for i := 0; i < 3; i++ {
		c.Actuate(c.Bounds())
	}
	dead := 0
	for y := 1; y <= cfg.H; y++ {
		for x := 1; x <= cfg.W; x++ {
			if c.Health(x, y) == 0 {
				dead++
			}
		}
	}
	if dead == 0 {
		t.Error("no dead microelectrodes after tripping faults")
	}
}

// TestPublicAssayPipeline drives the DSL → planner → compiler pipeline
// through the facade.
func TestPublicAssayPipeline(t *testing.T) {
	src := `
assay facade-demo
a = dis 16
b = dis 16
m = mix a b
r = mag m hold=10
out r
`
	g, err := meda.ParseAssay(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "facade-demo" || len(g.Ops) != 5 {
		t.Fatalf("graph = %+v", g)
	}
	cfg := meda.DefaultChipConfig()
	placed, err := meda.PlaceAssay(g, cfg.W, cfg.H)
	if err != nil {
		t.Fatal(err)
	}
	if err := placed.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := meda.CompileGraph(g, cfg.W, cfg.H)
	if err != nil {
		t.Fatal(err)
	}
	// And it runs.
	rsrc := meda.NewSource(21)
	c, err := meda.NewChip(cfg, rsrc.Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), c, meda.NewBaselineRouter(), rsrc.Split("sim"))
	exec, err := runner.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Success {
		t.Fatalf("facade pipeline failed: %+v", exec)
	}
}

// TestPublicBenchmarkNames: every exported benchmark constant builds.
func TestPublicBenchmarkNames(t *testing.T) {
	for _, b := range []meda.Benchmark{
		meda.MasterMix, meda.CEP, meda.SerialDilution, meda.NuIP,
		meda.CovidRAT, meda.CovidPCR, meda.ChIP, meda.InVitro,
		meda.GeneExpression, meda.Protein, meda.PCRMix,
	} {
		if _, err := meda.CompileBenchmark(b, meda.DefaultChipConfig(), 16); err != nil {
			t.Errorf("%v: %v", b, err)
		}
	}
}
