// Repository-level benchmark harness: one testing.B benchmark per table and
// figure of the paper (run `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices called out in DESIGN.md. The figure
// benchmarks wrap the internal/exp drivers at reduced trial counts so a full
// `-bench=.` run finishes on a laptop; cmd/medaexp runs the full-scale
// configurations.
package meda_test

import (
	"testing"

	"meda"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/exp"
	"meda/internal/mdp"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/smg"
	"meda/internal/spec"
	"meda/internal/synth"
)

// --- Figure 2: MC sensing simulation -----------------------------------

func BenchmarkFig2Sensing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig2(200)
		if res.Codes == nil {
			b.Fatal("no codes")
		}
	}
}

// --- Figure 3: actuation correlation vs Manhattan distance --------------

func BenchmarkFig3Correlation(b *testing.B) {
	cfg := exp.DefaultFig3Config(1)
	cfg.Assays = []assay.Benchmark{assay.ChIP}
	cfg.Sides = []int{4}
	cfg.MaxPairs = 1500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: electrode capacitance growth ------------------------------

func BenchmarkFig5Degradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: EWOD force decay fit --------------------------------------

func BenchmarkFig6ForceFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: degradation and health curves -----------------------------

func BenchmarkFig7Health(b *testing.B) {
	cfgs := exp.DefaultFig7Configs()
	for i := 0; i < b.N; i++ {
		if got := exp.Fig7(cfgs, 1500, 25); len(got) != len(cfgs) {
			b.Fatal("wrong series count")
		}
	}
}

// --- Table IV: MO → RJ decomposition -------------------------------------

func BenchmarkTableIVCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table V: synthesis performance --------------------------------------

// BenchmarkTableVSynthesis measures one strategy synthesis per paper row;
// sub-benchmarks are named area/droplet.
func BenchmarkTableVSynthesis(b *testing.B) {
	worn := func(x, y int) float64 { return 0.81 }
	for _, area := range []int{10, 20, 30} {
		for _, d := range []int{3, 4, 5, 6} {
			rj := route.RJ{
				Start:  meda.Rect{XA: 1, YA: 1, XB: d, YB: d},
				Goal:   meda.Rect{XA: area - d + 1, YA: area - d + 1, XB: area, YB: area},
				Hazard: meda.Rect{XA: 1, YA: 1, XB: area, YB: area},
			}
			b.Run(
				// e.g. "20x20/4x4"
				itoa(area)+"x"+itoa(area)+"/"+itoa(d)+"x"+itoa(d),
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := synth.Synthesize(rj, worn, synth.DefaultOptions())
						if err != nil || !res.Exists() {
							b.Fatalf("synthesis failed: %v", err)
						}
					}
				})
		}
	}
}

// BenchmarkTableVSynthesisParallel compares the sequential and chunk-parallel
// solver paths on the largest Table V row (30×30 area, 4×4 droplet). The
// "gauss-seidel" and "jacobi-seq" sub-runs are the sequential references; the
// "jacobi-par" sub-run uses GOMAXPROCS sweep workers over the CSR matrix.
func BenchmarkTableVSynthesisParallel(b *testing.B) {
	worn := func(x, y int) float64 { return 0.81 }
	rj := route.RJ{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
	}
	variants := []struct {
		name    string
		method  mdp.SolverMethod
		workers int
	}{
		{"gauss-seidel", mdp.GaussSeidel, 0},
		{"jacobi-seq", mdp.Jacobi, 1},
		{"jacobi-par", mdp.Jacobi, 0}, // 0 = GOMAXPROCS sweep workers
	}
	for _, v := range variants {
		opt := synth.DefaultOptions()
		opt.Solver.Method = v.method
		opt.Solver.Workers = v.workers
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := synth.Synthesize(rj, worn, opt)
				if err != nil || !res.Exists() {
					b.Fatalf("synthesis failed: %v", err)
				}
			}
		})
	}
}

// --- Figure 15: probability of successful completion ---------------------

func BenchmarkFig15PoS(b *testing.B) {
	cfg := exp.DefaultFig15Config(3)
	cfg.Assays = []assay.Benchmark{assay.CovidRAT}
	cfg.KMaxSweep = []int{100}
	cfg.Trials = 1
	cfg.Executions = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig15(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 16: fault-injection evaluation -------------------------------

func BenchmarkFig16FaultInjection(b *testing.B) {
	cfg := exp.DefaultFig16Config(4)
	cfg.Assays = []assay.Benchmark{assay.CovidRAT}
	cfg.Trials = 1
	cfg.Executions = 2
	cfg.KMax = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig16(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) --------------------------------------------

// BenchmarkAblationActionAlphabet quantifies how much of the routing win
// comes from the richer action alphabet: cardinal-only vs +ordinal vs
// +double-step.
func BenchmarkAblationActionAlphabet(b *testing.B) {
	worn := func(x, y int) float64 { return 0.81 }
	rj := route.RJ{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 17, YA: 17, XB: 20, YB: 20},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 20, YB: 20},
	}
	variants := []struct {
		name            string
		double, ordinal bool
	}{
		{"cardinal-only", false, false},
		{"with-ordinal", false, true},
		{"full-alphabet", true, true},
	}
	for _, v := range variants {
		opt := synth.DefaultOptions()
		opt.Model.AllowDouble = v.double
		opt.Model.AllowOrdinal = v.ordinal
		b.Run(v.name, func(b *testing.B) {
			var value float64
			for i := 0; i < b.N; i++ {
				res, err := synth.Synthesize(rj, worn, opt)
				if err != nil {
					b.Fatal(err)
				}
				value = res.Value
			}
			b.ReportMetric(value, "expected-cycles")
		})
	}
}

// BenchmarkAblationHealthBits varies the sensing resolution b: more health
// bits mean earlier detection of degradation but the same model size.
func BenchmarkAblationHealthBits(b *testing.B) {
	for _, bits := range []int{1, 2, 3, 4} {
		cfg := chip.Default()
		cfg.HealthBits = bits
		b.Run("b="+itoa(bits), func(b *testing.B) {
			var lastCycles int
			for i := 0; i < b.N; i++ {
				src := randx.New(uint64(11 + i))
				c, err := chip.New(cfg, src.Split("chip"))
				if err != nil {
					b.Fatal(err)
				}
				plan, err := meda.CompileBenchmark(meda.SerialDilution, cfg, 16)
				if err != nil {
					b.Fatal(err)
				}
				runner := sim.NewRunner(sim.DefaultConfig(), c, sched.NewAdaptive(), src.Split("sim"))
				// Reuse the chip so sensing resolution matters: finer b
				// detects wear earlier and keeps late runs shorter.
				for e := 0; e < 6; e++ {
					exec, err := runner.Execute(plan)
					if err != nil {
						b.Fatal(err)
					}
					lastCycles = exec.Cycles
				}
			}
			b.ReportMetric(float64(lastCycles), "cycles-run6")
		})
	}
}

// BenchmarkAblationQuery compares the two synthesis queries of Sec. VI-C on
// the same degraded model.
func BenchmarkAblationQuery(b *testing.B) {
	worn := func(x, y int) float64 { return 0.64 }
	rj := route.RJ{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 17, YA: 17, XB: 20, YB: 20},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 20, YB: 20},
	}
	for _, kind := range []spec.Kind{spec.RMin, spec.PMax} {
		opt := synth.DefaultOptions()
		opt.Query = spec.RoutingQuery(kind)
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(rj, worn, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolver compares Gauss–Seidel and Jacobi value iteration
// on a 30×30 routing model.
func BenchmarkAblationSolver(b *testing.B) {
	worn := func(x, y int) float64 { return 0.81 }
	model, err := smg.Induce(
		meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
		meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
		worn, smg.DefaultModelOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []mdp.SolverMethod{mdp.GaussSeidel, mdp.Jacobi} {
		b.Run(method.String(), func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := model.M.MinExpectedReward(model.Goal, model.Hazard,
					mdp.SolveOptions{Method: method})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkAblationResynthesis varies the re-synthesis rate limit: frequent
// refreshes react faster to degradation at higher synthesis cost.
func BenchmarkAblationResynthesis(b *testing.B) {
	for _, interval := range []int{1, 5, 20, 1 << 30} {
		name := "every-" + itoa(interval)
		if interval == 1<<30 {
			name = "never"
		}
		b.Run(name, func(b *testing.B) {
			var resyntheses, lastCycles int
			for i := 0; i < b.N; i++ {
				src := randx.New(uint64(21 + i))
				cfg := chip.Default()
				c, err := chip.New(cfg, src.Split("chip"))
				if err != nil {
					b.Fatal(err)
				}
				plan, err := meda.CompileBenchmark(meda.SerialDilution, cfg, 16)
				if err != nil {
					b.Fatal(err)
				}
				simCfg := sim.DefaultConfig()
				simCfg.MinResynthInterval = interval
				runner := sim.NewRunner(simCfg, c, sched.NewAdaptive(), src.Split("sim"))
				resyntheses = 0
				for e := 0; e < 6; e++ {
					exec, err := runner.Execute(plan)
					if err != nil {
						b.Fatal(err)
					}
					resyntheses += exec.Resyntheses
					lastCycles = exec.Cycles
				}
			}
			b.ReportMetric(float64(resyntheses), "resyntheses")
			b.ReportMetric(float64(lastCycles), "cycles-run6")
		})
	}
}

// BenchmarkAblationResynthesisCache measures re-synthesis of one degraded
// routing job cold (fresh router, empty cache — every route synthesizes) vs
// warm (health-keyed strategy cache hit). The gap is the cache's payoff when
// the health matrix is stable between consecutive routes of the same job.
func BenchmarkAblationResynthesisCache(b *testing.B) {
	cfg := chip.Default()
	src := randx.New(7)
	c, err := chip.New(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	job := route.RJ{
		Start:  meda.Rect{XA: 10, YA: 10, XB: 13, YB: 13},
		Goal:   meda.Rect{XA: 30, YA: 15, XB: 33, YB: 18},
		Hazard: meda.Rect{XA: 7, YA: 7, XB: 36, YB: 21},
	}
	// Degrade the hazard region so the offline-library fast path does not
	// apply and routing goes through online synthesis + cache.
	for i := 0; i < 3000; i++ {
		c.Actuate(job.Hazard)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := sched.NewAdaptive()
			if _, _, err := a.Route(job, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		a := sched.NewAdaptive()
		if _, _, err := a.Route(job, c, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Route(job, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Core micro-benchmarks ------------------------------------------------

// BenchmarkSimulationExecution measures one full bioassay execution.
func BenchmarkSimulationExecution(b *testing.B) {
	cfg := chip.Default()
	plan, err := meda.CompileBenchmark(meda.MasterMix, cfg, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := randx.New(uint64(i))
		c, err := chip.New(cfg, src.Split("chip"))
		if err != nil {
			b.Fatal(err)
		}
		runner := sim.NewRunner(sim.DefaultConfig(), c, sched.NewBaseline(), src.Split("sim"))
		if _, err := runner.Execute(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelConstruction isolates the Induce step of Table V's
// construction column (30×30 area, 4×4 droplet).
func BenchmarkModelConstruction(b *testing.B) {
	worn := func(x, y int) float64 { return 0.81 }
	for i := 0; i < b.N; i++ {
		_, err := smg.Induce(
			meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
			meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
			meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
			worn, smg.DefaultModelOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationActivationOrder explores the paper's future-work
// direction (runtime operation ordering): FIFO activation vs wear-aware
// (healthiest-zone-first) activation over six chip-reuse runs.
func BenchmarkAblationActivationOrder(b *testing.B) {
	for _, wearAware := range []bool{false, true} {
		name := "fifo"
		if wearAware {
			name = "healthiest-first"
		}
		b.Run(name, func(b *testing.B) {
			var lastCycles int
			for i := 0; i < b.N; i++ {
				src := randx.New(uint64(31 + i))
				cfg := chip.Default()
				c, err := chip.New(cfg, src.Split("chip"))
				if err != nil {
					b.Fatal(err)
				}
				plan, err := meda.CompileBenchmark(meda.SerialDilution, cfg, 16)
				if err != nil {
					b.Fatal(err)
				}
				simCfg := sim.DefaultConfig()
				simCfg.WearAwareActivation = wearAware
				runner := sim.NewRunner(simCfg, c, sched.NewAdaptive(), src.Split("sim"))
				for e := 0; e < 6; e++ {
					exec, err := runner.Execute(plan)
					if err != nil {
						b.Fatal(err)
					}
					lastCycles = exec.Cycles
				}
			}
			b.ReportMetric(float64(lastCycles), "cycles-run6")
		})
	}
}

// BenchmarkAblationRecovery races the three fault-handling postures of the
// extension experiment on one fault-heavy chip (see EXPERIMENTS.md).
func BenchmarkAblationRecovery(b *testing.B) {
	variants := []struct {
		name     string
		adaptive bool
		recovery bool
	}{
		{"baseline", false, false},
		{"reactive", false, true},
		{"adaptive", true, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				src := randx.New(uint64(41 + i))
				cfg := chip.Default()
				cfg.Faults = meda.FaultPlan{
					Mode: meda.FaultClustered, Fraction: 0.35, FailAfterLo: 2, FailAfterHi: 30,
				}
				c, err := chip.New(cfg, src.Split("chip"))
				if err != nil {
					b.Fatal(err)
				}
				plan, err := meda.CompileBenchmark(meda.SerialDilution, cfg, 16)
				if err != nil {
					b.Fatal(err)
				}
				simCfg := sim.DefaultConfig()
				if v.recovery {
					simCfg.Recovery = sim.DefaultRecovery()
				}
				var router sched.Router = sched.NewBaseline()
				if v.adaptive {
					router = sched.NewAdaptive()
				}
				runner := sim.NewRunner(simCfg, c, router, src.Split("sim"))
				exec, err := runner.Execute(plan)
				if err != nil {
					b.Fatal(err)
				}
				cycles = exec.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}
