// Package meda is an open-source implementation of "Formal Synthesis of
// Adaptive Droplet Routing for MEDA Biochips" (Elfar, Liang, Chakrabarty,
// Pajic — DATE 2021): health-aware droplet routing for micro-electrode-dot-
// array digital microfluidic biochips.
//
// The package is a facade over the full stack:
//
//   - a microelectrode degradation model with b-bit health sensing
//     (internal/degrade, internal/circuit),
//   - the stochastic-game droplet actuation model — 20 microfluidic actions
//     with frontier-set success probabilities (internal/action,
//     internal/smg),
//   - an explicit-state probabilistic model checker for the Pmax/Rmin
//     routing queries (internal/mdp, internal/spec),
//   - the routing-job compiler (MO → RJ, Alg. 1), the strategy synthesizer
//     (Alg. 2), the hybrid scheduler with its offline strategy library
//     (Alg. 3), and the shortest-path baseline (internal/route,
//     internal/synth, internal/sched, internal/baseline),
//   - a cycle-accurate MEDA biochip simulator with fault injection
//     (internal/sim), and
//   - drivers regenerating every table and figure of the paper's
//     evaluation (internal/exp).
//
// # Quick start
//
//	src := meda.NewSource(2021)
//	chip, _ := meda.NewChip(meda.DefaultChipConfig(), src.Split("chip"))
//	plan, _ := meda.CompileBenchmark(meda.SerialDilution, meda.DefaultChipConfig(), 16)
//	runner := meda.NewRunner(meda.DefaultSimConfig(), chip, meda.NewAdaptiveRouter(), src.Split("sim"))
//	exec, _ := runner.Execute(plan)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// paper-to-code map.
package meda

import (
	"io"

	"meda/internal/action"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/dsl"
	"meda/internal/fault"
	"meda/internal/geom"
	"meda/internal/plan"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/smg"
	"meda/internal/spec"
	"meda/internal/synth"
)

// Geometry.
type (
	// Rect is a rectangle of microelectrode cells; droplets, goals and
	// hazard bounds are all Rects (the paper's δ tuples).
	Rect = geom.Rect
	// Cell is a single microelectrode coordinate (1-based).
	Cell = geom.Cell
)

// Droplet actuation.
type (
	// Action is one of the 20 microfluidic actions of Sec. V-B.
	Action = action.Action
	// Outcome is one probabilistic result of an action.
	Outcome = action.Outcome
)

// Biochip.
type (
	// Chip is the simulated MEDA biochip with per-microelectrode
	// degradation state.
	Chip = chip.Chip
	// ChipConfig configures chip dimensions, health-sensing bits,
	// degradation constants and fault injection.
	ChipConfig = chip.Config
	// DegradationParams are the per-microelectrode constants (τ, c).
	DegradationParams = degrade.Params
	// FaultPlan configures hard-fault injection (uniform or clustered).
	FaultPlan = degrade.FaultPlan
	// InjectionPlan configures soft-fault injection (internal/fault):
	// stuck/transient microelectrodes, sensor misreads, and control-plane
	// faults, all deterministic in the plan seed.
	InjectionPlan = fault.Plan
	// FaultKinds selects soft-fault classes for MixedFaultPlan.
	FaultKinds = fault.Kinds
)

// Bioassays and routing jobs.
type (
	// Assay is a bioassay sequencing graph.
	Assay = assay.Assay
	// AssayGraph is a location-free sequencing graph, the planner's input
	// (parse one from text with ParseAssay, or build it programmatically).
	AssayGraph = plan.Graph
	// Benchmark identifies one of the generated benchmark protocols.
	Benchmark = assay.Benchmark
	// Layout places reservoirs, ports and modules on a chip.
	Layout = assay.Layout
	// RoutingJob is a single-droplet routing problem (δs, δg, δh).
	RoutingJob = route.RJ
	// Plan is a compiled bioassay: operations with droplet geometry and
	// routing jobs.
	Plan = route.Plan
)

// Synthesis and scheduling.
type (
	// Policy is a synthesized droplet routing strategy π: Δ → A.
	Policy = synth.Policy
	// SynthOptions configures strategy synthesis (query, action alphabet,
	// solver).
	SynthOptions = synth.Options
	// SynthResult is the outcome of Alg. 2, including Table V statistics.
	SynthResult = synth.Result
	// Query is a PRISM-style synthesis query (Pmax=? / Rmin=?).
	Query = spec.Query
	// ModelOptions configures the induced per-job MDP.
	ModelOptions = smg.ModelOptions
	// Router is a routing-strategy provider (baseline or adaptive).
	Router = sched.Router
	// StrategyLibrary is the offline strategy store of Alg. 3.
	StrategyLibrary = sched.Library
)

// Simulation.
type (
	// SimConfig tunes an execution (cycle budget, collision margin,
	// re-synthesis latency).
	SimConfig = sim.Config
	// Runner executes bioassays on a chip.
	Runner = sim.Runner
	// Execution is the outcome of one bioassay run.
	Execution = sim.Execution
	// TrialConfig and TrialResult drive repeated-execution trials.
	TrialConfig = sim.TrialConfig
	// TrialResult aggregates one trial.
	TrialResult = sim.TrialResult
	// FaultTrialConfig drives randomized fault-plan trials (cmd/medafuzz
	// and the nightly CI sweep).
	FaultTrialConfig = sim.FaultTrialConfig
	// FaultTrialResult is the outcome of one (benchmark, trial) pair.
	FaultTrialResult = sim.FaultTrialResult
	// Source is a deterministic random stream.
	Source = randx.Source
)

// Benchmark protocols (Sec. VII-A and Sec. III-C).
const (
	MasterMix      = assay.MasterMix
	CEP            = assay.CEP
	SerialDilution = assay.SerialDilution
	NuIP           = assay.NuIP
	CovidRAT       = assay.CovidRAT
	CovidPCR       = assay.CovidPCR
	ChIP           = assay.ChIP
	InVitro        = assay.InVitro
	GeneExpression = assay.GeneExpression
	Protein        = assay.Protein
	PCRMix         = assay.PCRMix
)

// ParseBenchmark resolves a benchmark by slug or display name,
// case-insensitively ("serial-dilution", "NuIP").
func ParseBenchmark(name string) (Benchmark, bool) { return assay.ParseBenchmark(name) }

// BenchmarkSlugs lists every benchmark's slug in declaration order.
func BenchmarkSlugs() []string { return assay.BenchmarkSlugs() }

// Fault-injection modes.
const (
	FaultNone      = degrade.FaultNone
	FaultUniform   = degrade.FaultUniform
	FaultClustered = degrade.FaultClustered
)

// Soft-fault classes (InjectionPlan / MixedFaultPlan).
const (
	ActuationFaults = fault.Actuation
	SensingFaults   = fault.Sensing
	ControlFaults   = fault.Control
	AllFaultKinds   = fault.AllKinds
)

// MixedFaultPlan spreads an overall soft-fault rate across the selected
// fault classes (see fault.Mixed for the split). Attach it to a simulation
// with SimConfig.WithFaults.
func MixedFaultPlan(seed uint64, rate float64, kinds FaultKinds) InjectionPlan {
	return fault.Mixed(seed, rate, kinds)
}

// ParseFaultKinds parses a comma list of soft-fault class names
// (act/actuation, sense/sensing, ctl/control, all, none).
func ParseFaultKinds(s string) (FaultKinds, error) { return fault.ParseKinds(s) }

// NewFallbackRouter wraps a primary router in the graceful-degradation
// ladder: primary (with bounded retries) → health-blind shortest-path
// baseline. Under fault injection this is the recommended router — an
// injected synthesis timeout or an unroutable health view degrades route
// quality instead of wedging the assay.
func NewFallbackRouter(primary Router) Router {
	return sched.NewFallback(primary, sched.NewBaseline())
}

// NewSource returns a deterministic random stream for the given seed.
func NewSource(seed uint64) *Source { return randx.New(seed) }

// DefaultChipConfig is the paper's evaluation biochip: 60×30 microelectrodes
// with 2-bit health sensing, c ~ U(200,500), τ ~ U(0.5,0.9).
func DefaultChipConfig() ChipConfig { return chip.Default() }

// NewChip instantiates a biochip.
func NewChip(cfg ChipConfig, src *Source) (*Chip, error) { return chip.New(cfg, src) }

// DefaultSimConfig mirrors the paper's simulation settings (k_max = 1000).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewRunner assembles a simulation environment.
func NewRunner(cfg SimConfig, c *Chip, r Router, src *Source) *Runner {
	return sim.NewRunner(cfg, c, r, src)
}

// NewBaselineRouter returns the degradation-unaware shortest-path router of
// Sec. VII-A.
func NewBaselineRouter() Router { return sched.NewBaseline() }

// NewAdaptiveRouter returns the paper's adaptive router: Alg. 2 synthesis
// against the observed health matrix with the Alg. 3 strategy library and a
// health-keyed strategy cache. Routing is synchronous and deterministic.
func NewAdaptiveRouter() Router { return sched.NewAdaptive() }

// NewParallelAdaptiveRouter returns the adaptive router with a background
// synthesis pool of the given size (0 means GOMAXPROCS) and a strategy cache
// bounded by cacheSize entries (0 disables the cache, negative means the
// default bound). The simulator uses the pool to pre-synthesize the next
// operation's strategies while the current one executes.
func NewParallelAdaptiveRouter(workers, cacheSize int) Router {
	return sched.NewAdaptiveParallel(workers, cacheSize)
}

// Compile runs the RJ helper (Alg. 1) over a bioassay for a W×H chip.
func Compile(a *Assay, w, h int) (*Plan, error) { return route.Compile(a, w, h) }

// ParseAssay parses a textual bioassay description (see internal/dsl for the
// format) into a location-free sequencing graph.
func ParseAssay(r io.Reader) (AssayGraph, error) { return dsl.Parse(r) }

// PlaceAssay runs the planner: module placement and reservoir/port binding
// for a location-free graph on a W×H chip.
func PlaceAssay(g AssayGraph, w, h int) (*Assay, error) { return plan.NewPlacer(w, h).Place(g) }

// CompileGraph parses nothing and places+compiles in one step: the full
// pipeline from a location-free graph to routing jobs.
func CompileGraph(g AssayGraph, w, h int) (*Plan, error) {
	placed, err := PlaceAssay(g, w, h)
	if err != nil {
		return nil, err
	}
	return route.Compile(placed, w, h)
}

// CompileBenchmark builds and compiles one of the benchmark protocols
// at the given dispensed-droplet area.
func CompileBenchmark(b Benchmark, cfg ChipConfig, area int) (*Plan, error) {
	return route.Compile(b.Build(assay.Layout{W: cfg.W, H: cfg.H}, area), cfg.W, cfg.H)
}

// DefaultSynthOptions is the paper's synthesis configuration:
// Rmin=? [ G !hazard & F goal ] over the movement alphabet.
func DefaultSynthOptions() SynthOptions { return synth.DefaultOptions() }

// Synthesize runs Alg. 2 for one routing job: field supplies the relative
// EWOD force per microelectrode (use (*Chip).ObservedForceField for the
// health-matrix view).
func Synthesize(rj RoutingJob, field func(x, y int) float64, opt SynthOptions) (SynthResult, error) {
	return synth.Synthesize(rj, field, opt)
}

// ParseQuery parses a PRISM-style synthesis query such as
// "Rmin=? [ G !hazard & F goal ]".
func ParseQuery(s string) (Query, error) { return spec.Parse(s) }

// RunTrial executes a repeated-execution trial of a benchmark bioassay.
func RunTrial(cfg TrialConfig, bench Benchmark, mk func() Router) (TrialResult, error) {
	return sim.RunTrial(cfg, bench, mk)
}

// DefaultTrialConfig mirrors Sec. VII: five executions on a fresh default
// chip.
func DefaultTrialConfig(seed uint64) TrialConfig { return sim.DefaultTrialConfig(seed) }

// RunFaultTrials executes clean/faulted execution pairs across benchmarks
// under randomized fault plans, checking hazard freedom and bounded
// completion-time inflation.
func RunFaultTrials(cfg FaultTrialConfig) ([]FaultTrialResult, error) {
	return sim.RunFaultTrials(cfg)
}

// DefaultFaultTrialConfig is the nightly-CI fault-trial sweep configuration.
func DefaultFaultTrialConfig() FaultTrialConfig { return sim.DefaultFaultTrialConfig() }

// FaultTrialViolations counts failed trials in a result set.
func FaultTrialViolations(results []FaultTrialResult) int { return sim.Violations(results) }
