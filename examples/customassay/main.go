// Custom assay: the full front-to-back pipeline on a protocol written in
// the textual assay language — parse, automatically place modules with the
// planner, compile to routing jobs, and execute with adaptive routing.
package main

import (
	"fmt"
	"log"
	"os"

	"meda"
)

func main() {
	path := "examples/customassay/immunoassay.assay"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	graph, err := meda.ParseAssay(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d operations\n", graph.Name, len(graph.Ops))

	cfg := meda.DefaultChipConfig()
	placed, err := meda.PlaceAssay(graph, cfg.W, cfg.H)
	if err != nil {
		log.Fatal(err)
	}
	for _, mo := range placed.MOs {
		fmt.Printf("  M%-2d %-4s placed at %v\n", mo.ID, mo.Type, mo.Loc)
	}

	plan, err := meda.Compile(placed, cfg.W, cfg.H)
	if err != nil {
		log.Fatal(err)
	}
	src := meda.NewSource(11)
	c, err := meda.NewChip(cfg, src.Split("chip"))
	if err != nil {
		log.Fatal(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), c, meda.NewAdaptiveRouter(), src.Split("sim"))
	exec, err := runner.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution: success=%v in %d cycles (%d routing jobs completed)\n",
		exec.Success, exec.Cycles, exec.JobsCompleted)
}
