// Health monitor: the new microelectrode-cell design of Sec. III. The cell's
// two D flip-flops sample the capacitive discharge curve 5 ns apart and
// produce a 2-bit health code. This example sweeps a microelectrode through
// its life, printing the hidden degradation level D, the observed health
// code H, and the 2-bit sensing result the hardware would report.
package main

import (
	"fmt"

	"meda/internal/circuit"
	"meda/internal/degrade"
)

func main() {
	// The sensing circuit: three reference capacitances, one code each.
	tm := circuit.DefaultTiming()
	fmt.Printf("MC sensing circuit (DFF clocks %.1f ns and %.1f ns):\n",
		tm.Original*1e9, tm.Added*1e9)
	for _, cl := range []circuit.HealthClass{
		circuit.Healthy, circuit.PartiallyDegraded, circuit.CompletelyDegraded,
	} {
		cell := circuit.CellFor(cl)
		fmt.Printf("  %-20s C = %.3f fF  crossing %.1f ns  code %q\n",
			cl, cl.Capacitance()*1e15, cell.CrossingTime()*1e9, cell.Sense(tm).Code())
	}

	// A microelectrode's life under the Eq. (3) degradation model.
	p := degrade.Params{Tau: 0.7, C: 350}
	fmt.Printf("\nmicroelectrode life (τ = %.1f, c = %.0f, b = 2):\n", p.Tau, p.C)
	fmt.Println("  actuations    D (hidden)   H (observed)   relative EWOD force")
	for n := 0; n <= 1400; n += 200 {
		fmt.Printf("  %10d    %.3f        %d              %.3f\n",
			n, p.Degradation(n), p.Health(n, 2), p.Force(n))
	}
	fmt.Println("\nThe controller sees only H; the adaptive router re-synthesizes")
	fmt.Println("strategies whenever any H in a routing job's region changes.")
}
