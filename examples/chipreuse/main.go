// Chip reuse: the paper's headline scenario (Sec. VII-B / Fig. 15). A CMOS
// MEDA biochip is reused for many serial-dilution runs; microelectrodes wear
// with every actuation. The degradation-unaware baseline router keeps
// driving droplets over the same cells until the chip fails; the adaptive
// router reads the 2-bit health matrix and re-synthesizes routes around
// degraded regions, extending the chip's service life.
package main

import (
	"fmt"
	"log"

	"meda"
)

func main() {
	const runs = 20
	cfg := meda.DefaultChipConfig()
	plan, err := meda.CompileBenchmark(meda.SerialDilution, cfg, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Serial Dilution ×%d on one %d×%d biochip (k_max = 1000 cycles per run)\n\n",
		runs, cfg.W, cfg.H)

	for _, name := range []string{"baseline", "adaptive"} {
		src := meda.NewSource(42)
		c, err := meda.NewChip(cfg, src.Split("chip"))
		if err != nil {
			log.Fatal(err)
		}
		var r meda.Router
		if name == "adaptive" {
			r = meda.NewAdaptiveRouter()
		} else {
			r = meda.NewBaselineRouter()
		}
		runner := meda.NewRunner(meda.DefaultSimConfig(), c, r, src.Split("sim"))
		fmt.Printf("%s router:\n  cycles per run: ", name)
		completed := 0
		for e := 0; e < runs; e++ {
			exec, err := runner.Execute(plan)
			if err != nil {
				log.Fatal(err)
			}
			if !exec.Success {
				fmt.Printf("✗(aborted)")
				break
			}
			completed++
			fmt.Printf("%d ", exec.Cycles)
		}
		fmt.Printf("\n  completed %d/%d runs before the chip wore out\n\n", completed, runs)
	}
	fmt.Println("The baseline's fixed shortest paths concentrate actuations and the")
	fmt.Println("chip fails early; adaptive routing spreads wear and keeps completing runs.")
}
