// Remote control: hardware-in-the-loop adaptive routing. A medad-style
// biochip device is hosted on a loopback TCP socket; the controller on the
// other end reads the 2-bit health matrix over the wire, synthesizes a
// routing strategy locally (Alg. 2), and drives the droplet one microfluidic
// action per operational cycle — the exact control loop of the paper's
// Fig. 13, with a network in the middle.
package main

import (
	"fmt"
	"log"
	"net"

	"meda"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/device"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/synth"
)

func main() {
	// --- device side: a biochip with a band of worn microelectrodes.
	cfg := chip.Default()
	src := randx.New(99)
	c, err := chip.New(cfg, src.Split("chip"))
	if err != nil {
		log.Fatal(err)
	}
	// Pre-wear a column band so the remote controller has something to
	// route around.
	for i := 0; i < 400; i++ {
		c.Actuate(meda.Rect{XA: 12, YA: 4, XB: 15, YB: 14})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go device.NewServer(c, src.Split("nature")).Serve(ln)
	fmt.Printf("device: biochip served on %s\n", ln.Addr())

	// --- controller side: everything below talks only to the socket.
	conn, err := device.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	w, h, bits, err := conn.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller: connected to a %d×%d chip with %d-bit sensing\n", w, h, bits)

	rj := route.RJ{
		Start:  meda.Rect{XA: 2, YA: 6, XB: 5, YB: 9},
		Goal:   meda.Rect{XA: 22, YA: 6, XB: 25, YB: 9},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 28, YB: 16},
	}
	id, err := conn.Dispense(rj.Start)
	if err != nil {
		log.Fatal(err)
	}

	// Read the health matrix for the job's region and synthesize.
	region, codes, err := conn.Health(rj.Hazard)
	if err != nil {
		log.Fatal(err)
	}
	worn := 0
	field := func(x, y int) float64 {
		if x < region.XA || x > region.XB || y < region.YA || y > region.YB {
			return 0
		}
		d := degrade.DegradationFromHealth(codes[(y-region.YA)*region.Width()+(x-region.XA)], bits)
		return d * d
	}
	for _, code := range codes {
		if code < 3 {
			worn++
		}
	}
	fmt.Printf("controller: %d of %d microelectrodes in the region are degraded\n", worn, len(codes))

	res, err := synth.Synthesize(rj, field, synth.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exists() {
		log.Fatal("no strategy exists")
	}
	fmt.Printf("controller: strategy synthesized (%d states, expected %.1f cycles)\n",
		res.Stats.States, res.Value)

	pos := rj.Start
	steps := 0
	for !rj.Goal.ContainsRect(pos) {
		a, ok := res.Policy[pos]
		if !ok {
			log.Fatalf("policy undefined at %v", pos)
		}
		pos, err = conn.Act(id, a)
		if err != nil {
			log.Fatal(err)
		}
		steps++
		if steps > 500 {
			log.Fatal("droplet did not arrive")
		}
	}
	cyc, _ := conn.Cycle()
	fmt.Printf("controller: droplet reached %v in %d cycles, routed around the worn band\n", pos, cyc)
}
