// Quickstart: synthesize an adaptive droplet routing strategy for a single
// routing job and execute a benchmark bioassay on a simulated MEDA biochip.
package main

import (
	"fmt"
	"log"

	"meda"
)

func main() {
	// 1. Synthesize a routing strategy (Alg. 2): move a 3×3 droplet from
	// the south-west to the north-east of a 10×10 region, minimizing the
	// expected number of operational cycles.
	rj := meda.RoutingJob{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 3, YB: 3},
		Goal:   meda.Rect{XA: 8, YA: 8, XB: 10, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 10, YB: 10},
	}
	healthy := func(x, y int) float64 { return 1 }
	res, err := meda.Synthesize(rj, healthy, meda.DefaultSynthOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized strategy: %d states, expected %v cycles\n",
		res.Stats.States, res.Value)
	pos := rj.Start
	for !rj.Goal.ContainsRect(pos) {
		a := res.Policy[pos]
		fmt.Printf("  at %v: %v\n", pos, a)
		pos = a.Apply(pos)
	}
	fmt.Printf("  at %v: goal reached\n\n", pos)

	// 2. Execute a full bioassay with the adaptive router.
	src := meda.NewSource(1)
	cfg := meda.DefaultChipConfig()
	c, err := meda.NewChip(cfg, src.Split("chip"))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := meda.CompileBenchmark(meda.MasterMix, cfg, 16)
	if err != nil {
		log.Fatal(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), c, meda.NewAdaptiveRouter(), src.Split("sim"))
	exec, err := runner.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Master-Mix: success=%v in %d cycles (%d routing jobs)\n",
		exec.Success, exec.Cycles, exec.JobsCompleted)
}
