// Morphing: the shape-changing actions A_↓ / A_↑ (Sec. V-B, Fig. 9). Rows
// at the top of a corridor are dead, so a 4×4 droplet pays a failure penalty
// on every step; with morphing enabled the synthesizer reshapes the droplet
// to 5×3, crosses in the healthy rows at full force, and reshapes back —
// visibly cheaper in expected cycles.
package main

import (
	"fmt"
	"log"
	"os"

	"meda"
	"meda/internal/vis"
)

func main() {
	rj := meda.RoutingJob{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 11, YA: 1, XB: 15, YB: 5}, // tolerant: fits both shapes
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 15, YB: 5},
	}
	// Rows 4..5 of the corridor x ∈ [6, 12] are dead.
	field := func(x, y int) float64 {
		if x >= 6 && x <= 12 && y >= 4 {
			return 0
		}
		return 1
	}
	fmt.Println("corridor (G = goal region, # = dead rows):")
	vis.PolicyMap(os.Stdout, rj.Hazard, rj.Goal, nil, meda.Rect{XA: 6, YA: 4, XB: 12, YB: 5})
	fmt.Println()

	solve := func(morph bool) float64 {
		opt := meda.DefaultSynthOptions()
		opt.Model.AllowMorph = morph
		res, err := meda.Synthesize(rj, field, opt)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Exists() {
			log.Fatal("no strategy")
		}
		label := "rigid 4×4"
		if morph {
			label = "with morphing"
		}
		fmt.Printf("%-14s expected %.2f cycles (%d states)\n", label, res.Value, res.Stats.States)
		if morph {
			// Show the morphing trajectory.
			fmt.Println("  most-likely trajectory:")
			pos := rj.Start
			for i := 0; i < 30 && !rj.Goal.ContainsRect(pos); i++ {
				a := res.Policy[pos]
				fmt.Printf("    %v  %v  (%d×%d)\n", pos, a, pos.Width(), pos.Height())
				pos = a.Apply(pos)
			}
			fmt.Printf("    %v  arrived as %d×%d\n", pos, pos.Width(), pos.Height())
		}
		return res.Value
	}
	rigid := solve(false)
	morphed := solve(true)
	fmt.Printf("\nmorphing saves %.1f expected cycles on this corridor\n", rigid-morphed)
}
