// Fleet-service quickstart: drive a running medad fleet service through the
// Go SDK — create a tenant and chip, submit a benchmark assay, stream its
// execution events over WebSocket, and scrape the service metrics.
//
// Start the service first:
//
//	medad -api 127.0.0.1:7080 -listen "" -http ""
//
// then:
//
//	go run ./examples/service -url http://127.0.0.1:7080
//
// The program exits non-zero on any failure, so it doubles as the smoke
// test for the container image in CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"time"

	"meda/pkg/api"
	"meda/pkg/client"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:7080", "medad fleet-service base URL")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	c := client.New(*url)

	// 1. The service is up and answering.
	h, err := c.Healthz(ctx)
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	fmt.Printf("service up: %d tenants, %d chips, %d jobs done\n", h.Tenants, h.Chips, h.JobsDone)

	// 2. Tenant and chip creation is idempotent from the caller's side:
	// a 409 just means a previous run already made them.
	if _, err := c.CreateTenant(ctx, "quickstart"); err != nil && !client.IsConflict(err) {
		log.Fatalf("create tenant: %v", err)
	}
	chip := api.ChipSpec{ID: "bench-1", Seed: 7}
	if _, err := c.CreateChip(ctx, "quickstart", chip); err != nil && !client.IsConflict(err) {
		log.Fatalf("create chip: %v", err)
	}

	// 3. Subscribe to the tenant's event feed before submitting, so no
	// event is missed.
	events, err := c.StreamEvents(ctx, "quickstart")
	if err != nil {
		log.Fatalf("stream events: %v", err)
	}
	defer events.Close()

	// 4. Submit one serial-dilution execution and follow it to completion.
	job, err := c.SubmitJob(ctx, "quickstart", api.JobSpec{
		Chip: "bench-1", Benchmark: "serial-dilution", Seed: 7,
	})
	if err != nil {
		log.Fatalf("submit job: %v", err)
	}
	fmt.Printf("submitted %s (%s)\n", job.ID, job.Spec.Benchmark)

	for done := false; !done; {
		ev, rerr := events.Next()
		if rerr != nil {
			break // stream gone; WaitJob below still gets the result
		}
		if ev.Job != job.ID {
			continue
		}
		switch ev.Type {
		case api.EvJobProgress:
			var p api.Progress
			if json.Unmarshal(ev.Data, &p) == nil {
				fmt.Printf("  cycle %4d: %d operations done\n", p.Cycle, p.JobsCompleted)
			}
		case api.EvJobDone, api.EvJobFailed, api.EvJobCanceled:
			done = true
		}
	}

	final, err := c.WaitJob(ctx, "quickstart", job.ID)
	if err != nil {
		log.Fatalf("wait job: %v", err)
	}
	if final.State != api.JobDone || final.Result == nil || !final.Result.Success {
		log.Fatalf("job ended %s (error %q)", final.State, final.Error)
	}
	fmt.Printf("done in %d cycles (%d stalls, %d re-syntheses)\n",
		final.Result.Cycles, final.Result.Stalls, final.Result.Resyntheses)

	// 5. The metrics endpoint exposes the scheduler and service counters.
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("metrics: %v", err)
	}
	fmt.Printf("metrics: %d counters (serve.jobs.submitted=%d, sched.cache.hits=%d)\n",
		len(m.Counters), m.Counters["serve.jobs.submitted"], m.Counters["sched.cache.hits"])
}
