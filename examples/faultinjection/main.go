// Fault injection: clustered microelectrode faults (Sec. VII-C / Fig. 16).
// 2×2 clusters of microelectrodes fail suddenly after a random number of
// actuations, acting as roadblocks. The adaptive router observes the dead
// clusters through the health matrix (code "00") and synthesizes detours;
// the baseline keeps pushing droplets into them. The example prints the
// observed health map after the trial, with dead clusters marked.
package main

import (
	"fmt"
	"log"
	"os"

	"meda"
	"meda/internal/vis"
)

func main() {
	cfg := meda.DefaultChipConfig()
	cfg.Faults = meda.FaultPlan{
		Mode:        meda.FaultClustered,
		Fraction:    0.12,
		FailAfterLo: 10,
		FailAfterHi: 120,
	}
	fmt.Printf("NuIP with clustered faults (%d%% of MCs in 2×2 clusters)\n\n",
		int(cfg.Faults.Fraction*100))

	for _, name := range []string{"baseline", "adaptive"} {
		tc := meda.DefaultTrialConfig(7)
		tc.Chip = cfg
		var mk func() meda.Router
		if name == "adaptive" {
			mk = meda.NewAdaptiveRouter
		} else {
			mk = meda.NewBaselineRouter
		}
		res, err := meda.RunTrial(tc, meda.NuIP, mk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d/5 executions succeeded, cycles %v\n", name, res.Successes, res.Cycles)
	}

	// Visualize the health matrix after an adaptive trial: '#' dead,
	// digits = observed health code, '.' fully healthy.
	src := meda.NewSource(7)
	c, err := meda.NewChip(cfg, src.Split("chip"))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := meda.CompileBenchmark(meda.NuIP, cfg, 16)
	if err != nil {
		log.Fatal(err)
	}
	runner := meda.NewRunner(meda.DefaultSimConfig(), c, meda.NewAdaptiveRouter(), src.Split("sim"))
	for e := 0; e < 3; e++ {
		if _, err := runner.Execute(plan); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nobserved health matrix after three adaptive runs:")
	vis.HealthMap(os.Stdout, c)
	fmt.Println("\n'#' = dead (code 00), digits = degraded codes — the adaptive")
	fmt.Println("router routes around these regions; the baseline cannot see them.")
}
