GO ?= go

.PHONY: build test race vet fmtcheck lint models assert cover fuzz verify bench benchgate faulttrial ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file needs reformatting (gofmt prints the offenders).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Domain-specific static analysis: the fourteen-analyzer medalint suite
# over the whole tree (incrementally cached under .medalint-cache), plus
# the strict dropped-error audit over the command mains (see internal/lint
# and DESIGN.md §13/§15).
lint:
	$(GO) run ./cmd/medalint ./...
	$(GO) run ./cmd/medalint -strict ./cmd/...

# Static model-invariant verification over the six benchmark assays:
# row-stochasticity, dangling targets, reverse-index consistency, strategy
# totality, hazard closure (internal/modelcheck).
models:
	$(GO) run ./cmd/medalint -models

# Run the solver/synthesis tests with the medacheck build tag, which turns
# on model validation at every solver entry and full reduced-model
# verification after every synthesis.
assert:
	$(GO) test -tags medacheck ./internal/mdp/ ./internal/smg/ ./internal/synth/ ./internal/modelcheck/ ./internal/sched/

# Coverage floors for the packages this repo leans on hardest. Floors sit
# well below current coverage (≈98/92/94% as of the telemetry PR) so they
# trip on real regressions, not on noise.
cover:
	@set -e; \
	check() { \
	  pct="$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')"; \
	  if [ -z "$$pct" ]; then echo "$$1: no coverage output"; exit 1; fi; \
	  ok="$$(awk -v p="$$pct" -v f="$$2" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	  if [ "$$ok" != 1 ]; then echo "$$1: coverage $$pct% below floor $$2%"; exit 1; fi; \
	  echo "$$1: coverage $$pct% (floor $$2%)"; \
	}; \
	check ./internal/telemetry/ 90; \
	check ./internal/mdp/ 80; \
	check ./internal/sched/ 80; \
	check ./internal/synth/ 80; \
	check ./internal/lint/ 80; \
	check ./internal/lint/cfg/ 80; \
	check ./internal/lint/dataflow/ 80; \
	check ./internal/lint/callgraph/ 80; \
	check ./internal/lint/summary/ 80

# Short fuzz bursts over every fuzz target (parser robustness + print/parse
# round trips). Each target needs its own invocation: -fuzz accepts exactly
# one matching target per package.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/spec/ -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/spec/ -run '^$$' -fuzz '^FuzzQueryString$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dsl/ -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dsl/ -run '^$$' -fuzz '^FuzzParseStability$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim/ -run '^$$' -fuzz '^FuzzHazardZones$$' -fuzztime $(FUZZTIME)

# One deterministic fault-injection trial per evaluation assay: 5% mixed
# fault rate, all fault classes, asserting hazard-free completion and
# bounded completion-time inflation — once on the sequential executor, once
# on the concurrent one. CI's cover-fuzz job runs this; the nightly workflow
# runs the full three-trial sweep.
faulttrial:
	$(GO) run ./cmd/medafuzz -trials 1 -seed 2021 -rate 0.05 -kinds all
	$(GO) run ./cmd/medafuzz -trials 1 -seed 2021 -rate 0.05 -kinds all -concurrent

# Tier-1 verification plus the race detector and the static checkers.
verify: build vet fmtcheck test race lint models assert cover

# Everything the CI workflow gates on, in one local target.
ci: verify fuzz faulttrial

# Synthesis-engine benchmarks with allocation stats; results are recorded in
# BENCH_synthesis.json so the performance trajectory is tracked across PRs.
# Override BENCH_OUT to write a candidate report elsewhere (the CI bench
# gate does, then diffs it against the committed baseline with benchdiff).
BENCH_OUT ?= BENCH_synthesis.json
bench:
	$(GO) run ./cmd/medabench -out $(BENCH_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkTableVSynthesisParallel|BenchmarkAblationResynthesisCache' -benchmem .

# Local bench-regression gate: regenerate the report into a scratch file and
# compare it against the committed baseline (warn +25%, fail 2x).
benchgate:
	$(GO) run ./cmd/medabench -out /tmp/meda-bench-new.json
	$(GO) run ./cmd/benchdiff -base BENCH_synthesis.json -new /tmp/meda-bench-new.json
