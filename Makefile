GO ?= go

.PHONY: build test race vet fmtcheck lint models assert verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fail if any file needs reformatting (gofmt prints the offenders).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Domain-specific static analysis: the medalint suite (floatcmp, chipaccess,
# ctxcancel, probliteral, lockorder) over the whole tree.
lint:
	$(GO) run ./cmd/medalint ./...

# Static model-invariant verification over the six benchmark assays:
# row-stochasticity, dangling targets, reverse-index consistency, strategy
# totality, hazard closure (internal/modelcheck).
models:
	$(GO) run ./cmd/medalint -models

# Run the solver/synthesis tests with the medacheck build tag, which turns
# on model validation at every solver entry and full reduced-model
# verification after every synthesis.
assert:
	$(GO) test -tags medacheck ./internal/mdp/ ./internal/smg/ ./internal/synth/ ./internal/modelcheck/ ./internal/sched/

# Tier-1 verification plus the race detector and the static checkers.
verify: build vet fmtcheck test race lint models assert

# Synthesis-engine benchmarks with allocation stats; results are recorded in
# BENCH_synthesis.json so the performance trajectory is tracked across PRs.
bench:
	$(GO) run ./cmd/medabench -out BENCH_synthesis.json
	$(GO) test -run '^$$' -bench 'BenchmarkTableVSynthesisParallel|BenchmarkAblationResynthesisCache' -benchmem .
