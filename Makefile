GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Tier-1 verification plus the race detector over the full tree.
verify: build vet test race

# Synthesis-engine benchmarks with allocation stats; results are recorded in
# BENCH_synthesis.json so the performance trajectory is tracked across PRs.
bench:
	$(GO) run ./cmd/medabench -out BENCH_synthesis.json
	$(GO) test -run '^$$' -bench 'BenchmarkTableVSynthesisParallel|BenchmarkAblationResynthesisCache' -benchmem .
