module meda

go 1.22
