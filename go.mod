module meda

go 1.22

// No requirements — the module is deliberately stdlib-only (DESIGN.md §11).
// In particular, golang.org/x/tools is NOT required: internal/lint/analysis
// mirrors the go/analysis API (v0.24.0 shape) on the standard library so
// cmd/medalint builds offline; switching to the real framework is a
// type-alias change plus this require:
//	require golang.org/x/tools v0.24.0
