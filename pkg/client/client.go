// Package client is the Go SDK for the medad fleet service: a thin typed
// wrapper over the REST API plus a WebSocket event stream, built on the
// standard library alone. The medasim/medaexp -remote modes, the service
// integration tests, and the docker smoke test all drive the server through
// this package.
//
//	cl := client.New("http://127.0.0.1:7070")
//	cl.CreateTenant(ctx, "acme")
//	cl.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 1})
//	job, _ := cl.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 7})
//	done, _ := cl.WaitJob(ctx, "acme", job.ID)
package client

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"meda/pkg/api"
)

// Client talks to one fleet-service endpoint.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for a base URL such as "http://127.0.0.1:7070". The
// returned client is safe for concurrent use.
func New(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{Timeout: 60 * time.Second}}
}

// apiError is a non-2xx response.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is a 404 from the service.
func IsNotFound(err error) bool {
	var ae *apiError
	return asAPIError(err, &ae) && ae.Status == http.StatusNotFound
}

// IsConflict reports whether err is a 409 from the service — typically a
// resource that already exists, which idempotent callers can ignore.
func IsConflict(err error) bool {
	var ae *apiError
	return asAPIError(err, &ae) && ae.Status == http.StatusConflict
}

func asAPIError(err error, target **apiError) bool {
	for err != nil {
		if ae, ok := err.(*apiError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do runs one request; out, when non-nil, receives the decoded JSON body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close() //lint:ignore errflowstrict response already consumed; a close error on a drained body carries no information
	if resp.StatusCode >= 300 {
		var envelope api.Error
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil {
			msg = envelope.Message
		}
		return &apiError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Healthz fetches the controller summary.
func (c *Client) Healthz(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the telemetry snapshot served at /metrics.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Metrics mirrors the server's telemetry snapshot (histograms are served
// too but rarely needed by clients; decode the raw endpoint for those).
type Metrics struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// CreateTenant registers a tenant.
func (c *Client) CreateTenant(ctx context.Context, id string) (api.Tenant, error) {
	var t api.Tenant
	err := c.do(ctx, http.MethodPost, "/api/v1/tenants", api.TenantSpec{ID: id}, &t)
	return t, err
}

// Tenants lists tenants.
func (c *Client) Tenants(ctx context.Context) ([]api.Tenant, error) {
	var ts []api.Tenant
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants", nil, &ts)
	return ts, err
}

// CreateChip registers a chip under a tenant.
func (c *Client) CreateChip(ctx context.Context, tenant string, spec api.ChipSpec) (api.ChipStatus, error) {
	var st api.ChipStatus
	err := c.do(ctx, http.MethodPost, "/api/v1/tenants/"+url.PathEscape(tenant)+"/chips", spec, &st)
	return st, err
}

// Chips lists a tenant's chips.
func (c *Client) Chips(ctx context.Context, tenant string) ([]api.ChipStatus, error) {
	var sts []api.ChipStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants/"+url.PathEscape(tenant)+"/chips", nil, &sts)
	return sts, err
}

// Chip reports one chip.
func (c *Client) Chip(ctx context.Context, tenant, chip string) (api.ChipStatus, error) {
	var st api.ChipStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants/"+url.PathEscape(tenant)+"/chips/"+url.PathEscape(chip), nil, &st)
	return st, err
}

// ChipHealth downloads the chip's serialized health map (chip-state JSON)
// as of its last job boundary.
func (c *Client) ChipHealth(ctx context.Context, tenant, chip string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/api/v1/tenants/"+url.PathEscape(tenant)+"/chips/"+url.PathEscape(chip)+"/health", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching chip health: %w", err)
	}
	defer resp.Body.Close() //lint:ignore errflowstrict response already consumed; a close error on a drained body carries no information
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading chip health: %w", err)
	}
	if resp.StatusCode >= 300 {
		var envelope api.Error
		msg := ""
		if json.Unmarshal(raw, &envelope) == nil {
			msg = envelope.Message
		}
		return nil, &apiError{Status: resp.StatusCode, Message: msg}
	}
	return raw, nil
}

// UploadChipHealth replaces an idle chip's state with a health map
// (chip-state JSON, e.g. a previous ChipHealth download or a map measured
// on real hardware).
func (c *Client) UploadChipHealth(ctx context.Context, tenant, chip string, state []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/api/v1/tenants/"+url.PathEscape(tenant)+"/chips/"+url.PathEscape(chip)+"/health",
		bytes.NewReader(state))
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: uploading chip health: %w", err)
	}
	defer resp.Body.Close() //lint:ignore errflowstrict response already consumed; a close error on a drained body carries no information
	if resp.StatusCode >= 300 {
		var envelope api.Error
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil {
			msg = envelope.Message
		}
		return &apiError{Status: resp.StatusCode, Message: msg}
	}
	return nil
}

// SubmitJob queues a job.
func (c *Client) SubmitJob(ctx context.Context, tenant string, spec api.JobSpec) (api.JobStatus, error) {
	var st api.JobStatus
	// Static constraints fail fast client-side; the server re-validates
	// against live state (chip existence, benchmark name, DSL parse).
	if err := spec.Validate(); err != nil {
		return st, err
	}
	err := c.do(ctx, http.MethodPost, "/api/v1/tenants/"+url.PathEscape(tenant)+"/jobs", spec, &st)
	return st, err
}

// Jobs lists a tenant's jobs; chip filters to one chip when non-empty.
func (c *Client) Jobs(ctx context.Context, tenant, chip string) ([]api.JobStatus, error) {
	path := "/api/v1/tenants/" + url.PathEscape(tenant) + "/jobs"
	if chip != "" {
		path += "?chip=" + url.QueryEscape(chip)
	}
	var sts []api.JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &sts)
	return sts, err
}

// Job reports one job.
func (c *Client) Job(ctx context.Context, tenant, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants/"+url.PathEscape(tenant)+"/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// CancelJob cancels a queued job immediately, or asks a running one to
// stop at its next checkpoint.
func (c *Client) CancelJob(ctx context.Context, tenant, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/api/v1/tenants/"+url.PathEscape(tenant)+"/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// AddWebhook registers a webhook.
func (c *Client) AddWebhook(ctx context.Context, tenant string, spec api.WebhookSpec) error {
	return c.do(ctx, http.MethodPost, "/api/v1/tenants/"+url.PathEscape(tenant)+"/webhooks", spec, nil)
}

// Webhooks lists a tenant's webhooks.
func (c *Client) Webhooks(ctx context.Context, tenant string) ([]api.WebhookSpec, error) {
	var hooks []api.WebhookSpec
	err := c.do(ctx, http.MethodGet, "/api/v1/tenants/"+url.PathEscape(tenant)+"/webhooks", nil, &hooks)
	return hooks, err
}

// WaitJob polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, tenant, id string) (api.JobStatus, error) {
	for {
		st, err := c.Job(ctx, tenant, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// EventStream is a live WebSocket subscription to a tenant's events.
type EventStream struct {
	conn net.Conn
	br   *bufio.Reader
}

// StreamEvents opens the tenant's event stream ("" streams every tenant).
// The stream must be closed; events arrive through Next.
func (c *Client) StreamEvents(ctx context.Context, tenant string) (*EventStream, error) {
	u, err := url.Parse(c.base)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("client: event streaming requires an http base URL, got %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	path := "/api/v1/events"
	if tenant != "" {
		path = "/api/v1/tenants/" + url.PathEscape(tenant) + "/events"
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("client: dialing event stream: %w", err)
	}
	fail := func(err error) (*EventStream, error) {
		conn.Close() //lint:ignore errflowstrict the handshake already failed; the close error cannot add anything
		return nil, err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return fail(fmt.Errorf("client: setting handshake deadline: %w", err))
		}
	}
	var keyRaw [16]byte
	if _, err := rand.Read(keyRaw[:]); err != nil {
		return fail(fmt.Errorf("client: generating websocket key: %w", err))
	}
	key := base64.StdEncoding.EncodeToString(keyRaw[:])
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", path, u.Host, key)
	if _, err := io.WriteString(conn, req); err != nil {
		return fail(fmt.Errorf("client: writing websocket handshake: %w", err))
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return fail(fmt.Errorf("client: reading websocket handshake: %w", err))
	}
	resp.Body.Close() //lint:ignore errflowstrict a 101 response carries no body; nothing can be lost
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return fail(&apiError{Status: resp.StatusCode, Message: "websocket upgrade refused"})
	}
	if !strings.EqualFold(resp.Header.Get("Upgrade"), "websocket") {
		return fail(fmt.Errorf("client: server did not upgrade to websocket"))
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return fail(fmt.Errorf("client: clearing handshake deadline: %w", err))
	}
	return &EventStream{conn: conn, br: br}, nil
}

// Next blocks for the next event. io.EOF (or a wrapped close) means the
// server ended the stream; the returned error after a clean server close
// handshake is io.EOF.
func (s *EventStream) Next() (api.Event, error) {
	for {
		op, payload, err := readWSFrame(s.br)
		if err != nil {
			return api.Event{}, err
		}
		switch op {
		case 0x1: // text
			var ev api.Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				return api.Event{}, fmt.Errorf("client: decoding event: %w", err)
			}
			return ev, nil
		case 0x8: // close: answer in kind, then report end-of-stream
			writeWSFrame(s.conn, 0x8, payload) //lint:ignore errflowstrict the server is closing; a failed echo changes nothing
			return api.Event{}, io.EOF
		case 0x9: // ping
			if err := writeWSFrame(s.conn, 0xA, payload); err != nil {
				return api.Event{}, err
			}
		default: // pong or unknown control: skip
		}
	}
}

// Close tears the stream down.
func (s *EventStream) Close() error { return s.conn.Close() }

// readWSFrame reads one unfragmented, unmasked (server-to-client) frame.
func readWSFrame(br *bufio.Reader) (byte, []byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0]&0x80 == 0 || hdr[0]&0x70 != 0 {
		return 0, nil, fmt.Errorf("client: fragmented or extended websocket frames unsupported")
	}
	op := hdr[0] & 0x0F
	if hdr[1]&0x80 != 0 {
		return 0, nil, fmt.Errorf("client: server frames must not be masked")
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(ext[0])<<8 | uint64(ext[1])
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return 0, nil, err
		}
		length = 0
		for _, b := range ext {
			length = length<<8 | uint64(b)
		}
	}
	if length > 1<<20 {
		return 0, nil, fmt.Errorf("client: websocket frame of %d bytes exceeds limit", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	return op, payload, nil
}

// writeWSFrame writes one masked (client-to-server) frame.
func writeWSFrame(conn net.Conn, op byte, payload []byte) error {
	header := make([]byte, 0, 14)
	header = append(header, 0x80|op)
	switch {
	case len(payload) < 126:
		header = append(header, 0x80|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		header = append(header, 0x80|126, byte(len(payload)>>8), byte(len(payload)))
	default:
		header = append(header, 0x80|127)
		n := uint64(len(payload))
		for shift := 56; shift >= 0; shift -= 8 {
			header = append(header, byte(n>>uint(shift)))
		}
	}
	var key [4]byte
	if _, err := rand.Read(key[:]); err != nil {
		return fmt.Errorf("client: generating mask key: %w", err)
	}
	header = append(header, key[:]...)
	masked := make([]byte, len(payload))
	for i, b := range payload {
		masked[i] = b ^ key[i%4]
	}
	if _, err := conn.Write(append(header, masked...)); err != nil {
		return fmt.Errorf("client: websocket write: %w", err)
	}
	return nil
}
