package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"meda/pkg/api"
)

// errServer always answers with the given status and an api.Error body.
func errServer(status int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"nope"}`)) //nolint
	}))
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		status                 int
		isNotFound, isConflict bool
	}{
		{http.StatusNotFound, true, false},
		{http.StatusConflict, false, true},
		{http.StatusBadRequest, false, false},
		{http.StatusInternalServerError, false, false},
	}
	ctx := context.Background()
	for _, c := range cases {
		hs := errServer(c.status)
		_, err := New(hs.URL).Tenants(ctx)
		hs.Close()
		if err == nil {
			t.Fatalf("status %d: no error", c.status)
		}
		if got := IsNotFound(err); got != c.isNotFound {
			t.Errorf("status %d: IsNotFound = %v, want %v", c.status, got, c.isNotFound)
		}
		if got := IsConflict(err); got != c.isConflict {
			t.Errorf("status %d: IsConflict = %v, want %v", c.status, got, c.isConflict)
		}
	}
	// Transport errors are not API errors.
	if _, err := New("http://127.0.0.1:1").Tenants(ctx); err == nil || IsNotFound(err) || IsConflict(err) {
		t.Errorf("transport error misclassified: %v", err)
	}
}

// The error message carries the server's envelope text, not just a status.
func TestErrorMessageSurfaced(t *testing.T) {
	hs := errServer(http.StatusBadRequest)
	defer hs.Close()
	_, err := New(hs.URL).Tenants(context.Background())
	if err == nil || err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
	if want := "nope"; !contains(err.Error(), want) {
		t.Errorf("error %q does not carry the server message %q", err.Error(), want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMetricsDecode(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"counters":{"serve.jobs.submitted":3},"gauges":{"pool.arena.reuse_ratio":0.5}}`)) //nolint
	}))
	defer hs.Close()
	m, err := New(hs.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["serve.jobs.submitted"] != 3 || m.Gauges["pool.arena.reuse_ratio"] != 0.5 {
		t.Fatalf("metrics = %+v", m)
	}
}

// Requests honor context cancellation.
func TestContextCancellation(t *testing.T) {
	blocked := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer hs.Close()
	defer close(blocked)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(hs.URL).Healthz(ctx); err == nil {
		t.Fatal("canceled context produced no error")
	}
}

// Spec validation runs client-side before any bytes hit the wire.
func TestSubmitValidatesLocally(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("invalid spec reached the server")
	}))
	defer hs.Close()
	if _, err := New(hs.URL).SubmitJob(context.Background(), "t", api.JobSpec{}); err == nil {
		t.Fatal("empty job spec accepted")
	}
}
