// Package api defines the wire types of the medad fleet service: requests,
// responses, and streamed events shared by the server (internal/serve) and
// the Go SDK (pkg/client). The package is dependency-free on purpose — it
// pins the JSON contract without dragging the simulation stack into SDK
// consumers.
package api

import (
	"encoding/json"
	"fmt"
	"regexp"
)

// TenantSpec creates a tenant.
type TenantSpec struct {
	ID string `json:"id"`
}

// Tenant summarizes one tenant.
type Tenant struct {
	ID    string `json:"id"`
	Chips int    `json:"chips"`
	Jobs  int    `json:"jobs"`
}

// ChipSpec registers a simulated biochip under a tenant. The zero W/H pick
// the service default geometry. Soft-fault injection (InjectRate > 0) is
// seeded per chip: replays of the same chip make identical fault decisions
// while distinct chips draw independently.
type ChipSpec struct {
	ID string `json:"id"`
	// Seed drives the chip's degradation-parameter sampling and every
	// execution-independent stochastic choice tied to this chip.
	Seed uint64 `json:"seed"`
	W    int    `json:"w,omitempty"`
	H    int    `json:"h,omitempty"`
	// HardFaults selects latent hard-fault injection: "", "none",
	// "uniform", or "clustered"; FaultFraction is the faulty fraction.
	HardFaults    string  `json:"hard_faults,omitempty"`
	FaultFraction float64 `json:"fault_fraction,omitempty"`
	// InjectRate enables soft-fault injection (actuation/sensing/control)
	// at the given rate for every job on this chip, with the graceful-
	// degradation router ladder engaged. InjectSeed 0 means Seed.
	InjectRate  float64 `json:"inject_rate,omitempty"`
	InjectKinds string  `json:"inject_kinds,omitempty"`
	InjectSeed  uint64  `json:"inject_seed,omitempty"`
}

// ChipStatus reports a chip's specification and current condition. Health
// numbers are sampled at job boundaries and checkpoints — they lag a live
// execution by at most the checkpoint interval.
type ChipStatus struct {
	Tenant     string   `json:"tenant"`
	Spec       ChipSpec `json:"spec"`
	QueuedJobs int      `json:"queued_jobs"`
	RunningJob string   `json:"running_job,omitempty"`
	JobsDone   int      `json:"jobs_done"`
	// MinHealth is the lowest observed health code on the array (top code =
	// fully healthy); MeanHealth is the mean code in thousandths.
	MinHealth       int `json:"min_health"`
	MeanHealthMilli int `json:"mean_health_milli"`
	Actuations      int `json:"actuations"`
}

// JobSpec submits one bioassay execution. Exactly one of Benchmark (a named
// benchmark, e.g. "serial-dilution") or Assay (an inline assay-DSL program)
// must be set.
type JobSpec struct {
	Chip       string `json:"chip"`
	Benchmark  string `json:"benchmark,omitempty"`
	Assay      string `json:"assay,omitempty"`
	Area       int    `json:"area,omitempty"` // dispensed droplet area, default 16
	Seed       uint64 `json:"seed"`
	KMax       int    `json:"kmax,omitempty"` // cycle budget, default 1000
	Concurrent bool   `json:"concurrent,omitempty"`
}

// JobState is a job's lifecycle state.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Execution mirrors the simulator's per-execution outcome on the wire.
type Execution struct {
	Success           bool `json:"success"`
	Cycles            int  `json:"cycles"`
	Stalls            int  `json:"stalls"`
	Resyntheses       int  `json:"resyntheses"`
	JobsCompleted     int  `json:"jobs_completed"`
	Rollbacks         int  `json:"rollbacks"`
	RedoneOps         int  `json:"redone_ops"`
	Divergences       int  `json:"divergences"`
	DegradedJobs      int  `json:"degraded_jobs"`
	HazardViolations  int  `json:"hazard_violations"`
	Deadlocks         int  `json:"deadlocks"`
	SerializedOps     int  `json:"serialized_ops"`
	DispenseDeferrals int  `json:"dispense_deferrals"`
	PeakDroplets      int  `json:"peak_droplets"`
}

// Progress is the latest checkpoint of a running job.
type Progress struct {
	Cycle         int    `json:"cycle"`
	JobsCompleted int    `json:"jobs_completed"`
	Droplets      int    `json:"droplets"`
	Digest        string `json:"digest"` // hex checkpoint digest, for resume verification
}

// JobStatus reports a job's state and, when finished, its result.
type JobStatus struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	Spec     JobSpec    `json:"spec"`
	State    JobState   `json:"state"`
	Result   *Execution `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	Progress *Progress  `json:"progress,omitempty"`
	// Resumed marks a job re-queued by a controller restart: its execution
	// replays deterministically from the journaled chip state.
	Resumed bool `json:"resumed,omitempty"`
}

// Event is one record of the streaming/webhook feed.
type Event struct {
	Seq    int64           `json:"seq"`
	Type   string          `json:"type"`
	Tenant string          `json:"tenant,omitempty"`
	Chip   string          `json:"chip,omitempty"`
	Job    string          `json:"job,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// Event types published by the fleet service.
const (
	EvTenantCreated  = "tenant.created"
	EvChipCreated    = "chip.created"
	EvChipHealth     = "chip.health_uploaded"
	EvChipDegraded   = "chip.degraded"
	EvJobQueued      = "job.queued"
	EvJobStarted     = "job.started"
	EvJobProgress    = "job.progress"
	EvJobDone        = "job.done"
	EvJobFailed      = "job.failed"
	EvJobCanceled    = "job.canceled"
	EvJobResumed     = "job.resumed"
	EvJobDegraded    = "job.degraded"    // routing jobs demoted to the final-tier router
	EvJobDeadlock    = "job.deadlock"    // concurrent-executor deadlock recovery fired
	EvJobDivergence  = "job.divergence"  // divergence escalation (suspect region blacklisted)
	EvJobHazard      = "job.hazard"      // post-motion hazard audit violation
	EvServerShutdown = "server.shutdown" // graceful shutdown initiated
)

// DegradationEvents are the event types a webhook with no explicit filter
// receives: the fault-escalation feed (degradation, deadlock recovery,
// divergence escalation, hazard violations, failed jobs).
var DegradationEvents = []string{
	EvChipDegraded, EvJobDegraded, EvJobDeadlock, EvJobDivergence, EvJobHazard, EvJobFailed,
}

// WebhookSpec registers a webhook: every published event whose type is in
// Events (default: DegradationEvents) is POSTed to URL as JSON.
type WebhookSpec struct {
	URL    string   `json:"url"`
	Events []string `json:"events,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	OK          bool `json:"ok"`
	Tenants     int  `json:"tenants"`
	Chips       int  `json:"chips"`
	JobsQueued  int  `json:"jobs_queued"`
	JobsRunning int  `json:"jobs_running"`
	JobsDone    int  `json:"jobs_done"`
	// ResumedJobs counts jobs re-queued by the last restart's journal
	// replay.
	ResumedJobs int `json:"resumed_jobs,omitempty"`
}

// Error is the JSON error envelope of non-2xx responses.
type Error struct {
	Message string `json:"error"`
}

var idRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ValidateID checks a tenant/chip identifier: 1–64 characters drawn from
// letters, digits, dot, underscore and dash, not starting with punctuation.
func ValidateID(kind, id string) error {
	if !idRE.MatchString(id) {
		return fmt.Errorf("invalid %s id %q (want [a-zA-Z0-9][a-zA-Z0-9._-]{0,63})", kind, id)
	}
	return nil
}

// Validate checks a job spec's static constraints (the server re-validates
// against live state: chip existence, benchmark name, DSL parse).
func (s JobSpec) Validate() error {
	if s.Chip == "" {
		return fmt.Errorf("job spec: chip is required")
	}
	if (s.Benchmark == "") == (s.Assay == "") {
		return fmt.Errorf("job spec: exactly one of benchmark or assay is required")
	}
	if s.Area < 0 || s.KMax < 0 {
		return fmt.Errorf("job spec: area and kmax must be non-negative")
	}
	return nil
}
