package api

import (
	"strings"
	"testing"
)

func TestValidateID(t *testing.T) {
	valid := []string{"a", "A9", "chip-0", "t.1_x", "x" + strings.Repeat("y", 63)}
	for _, id := range valid {
		if err := ValidateID("tenant", id); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", id, err)
		}
	}
	invalid := []string{"", ".hidden", "-lead", "has space", "semi;colon", "x" + strings.Repeat("y", 64), "sla/sh", "Ünicode"}
	for _, id := range invalid {
		if err := ValidateID("tenant", id); err == nil {
			t.Errorf("ValidateID(%q) accepted", id)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	valid := []JobSpec{
		{Chip: "c", Benchmark: "serial-dilution"},
		{Chip: "c", Assay: "assay x\na = dis 16\nout a\n", KMax: 10},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid[%d]: %v", i, err)
		}
	}
	invalid := []JobSpec{
		{},                                      // no chip
		{Chip: "c"},                             // neither benchmark nor assay
		{Chip: "c", Benchmark: "b", Assay: "a"}, // both
		{Chip: "c", Benchmark: "b", KMax: -1},
		{Chip: "c", Benchmark: "b", Area: -4},
	}
	for i, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid[%d] accepted: %+v", i, s)
		}
	}
}

func TestJobStateTerminal(t *testing.T) {
	for state, want := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCanceled: true,
	} {
		if got := state.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", state, got, want)
		}
	}
}

// The default webhook filter is the fault-escalation feed — routine
// lifecycle events must not be in it, the escalations must.
func TestDegradationEventsFilter(t *testing.T) {
	set := make(map[string]bool, len(DegradationEvents))
	for _, ev := range DegradationEvents {
		set[ev] = true
	}
	for _, must := range []string{EvChipDegraded, EvJobDegraded, EvJobDeadlock, EvJobDivergence, EvJobHazard, EvJobFailed} {
		if !set[must] {
			t.Errorf("DegradationEvents missing %s", must)
		}
	}
	for _, mustNot := range []string{EvJobQueued, EvJobStarted, EvJobProgress, EvJobDone, EvTenantCreated} {
		if set[mustNot] {
			t.Errorf("DegradationEvents wrongly includes %s", mustNot)
		}
	}
}
