// Differential test of the CSR solver engine on real models: every routing
// job of the six evaluation bioassays is induced on a worn chip and solved
// with sequential Gauss-Seidel, chunk-parallel Jacobi, and prioritized
// sweeping; all must agree on values (within tolerance) and on strategy
// quality.
package meda_test

import (
	"math"
	"testing"

	"meda"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/mdp"
	"meda/internal/smg"
	"meda/internal/synth"
)

func TestSolversAgreeOnBenchmarkAssays(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping assay-wide solver differential in -short mode")
	}
	worn := func(x, y int) float64 { return 0.81 }
	cfg := chip.Default()
	gs := mdp.SolveOptions{Method: mdp.GaussSeidel}
	alts := []mdp.SolveOptions{
		{Method: mdp.Jacobi, Workers: 4},
		{Method: mdp.Prioritized},
	}

	for _, bench := range assay.EvaluationBenchmarks {
		bench := bench
		t.Run(bench.String(), func(t *testing.T) {
			plan, err := meda.CompileBenchmark(bench, cfg, 16)
			if err != nil {
				t.Fatal(err)
			}
			jobs := 0
			for _, mo := range plan.MOs {
				for _, rj := range mo.Jobs {
					rj = synth.NormalizeDispense(rj, cfg.W, cfg.H)
					model, err := smg.Induce(rj.Hazard, rj.Start, rj.Goal, worn, smg.DefaultModelOptions())
					if err != nil {
						t.Fatalf("%s: induce: %v", rj.Name(), err)
					}
					rg, err := model.M.MinExpectedReward(model.Goal, model.Hazard, gs)
					if err != nil {
						t.Fatalf("%s: gauss-seidel: %v", rj.Name(), err)
					}
					vg, err := model.M.EvaluatePolicyReward(rg.Strategy, model.Goal, mdp.SolveOptions{})
					if err != nil {
						t.Fatalf("%s: evaluate GS policy: %v", rj.Name(), err)
					}
					for _, alt := range alts {
						ra, err := model.M.MinExpectedReward(model.Goal, model.Hazard, alt)
						if err != nil {
							t.Fatalf("%s: %v: %v", rj.Name(), alt.Method, err)
						}
						for s := range rg.Values {
							a, b := rg.Values[s], ra.Values[s]
							if math.IsInf(a, 1) != math.IsInf(b, 1) {
								t.Fatalf("%s state %d: finiteness disagrees (%v GS vs %v %v)", rj.Name(), s, a, b, alt.Method)
							}
							if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6 {
								t.Fatalf("%s state %d: %v (GS) vs %v (%v)", rj.Name(), s, a, b, alt.Method)
							}
						}
						// All strategies must be optimal: evaluating each
						// method's policy under the model must reproduce the
						// GS policy's value at the initial state.
						va, err := model.M.EvaluatePolicyReward(ra.Strategy, model.Goal, mdp.SolveOptions{})
						if err != nil {
							t.Fatalf("%s: evaluate %v policy: %v", rj.Name(), alt.Method, err)
						}
						ds, db := vg[model.Init], va[model.Init]
						if math.IsInf(ds, 1) != math.IsInf(db, 1) || (!math.IsInf(ds, 1) && math.Abs(ds-db) > 1e-6) {
							t.Fatalf("%s: strategy quality differs: %v (GS) vs %v (%v)", rj.Name(), ds, db, alt.Method)
						}
					}
					jobs++
				}
			}
			if jobs == 0 {
				t.Fatal("assay produced no routing jobs")
			}
		})
	}
}
