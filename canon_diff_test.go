// Differential tests for D4 canonicalization, the soundness property behind
// the per-shape strategy cache: a routing job and any translated, rotated, or
// reflected image of it must synthesize equivalent strategies under the
// inverse transform — on every routing job of the six evaluation bioassays
// and on randomized window geometries — and the scheduler must only take the
// canonical cache path when the window's observed health is actually uniform.
package meda_test

import (
	"math"
	"testing"

	"meda"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/sched"
	"meda/internal/synth"
)

// checkCanonicalEquivalence synthesizes rj directly and via its canonical
// form, then demands equal values and an inverted policy that covers exactly
// the droplet positions the direct policy covers.
func checkCanonicalEquivalence(t *testing.T, rj meda.RoutingJob, field func(x, y int) float64) {
	t.Helper()
	direct, err := synth.Synthesize(rj, field, synth.DefaultOptions())
	if err != nil {
		t.Fatalf("%v: direct synthesis: %v", rj, err)
	}
	crj, tf := synth.Canonicalize(rj)
	canon, err := synth.Synthesize(crj, field, synth.DefaultOptions())
	if err != nil {
		t.Fatalf("%v: canonical synthesis: %v", rj, err)
	}
	if direct.Exists() != canon.Exists() {
		t.Fatalf("%v: existence disagrees: direct %v, canonical %v", rj, direct.Exists(), canon.Exists())
	}
	if !direct.Exists() {
		return
	}
	if math.Abs(direct.Value-canon.Value) > 1e-6 {
		t.Fatalf("%v: value %v direct vs %v via canonical form", rj, direct.Value, canon.Value)
	}
	inv := tf.InvertPolicy(canon.Policy)
	if len(inv) != len(direct.Policy) {
		t.Fatalf("%v: policy domains differ: %d inverted vs %d direct", rj, len(inv), len(direct.Policy))
	}
	for d := range direct.Policy {
		if _, ok := inv[d]; !ok {
			t.Fatalf("%v: inverted policy missing droplet %v", rj, d)
		}
	}
}

// TestCanonicalizationEquivalenceOnAssays runs the equivalence property over
// every routing job of all six evaluation bioassays on a uniformly worn
// field.
func TestCanonicalizationEquivalenceOnAssays(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping assay-wide canonicalization differential in -short mode")
	}
	worn := func(x, y int) float64 { return 0.81 }
	cfg := chip.Default()
	for _, bench := range assay.EvaluationBenchmarks {
		bench := bench
		t.Run(bench.String(), func(t *testing.T) {
			plan, err := meda.CompileBenchmark(bench, cfg, 16)
			if err != nil {
				t.Fatal(err)
			}
			jobs := 0
			for _, mo := range plan.MOs {
				for _, rj := range mo.Jobs {
					rj = synth.NormalizeDispense(rj, cfg.W, cfg.H)
					checkCanonicalEquivalence(t, rj, worn)
					jobs++
				}
			}
			if jobs == 0 {
				t.Fatal("assay produced no routing jobs")
			}
		})
	}
}

// TestCanonicalizationEquivalenceRandomized is the property-based variant:
// random window geometries, random droplet and goal placements, and a random
// dihedral image at a random offset. The image must canonicalize to the same
// representative as the base job and synthesize to the same value.
func TestCanonicalizationEquivalenceRandomized(t *testing.T) {
	src := randx.New(42)
	worn := func(x, y int) float64 { return 0.72 }
	for i := 0; i < 20; i++ {
		w, h := src.IntRange(6, 14), src.IntRange(6, 14)
		place := func() meda.Rect {
			dw, dh := src.IntRange(2, 3), src.IntRange(2, 3)
			x := src.IntRange(1, w-dw+1)
			y := src.IntRange(1, h-dh+1)
			return meda.Rect{XA: x, YA: y, XB: x + dw - 1, YB: y + dh - 1}
		}
		base := meda.RoutingJob{
			Start:  place(),
			Goal:   place(),
			Hazard: meda.Rect{XA: 1, YA: 1, XB: w, YB: h},
		}
		checkCanonicalEquivalence(t, base, worn)

		tf := synth.Transform{Op: uint8(src.IntN(8)), X0: 1, Y0: 1, W: w, H: h}
		dx, dy := src.IntN(10), src.IntN(10)
		img := meda.RoutingJob{
			Start:  tf.Apply(base.Start).Translate(dx, dy),
			Goal:   tf.Apply(base.Goal).Translate(dx, dy),
			Hazard: tf.Apply(base.Hazard).Translate(dx, dy),
		}
		cb, _ := synth.Canonicalize(base)
		ci, _ := synth.Canonicalize(img)
		if cb.Start != ci.Start || cb.Goal != ci.Goal || cb.Hazard != ci.Hazard {
			t.Fatalf("case %d: image %+v canonicalizes to %+v, base %+v to %+v", i, img, ci, base, cb)
		}
		direct, err := synth.Synthesize(base, worn, synth.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		mirrored, err := synth.Synthesize(img, worn, synth.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if direct.Exists() != mirrored.Exists() ||
			(direct.Exists() && math.Abs(direct.Value-mirrored.Value) > 1e-6) {
			t.Fatalf("case %d: base value %v, dihedral image value %v", i, direct.Value, mirrored.Value)
		}
	}
}

// uniformlyDegradedChip returns a chip whose whole surface has been worn to
// one uniform sub-top health code.
func uniformlyDegradedChip(t *testing.T) *chip.Chip {
	t.Helper()
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.7, Tau2: 0.7, C1: 300, C2: 300}
	c, err := chip.New(cfg, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	whole := meda.Rect{XA: 1, YA: 1, XB: c.W(), YB: c.H()}
	for i := 0; i < 3000; i++ {
		c.Actuate(whole)
	}
	top := 1<<uint(c.HealthBits()) - 1
	if code, uniform := c.UniformHealth(whole); !uniform || code == top {
		t.Fatalf("fixture not uniformly degraded (code %d, uniform %v)", code, uniform)
	}
	return c
}

// TestUniformHealthSharesCanonicalCacheEntry: on a uniformly degraded chip,
// the scheduler caches under the canonical key, and a translated copy of the
// job is served from that entry without a second synthesis.
func TestUniformHealthSharesCanonicalCacheEntry(t *testing.T) {
	c := uniformlyDegradedChip(t)
	job := meda.RoutingJob{
		Start:  meda.Rect{XA: 2, YA: 2, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 12, YA: 8, XB: 14, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 15, YB: 11},
	}
	a := sched.NewAdaptive()
	p, _, err := a.Route(job, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p[job.Start]; !ok {
		t.Fatal("routed policy does not cover the start position")
	}
	if a.Syntheses != 1 {
		t.Fatalf("first route: %d syntheses, want 1", a.Syntheses)
	}
	raw := sched.NewCacheKey(job, a.Opt, c.HealthHash(job.Hazard))
	if a.Cache.Contains(raw) {
		t.Error("uniform-health job cached under the raw per-position key")
	}
	code, _ := c.UniformHealth(job.Hazard)
	ckey, _ := sched.NewCanonicalCacheKey(job, a.Opt, code)
	if !a.Cache.Contains(ckey) {
		t.Error("uniform-health job not cached under the canonical key")
	}

	shifted := meda.RoutingJob{
		Start:  job.Start.Translate(20, 9),
		Goal:   job.Goal.Translate(20, 9),
		Hazard: job.Hazard.Translate(20, 9),
	}
	sp, _, err := a.Route(shifted, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 1 || a.CacheHits != 1 {
		t.Fatalf("shifted copy: %d syntheses and %d cache hits, want 1 and 1", a.Syntheses, a.CacheHits)
	}
	if _, ok := sp[shifted.Start]; !ok {
		t.Fatal("de-canonicalized policy does not cover the shifted start")
	}
}

// TestNonUniformHealthBypassesCanonicalization: when health codes differ
// inside the window, the scheduler must fall back to the raw per-position
// key — canonical sharing across positions would serve strategies synthesized
// against a different force field.
func TestNonUniformHealthBypassesCanonicalization(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.7, Tau2: 0.7, C1: 300, C2: 300}
	c, err := chip.New(cfg, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	job := meda.RoutingJob{
		Start:  meda.Rect{XA: 2, YA: 2, XB: 4, YB: 4},
		Goal:   meda.Rect{XA: 12, YA: 8, XB: 14, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 15, YB: 11},
	}
	// Wear only the left half of the window so its codes split.
	left := meda.Rect{XA: 1, YA: 1, XB: 7, YB: 11}
	for i := 0; i < 3000; i++ {
		c.Actuate(left)
	}
	if _, uniform := c.UniformHealth(job.Hazard); uniform {
		t.Fatal("fixture failed to produce a non-uniform window")
	}
	a := sched.NewAdaptive()
	if _, _, err := a.Route(job, c, nil); err != nil {
		t.Fatal(err)
	}
	raw := sched.NewCacheKey(job, a.Opt, c.HealthHash(job.Hazard))
	if !a.Cache.Contains(raw) {
		t.Error("non-uniform window not cached under the raw key")
	}
	// Same job again: a raw-key hit, not a resynthesis.
	if _, _, err := a.Route(job, c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 1 || a.CacheHits != 1 {
		t.Fatalf("repeat route: %d syntheses and %d cache hits, want 1 and 1", a.Syntheses, a.CacheHits)
	}
}
