// Command medafuzz runs the benchmark bioassays under randomized soft-fault
// plans and checks that the graceful-degradation ladder holds: no hazard
// violations, every assay completes, and completion time stays within a
// bounded inflation of the clean run. It exits nonzero when any trial is
// violated — the nightly CI's fault-robustness gate.
//
//	medafuzz -trials 3 -seed 2021 -rate 0.05 -kinds all
//	medafuzz -trials 1 -assay serial-dilution -kinds ctl -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"meda"
	"meda/internal/telemetry"
)

var benchmarks = map[string]meda.Benchmark{
	"master-mix":      meda.MasterMix,
	"cep":             meda.CEP,
	"serial-dilution": meda.SerialDilution,
	"nuip":            meda.NuIP,
	"covid-rat":       meda.CovidRAT,
	"covid-pcr":       meda.CovidPCR,
}

func main() {
	trials := flag.Int("trials", 3, "fault plans per benchmark")
	seed := flag.Uint64("seed", 2021, "root seed for chips, simulation, and fault plans")
	rate := flag.Float64("rate", 0.05, "nominal mixed fault rate (jittered ±50% per trial)")
	kinds := flag.String("kinds", "all", "fault classes: comma list of act, sense, ctl (or all, none)")
	inflation := flag.Float64("inflation", 3, "max faulted/clean completion-time ratio")
	kmax := flag.Int("kmax", 0, "cycle budget override (0 = simulator default)")
	concurrent := flag.Bool("concurrent", false, "run trials on the concurrent executor")
	assayName := flag.String("assay", "", "run a single benchmark instead of the six-assay suite")
	verbose := flag.Bool("v", false, "log each trial")
	flag.Parse()

	k, err := meda.ParseFaultKinds(*kinds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medafuzz: %v\n", err)
		os.Exit(2)
	}
	cfg := meda.DefaultFaultTrialConfig()
	cfg.Seed = *seed
	cfg.Trials = *trials
	cfg.Rate = *rate
	cfg.Kinds = k
	cfg.Inflation = *inflation
	cfg.KMax = *kmax
	cfg.Concurrent = *concurrent
	if *assayName != "" {
		bench, ok := benchmarks[*assayName]
		if !ok {
			fmt.Fprintf(os.Stderr, "medafuzz: unknown assay %q\n", *assayName)
			os.Exit(2)
		}
		cfg.Benchmarks = []meda.Benchmark{bench}
	}
	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	cfg.Log = logw
	cfg.Router = func() meda.Router {
		return meda.NewFallbackRouter(meda.NewAdaptiveRouter())
	}

	results, err := meda.RunFaultTrials(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medafuzz: %v\n", err)
		os.Exit(1)
	}
	violations := 0
	for _, res := range results {
		if res.Violation == "" {
			continue
		}
		violations++
		fmt.Fprintf(os.Stderr, "medafuzz: %s trial %d: %s\n", res.Benchmark, res.Trial, res.Violation)
	}
	snap := telemetry.Default().Snapshot()
	fallbacks := snap.Counters["sched.fallback.retries"] +
		snap.Counters["sched.fallback.recovered"] +
		snap.Counters["sched.fallback.final"] +
		snap.Counters["sched.fallback.degraded"]
	fmt.Printf("medafuzz: %d trials, %d violations (seed %d, rate %.3g, kinds %s)\n",
		len(results), violations, *seed, *rate, k)
	fmt.Printf("medafuzz: injected %d synth timeouts, %d poisoned stores; %d fallback events, %d divergences\n",
		snap.Counters["sched.fault.synth_timeouts"],
		snap.Counters["sched.fault.cache_poisoned"],
		fallbacks,
		snap.Counters["sim.divergences"])
	if violations > 0 {
		os.Exit(1)
	}
}
