// Remote sweep: run the benchmark suite on a medad fleet service instead
// of the local experiment drivers. One chip per benchmark, all jobs
// submitted up front, executed concurrently by the fleet's workers.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"meda/internal/assay"
	"meda/pkg/api"
	"meda/pkg/client"
)

// remoteSweep submits every benchmark to the service and renders a
// per-assay summary table once all jobs finish.
func remoteSweep(url, tenant string, seed uint64, quick bool) error {
	ctx := context.Background()
	c := client.New(url)
	if _, err := c.CreateTenant(ctx, tenant); err != nil && !client.IsConflict(err) {
		return err
	}
	benches := assay.AllBenchmarks
	if quick {
		benches = []assay.Benchmark{assay.CovidRAT, assay.SerialDilution}
	}
	jobs := make([]remoteJob, 0, len(benches))
	for i, b := range benches {
		chipID := "exp-" + b.Slug()
		spec := api.ChipSpec{ID: chipID, Seed: seed + uint64(i)}
		if _, err := c.CreateChip(ctx, tenant, spec); err != nil && !client.IsConflict(err) {
			return err
		}
		st, err := c.SubmitJob(ctx, tenant, api.JobSpec{Chip: chipID, Benchmark: b.Slug(), Seed: seed})
		if err != nil {
			return err
		}
		jobs = append(jobs, remoteJob{id: st.ID, b: b})
		fmt.Printf("medaexp: submitted %s as %s\n", b, st.ID)
	}
	fmt.Println()
	renderRemoteSweep(os.Stdout, ctx, c, tenant, jobs)
	return nil
}

// remoteJob pairs a submitted job ID with its benchmark for rendering.
type remoteJob struct {
	id string
	b  assay.Benchmark
}

// renderRemoteSweep waits for each job and prints one table row per assay.
func renderRemoteSweep(w io.Writer, ctx context.Context, c *client.Client, tenant string, jobs []remoteJob) {
	fmt.Fprintf(w, "%-16s %8s %8s %8s %12s  %s\n", "assay", "cycles", "stalls", "resynth", "actuations", "status")
	for _, j := range jobs {
		b := j.b
		st, err := c.WaitJob(ctx, tenant, j.id)
		if err != nil {
			fmt.Fprintf(w, "%-16s %s\n", b.Slug(), err)
			continue
		}
		if st.Result == nil {
			fmt.Fprintf(w, "%-16s %s\n", b.Slug(), st.State)
			continue
		}
		status := "ok"
		if !st.Result.Success {
			status = "ABORTED"
		}
		if st.State == api.JobFailed {
			status = "FAILED: " + st.Error
		}
		actuations := 0
		if cs, cerr := c.Chip(ctx, tenant, st.Spec.Chip); cerr == nil {
			actuations = cs.Actuations
		}
		fmt.Fprintf(w, "%-16s %8d %8d %8d %12d  %s\n",
			b.Slug(), st.Result.Cycles, st.Result.Stalls, st.Result.Resyntheses, actuations, status)
	}
}
