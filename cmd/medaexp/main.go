// Command medaexp regenerates the paper's tables and figures from the
// simulation substrate. Usage:
//
//	medaexp [-seed N] [-quick] fig2|fig3|fig5|fig6|fig7|fig15|fig16|tab4|tab5|all
//
// -quick shrinks trial counts for a fast smoke run; the default
// configurations mirror the paper's setup.
package main

import (
	"flag"
	"fmt"
	"os"

	"meda/internal/assay"
	"meda/internal/exp"
	"meda/internal/fault"
	"meda/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", 2021, "experiment seed")
	quick := flag.Bool("quick", false, "shrink trial counts for a fast run")
	concurrent := flag.Bool("concurrent", false, "execute assays on the concurrent executor (all ready operations at once)")
	workers := flag.Int("workers", -1, "background synthesis workers for adaptive routers (0 = GOMAXPROCS, negative = synchronous routing)")
	cacheSize := flag.Int("cache", -1, "strategy-cache bound for adaptive routers (0 disables, negative = default)")
	inject := flag.Float64("inject", 0, "soft-fault injection rate for all drivers (0 disables)")
	injectKinds := flag.String("inject-kinds", "all", "soft-fault classes: comma list of act, sense, ctl (or all, none)")
	injectSeed := flag.Uint64("inject-seed", 0, "soft-fault seed (0 = experiment seed)")
	traceFile := flag.String("trace", "", "write telemetry spans as JSONL to this file")
	remote := flag.String("remote", "", "medad fleet-service URL: run the benchmark sweep there instead of the local drivers")
	tenant := flag.String("tenant", "medaexp", "tenant ID for -remote")
	flag.Parse()
	if *remote != "" {
		if err := remoteSweep(*remote, *tenant, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "medaexp: %v\n", err)
			os.Exit(1)
		}
		return
	}
	exp.SetRouterConfig(*workers, *cacheSize)
	exp.SetConcurrent(*concurrent)
	if *inject > 0 {
		kinds, err := fault.ParseKinds(*injectKinds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medaexp: %v\n", err)
			os.Exit(2)
		}
		fseed := *injectSeed
		if fseed == 0 {
			fseed = *seed
		}
		exp.SetFaultInjection(fault.Mixed(fseed, *inject, kinds))
	}
	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: medaexp [-seed N] [-quick] fig2|fig3|fig5|fig6|fig7|fig15|fig16|tab4|tab5|recovery|bits|alphabet|ttr|all")
		os.Exit(2)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medaexp: %v\n", err)
			os.Exit(1)
		}
		tr := telemetry.NewTracer(f)
		telemetry.SetTracer(tr)
		defer func() {
			telemetry.SetTracer(nil)
			if err := tr.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "medaexp: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "medaexp: trace: %v\n", err)
			}
		}()
	}
	for _, t := range targets {
		if err := run(t, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "medaexp %s: %v\n", t, err)
			os.Exit(1)
		}
	}
}

func run(target string, seed uint64, quick bool) error {
	w := os.Stdout
	switch target {
	case "all":
		for _, t := range []string{"fig2", "fig3", "fig5", "fig6", "fig7", "tab4", "tab5", "fig15", "fig16", "recovery", "bits", "alphabet", "ttr"} {
			if err := run(t, seed, quick); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "fig2":
		exp.Fig2(200).Render(w)
	case "fig3":
		cfg := exp.DefaultFig3Config(seed)
		if quick {
			cfg.Sides = []int{3, 6}
			cfg.MaxPairs = 1000
		}
		points, err := exp.Fig3(cfg)
		if err != nil {
			return err
		}
		exp.RenderFig3(w, points)
	case "fig5":
		series, err := exp.Fig5(seed)
		if err != nil {
			return err
		}
		exp.RenderFig5(w, series)
	case "fig6":
		series, err := exp.Fig6(seed)
		if err != nil {
			return err
		}
		exp.RenderFig6(w, series)
	case "fig7":
		exp.RenderFig7(w, exp.Fig7(exp.DefaultFig7Configs(), 1500, 25))
	case "fig15":
		cfg := exp.DefaultFig15Config(seed)
		if quick {
			cfg.Trials = 3
			cfg.Assays = []assay.Benchmark{assay.CovidRAT, assay.SerialDilution}
			cfg.KMaxSweep = []int{150, 250, 350}
		}
		points, err := exp.Fig15(cfg)
		if err != nil {
			return err
		}
		exp.RenderFig15(w, points)
	case "fig16":
		cfg := exp.DefaultFig16Config(seed)
		if quick {
			cfg.Trials = 3
			cfg.Assays = []assay.Benchmark{assay.CovidRAT, assay.SerialDilution}
		}
		rows, err := exp.Fig16(cfg)
		if err != nil {
			return err
		}
		exp.RenderFig16(w, rows)
	case "ttr":
		rows, err := exp.TimeToResult(seed)
		if err != nil {
			return err
		}
		exp.RenderTTR(w, rows)
	case "bits":
		cfg := exp.DefaultHealthBitsConfig(seed)
		if quick {
			cfg.Trials = 2
			cfg.Executions = 5
		}
		rows, err := exp.HealthBits(cfg)
		if err != nil {
			return err
		}
		exp.RenderHealthBits(w, rows)
	case "alphabet":
		rows, err := exp.Alphabet()
		if err != nil {
			return err
		}
		exp.RenderAlphabet(w, rows)
	case "recovery":
		cfg := exp.DefaultRecoveryConfig(seed)
		if quick {
			cfg.Trials = 3
			cfg.Assays = []assay.Benchmark{assay.SerialDilution}
		}
		rows, err := exp.Recovery(cfg)
		if err != nil {
			return err
		}
		exp.RenderRecovery(w, rows)
	case "tab4":
		rows, err := exp.TableIV()
		if err != nil {
			return err
		}
		exp.RenderTableIV(w, rows)
	case "tab5":
		rows, err := exp.TableV(exp.DefaultTableVConfig())
		if err != nil {
			return err
		}
		exp.RenderTableV(w, rows)
	default:
		return fmt.Errorf("unknown target %q", target)
	}
	return nil
}
