// Command medalint is the repository's domain-specific static checker. It
// has two modes, covering the two halves of the framework's correctness
// story that the Go type system cannot see:
//
// Source mode (the default) runs the medalint analyzer suite — floatcmp,
// chipaccess, ctxcancel, lockorder, nilstrategy, errflow, snapshotflow,
// lockheld, detpure, goroutineleak, chanprotocol, gridbounds, probflow,
// hotalloc — over Go packages and prints compiler-style findings, or with
// -json one JSON object per finding per line (pos, analyzer, message) for
// machine consumption. Results are cached incrementally under -cache-dir
// (default .medalint-cache, keyed by source hashes, dependency keys,
// toolchain and analyzer roster) so a warm run re-analyzes only changed
// packages; -no-cache analyzes everything from source. -sarif additionally
// writes the findings as a SARIF 2.1.0 log for GitHub code scanning,
// -timing prints per-analyzer wall time plus cache reuse, and -strict adds
// the errflowstrict dropped-error analyzer (the cmd/ audit mode):
//
//	medalint ./...
//	medalint -json ./...
//	medalint -sarif out.sarif ./...
//	medalint -timing ./...
//	medalint -no-cache ./...
//	medalint -strict ./cmd/...
//	medalint -list
//
// Model mode verifies the statically checkable invariants of the synthesis
// pipeline itself: it compiles the six evaluation bioassays (Table IV),
// induces every routing job's MDP under a healthy and a uniformly worn
// force field, solves the paper's Rmin and Pmax queries, and checks
// row-stochasticity, dangling transition targets, reverse-edge index
// consistency, strategy totality over reachable states, and hazard closure
// (see internal/modelcheck):
//
//	medalint -models
//
// Both modes exit 1 when anything is found, 2 on usage or load errors, so
// they can gate CI (see make lint / make models).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"meda"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/lint"
	"meda/internal/lint/analysis"
	"meda/internal/mdp"
	"meda/internal/modelcheck"
	"meda/internal/smg"
	"meda/internal/synth"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	timing := flag.Bool("timing", false, "print per-analyzer wall time and cache reuse to stderr")
	strict := flag.Bool("strict", false, "add the errflowstrict dropped-error analyzer (cmd audit)")
	noCache := flag.Bool("no-cache", false, "disable the incremental analysis cache; analyze every package from source")
	cacheDir := flag.String("cache-dir", ".medalint-cache", "incremental analysis cache directory")
	models := flag.Bool("models", false, "verify model invariants over the six benchmark assays instead of linting source")
	area := flag.Int("area", 16, "dispensed-droplet area for -models compilation")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: medalint [packages]   # lint source (default ./...)\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       medalint -models      # verify benchmark model invariants\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *list:
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
	case *models:
		if !checkModels(*area) {
			os.Exit(1)
		}
	default:
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		analyzers := lint.Analyzers()
		if *strict {
			analyzers = append(analyzers, lint.ErrFlowStrict)
		}
		opts := lint.Options{CacheDir: *cacheDir}
		if *noCache {
			opts.CacheDir = ""
		}
		findings, timings, stats, err := lint.RunOpts(".", patterns, analyzers, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medalint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			if *jsonOut {
				printJSON(f)
			} else {
				fmt.Println(f)
			}
		}
		if *sarifOut != "" {
			if err := writeSARIFFile(*sarifOut, findings, analyzers); err != nil {
				fmt.Fprintf(os.Stderr, "medalint: %v\n", err)
				os.Exit(2)
			}
		}
		if *timing {
			total := 0.0
			for _, tm := range timings {
				fmt.Fprintf(os.Stderr, "%-13s %8.3fs\n", tm.Analyzer, tm.Seconds)
				total += tm.Seconds
			}
			fmt.Fprintf(os.Stderr, "%-13s %8.3fs\n", "total", total)
			if opts.CacheDir != "" {
				fmt.Fprintf(os.Stderr, "cache         %d/%d packages reused\n", stats.Hits, stats.Packages)
			}
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
	}
}

// jsonFinding is the machine-readable shape of one finding; one object is
// emitted per line so stream consumers need no closing bracket.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(f lint.Finding) {
	out, err := json.Marshal(jsonFinding{
		File:     f.Pos.Filename,
		Line:     f.Pos.Line,
		Column:   f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "medalint: encoding finding: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(string(out))
}

// writeSARIFFile writes the findings as a SARIF log, fsyncing through the
// usual create/close error paths.
func writeSARIFFile(path string, findings []lint.Finding, analyzers []*analysis.Analyzer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	wd, err := os.Getwd()
	if err != nil {
		wd = "."
	}
	if err := lint.WriteSARIF(f, findings, analyzers, wd); err != nil {
		//lint:ignore errflowstrict the write error below already aborts; the close error cannot add anything
		f.Close()
		return err
	}
	return f.Close()
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}

// fields pairs a force-field fidelity with a label for reporting. The worn
// field mirrors the solver regression suite: a uniform health code of 2
// under default 2-bit sensing reads back as 0.9² relative force.
var fields = []struct {
	name  string
	field func(x, y int) float64
}{
	{"healthy", func(x, y int) float64 { return 1 }},
	{"worn", func(x, y int) float64 { return 0.81 }},
}

// checkModels compiles each evaluation benchmark and verifies every routing
// job's induced MDP, solved strategies and value vectors. It reports one
// summary line per assay and every violation in full, returning false if
// any model failed.
func checkModels(area int) bool {
	cfg := chip.Default()
	ok := true
	for _, bench := range assay.EvaluationBenchmarks {
		plan, err := meda.CompileBenchmark(bench, cfg, area)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medalint: compiling %v: %v\n", bench, err)
			ok = false
			continue
		}
		jobs, states, bad := 0, 0, 0
		for _, mo := range plan.MOs {
			for _, rj := range mo.Jobs {
				rj = synth.NormalizeDispense(rj, cfg.W, cfg.H)
				jobs++
				for _, f := range fields {
					vs, n, err := checkJob(rj, f.field)
					if err != nil {
						fmt.Fprintf(os.Stderr, "medalint: %v %s (%s): %v\n", bench, rj.Name(), f.name, err)
						ok = false
						continue
					}
					states += n
					for _, v := range vs {
						fmt.Printf("%v %s (%s): %s\n", bench, rj.Name(), f.name, v)
					}
					bad += len(vs)
				}
			}
		}
		fmt.Printf("medalint: %-10v %3d jobs, %7d states checked, %d violations\n", bench, jobs, states, bad)
		if bad > 0 {
			ok = false
		}
	}
	return ok
}

// checkJob induces one routing job's MDP and runs every modelcheck
// invariant over the model, the Rmin and Pmax strategies, and the solved
// value vectors, returning the violations and the model's state count.
func checkJob(rj meda.RoutingJob, field func(x, y int) float64) ([]modelcheck.Violation, int, error) {
	model, err := smg.Induce(rj.Hazard, rj.Start, rj.Goal, field, smg.DefaultModelOptions())
	if err != nil {
		return nil, 0, err
	}
	vs := modelcheck.CheckReduced(model, nil, rj.Hazard)
	for _, v := range vs {
		if v.Check == "dangling-target" {
			// The solvers would index out of range; don't run them.
			return vs, model.M.NumStates(), nil
		}
	}
	rmin, err := model.M.MinExpectedReward(model.Goal, model.Hazard, mdp.SolveOptions{})
	if err != nil {
		return vs, model.M.NumStates(), err
	}
	vs = append(vs, modelcheck.CheckStrategy(model.M, rmin.Strategy, model.Init, model.Goal, model.Hazard)...)
	vs = append(vs, modelcheck.CheckValues(rmin.Values, false)...)

	pmax, err := model.M.MaxReachProb(model.Goal, model.Hazard, mdp.SolveOptions{})
	if err != nil {
		return vs, model.M.NumStates(), err
	}
	vs = append(vs, modelcheck.CheckStrategy(model.M, pmax.Strategy, model.Init, model.Goal, model.Hazard)...)
	vs = append(vs, modelcheck.CheckValues(pmax.Values, true)...)
	return vs, model.M.NumStates(), nil
}
