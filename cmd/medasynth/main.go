// Command medasynth synthesizes a single droplet routing strategy (Alg. 2)
// and reports the model statistics of Table V. The health matrix is uniform
// (-health) or loaded implicitly by degrading a band of cells (-wall) to
// demonstrate adaptive re-routing.
//
//	medasynth -start 1,1,3,3 -goal 8,8,10,10 -hazard 1,1,10,10
//	medasynth -query "Pmax=? [ G !hazard & F goal ]" -wall 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"meda"
)

func main() {
	startS := flag.String("start", "1,1,3,3", "start rectangle xa,ya,xb,yb")
	goalS := flag.String("goal", "8,8,10,10", "goal rectangle")
	hazardS := flag.String("hazard", "1,1,10,10", "hazard bounds")
	queryS := flag.String("query", "Rmin=? [ G !hazard & F goal ]", "synthesis query")
	health := flag.Float64("health", 1.0, "uniform degradation level D of every microelectrode")
	wall := flag.Int("wall", 0, "x column of a fully dead wall (0 = none)")
	trace := flag.Bool("trace", true, "print the most-likely trajectory of the strategy")
	flag.Parse()

	rj := meda.RoutingJob{
		Start:  parseRect(*startS),
		Goal:   parseRect(*goalS),
		Hazard: parseRect(*hazardS),
	}
	q, err := meda.ParseQuery(*queryS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medasynth: %v\n", err)
		os.Exit(2)
	}
	opt := meda.DefaultSynthOptions()
	opt.Query = q

	d := *health
	field := func(x, y int) float64 {
		if *wall > 0 && x == *wall {
			return 0
		}
		return d * d // relative EWOD force = D²
	}

	res, err := meda.Synthesize(rj, field, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medasynth: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("model: %d states, %d transitions, %d choices\n",
		res.Stats.States, res.Stats.Transitions, res.Stats.Choices)
	fmt.Printf("time:  construction %v, synthesis %v (%d iterations)\n",
		res.Stats.Construction, res.Stats.Synthesis, res.Stats.Iterations)
	if !res.Exists() {
		fmt.Println("result: no strategy exists (π = ∅, value = ∞/0)")
		return
	}
	fmt.Printf("value: %.4f\n", res.Value)
	fmt.Printf("policy covers %d droplet positions\n", len(res.Policy))

	if *trace {
		fmt.Println("most-likely trajectory:")
		pos := rj.Start
		for step := 0; step < 200; step++ {
			if rj.Goal.ContainsRect(pos) {
				fmt.Printf("  %v  — goal reached in %d steps\n", pos, step)
				return
			}
			a, ok := res.Policy[pos]
			if !ok {
				fmt.Printf("  %v  — policy undefined (unreachable position)\n", pos)
				return
			}
			fmt.Printf("  %v  %v\n", pos, a)
			pos = a.Apply(pos)
		}
		fmt.Println("  ... (trace truncated)")
	}
}

func parseRect(s string) meda.Rect {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		fmt.Fprintf(os.Stderr, "medasynth: rectangle %q must be xa,ya,xb,yb\n", s)
		os.Exit(2)
	}
	var v [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "medasynth: bad coordinate %q\n", p)
			os.Exit(2)
		}
		v[i] = n
	}
	return meda.Rect{XA: v[0], YA: v[1], XB: v[2], YB: v[3]}
}
