// Command medasim executes benchmark bioassays on a simulated MEDA biochip,
// comparing the adaptive synthesis router with the shortest-path baseline.
//
//	medasim -assay serial-dilution -router adaptive -executions 10
//	medasim -assay nuip -router both -faults clustered -fraction 0.12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"meda"
	"meda/internal/telemetry"
	"meda/pkg/api"
)

func main() {
	assayName := flag.String("assay", "serial-dilution", "bioassay: "+names())
	router := flag.String("router", "both", "router: baseline, adaptive, or both")
	seed := flag.Uint64("seed", 2021, "simulation seed")
	executions := flag.Int("executions", 5, "consecutive executions on the same chip")
	kmax := flag.Int("kmax", 1000, "cycle budget per execution")
	area := flag.Int("area", 16, "dispensed droplet area (16 = 4×4)")
	faults := flag.String("faults", "none", "hard-fault injection: none, uniform, clustered")
	fraction := flag.Float64("fraction", 0.12, "fraction of faulty microelectrodes")
	inject := flag.Float64("inject", 0, "soft-fault injection rate (0 disables); enables the graceful-degradation router ladder")
	injectKinds := flag.String("inject-kinds", "all", "soft-fault classes: comma list of act, sense, ctl (or all, none)")
	injectSeed := flag.Uint64("inject-seed", 0, "soft-fault seed (0 = simulation seed)")
	file := flag.String("file", "", "run a custom assay from a .assay description file instead of a named benchmark")
	concurrent := flag.Bool("concurrent", false, "route all ready operations concurrently instead of one hazard zone at a time")
	workers := flag.Int("workers", 0, "background synthesis workers for the adaptive router (0 = GOMAXPROCS, negative = synchronous routing)")
	cacheSize := flag.Int("cache", -1, "strategy-cache bound for the adaptive router (0 disables, negative = default)")
	traceFile := flag.String("trace", "", "write telemetry spans as JSONL to this file")
	remote := flag.String("remote", "", "medad fleet-service URL: submit the assay there instead of simulating locally")
	tenant := flag.String("tenant", "medasim", "tenant ID for -remote")
	chipID := flag.String("chip", "chip-0", "chip ID for -remote (created if missing)")
	flag.Parse()

	if *remote != "" {
		// Remote mode: the service owns routing (always adaptive, with the
		// fallback ladder when injection is on), so -router and the local
		// tuning flags do not apply.
		o := remoteOpts{
			url:    *remote,
			tenant: *tenant,
			chip: api.ChipSpec{
				ID: *chipID, Seed: *seed,
				HardFaults: *faults, FaultFraction: *fraction,
				InjectRate: *inject, InjectKinds: *injectKinds, InjectSeed: *injectSeed,
			},
			job: api.JobSpec{
				Chip: *chipID, Benchmark: *assayName,
				Area: *area, Seed: *seed, KMax: *kmax, Concurrent: *concurrent,
			},
		}
		if *file != "" {
			text, err := os.ReadFile(*file)
			if err != nil {
				fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
				os.Exit(1)
			}
			o.job.Benchmark = ""
			o.job.Assay = string(text)
		}
		if err := runRemote(o); err != nil {
			fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
			os.Exit(1)
		}
		tr := telemetry.NewTracer(f)
		telemetry.SetTracer(tr)
		defer func() {
			telemetry.SetTracer(nil)
			if err := tr.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "medasim: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "medasim: trace: %v\n", err)
			}
		}()
	}

	var bench meda.Benchmark
	if *file == "" {
		var ok bool
		bench, ok = meda.ParseBenchmark(*assayName)
		if !ok {
			fmt.Fprintf(os.Stderr, "medasim: unknown assay %q (want one of %s)\n", *assayName, names())
			os.Exit(2)
		}
	}
	var routers []string
	switch *router {
	case "both":
		routers = []string{"baseline", "adaptive"}
	case "baseline", "adaptive":
		routers = []string{*router}
	default:
		fmt.Fprintln(os.Stderr, "medasim: -router must be baseline, adaptive, or both")
		os.Exit(2)
	}

	cfg := meda.DefaultChipConfig()
	switch *faults {
	case "none":
	case "uniform":
		cfg.Faults = meda.FaultPlan{Mode: meda.FaultUniform, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	case "clustered":
		cfg.Faults = meda.FaultPlan{Mode: meda.FaultClustered, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	default:
		fmt.Fprintln(os.Stderr, "medasim: -faults must be none, uniform, or clustered")
		os.Exit(2)
	}
	kinds, err := meda.ParseFaultKinds(*injectKinds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
		os.Exit(2)
	}

	var plan *meda.Plan
	title := ""
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "medasim: %v\n", ferr)
			os.Exit(1)
		}
		g, gerr := meda.ParseAssay(f)
		//lint:ignore errflowstrict close error on a read-only file is meaningless once ParseAssay decided
		f.Close()
		if gerr != nil {
			fmt.Fprintf(os.Stderr, "medasim: %v\n", gerr)
			os.Exit(1)
		}
		plan, err = meda.CompileGraph(g, cfg.W, cfg.H)
		title = g.Name
	} else {
		plan, err = meda.CompileBenchmark(bench, cfg, *area)
		title = bench.String()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s on a %d×%d chip (seed %d, faults %s): %d operations, %d routing jobs\n",
		title, cfg.W, cfg.H, *seed, *faults, plan.Assay.Len(), plan.TotalJobs())

	for _, name := range routers {
		src := meda.NewSource(*seed)
		c, err := meda.NewChip(cfg, src.Split("chip"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
			os.Exit(1)
		}
		var r meda.Router
		if name == "adaptive" {
			if *workers < 0 {
				r = meda.NewAdaptiveRouter()
			} else {
				r = meda.NewParallelAdaptiveRouter(*workers, *cacheSize)
			}
		} else {
			r = meda.NewBaselineRouter()
		}
		simCfg := meda.DefaultSimConfig()
		simCfg.KMax = *kmax
		simCfg.Concurrent = *concurrent
		if *inject > 0 {
			fseed := *injectSeed
			if fseed == 0 {
				fseed = *seed
			}
			simCfg = simCfg.WithFaults(meda.MixedFaultPlan(fseed, *inject, kinds))
			r = meda.NewFallbackRouter(r)
		}
		runner := meda.NewRunner(simCfg, c, r, src.Split("sim"))
		fmt.Printf("\n%s router:\n", name)
		for e := 1; e <= *executions; e++ {
			exec, err := runner.Execute(plan)
			if err != nil {
				fmt.Fprintf(os.Stderr, "medasim: %v\n", err)
				os.Exit(1)
			}
			status := "ok"
			if !exec.Success {
				status = "ABORTED"
			}
			fmt.Printf("  run %2d: %4d cycles  %-7s  (stalls %d, re-syntheses %d)\n",
				e, exec.Cycles, status, exec.Stalls, exec.Resyntheses)
			if *inject > 0 {
				fmt.Printf("          divergences %d, degraded jobs %d, hazard violations %d\n",
					exec.Divergences, exec.DegradedJobs, exec.HazardViolations)
			}
			if *concurrent {
				fmt.Printf("          peak droplets %d, deadlocks %d, serialized %d, dispense deferrals %d\n",
					exec.PeakDroplets, exec.Deadlocks, exec.SerializedOps, exec.DispenseDeferrals)
			}
			if !exec.Success {
				fmt.Printf("  chip too degraded to continue\n")
				break
			}
		}
		fmt.Printf("  total microelectrode actuations: %d\n", c.TotalActuations())
	}
}

func names() string { return strings.Join(meda.BenchmarkSlugs(), ", ") }
