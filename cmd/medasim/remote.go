// Remote execution: instead of simulating locally, submit the assay to a
// medad fleet service (-remote http://host:port) and stream its progress
// over the WebSocket event feed.
package main

import (
	"context"
	"encoding/json"
	"fmt"

	"meda/pkg/api"
	"meda/pkg/client"
)

// remoteOpts carries everything the remote path needs, resolved from the
// same flags as local simulation.
type remoteOpts struct {
	url    string
	tenant string
	chip   api.ChipSpec
	job    api.JobSpec
}

// runRemote creates tenant and chip idempotently, submits the job, relays
// its events, and prints the final execution summary.
func runRemote(o remoteOpts) error {
	ctx := context.Background()
	c := client.New(o.url)
	if _, err := c.CreateTenant(ctx, o.tenant); err != nil && !client.IsConflict(err) {
		return err
	}
	if _, err := c.CreateChip(ctx, o.tenant, o.chip); err != nil && !client.IsConflict(err) {
		return err
	}
	es, err := c.StreamEvents(ctx, o.tenant)
	if err != nil {
		return err
	}
	defer es.Close()

	st, err := c.SubmitJob(ctx, o.tenant, o.job)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (tenant %s, chip %s) to %s\n", st.ID, o.tenant, o.job.Chip, o.url)

	for done := false; !done; {
		ev, rerr := es.Next()
		if rerr != nil {
			break // stream gone: fall through to polling for the result
		}
		if ev.Job != st.ID {
			continue
		}
		switch ev.Type {
		case api.EvJobStarted:
			fmt.Printf("  started\n")
		case api.EvJobProgress:
			var p api.Progress
			if json.Unmarshal(ev.Data, &p) == nil {
				fmt.Printf("  cycle %4d: %d operations done, %d droplets live\n",
					p.Cycle, p.JobsCompleted, p.Droplets)
			}
		case api.EvJobDegraded, api.EvJobDeadlock, api.EvJobDivergence, api.EvJobHazard:
			fmt.Printf("  %s\n", ev.Type)
		case api.EvJobDone, api.EvJobFailed, api.EvJobCanceled:
			done = true
		}
	}

	final, err := c.WaitJob(ctx, o.tenant, st.ID)
	if err != nil {
		return err
	}
	switch {
	case final.State == api.JobDone && final.Result != nil:
		ex := final.Result
		status := "ok"
		if !ex.Success {
			status = "ABORTED"
		}
		fmt.Printf("  %s: %4d cycles  %-7s  (stalls %d, re-syntheses %d)\n",
			final.ID, ex.Cycles, status, ex.Stalls, ex.Resyntheses)
	case final.State == api.JobFailed:
		return fmt.Errorf("remote job %s failed: %s", final.ID, final.Error)
	default:
		fmt.Printf("  %s: %s\n", final.ID, final.State)
	}
	return nil
}
