// Command medabench runs the synthesis-engine benchmarks and records the
// results as JSON, so the performance trajectory is tracked across changes:
//
//	medabench -out BENCH_synthesis.json
//
// The suite covers the synthesis hot path of Table V (model construction +
// value iteration), cold vs pooled-arena model construction, the solver
// comparison (gauss-seidel, jacobi seq/par, prioritized), the cold-vs-warm
// strategy cache for re-synthesis, the D4-canonical cache serving a whole
// symmetry class of jobs from one synthesis, and the sequential-vs-concurrent
// assay executor on a contention-heavy generated workload. Derived ratios
// (parallel_speedup, warm_cache_speedup, pooled_construction_speedup,
// canonicalization_hit_rate, concurrent_cycle_reduction) are computed from
// the same runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"meda"
	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/mdp"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/smg"
	"meda/internal/synth"
	"meda/internal/telemetry"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Generated  string             `json:"generated"`
	GoMaxProcs int                `json:"go_max_procs"`
	NumCPU     int                `json:"num_cpu"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
	// Telemetry is the process-wide counter snapshot after all benchmark
	// runs — VI sweep totals, cache hits/misses, pool activity — so the
	// recorded timings can be cross-checked against how much work actually
	// happened (e.g. a "speedup" from accidentally cached solves shows up
	// as a hit/solve ratio shift).
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

func record(rep *report, name string, f func(b *testing.B)) result {
	r := testing.Benchmark(f)
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	rep.Benchmarks = append(rep.Benchmarks, res)
	fmt.Printf("%-42s %12.0f ns/op %12d B/op %9d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func main() {
	out := flag.String("out", "BENCH_synthesis.json", "output JSON path")
	flag.Parse()

	// Open the output up front so a bad path fails before, not after, the
	// benchmark runs.
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}

	rep := &report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Derived:    map[string]float64{},
	}
	worn := func(x, y int) float64 { return 0.81 }

	// Table V synthesis rows: full pipeline (Induce + solve + extract).
	for _, area := range []int{10, 20, 30} {
		rj := meda.RoutingJob{
			Start:  meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
			Goal:   meda.Rect{XA: area - 3, YA: area - 3, XB: area, YB: area},
			Hazard: meda.Rect{XA: 1, YA: 1, XB: area, YB: area},
		}
		record(rep, fmt.Sprintf("table_v_synthesis/%dx%d", area, area), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(rj, worn, synth.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Model construction in isolation (Table V's construction column): cold
	// (fresh allocations every build) vs pooled (one smg.Arena recycling its
	// CSR slabs across builds).
	construct := record(rep, "model_construction/30x30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := smg.Induce(
				meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
				meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
				meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
				worn, smg.DefaultModelOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	var arena smg.Arena
	pooled := record(rep, "model_construction_pooled/30x30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := arena.Induce(
				meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
				meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
				meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
				worn, smg.DefaultModelOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Derived["pooled_construction_speedup"] = construct.NsPerOp / pooled.NsPerOp

	// Solver comparison on one 30×30 model: Gauss-Seidel (sequential),
	// Jacobi with one worker (sequential sweep), Jacobi with GOMAXPROCS
	// workers (chunk-parallel sweep).
	model, err := smg.Induce(
		meda.Rect{XA: 1, YA: 1, XB: 30, YB: 30},
		meda.Rect{XA: 1, YA: 1, XB: 4, YB: 4},
		meda.Rect{XA: 27, YA: 27, XB: 30, YB: 30},
		worn, smg.DefaultModelOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	solve := func(opt mdp.SolveOptions) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.M.MinExpectedReward(model.Goal, model.Hazard, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	gs := record(rep, "solver/gauss-seidel", solve(mdp.SolveOptions{Method: mdp.GaussSeidel}))
	j1 := record(rep, "solver/jacobi-seq", solve(mdp.SolveOptions{Method: mdp.Jacobi, Workers: 1}))
	jp := record(rep, fmt.Sprintf("solver/jacobi-par%d", runtime.GOMAXPROCS(0)),
		solve(mdp.SolveOptions{Method: mdp.Jacobi, Workers: 0}))
	pr := record(rep, "solver/prioritized", solve(mdp.SolveOptions{Method: mdp.Prioritized}))
	rep.Derived["parallel_speedup_vs_jacobi_seq"] = j1.NsPerOp / jp.NsPerOp
	rep.Derived["parallel_speedup_vs_gauss_seidel"] = gs.NsPerOp / jp.NsPerOp
	rep.Derived["prioritized_vs_gauss_seidel"] = gs.NsPerOp / pr.NsPerOp

	// Re-synthesis: cold (synthesize every time) vs warm (health-keyed
	// strategy cache hit). The chip region is degraded so the library fast
	// path does not apply and the cache path is exercised.
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.5, Tau2: 0.9, C1: 200, C2: 500}
	c, err := chip.New(cfg, randx.New(7))
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	job := meda.RoutingJob{
		Start:  meda.Rect{XA: 10, YA: 10, XB: 13, YB: 13},
		Goal:   meda.Rect{XA: 30, YA: 15, XB: 33, YB: 18},
		Hazard: meda.Rect{XA: 7, YA: 7, XB: 36, YB: 21},
	}
	for i := 0; i < 3000; i++ {
		c.Actuate(job.Hazard)
	}
	cold := record(rep, "resynthesis/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := sched.NewAdaptive() // fresh router: empty cache every time
			if _, _, err := a.Route(job, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	warmRouter := sched.NewAdaptive()
	if _, _, err := warmRouter.Route(job, c, nil); err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	warm := record(rep, "resynthesis/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := warmRouter.Route(job, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Derived["warm_cache_speedup"] = cold.NsPerOp / warm.NsPerOp

	// Canonicalization: on a uniformly degraded region, every translated,
	// mirrored, or transposed image of a job keys to one D4-canonical cache
	// entry, so a single synthesis serves the whole symmetry class. The
	// benchmark routes 40 distinct jobs (8 dihedral images × 5 positions)
	// through one router and records the per-hit cost of serving a
	// de-canonicalized policy; the derived hit rate is what fraction of those
	// routes never touched the synthesizer.
	ucfg := chip.Default()
	ucfg.Normal = degrade.ParamRange{Tau1: 0.7, Tau2: 0.7, C1: 300, C2: 300}
	uc, err := chip.New(ucfg, randx.New(11))
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	whole := meda.Rect{XA: 1, YA: 1, XB: uc.W(), YB: uc.H()}
	for i := 0; i < 3000; i++ {
		uc.Actuate(whole)
	}
	top := 1<<uint(uc.HealthBits()) - 1
	if code, uniform := uc.UniformHealth(whole); !uniform || code == top {
		fmt.Fprintf(os.Stderr, "medabench: canonical benchmark needs a uniformly degraded chip (code %d, uniform %v)\n", code, uniform)
		os.Exit(1)
	}
	base := meda.RoutingJob{
		Start:  meda.Rect{XA: 1, YA: 1, XB: 3, YB: 3},
		Goal:   meda.Rect{XA: 12, YA: 8, XB: 14, YB: 10},
		Hazard: meda.Rect{XA: 1, YA: 1, XB: 14, YB: 10},
	}
	var jobs []meda.RoutingJob
	for op := uint8(0); op < 8; op++ {
		tf := synth.Transform{Op: op, X0: base.Hazard.XA, Y0: base.Hazard.YA,
			W: base.Hazard.Width(), H: base.Hazard.Height()}
		for _, d := range [][2]int{{0, 0}, {9, 3}, {21, 7}, {33, 12}, {44, 0}} {
			j := meda.RoutingJob{
				Start:  tf.Apply(base.Start).Translate(d[0], d[1]),
				Goal:   tf.Apply(base.Goal).Translate(d[0], d[1]),
				Hazard: tf.Apply(base.Hazard).Translate(d[0], d[1]),
			}
			if whole.ContainsRect(j.Hazard) {
				jobs = append(jobs, j)
			}
		}
	}
	canonRouter := sched.NewAdaptive()
	for _, j := range jobs { // one pass to measure the hit rate
		if _, _, err := canonRouter.Route(j, uc, nil); err != nil {
			fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
			os.Exit(1)
		}
	}
	rep.Derived["canonicalization_hit_rate"] =
		float64(canonRouter.CacheHits) / float64(canonRouter.CacheHits+canonRouter.Syntheses)
	rep.Derived["canonicalization_jobs_per_synthesis"] =
		float64(len(jobs)) / float64(canonRouter.Syntheses)
	idx := 0
	record(rep, "cache/canonical_hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := jobs[idx%len(jobs)]
			idx++
			if _, _, err := canonRouter.Route(j, uc, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Assay execution: sequential (one hazard zone at a time) vs concurrent
	// (all ready operations at once) on a contention-heavy generated mixture —
	// three paper protocols concatenated onto shifted regions of one 60×30
	// chip, so their droplets compete for reservoirs, modules, and corridor
	// space. Cycle counts are deterministic for a fixed seed, so the derived
	// ratio records the assay-level makespan reduction concurrency buys; the
	// benchmark rows track each executor's wall-clock cost per execution.
	mix := assay.Mixture(15, assay.Layout{W: 60, H: 30}, 16, 3)
	mixPlan, err := route.Compile(mix, 60, 30)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	runExec := func(concurrent bool) (sim.Execution, error) {
		// Near-immortal microelectrodes isolate executor scheduling from wear.
		ecfg := chip.Default()
		ecfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
		src := randx.New(15)
		ec, err := chip.New(ecfg, src.Split("chip"))
		if err != nil {
			return sim.Execution{}, err
		}
		scfg := sim.DefaultConfig()
		scfg.KMax = 8000
		scfg.Concurrent = concurrent
		return sim.NewRunner(scfg, ec, sched.NewBaseline(), src.Split("sim")).Execute(mixPlan)
	}
	seqExec, err := runExec(false)
	if err == nil && !seqExec.Success {
		err = fmt.Errorf("sequential execution of %s aborted after %d cycles", mix.Name, seqExec.Cycles)
	}
	var conExec sim.Execution
	if err == nil {
		conExec, err = runExec(true)
	}
	if err == nil && !conExec.Success {
		err = fmt.Errorf("concurrent execution of %s aborted after %d cycles", mix.Name, conExec.Cycles)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	rep.Derived["concurrent_cycle_reduction"] = float64(seqExec.Cycles) / float64(conExec.Cycles)
	execBench := func(concurrent bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runExec(concurrent); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	record(rep, "executor/sequential", execBench(false))
	record(rep, "executor/concurrent", execBench(true))

	rep.Telemetry = telemetry.Default().Snapshot()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "medabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nparallel speedup (jacobi seq → par): %.2fx\n", rep.Derived["parallel_speedup_vs_jacobi_seq"])
	fmt.Printf("warm-cache speedup (cold → warm):    %.0fx\n", rep.Derived["warm_cache_speedup"])
	fmt.Printf("pooled construction speedup:         %.2fx\n", rep.Derived["pooled_construction_speedup"])
	fmt.Printf("canonicalization hit rate:           %.1f%% (%.0f jobs per synthesis)\n",
		100*rep.Derived["canonicalization_hit_rate"], rep.Derived["canonicalization_jobs_per_synthesis"])
	fmt.Printf("concurrent cycle reduction:          %.2fx (%d → %d cycles on %s)\n",
		rep.Derived["concurrent_cycle_reduction"], seqExec.Cycles, conExec.Cycles, mix.Name)
	fmt.Printf("wrote %s\n", *out)
}
