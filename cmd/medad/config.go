// Flag parsing and configuration for medad, split from the wiring in
// main.go so each serving mode (device protocol, fleet API) reads one
// config struct instead of a pile of globals.
package main

import (
	"flag"
	"fmt"
	"time"

	"meda"
)

// config is everything the daemon needs, resolved from flags.
type config struct {
	// Device-protocol mode (internal/device, newline-delimited JSON over
	// TCP). Empty disables.
	listenAddr string
	seed       uint64
	chipCfg    meda.ChipConfig
	faults     string
	statePath  string

	// Debug HTTP (metrics + pprof). Empty disables.
	httpAddr string

	// Fleet-service mode (internal/serve, REST + WebSocket). Empty
	// disables.
	apiAddr         string
	dataDir         string
	snapshotEvery   time.Duration
	maxConcurrent   int
	checkpointEvery int
}

// parseFlags parses argv (without the program name) into a config.
func parseFlags(argv []string) (config, error) {
	fs := flag.NewFlagSet("medad", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "device-protocol TCP address (empty disables the single-chip device mode)")
	seed := fs.Uint64("seed", 2021, "chip seed for the device-mode chip")
	faults := fs.String("faults", "none", "device-mode hard-fault injection: none, uniform, clustered")
	fraction := fs.Float64("fraction", 0.12, "fraction of faulty microelectrodes")
	state := fs.String("state", "", "device-mode chip state file: loaded at start if present, saved on interrupt (wear persists)")
	httpAddr := fs.String("http", "127.0.0.1:7071", "debug HTTP address serving /metrics and /debug/pprof/ (empty disables)")
	apiAddr := fs.String("api", "", "fleet-service HTTP address (REST + WebSocket; empty disables)")
	dataDir := fs.String("data", "", "fleet-service data directory for snapshot+journal persistence (empty runs ephemerally)")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "fleet-service periodic snapshot interval (0 disables periodic snapshots)")
	maxConcurrent := fs.Int("max-concurrent", 0, "fleet-wide bound on concurrently executing assays (0 = GOMAXPROCS)")
	checkpointEvery := fs.Int("checkpoint-every", 16, "cycles between execution checkpoints (progress journaling and events)")
	if err := fs.Parse(argv); err != nil {
		return config{}, err
	}

	cfg := config{
		listenAddr:      *listen,
		seed:            *seed,
		faults:          *faults,
		statePath:       *state,
		httpAddr:        *httpAddr,
		apiAddr:         *apiAddr,
		dataDir:         *dataDir,
		snapshotEvery:   *snapshotEvery,
		maxConcurrent:   *maxConcurrent,
		checkpointEvery: *checkpointEvery,
	}
	cfg.chipCfg = meda.DefaultChipConfig()
	switch *faults {
	case "none":
	case "uniform":
		cfg.chipCfg.Faults = meda.FaultPlan{Mode: meda.FaultUniform, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	case "clustered":
		cfg.chipCfg.Faults = meda.FaultPlan{Mode: meda.FaultClustered, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	default:
		return config{}, fmt.Errorf("-faults must be none, uniform, or clustered")
	}
	if cfg.listenAddr == "" && cfg.apiAddr == "" {
		return config{}, fmt.Errorf("nothing to serve: set -listen (device protocol) and/or -api (fleet service)")
	}
	return cfg, nil
}
