// Device-protocol mode: hosts one simulated MEDA biochip on a TCP socket,
// speaking the newline-delimited JSON protocol of internal/device — the
// cyber-physical interface between a routing controller and the chip
// (Fig. 13/14).
package main

import (
	"errors"
	"fmt"
	"net"
	"os"

	"meda/internal/chip"
	"meda/internal/device"
	"meda/internal/randx"
)

// deviceMode wraps the single-chip device server plus its wear-persistence
// file, so run() can treat it like the other serving modes.
type deviceMode struct {
	cfg config
	srv *device.Server
}

// newDeviceMode builds the chip (restoring persisted wear when the state
// file exists) and the device server around it.
func newDeviceMode(cfg config) (*deviceMode, error) {
	src := randx.New(cfg.seed)
	var c *chip.Chip
	if cfg.statePath != "" {
		if f, ferr := os.Open(cfg.statePath); ferr == nil {
			lc, err := chip.LoadState(f)
			//lint:ignore errflowstrict close error on a read-only file is meaningless once LoadState decided
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("restoring chip state: %w", err)
			}
			c = lc
			fmt.Printf("medad: restored worn chip from %s\n", cfg.statePath)
		}
	}
	if c == nil {
		var err error
		c, err = chip.New(cfg.chipCfg, src.Split("chip"))
		if err != nil {
			return nil, err
		}
	}
	return &deviceMode{cfg: cfg, srv: device.NewServer(c, src.Split("nature"))}, nil
}

// serve accepts device connections until the listener closes. A clean
// listener close (the shutdown path) saves the chip's wear, like powering
// down real hardware — the save happens here, after Serve returns, through
// the device lock, never on a goroutine racing the connection handlers
// (see the medalint chipaccess analyzer).
func (d *deviceMode) serve(ln net.Listener) error {
	serveErr := d.srv.Serve(ln)
	if !errors.Is(serveErr, net.ErrClosed) {
		return serveErr
	}
	if d.cfg.statePath == "" {
		return nil
	}
	f, err := os.Create(d.cfg.statePath)
	if err == nil {
		err = d.srv.SaveState(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fmt.Errorf("saving chip state: %w", err)
	}
	fmt.Printf("medad: chip state saved to %s\n", d.cfg.statePath)
	return nil
}
