// Command medad hosts a simulated MEDA biochip on a TCP socket, speaking the
// newline-delimited JSON protocol of internal/device — the cyber-physical
// interface between a routing controller and the chip (Fig. 13/14). Any
// controller can dispense droplets, issue one microfluidic action per
// operational cycle, and read back the 2-bit health matrix while the chip
// degrades underneath it.
//
//	medad -listen 127.0.0.1:7070 -seed 7 -faults clustered
//
// Try it with netcat:
//
//	$ echo '{"op":"info"}' | nc 127.0.0.1 7070
//	{"ok":true,"w":60,"h":30,"bits":2}
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"

	"meda"
	"meda/internal/chip"
	"meda/internal/device"
	"meda/internal/randx"
	"meda/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP address to listen on")
	seed := flag.Uint64("seed", 2021, "chip seed")
	faults := flag.String("faults", "none", "fault injection: none, uniform, clustered")
	fraction := flag.Float64("fraction", 0.12, "fraction of faulty microelectrodes")
	state := flag.String("state", "", "chip state file: loaded at start if present, saved on interrupt (wear persists)")
	httpAddr := flag.String("http", "127.0.0.1:7071", "debug HTTP address serving /metrics and /debug/pprof/ (empty disables)")
	flag.Parse()

	cfg := meda.DefaultChipConfig()
	switch *faults {
	case "none":
	case "uniform":
		cfg.Faults = meda.FaultPlan{Mode: meda.FaultUniform, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	case "clustered":
		cfg.Faults = meda.FaultPlan{Mode: meda.FaultClustered, Fraction: *fraction, FailAfterLo: 10, FailAfterHi: 120}
	default:
		fmt.Fprintln(os.Stderr, "medad: -faults must be none, uniform, or clustered")
		os.Exit(2)
	}
	src := randx.New(*seed)
	var c *chip.Chip
	var err error
	if *state != "" {
		if f, ferr := os.Open(*state); ferr == nil {
			c, err = chip.LoadState(f)
			//lint:ignore errflowstrict close error on a read-only file is meaningless once LoadState decided
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "medad: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("medad: restored worn chip from %s\n", *state)
		}
	}
	if c == nil {
		c, err = chip.New(cfg, src.Split("chip"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "medad: %v\n", err)
			os.Exit(1)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medad: %v\n", err)
		os.Exit(1)
	}
	if *state != "" {
		// Persist the chip's wear on interrupt, like powering down real
		// hardware. The handler only closes the listener; the save itself
		// happens below, after Serve returns, through the device lock —
		// never on a goroutine racing the connection handlers (see the
		// medalint chipaccess analyzer).
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			if err := ln.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "medad: closing listener: %v\n", err)
			}
		}()
	}
	if *httpAddr != "" {
		// Observability sidecar: expvar-style metrics plus the stdlib
		// profiler, on a dedicated mux so the device protocol port stays
		// JSON-only. Registered by hand rather than via the pprof package's
		// DefaultServeMux side effects.
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		hln, herr := net.Listen("tcp", *httpAddr)
		if herr != nil {
			fmt.Fprintf(os.Stderr, "medad: debug http: %v\n", herr)
			os.Exit(1)
		}
		fmt.Printf("medad: metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n",
			hln.Addr(), hln.Addr())
		go func() {
			if err := http.Serve(hln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "medad: debug http: %v\n", err)
			}
		}()
		defer hln.Close()
	}
	fmt.Printf("medad: %d×%d biochip (seed %d, faults %s) listening on %s\n",
		cfg.W, cfg.H, *seed, *faults, ln.Addr())
	srv := device.NewServer(c, src.Split("nature"))
	serveErr := srv.Serve(ln)
	if *state != "" && errors.Is(serveErr, net.ErrClosed) {
		f, err := os.Create(*state)
		if err == nil {
			err = srv.SaveState(f)
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "medad: saving state: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("medad: chip state saved to %s\n", *state)
		return
	}
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "medad: %v\n", serveErr)
		os.Exit(1)
	}
}
