// Command medad is the MEDA biochip daemon. It serves two independent
// front ends, either or both:
//
//   - Device-protocol mode (-listen): one simulated chip on a TCP socket
//     speaking the newline-delimited JSON protocol of internal/device. Any
//     controller can dispense droplets, issue one microfluidic action per
//     operational cycle, and read back the 2-bit health matrix while the
//     chip degrades underneath it.
//
//   - Fleet-service mode (-api): a multi-tenant REST + WebSocket service
//     (internal/serve) multiplexing many chips and assay jobs over the
//     synthesis/scheduling/simulation stack, with durable
//     snapshot-plus-journal persistence under -data.
//
//     medad -listen 127.0.0.1:7070 -seed 7 -faults clustered
//     medad -api 127.0.0.1:7080 -data /var/lib/medad -listen ""
//
// Try the device protocol with netcat:
//
//	$ echo '{"op":"info"}' | nc 127.0.0.1 7070
//	{"ok":true,"w":60,"h":30,"bits":2}
//
// SIGINT or SIGTERM drains everything gracefully: the device listener
// closes and chip wear is saved (-state), the fleet finishes in-flight
// checkpoints, snapshots, and closes event streams with a proper
// WebSocket handshake. Every shutdown error is reported and makes the
// exit status non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"meda/internal/serve"
	"meda/internal/telemetry"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "medad: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "medad: %v\n", err)
		os.Exit(1)
	}
}

// shutdownTimeout bounds the graceful drain after SIGINT/SIGTERM.
const shutdownTimeout = 30 * time.Second

// run wires the configured modes together and blocks until a signal
// arrives, then drains everything and joins every error seen on the way
// down.
func run(cfg config) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	if cfg.httpAddr != "" {
		hln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("debug http: %w", err)
		}
		defer func() {
			if cerr := hln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "medad: closing debug listener: %v\n", cerr)
			}
		}()
		fmt.Printf("medad: metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n",
			hln.Addr(), hln.Addr())
		go func() {
			if err := http.Serve(hln, debugMux()); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "medad: debug http: %v\n", err)
			}
		}()
	}

	var apiSrv *serve.Server
	if cfg.apiAddr != "" {
		var err error
		apiSrv, err = serve.NewServer(serve.Config{
			DataDir:         cfg.dataDir,
			MaxConcurrent:   cfg.maxConcurrent,
			CheckpointEvery: cfg.checkpointEvery,
			SnapshotEvery:   cfg.snapshotEvery,
		})
		if err != nil {
			return fmt.Errorf("fleet service: %w", err)
		}
		aln, err := net.Listen("tcp", cfg.apiAddr)
		if err != nil {
			return fmt.Errorf("fleet service: %w", err)
		}
		h := apiSrv.Fleet.Healthz()
		fmt.Printf("medad: fleet service on http://%s/api/v1 (%d tenants, %d chips restored)\n",
			aln.Addr(), h.Tenants, h.Chips)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := apiSrv.Serve(aln); err != nil {
				errCh <- fmt.Errorf("fleet service: %w", err)
			}
		}()
	}

	var devLn net.Listener
	if cfg.listenAddr != "" {
		dev, err := newDeviceMode(cfg)
		if err != nil {
			return err
		}
		devLn, err = net.Listen("tcp", cfg.listenAddr)
		if err != nil {
			return err
		}
		fmt.Printf("medad: %d×%d biochip (seed %d, faults %s) listening on %s\n",
			cfg.chipCfg.W, cfg.chipCfg.H, cfg.seed, cfg.faults, devLn.Addr())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := dev.serve(devLn); err != nil {
				errCh <- fmt.Errorf("device server: %w", err)
			}
		}()
	}

	<-sig
	fmt.Println("medad: shutting down")
	if devLn != nil {
		if err := devLn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errCh <- fmt.Errorf("closing device listener: %w", err)
		}
	}
	if apiSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		if err := apiSrv.Shutdown(ctx); err != nil {
			errCh <- fmt.Errorf("fleet shutdown: %w", err)
		}
		cancel()
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// debugMux is the observability sidecar: expvar-style metrics plus the
// stdlib profiler, on a dedicated mux so the service ports stay clean.
// Registered by hand rather than via the pprof package's DefaultServeMux
// side effects.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
