// Command benchdiff compares two medabench reports (BENCH_synthesis.json)
// and gates on ns/op regressions: benchmarks slower than the warn threshold
// are reported, and any benchmark slower than the fail threshold makes the
// command exit nonzero. CI runs it against the committed baseline on every
// pull request — warn-only inside the noise band of shared runners, hard
// failure on step-change regressions.
//
//	benchdiff -base BENCH_synthesis.json -new /tmp/bench.json
//	benchdiff -base BENCH_synthesis.json -new /tmp/bench.json -warn 0.25 -fail 2.0 -out diff.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type report struct {
	Benchmarks []struct {
		Name     string  `json:"name"`
		NsPerOp  float64 `json:"ns_per_op"`
		BytesOp  int64   `json:"bytes_per_op"`
		AllocsOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}

// run is the testable body of main: it returns the process exit code
// (0 = within tolerance or warn-only, 1 = hard regression, 2 = usage or
// input error).
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	base := fs.String("base", "BENCH_synthesis.json", "baseline report (committed)")
	next := fs.String("new", "", "candidate report to compare against the baseline")
	warn := fs.Float64("warn", 0.25, "warn when ns/op regresses by more than this fraction")
	fail := fs.Float64("fail", 2.0, "fail when ns/op regresses to more than this multiple of the baseline")
	outFile := fs.String("out", "", "also write the comparison to this file (CI artifact)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *next == "" {
		fmt.Fprintln(errw, "benchdiff: -new is required")
		return 2
	}
	baseRep, err := readReport(*base)
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: %v\n", err)
		return 2
	}
	newRep, err := readReport(*next)
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: %v\n", err)
		return 2
	}

	baseline := make(map[string]float64, len(baseRep.Benchmarks))
	for _, b := range baseRep.Benchmarks {
		baseline[b.Name] = b.NsPerOp
	}

	writers := []io.Writer{out}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(errw, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	names := make([]string, 0, len(newRep.Benchmarks))
	ratios := make(map[string]float64, len(newRep.Benchmarks))
	news := make(map[string]float64, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		names = append(names, b.Name)
		news[b.Name] = b.NsPerOp
		if old, ok := baseline[b.Name]; ok && old > 0 {
			ratios[b.Name] = b.NsPerOp / old
		}
	}
	sort.Strings(names)

	warned, failed := 0, 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "ratio")
	for _, name := range names {
		ratio, ok := ratios[name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s  (no baseline)\n", name, "-", news[name], "-")
			continue
		}
		status := ""
		switch {
		case ratio > *fail:
			status = "  FAIL"
			failed++
		case ratio > 1+*warn:
			status = "  WARN"
			warned++
		case ratio < 1/(1+*warn):
			status = "  improved"
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %7.2fx%s\n", name, baseline[name], news[name], ratio, status)
	}
	for name := range baseline {
		if _, ok := news[name]; !ok {
			fmt.Fprintf(w, "%-40s  missing from new report\n", name)
			warned++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks, %d warnings (> +%.0f%%), %d failures (> %.1fx)\n",
		len(names), warned, *warn*100, failed, *fail)
	if failed > 0 {
		fmt.Fprintf(errw, "benchdiff: %d benchmark(s) regressed beyond %.1fx\n", failed, *fail)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
