// Command benchdiff compares two medabench reports (BENCH_synthesis.json)
// and gates on ns/op and allocs/op regressions: benchmarks beyond the warn
// threshold are reported, and any benchmark beyond the fail threshold makes
// the command exit nonzero. CI runs it against the committed baseline on
// every pull request — warn-only inside the noise band of shared runners,
// hard failure on step-change regressions. Alloc gating additionally
// requires the regression to add more than a handful of allocations per op,
// so a fixed cost growing from 1 to 2 allocs does not trip the 2x gate.
//
//	benchdiff -base BENCH_synthesis.json -new /tmp/bench.json
//	benchdiff -base BENCH_synthesis.json -new /tmp/bench.json -warn 0.25 -fail 2.0 -out diff.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type report struct {
	Benchmarks []struct {
		Name     string  `json:"name"`
		NsPerOp  float64 `json:"ns_per_op"`
		BytesOp  int64   `json:"bytes_per_op"`
		AllocsOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return r, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return r, nil
}

// run is the testable body of main: it returns the process exit code
// (0 = within tolerance or warn-only, 1 = hard regression, 2 = usage or
// input error).
func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	base := fs.String("base", "BENCH_synthesis.json", "baseline report (committed)")
	next := fs.String("new", "", "candidate report to compare against the baseline")
	warn := fs.Float64("warn", 0.25, "warn when ns/op or allocs/op regresses by more than this fraction")
	fail := fs.Float64("fail", 2.0, "fail when ns/op or allocs/op regresses to more than this multiple of the baseline")
	outFile := fs.String("out", "", "also write the comparison to this file (CI artifact)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *next == "" {
		fmt.Fprintln(errw, "benchdiff: -new is required")
		return 2
	}
	baseRep, err := readReport(*base)
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: %v\n", err)
		return 2
	}
	newRep, err := readReport(*next)
	if err != nil {
		fmt.Fprintf(errw, "benchdiff: %v\n", err)
		return 2
	}

	type row struct {
		ns     float64
		allocs int64
	}
	baseline := make(map[string]row, len(baseRep.Benchmarks))
	for _, b := range baseRep.Benchmarks {
		baseline[b.Name] = row{ns: b.NsPerOp, allocs: b.AllocsOp}
	}

	writers := []io.Writer{out}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(errw, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	names := make([]string, 0, len(newRep.Benchmarks))
	news := make(map[string]row, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		names = append(names, b.Name)
		news[b.Name] = row{ns: b.NsPerOp, allocs: b.AllocsOp}
	}
	sort.Strings(names)

	// A fixed cost of a few allocations doubling is not a regression worth
	// failing CI over; alloc ratios only gate when the absolute increase
	// exceeds this slack.
	const allocSlack = 8

	warned, failed := 0, 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "ratio", "base allocs", "new allocs", "ratio")
	for _, name := range names {
		nb := news[name]
		ob, ok := baseline[name]
		if !ok || ob.ns <= 0 {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s %12s %12d %8s  (no baseline)\n",
				name, "-", nb.ns, "-", "-", nb.allocs, "-")
			continue
		}
		nsRatio := nb.ns / ob.ns
		allocRatio := 1.0
		if ob.allocs > 0 {
			allocRatio = float64(nb.allocs) / float64(ob.allocs)
		} else if nb.allocs > allocSlack {
			allocRatio = float64(nb.allocs) // 0 → n allocs: treat n as the ratio
		}
		allocDelta := nb.allocs - ob.allocs
		status := ""
		switch {
		case nsRatio > *fail,
			allocRatio > *fail && allocDelta > allocSlack:
			status = "  FAIL"
			failed++
		case nsRatio > 1+*warn,
			allocRatio > 1+*warn && allocDelta > allocSlack:
			status = "  WARN"
			warned++
		case nsRatio < 1/(1+*warn):
			status = "  improved"
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %7.2fx %12d %12d %7.2fx%s\n",
			name, ob.ns, nb.ns, nsRatio, ob.allocs, nb.allocs, allocRatio, status)
	}
	for name := range baseline {
		if _, ok := news[name]; !ok {
			fmt.Fprintf(w, "%-40s  missing from new report\n", name)
			warned++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks, %d warnings (> +%.0f%%), %d failures (> %.1fx ns/op or allocs/op)\n",
		len(names), warned, *warn*100, failed, *fail)
	if failed > 0 {
		fmt.Fprintf(errw, "benchdiff: %d benchmark(s) regressed beyond %.1fx\n", failed, *fail)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
