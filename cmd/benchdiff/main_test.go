package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestWithinToleranceExitsZero: runs inside the ±25% band pass; 10–28%
// swings report as warnings (or improvements) without failing.
func TestWithinToleranceExitsZero(t *testing.T) {
	code, out, errw := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/ok.json")
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errw)
	}
	if !strings.Contains(out, "WARN") {
		t.Errorf("a +28%% run should warn; output:\n%s", out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("a -22%% run should report improved; output:\n%s", out)
	}
	if !strings.Contains(out, "0 failures") {
		t.Errorf("want 0 failures; output:\n%s", out)
	}
}

// TestTwoXRegressionExitsNonzero is the acceptance fixture: a synthetic 2x+
// regression must make benchdiff exit nonzero.
func TestTwoXRegressionExitsNonzero(t *testing.T) {
	code, out, errw := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/regress2x.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("regressed benchmark not marked FAIL; output:\n%s", out)
	}
	if !strings.Contains(errw, "regressed beyond") {
		t.Errorf("stderr missing regression summary: %s", errw)
	}
}

// TestAllocRegressionFails: allocs_per_op regressing past the fail multiple
// (with real absolute growth) fails even when ns/op is flat, while a small
// absolute bump on a tiny baseline (20 → 26 allocs, 1.3x) stays inside the
// alloc slack and is not flagged.
func TestAllocRegressionFails(t *testing.T) {
	code, out, errw := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/allocregress.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s\nstdout:\n%s", code, errw, out)
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "10x10") && !strings.Contains(line, "FAIL"):
			t.Errorf("2.6x alloc regression not marked FAIL: %s", line)
		case strings.Contains(line, "gauss-seidel") &&
			(strings.Contains(line, "FAIL") || strings.Contains(line, "WARN")):
			t.Errorf("+6 allocs on a 20-alloc baseline should stay inside the slack: %s", line)
		}
	}
}

// TestFailThresholdAdjustable: the same fixture passes with a loose -fail.
func TestFailThresholdAdjustable(t *testing.T) {
	code, _, _ := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/regress2x.json", "-fail", "3.0")
	if code != 0 {
		t.Fatalf("exit %d with -fail 3.0, want 0 (2.17x < 3x)", code)
	}
}

// TestIdenticalReportsClean: comparing a report against itself neither
// warns nor fails.
func TestIdenticalReportsClean(t *testing.T) {
	code, out, _ := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/base.json")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out, "0 warnings") || !strings.Contains(out, "0 failures") {
		t.Errorf("self-comparison not clean:\n%s", out)
	}
}

// TestOutArtifact: -out writes the same comparison to a file for CI upload.
func TestOutArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diff.txt")
	code, out, _ := runDiff(t,
		"-base", "testdata/base.json", "-new", "testdata/ok.json", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Error("artifact file differs from stdout")
	}
}

// TestUsageErrors: missing -new, unreadable files, and empty reports exit 2.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runDiff(t, "-base", "testdata/base.json"); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
	if code, _, _ := runDiff(t, "-base", "testdata/base.json", "-new", "testdata/nope.json"); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runDiff(t, "-base", "testdata/base.json", "-new", empty); code != 2 {
		t.Errorf("empty report: exit %d, want 2", code)
	}
}

// TestMissingAndNewBenchmarks: disappeared baselines warn; new benchmarks
// report without a ratio.
func TestMissingAndNewBenchmarks(t *testing.T) {
	next := filepath.Join(t.TempDir(), "new.json")
	content := `{"benchmarks":[
		{"name":"table_v_synthesis/10x10","iterations":1,"ns_per_op":300000,"bytes_per_op":1,"allocs_per_op":1},
		{"name":"brand_new/bench","iterations":1,"ns_per_op":100,"bytes_per_op":1,"allocs_per_op":1}]}`
	if err := os.WriteFile(next, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runDiff(t, "-base", "testdata/base.json", "-new", next)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (missing baselines warn, not fail)", code)
	}
	if !strings.Contains(out, "no baseline") {
		t.Errorf("new benchmark not reported; output:\n%s", out)
	}
	if !strings.Contains(out, "missing from new report") {
		t.Errorf("disappeared benchmark not reported; output:\n%s", out)
	}
}
