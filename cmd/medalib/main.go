// Command medalib manages offline strategy libraries (Alg. 3): it
// pre-synthesizes healthy-chip routing strategies for a bioassay's routing
// jobs and saves them as JSON, and it can inspect an existing library.
//
//	medalib -assay serial-dilution -o serial-dilution.lib.json
//	medalib -inspect serial-dilution.lib.json
package main

import (
	"flag"
	"fmt"
	"os"

	"meda"
	"meda/internal/assay"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/synth"
)

var benchmarks = map[string]assay.Benchmark{
	"master-mix":      assay.MasterMix,
	"cep":             assay.CEP,
	"serial-dilution": assay.SerialDilution,
	"nuip":            assay.NuIP,
	"covid-rat":       assay.CovidRAT,
	"covid-pcr":       assay.CovidPCR,
	"chip":            assay.ChIP,
	"in-vitro":        assay.InVitro,
	"gene-expression": assay.GeneExpression,
	"protein":         assay.Protein,
	"pcr-mix":         assay.PCRMix,
}

func main() {
	assayName := flag.String("assay", "", "bioassay to pre-synthesize strategies for")
	out := flag.String("o", "", "output library file (default: <assay>.lib.json)")
	area := flag.Int("area", 16, "dispensed droplet area")
	inspect := flag.String("inspect", "", "print a summary of an existing library file")
	flag.Parse()

	if *inspect != "" {
		if err := inspectLib(*inspect); err != nil {
			fmt.Fprintf(os.Stderr, "medalib: %v\n", err)
			os.Exit(1)
		}
		return
	}
	bench, ok := benchmarks[*assayName]
	if !ok {
		fmt.Fprintln(os.Stderr, "medalib: -assay must name a benchmark bioassay (or use -inspect)")
		os.Exit(2)
	}
	cfg := meda.DefaultChipConfig()
	plan, err := route.Compile(bench.Build(assay.Layout{W: cfg.W, H: cfg.H}, *area), cfg.W, cfg.H)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medalib: %v\n", err)
		os.Exit(1)
	}
	lib := sched.NewLibrary()
	added, err := lib.Presynthesize(plan, synth.DefaultOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "medalib: %v\n", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *assayName + ".lib.json"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medalib: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := lib.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "medalib: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pre-synthesized %d strategies for %s (%d routing jobs) → %s\n",
		added, bench, plan.TotalJobs(), path)
}

func inspectLib(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	lib := sched.NewLibrary()
	if err := lib.Load(f); err != nil {
		return err
	}
	_, _, size := lib.Stats()
	fmt.Printf("%s: %d pre-synthesized strategies\n", path, size)
	return nil
}
