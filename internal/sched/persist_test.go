package sched

import (
	"bytes"
	"strings"
	"testing"

	"meda/internal/assay"
	"meda/internal/route"
	"meda/internal/synth"
)

func TestLibrarySaveLoadRoundTrip(t *testing.T) {
	lib := NewLibrary()
	healthy := func(x, y int) float64 { return 1 }
	jobs := []route.RJ{
		job(),
		{Start: rect(1, 1, 4, 4), Goal: rect(10, 1, 13, 4), Hazard: rect(1, 1, 16, 7)},
	}
	for _, rj := range jobs {
		res, err := synth.Synthesize(rj, healthy, synth.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		lib.Store(rj, res.Policy, res.Value)
	}

	var buf bytes.Buffer
	if err := lib.Save(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := NewLibrary()
	if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, rj := range jobs {
		p1, v1, ok1 := lib.Lookup(rj)
		p2, v2, ok2 := loaded.Lookup(rj)
		if !ok1 || !ok2 {
			t.Fatalf("lookup failed: %v %v", ok1, ok2)
		}
		if v1 != v2 || len(p1) != len(p2) {
			t.Fatalf("entry mismatch: %v/%d vs %v/%d", v1, len(p1), v2, len(p2))
		}
		for d, a := range p1 {
			if p2[d] != a {
				t.Fatalf("policy mismatch at %v", d)
			}
		}
	}
}

func TestLibrarySaveDeterministic(t *testing.T) {
	build := func() string {
		lib := NewLibrary()
		healthy := func(x, y int) float64 { return 1 }
		for _, rj := range []route.RJ{
			job(),
			{Start: rect(2, 2, 4, 4), Goal: rect(8, 8, 10, 10), Hazard: rect(1, 1, 12, 12)},
		} {
			res, err := synth.Synthesize(rj, healthy, synth.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			lib.Store(rj, res.Policy, res.Value)
		}
		var buf bytes.Buffer
		if err := lib.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Error("library serialization not deterministic")
	}
}

func TestLibraryLoadRejectsGarbage(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := lib.Load(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Error("unknown version accepted")
	}
	bad := `{"version":1,"entries":[{"start":[1,1,2,2],"goal":[3,3,4,4],"hazard":[1,1,6,6],
		"value":1,"policy":[{"d":[1,1,2,2],"a":250}]}]}`
	if err := lib.Load(strings.NewReader(bad)); err == nil {
		t.Error("invalid action id accepted")
	}
}

func TestPresynthesize(t *testing.T) {
	lib := NewLibrary()
	a := assay.MasterMix.Build(assay.Layout{W: 60, H: 30}, 16)
	plan, err := route.Compile(a, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	added, err := lib.Presynthesize(plan, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("nothing pre-synthesized")
	}
	_, _, size := lib.Stats()
	if size != added {
		t.Errorf("size %d != added %d", size, added)
	}
	// Every job of the plan now hits the library.
	for i := range plan.MOs {
		for _, rj := range plan.MOs[i].Jobs {
			rj = synth.NormalizeDispense(rj, 60, 30)
			if _, _, ok := lib.Lookup(rj); !ok {
				t.Errorf("job %s missing after pre-synthesis", rj.Name())
			}
		}
	}
	// Idempotent: a second pass adds nothing.
	again, err := lib.Presynthesize(plan, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second pass added %d entries", again)
	}
}
