package sched

import (
	"errors"
	"sync"
	"testing"

	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/synth"
)

// TestConcurrentCacheStress hammers the strategy cache and the prefetch
// pool from background goroutines while the main goroutine routes, degrades
// the chip, and invalidates — the exact interleaving the parallel adaptive
// router sees when health goes dirty mid-assay. Its job is to give the race
// detector (go test -race, the CI race step) something to chew on: every
// Cache method, InvalidateRegion, Prefetch completion, and the pool
// counters run concurrently.
//
// Live chip state is read and mutated only on the main goroutine (the
// medalint chipaccess rule); the background goroutines confine themselves
// to the cache and pool, which are the components documented as
// goroutine-safe.
func TestConcurrentCacheStress(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.5, Tau2: 0.9, C1: 200, C2: 500}
	c, err := chip.New(cfg, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	hazard := rect(5, 5, 15, 12)
	// Wear the region past fully-healthy so Route takes the health-keyed
	// cache path instead of the library fast path.
	for i := 0; i < 3000; i++ {
		c.Actuate(hazard)
	}
	top := 1<<uint(c.HealthBits()) - 1
	if c.MinHealth(hazard) == top {
		t.Fatal("region still fully healthy; stress would only exercise the library path")
	}

	a := NewAdaptiveParallel(4, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pol := synth.Policy{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := CacheKey{
					Start:  rect(g+1, 1, g+3, 3),
					Goal:   rect(25, 20, 27, 22),
					Hazard: rect(g+1, 1, 27, 22),
					Opts:   uint64(g),
					Health: uint64(i % 7),
				}
				a.Cache.Store(key, pol, 1)
				a.Cache.Lookup(key)
				a.Cache.Contains(key)
				if i%5 == 0 {
					a.InvalidateRegion(rect(1, 1, 15, 15))
				}
				a.Cache.Len()
				a.Cache.Stats()
				a.PrefetchSyntheses()
			}
		}(g)
	}

	jobs := []route.RJ{
		{Start: rect(6, 6, 8, 8), Goal: rect(12, 9, 14, 11), Hazard: hazard},
		{Start: rect(6, 9, 8, 11), Goal: rect(12, 6, 14, 8), Hazard: hazard},
		{Start: rect(9, 6, 11, 8), Goal: rect(6, 9, 8, 11), Hazard: hazard},
	}
	for i := 0; i < 12; i++ {
		rj := jobs[i%len(jobs)]
		if _, _, err := a.Route(rj, c, nil); err != nil {
			t.Fatal(err)
		}
		a.Prefetch(jobs[(i+1)%len(jobs)], c)
		if i%4 == 3 {
			// Health goes dirty: the hash under every cached key changes,
			// and the eager invalidation races the background lookups.
			c.Actuate(hazard)
			a.InvalidateRegion(hazard)
		}
	}
	close(stop)
	wg.Wait()
	a.Drain()

	st := a.Cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("stress run never touched the cache")
	}
	if st.Invalidations == 0 {
		t.Error("stress run never invalidated")
	}
	// Each health change rekeys the jobs, forcing re-synthesis: there must
	// have been strictly more syntheses (online + prefetch) than distinct
	// jobs.
	if total := a.Syntheses + a.PrefetchSyntheses(); total <= len(jobs) {
		t.Errorf("syntheses = %d, want > %d (health changes must force re-synthesis)",
			total, len(jobs))
	}
}

// TestConcurrentRouteSingleFlight: the concurrent executor may route several
// jobs at once, so Route must be callable from multiple goroutines — the
// effectiveness counters must not race (the -race CI step watches this test)
// and identical concurrent requests must coalesce into exactly one synthesis
// via the pending map, not one per caller.
func TestConcurrentRouteSingleFlight(t *testing.T) {
	a := NewAdaptiveParallel(4, 32)
	rj := route.RJ{
		Start:  rect(2, 2, 5, 5),
		Goal:   rect(12, 8, 15, 11),
		Hazard: rect(1, 1, 18, 14),
	}
	const routers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, routers)
	for g := 0; g < routers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// chip.Chip is unsynchronized, so every router goroutine builds
			// its own identically seeded instance; the shared state under
			// stress is the Adaptive router itself.
			c, err := chip.New(chip.Default(), randx.New(99))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < rounds; i++ {
				p, _, err := a.Route(rj, c, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(p) == 0 {
					errs <- errors.New("Route returned an empty policy")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.Syntheses != 1 {
		t.Errorf("%d routers × %d rounds ran %d syntheses, want exactly 1 (single-flight)",
			routers, rounds, a.Syntheses)
	}
	if want := routers*rounds - 1; a.LibraryUses != want {
		t.Errorf("library served %d routes, want %d", a.LibraryUses, want)
	}
}
