package sched

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
)

// DefaultCacheSize bounds the strategy cache of NewAdaptive.
const DefaultCacheSize = 256

// CacheKey identifies one synthesized strategy: the job's geometry, a
// fingerprint of the synthesis options (query, action alphabet, solver),
// and the hash of the observed health codes inside the job's hazard bounds.
// Keying on the region's health hash makes the cache exactly as fresh as
// Alg. 3 requires: any degradation inside the region changes the key (a
// miss), while degradation elsewhere on the chip leaves it untouched (a
// hit).
//
// Keys come in two forms. FormRaw keys carry the job's actual chip
// coordinates and the full health hash — one entry per position. FormCanon
// keys carry the D4-canonical geometry (synth.Canonicalize) and the
// window's uniform health code — one entry per *shape*, shared by every
// translated, rotated, or reflected image of the job anywhere on the chip.
// The two namespaces never collide: Form participates in equality and Hash.
type CacheKey struct {
	Start, Goal, Hazard geom.Rect
	Opts                uint64
	Health              uint64
	Form                uint8
}

// CacheKey forms.
const (
	// FormRaw keys on the job's actual position and the region's exact
	// health hash.
	FormRaw uint8 = iota
	// FormCanon keys on the D4-canonical geometry and a uniform health
	// code; valid only for jobs whose window health is uniform.
	FormCanon
)

// NewCacheKey builds the raw-form key for a job under the given options and
// region health hash (typically chip.HealthHash(rj.Hazard)). The rj must
// already be dispense-normalized. Obstacle lists are deliberately not part
// of the key: obstacles are transient droplet positions, and the router
// bypasses the cache whenever they are present.
//
//meda:deterministic
func NewCacheKey(rj route.RJ, opt synth.Options, health uint64) CacheKey {
	return CacheKey{
		Start:  rj.Start,
		Goal:   rj.Goal,
		Hazard: rj.Hazard,
		Opts:   fingerprintOptions(opt),
		Health: health,
	}
}

// NewCanonicalCacheKey builds the canonical-form key for a job whose hazard
// window reads a uniform health code, returning the key and the transform
// from job coordinates to canonical coordinates (needed to de-canonicalize
// a cached policy on lookup, and to canonicalize a fresh one on store).
//
//meda:deterministic
func NewCanonicalCacheKey(rj route.RJ, opt synth.Options, code int) (CacheKey, synth.Transform) {
	crj, tf := synth.Canonicalize(rj)
	return CacheKey{
		Start:  crj.Start,
		Goal:   crj.Goal,
		Hazard: crj.Hazard,
		Opts:   fingerprintOptions(opt),
		Health: uint64(code),
		Form:   FormCanon,
	}, tf
}

// Hash folds the key into 64 bits — the identity handed to a FaultInjector,
// which must not depend on sched's internal key layout.
//
//meda:deterministic
func (k CacheKey) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, r := range []geom.Rect{k.Start, k.Goal, k.Hazard} {
		word(uint64(uint32(r.XA))<<32 | uint64(uint32(r.YA)))
		word(uint64(uint32(r.XB))<<32 | uint64(uint32(r.YB)))
	}
	word(k.Opts)
	word(k.Health)
	word(uint64(k.Form))
	return h.Sum64()
}

// fingerprintOptions hashes the solver-relevant option fields. Workers and
// Method are excluded: every solver configuration converges to the same
// optimal values, so strategies are interchangeable across them.
func fingerprintOptions(opt synth.Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(opt.Query.String()))
	word(math.Float64bits(opt.Model.MaxAspect))
	word(math.Float64bits(opt.Model.ActionCost))
	flags := uint64(0)
	if opt.Model.AllowMorph {
		flags |= 1
	}
	if opt.Model.AllowDouble {
		flags |= 2
	}
	if opt.Model.AllowOrdinal {
		flags |= 4
	}
	word(flags)
	word(math.Float64bits(opt.Solver.Eps))
	word(uint64(opt.Solver.MaxIter))
	return h.Sum64()
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations int
}

type cacheEntry struct {
	key    CacheKey
	policy synth.Policy
	value  float64
}

// Cache memoizes synthesized routing strategies with LRU eviction under a
// size bound. It is safe for concurrent use: the router's synchronous path
// and the prefetch workers share one instance.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[CacheKey]*list.Element
	stats   CacheStats
}

// NewCache returns a cache holding at most size strategies; size <= 0 means
// DefaultCacheSize.
func NewCache(size int) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache{cap: size, ll: list.New(), entries: make(map[CacheKey]*list.Element)}
}

// Lookup returns the cached strategy for key, marking it most recently
// used. It unlocks explicitly rather than by defer: every routing job
// probes the cache, so the body stays on the hotalloc zero-overhead path.
//
//meda:hotpath
func (c *Cache) Lookup(key CacheKey) (synth.Policy, float64, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		telCacheMisses.Inc()
		return nil, 0, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	policy, value := e.policy, e.value
	c.mu.Unlock()
	telCacheHits.Inc()
	return policy, value, true
}

// Contains reports whether key is cached without touching recency or stats.
func (c *Cache) Contains(key CacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Store inserts (or refreshes) a strategy, evicting the least recently used
// entry when the bound is exceeded.
func (c *Cache) Store(key CacheKey, p synth.Policy, value float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.policy, e.value = p, value
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, policy: p, value: value})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
		telCacheEvictions.Inc()
	}
}

// Invalidate drops every raw-form entry whose hazard region intersects the
// degraded region, returning how many were removed. Because keys already
// embed the region's health hash, stale entries can never be served;
// Invalidate exists to reclaim their space eagerly when the caller knows
// which microelectrodes degraded. Canonical-form entries are position-
// agnostic — their hazard rects live in canonical space and the entry
// remains valid for every other same-shape window on the chip — so they are
// left in place.
func (c *Cache) Invalidate(region geom.Rect) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if _, hit := e.key.Hazard.Intersect(region); hit && e.key.Form == FormRaw {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			removed++
		}
		el = next
	}
	c.stats.Invalidations += removed
	telCacheInvalidations.Add(int64(removed))
	return removed
}

// Len returns the number of cached strategies.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
