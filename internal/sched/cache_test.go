package sched

import (
	"testing"

	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/synth"
)

func wornChip(t *testing.T, seed uint64) *chip.Chip {
	t.Helper()
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	c, err := chip.New(cfg, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	// Wear the standard job's region so the router takes the cache path.
	for i := 0; i < 60; i++ {
		c.Actuate(rect(14, 9, 17, 13))
	}
	return c
}

func TestCacheHitOnUnchangedHealth(t *testing.T) {
	c := wornChip(t, 1)
	cache := NewCache(8)
	opt := synth.DefaultOptions()
	key := NewCacheKey(job(), opt, c.HealthHash(job().Hazard))
	cache.Store(key, tinyPolicy(), 9)
	// Nothing happened to the chip: same key, same entry.
	p, v, ok := cache.Lookup(NewCacheKey(job(), opt, c.HealthHash(job().Hazard)))
	if !ok || v != 9 || len(p) != 1 {
		t.Fatalf("lookup = %v/%v/%v, want hit", p, v, ok)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheMissAfterDegradationInsideRegion(t *testing.T) {
	c := wornChip(t, 2)
	cache := NewCache(8)
	opt := synth.DefaultOptions()
	cache.Store(NewCacheKey(job(), opt, c.HealthHash(job().Hazard)), tinyPolicy(), 9)
	// Degrade a pristine corner inside the hazard bounds.
	for i := 0; i < 60; i++ {
		c.Actuate(rect(8, 8, 10, 10))
	}
	if _, _, ok := cache.Lookup(NewCacheKey(job(), opt, c.HealthHash(job().Hazard))); ok {
		t.Fatal("hit despite degradation inside the job's region")
	}
}

func TestCacheHitAfterDegradationOutsideRegion(t *testing.T) {
	c := wornChip(t, 3)
	cache := NewCache(8)
	opt := synth.DefaultOptions()
	cache.Store(NewCacheKey(job(), opt, c.HealthHash(job().Hazard)), tinyPolicy(), 9)
	// Degrade heavily, but far from the job's hazard bounds (which end at
	// x=25): the health hash of the region is untouched.
	for i := 0; i < 500; i++ {
		c.Actuate(rect(40, 5, 55, 25))
	}
	if _, _, ok := cache.Lookup(NewCacheKey(job(), opt, c.HealthHash(job().Hazard))); !ok {
		t.Fatal("miss despite degradation being outside the job's region")
	}
}

func TestCacheEvictionUnderSizeBound(t *testing.T) {
	cache := NewCache(3)
	opt := synth.DefaultOptions()
	keyN := func(n int) CacheKey {
		rj := job()
		rj.Start = rj.Start.Translate(0, n)
		return NewCacheKey(rj, opt, 7)
	}
	for n := 0; n < 5; n++ {
		cache.Store(keyN(n), tinyPolicy(), float64(n))
	}
	if cache.Len() != 3 {
		t.Fatalf("len = %d, want 3", cache.Len())
	}
	if s := cache.Stats(); s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	// The two oldest entries (0, 1) are gone; the newest three remain.
	for n := 0; n < 2; n++ {
		if _, _, ok := cache.Lookup(keyN(n)); ok {
			t.Errorf("entry %d survived eviction", n)
		}
	}
	for n := 2; n < 5; n++ {
		if _, _, ok := cache.Lookup(keyN(n)); !ok {
			t.Errorf("entry %d evicted too early", n)
		}
	}
	// Recency matters: touching entry 2 makes 3 the eviction victim.
	cache.Lookup(keyN(2))
	cache.Store(keyN(5), tinyPolicy(), 5)
	if _, _, ok := cache.Lookup(keyN(3)); ok {
		t.Error("LRU victim should have been entry 3")
	}
	if _, _, ok := cache.Lookup(keyN(2)); !ok {
		t.Error("recently used entry 2 must survive")
	}
}

func TestCacheInvalidateByRegion(t *testing.T) {
	cache := NewCache(8)
	opt := synth.DefaultOptions()
	near := job() // hazard (7,7)-(25,15)
	far := job()
	far.Start = far.Start.Translate(30, 10)
	far.Goal = far.Goal.Translate(30, 10)
	far.Hazard = far.Hazard.Translate(30, 10)
	cache.Store(NewCacheKey(near, opt, 1), tinyPolicy(), 1)
	cache.Store(NewCacheKey(far, opt, 2), tinyPolicy(), 2)
	if n := cache.Invalidate(rect(20, 10, 22, 12)); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if _, _, ok := cache.Lookup(NewCacheKey(near, opt, 1)); ok {
		t.Error("intersecting entry survived invalidation")
	}
	if _, _, ok := cache.Lookup(NewCacheKey(far, opt, 2)); !ok {
		t.Error("non-intersecting entry was dropped")
	}
}

func TestCacheKeySeparatesOptions(t *testing.T) {
	a := synth.DefaultOptions()
	b := synth.DefaultOptions()
	b.Model.AllowDouble = !b.Model.AllowDouble
	if NewCacheKey(job(), a, 1) == NewCacheKey(job(), b, 1) {
		t.Error("different action alphabets must produce different keys")
	}
	c := synth.DefaultOptions()
	c.Solver.Workers = 4 // solver parallelism must NOT affect the key
	if NewCacheKey(job(), a, 1) != NewCacheKey(job(), c, 1) {
		t.Error("worker count changed the cache key")
	}
}

func TestAdaptivePrefetchWarmsCache(t *testing.T) {
	c := wornChip(t, 4)
	a := NewAdaptiveParallel(2, 16)
	if !a.Prefetch(job(), c) {
		t.Fatal("prefetch refused on an idle pool")
	}
	// A second prefetch of the same job is deduplicated (in flight or
	// already cached).
	if a.Prefetch(job(), c) {
		t.Error("duplicate prefetch accepted")
	}
	a.Drain()
	if a.PrefetchSyntheses() != 1 {
		t.Fatalf("prefetch syntheses = %d, want 1", a.PrefetchSyntheses())
	}
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 0 || a.CacheHits != 1 {
		t.Fatalf("route after prefetch: syntheses=%d cacheHits=%d, want 0/1", a.Syntheses, a.CacheHits)
	}
}

func TestAdaptivePrefetchMatchesSynchronousRoute(t *testing.T) {
	c1 := wornChip(t, 5)
	c2 := wornChip(t, 5)
	warm := NewAdaptiveParallel(2, 16)
	warm.Prefetch(job(), c1)
	warm.Drain()
	pw, vw, err := warm.Route(job(), c1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewAdaptive()
	pc, vc, err := cold.Route(job(), c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vw != vc {
		t.Fatalf("prefetched value %v != synchronous value %v", vw, vc)
	}
	if len(pw) != len(pc) {
		t.Fatalf("prefetched policy size %d != synchronous %d", len(pw), len(pc))
	}
	for d, act := range pc {
		if pw[d] != act {
			t.Fatalf("policies differ at %v: %v vs %v", d, pw[d], act)
		}
	}
}

func TestAdaptivePrefetchHealthyWarmsLibrary(t *testing.T) {
	c := freshChip(t, 6)
	a := NewAdaptiveParallel(2, 16)
	if !a.Prefetch(job(), c) {
		t.Fatal("prefetch refused")
	}
	a.Drain()
	if !a.Lib.Contains(job()) {
		t.Fatal("healthy prefetch did not warm the library")
	}
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 0 || a.LibraryUses != 1 {
		t.Fatalf("route after healthy prefetch: syntheses=%d lib=%d, want 0/1", a.Syntheses, a.LibraryUses)
	}
	// Once warmed, further prefetches of the same job are no-ops.
	if a.Prefetch(job(), c) {
		t.Error("prefetch accepted for an already-warmed job")
	}
}
