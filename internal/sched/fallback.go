package sched

import (
	"sync"

	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
	"meda/internal/telemetry"
)

// DefaultMaxRetries is how many times Fallback re-attempts the primary
// router after a failure before degrading to the final router.
const DefaultMaxRetries = 2

// FallbackStats is a snapshot of the Fallback router's escalation counters.
type FallbackStats struct {
	// Retries counts primary-router re-attempts after a failure.
	Retries int
	// Finals counts routes served by the final router after the primary was
	// exhausted (errors or no strategy).
	Finals int
	// DegradedRoutes counts RouteDegraded calls served directly by the
	// final router.
	DegradedRoutes int
}

// Fallback is the graceful-degradation ladder as a Router: it serves routes
// from Primary (typically the Adaptive router, whose own ladder is library →
// cache → online synthesis), retries the primary up to MaxRetries times on
// failure — which turns an injected synthesis timeout into a fresh draw —
// and finally degrades to Final (typically the health-blind Baseline), which
// always produces *some* strategy on a connected chip. Jobs the simulator
// has marked degraded skip the primary entirely via RouteDegraded. Every
// escalation is recorded in telemetry (sched.fallback.*).
type Fallback struct {
	Primary Router
	Final   Router
	// MaxRetries bounds primary re-attempts per Route call; zero or
	// negative means DefaultMaxRetries.
	MaxRetries int

	mu             sync.Mutex
	retries        int
	finals         int
	degradedRoutes int
}

// NewFallback wires primary with a final-tier router.
func NewFallback(primary, final Router) *Fallback {
	return &Fallback{Primary: primary, Final: final, MaxRetries: DefaultMaxRetries}
}

// Name implements Router.
func (f *Fallback) Name() string { return f.Primary.Name() + "+fallback" }

// HealthAware implements Router: the ladder is as health-aware as its
// primary tier.
func (f *Fallback) HealthAware() bool { return f.Primary.HealthAware() }

func (f *Fallback) maxRetries() int {
	if f.MaxRetries > 0 {
		return f.MaxRetries
	}
	return DefaultMaxRetries
}

// Route implements Router with bounded retries and final-tier degradation.
func (f *Fallback) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	for attempt := 0; ; attempt++ {
		p, v, err := f.Primary.Route(rj, c, obstacles)
		if err == nil && len(p) > 0 {
			if attempt > 0 {
				telFallbackRecov.Inc()
			}
			return p, v, nil
		}
		if err == nil {
			// The primary synthesized successfully and proved no strategy
			// exists under its model (e.g. the health-aware MDP sees the goal
			// as unreachable). Retrying is pointless; the health-blind final
			// tier may still find a physically workable route.
			break
		}
		if attempt >= f.maxRetries() {
			break
		}
		f.mu.Lock()
		f.retries++
		f.mu.Unlock()
		telFallbackRetry.Inc()
	}
	sp := telemetry.StartSpan("sched.fallback.final")
	defer sp.End()
	f.mu.Lock()
	f.finals++
	f.mu.Unlock()
	telFallbackFinal.Inc()
	return f.Final.Route(rj, c, obstacles)
}

// RouteDegraded implements DegradedRouter: a job the simulator no longer
// trusts the primary's model for goes straight to the final tier.
func (f *Fallback) RouteDegraded(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	sp := telemetry.StartSpan("sched.fallback.degraded")
	defer sp.End()
	f.mu.Lock()
	f.degradedRoutes++
	f.mu.Unlock()
	telFallbackDegrad.Inc()
	return f.Final.Route(rj, c, obstacles)
}

// Stats returns a snapshot of the escalation counters.
func (f *Fallback) Stats() FallbackStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FallbackStats{Retries: f.retries, Finals: f.finals, DegradedRoutes: f.degradedRoutes}
}

// SetFaultInjector implements FaultAware by forwarding to the primary tier
// when it is fault-aware; the final tier stays injection-free so the ladder
// always has a working bottom rung.
func (f *Fallback) SetFaultInjector(inj FaultInjector) {
	if fa, ok := f.Primary.(FaultAware); ok {
		fa.SetFaultInjector(inj)
	}
}

// Prefetch implements Prefetcher by forwarding to the primary tier.
func (f *Fallback) Prefetch(rj route.RJ, c *chip.Chip) bool {
	if p, ok := f.Primary.(Prefetcher); ok {
		return p.Prefetch(rj, c)
	}
	return false
}

// Drain implements Prefetcher by forwarding to the primary tier.
func (f *Fallback) Drain() {
	if p, ok := f.Primary.(Prefetcher); ok {
		p.Drain()
	}
}

// InvalidateRegion implements RegionInvalidator by forwarding to the
// primary tier.
func (f *Fallback) InvalidateRegion(region geom.Rect) int {
	if ri, ok := f.Primary.(RegionInvalidator); ok {
		return ri.InvalidateRegion(region)
	}
	return 0
}
