// Offline strategy-library persistence. The hybrid scheduler of Alg. 3
// assumes "a library of pre-synthesized strategies is first created
// offline"; Save and Load make that literal: a library built on one run (or
// by a dedicated pre-synthesis pass) can be serialized and shipped with the
// biochip controller.
package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
)

// libraryFile is the on-disk JSON schema.
type libraryFile struct {
	Version int            `json:"version"`
	Entries []libraryEntry `json:"entries"`
}

type libraryEntry struct {
	Start  [4]int        `json:"start"`
	Goal   [4]int        `json:"goal"`
	Hazard [4]int        `json:"hazard"`
	Value  float64       `json:"value"`
	Policy []policyEntry `json:"policy"`
}

type policyEntry struct {
	Droplet [4]int `json:"d"`
	Action  uint8  `json:"a"`
}

func rectToArr(r geom.Rect) [4]int { return [4]int{r.XA, r.YA, r.XB, r.YB} }
func arrToRect(a [4]int) geom.Rect { return geom.Rect{XA: a[0], YA: a[1], XB: a[2], YB: a[3]} }

// Save serializes the library as JSON. Entries are written in a stable
// order so the output is reproducible.
func (l *Library) Save(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	file := libraryFile{Version: 1}
	keys := make([]libKey, 0, len(l.entries))
	for k := range l.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.hazard != b.hazard {
			return less(a.hazard, b.hazard)
		}
		if a.start != b.start {
			return less(a.start, b.start)
		}
		return less(a.goal, b.goal)
	})
	for _, k := range keys {
		e := l.entries[k]
		entry := libraryEntry{
			Start:  rectToArr(k.start),
			Goal:   rectToArr(k.goal),
			Hazard: rectToArr(k.hazard),
			Value:  e.value,
		}
		// Stable policy order: by droplet rectangle.
		ds := make([]geom.Rect, 0, len(e.policy))
		for d := range e.policy {
			ds = append(ds, d)
		}
		sort.Slice(ds, func(i, j int) bool { return less(ds[i], ds[j]) })
		for _, d := range ds {
			entry.Policy = append(entry.Policy, policyEntry{
				Droplet: rectToArr(d),
				Action:  uint8(e.policy[d]),
			})
		}
		file.Entries = append(file.Entries, entry)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

func less(a, b geom.Rect) bool {
	if a.XA != b.XA {
		return a.XA < b.XA
	}
	if a.YA != b.YA {
		return a.YA < b.YA
	}
	if a.XB != b.XB {
		return a.XB < b.XB
	}
	return a.YB < b.YB
}

// Load reads a library saved with Save, merging its entries into l. Each
// entry is re-canonicalized on the way in, so files written before the
// library became D4-canonical (or hand-authored in chip coordinates) land
// on the same keys as freshly stored strategies; files that are already
// canonical round-trip unchanged because Canonicalize is idempotent.
func (l *Library) Load(r io.Reader) error {
	var file libraryFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("sched: loading strategy library: %w", err)
	}
	if file.Version != 1 {
		return fmt.Errorf("sched: unsupported library version %d", file.Version)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range file.Entries {
		policy := make(synth.Policy, len(e.Policy))
		for _, pe := range e.Policy {
			if pe.Action >= action.NumActions {
				return fmt.Errorf("sched: library entry has invalid action %d", pe.Action)
			}
			policy[arrToRect(pe.Droplet)] = action.Action(pe.Action)
		}
		rj := route.RJ{Start: arrToRect(e.Start), Goal: arrToRect(e.Goal), Hazard: arrToRect(e.Hazard)}
		key, tf := canonical(rj)
		l.entries[key] = libEntry{policy: tf.ApplyPolicy(policy), value: e.Value}
		l.gen++
	}
	return nil
}

// Presynthesize fills the library with healthy-chip strategies for every
// routing job of a compiled plan (the paper's "range of droplet sizes
// assuming no degradation"). Returns the number of entries added.
func (l *Library) Presynthesize(plan *route.Plan, opt synth.Options) (int, error) {
	healthy := func(x, y int) float64 { return 1 }
	added := 0
	for i := range plan.MOs {
		for _, rj := range plan.MOs[i].Jobs {
			rj = synth.NormalizeDispense(rj, plan.W, plan.H)
			if _, _, ok := l.Lookup(rj); ok {
				continue
			}
			res, err := synth.Synthesize(rj, healthy, opt)
			if err != nil {
				return added, err
			}
			if res.Exists() {
				l.Store(rj, res.Policy, res.Value)
				added++
			}
		}
	}
	return added, nil
}
