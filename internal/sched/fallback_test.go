package sched

import (
	"errors"
	"testing"

	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/synth"
)

// scriptedInjector fails synthesis attempts according to a per-attempt
// script (attempt i fails iff script[i]; attempts beyond the script
// succeed) and can poison every cache store.
type scriptedInjector struct {
	script    []bool
	poisonAll bool
	timeouts  int
	poisons   int
}

func (s *scriptedInjector) SynthTimeout(key uint64, attempt int) bool {
	s.timeouts++
	return attempt < len(s.script) && s.script[attempt]
}

func (s *scriptedInjector) CachePoison(key uint64) bool {
	s.poisons++
	return s.poisonAll
}

// scriptedRouter fails a scripted number of Route calls before succeeding,
// recording call order.
type scriptedRouter struct {
	failures int
	calls    int
	policy   synth.Policy
	empty    bool
}

func (s *scriptedRouter) Name() string      { return "scripted" }
func (s *scriptedRouter) HealthAware() bool { return false }
func (s *scriptedRouter) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	s.calls++
	if s.calls <= s.failures {
		return nil, 0, ErrInjectedTimeout
	}
	if s.empty {
		return nil, 0, nil
	}
	return s.policy, 1, nil
}

func somePolicy() synth.Policy {
	return synth.Policy{rect(1, 1, 3, 3): 0}
}

func TestFallbackIdentity(t *testing.T) {
	f := NewFallback(NewAdaptive(), NewBaseline())
	if f.Name() != "adaptive+fallback" {
		t.Errorf("Name = %q", f.Name())
	}
	if !f.HealthAware() {
		t.Error("adaptive-primary fallback not health-aware")
	}
	if NewFallback(NewBaseline(), NewBaseline()).HealthAware() {
		t.Error("baseline-primary fallback claims health awareness")
	}
}

// TestFallbackRecoversOnRetry: a primary that fails once then succeeds is
// retried, not escalated — the recovery path of the degradation ladder.
func TestFallbackRecoversOnRetry(t *testing.T) {
	prim := &scriptedRouter{failures: 1, policy: somePolicy()}
	f := NewFallback(prim, NewBaseline())
	c := freshChip(t, 1)
	p, _, err := f.Route(job(), c, nil)
	if err != nil || len(p) == 0 {
		t.Fatalf("Route: %v (policy %d)", err, len(p))
	}
	if prim.calls != 2 {
		t.Errorf("primary called %d times, want 2 (fail + retry)", prim.calls)
	}
	st := f.Stats()
	if st.Retries != 1 || st.Finals != 0 {
		t.Errorf("stats = %+v, want 1 retry, 0 finals", st)
	}
}

// TestFallbackExhaustsRetriesThenFinal: a primary that never succeeds is
// retried MaxRetries times and then the final tier serves the route.
func TestFallbackExhaustsRetriesThenFinal(t *testing.T) {
	prim := &scriptedRouter{failures: 1 << 30}
	f := NewFallback(prim, NewBaseline())
	c := freshChip(t, 1)
	p, _, err := f.Route(job(), c, nil)
	if err != nil {
		t.Fatalf("final tier failed: %v", err)
	}
	if len(p) == 0 {
		t.Fatal("final tier returned empty policy")
	}
	if prim.calls != DefaultMaxRetries+1 {
		t.Errorf("primary called %d times, want %d", prim.calls, DefaultMaxRetries+1)
	}
	st := f.Stats()
	if st.Retries != DefaultMaxRetries || st.Finals != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFallbackEmptyPolicySkipsRetries: a primary that *successfully* proves
// no strategy exists is not retried (the proof is deterministic); the final
// tier is consulted directly.
func TestFallbackEmptyPolicySkipsRetries(t *testing.T) {
	prim := &scriptedRouter{empty: true}
	f := NewFallback(prim, NewBaseline())
	c := freshChip(t, 1)
	p, _, err := f.Route(job(), c, nil)
	if err != nil || len(p) == 0 {
		t.Fatalf("Route: %v (policy %d)", err, len(p))
	}
	if prim.calls != 1 {
		t.Errorf("primary called %d times, want 1 (no retries on a sound no-strategy proof)", prim.calls)
	}
	if st := f.Stats(); st.Retries != 0 || st.Finals != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFallbackRouteDegraded: degraded routing bypasses the primary tier
// entirely.
func TestFallbackRouteDegraded(t *testing.T) {
	prim := &scriptedRouter{policy: somePolicy()}
	f := NewFallback(prim, NewBaseline())
	c := freshChip(t, 1)
	p, _, err := f.RouteDegraded(job(), c, nil)
	if err != nil || len(p) == 0 {
		t.Fatalf("RouteDegraded: %v (policy %d)", err, len(p))
	}
	if prim.calls != 0 {
		t.Errorf("primary consulted %d times on a degraded route", prim.calls)
	}
	if st := f.Stats(); st.DegradedRoutes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAdaptiveInjectedTimeoutOrdering: with a scripted injector failing
// attempts 0 and 1, the full Adaptive-under-Fallback ladder recovers on the
// third attempt — exercising the per-key attempt counter end to end.
func TestAdaptiveInjectedTimeoutOrdering(t *testing.T) {
	a := NewAdaptive()
	f := NewFallback(a, NewBaseline())
	inj := &scriptedInjector{script: []bool{true, true}}
	f.SetFaultInjector(inj) // forwards to the adaptive primary
	c := freshChip(t, 1)
	p, _, err := f.Route(job(), c, nil)
	if err != nil || len(p) == 0 {
		t.Fatalf("Route: %v (policy %d)", err, len(p))
	}
	st := f.Stats()
	if st.Retries != 2 || st.Finals != 0 {
		t.Errorf("stats = %+v, want 2 retries then recovery", st)
	}
	if inj.timeouts != 3 {
		t.Errorf("injector consulted %d times, want 3", inj.timeouts)
	}
	if a.Syntheses != 1 {
		t.Errorf("adaptive ran %d syntheses, want 1 (two were injected away)", a.Syntheses)
	}
}

// TestAdaptiveAllAttemptsTimeOut: an injector that always fails pushes the
// ladder to the baseline tier, which is never injection-gated.
func TestAdaptiveAllAttemptsTimeOut(t *testing.T) {
	a := NewAdaptive()
	f := NewFallback(a, NewBaseline())
	f.SetFaultInjector(&scriptedInjector{script: []bool{true, true, true, true, true, true}})
	c := freshChip(t, 1)
	p, _, err := f.Route(job(), c, nil)
	if err != nil {
		t.Fatalf("ladder bottomed out with error: %v", err)
	}
	if len(p) == 0 {
		t.Fatal("baseline tier returned empty policy")
	}
	if st := f.Stats(); st.Finals != 1 {
		t.Errorf("stats = %+v, want 1 final", st)
	}
	if a.Syntheses != 0 {
		t.Errorf("adaptive ran %d syntheses despite total injection", a.Syntheses)
	}
}

// TestAdaptiveCachePoisonForcesResynthesis: a poisoned store is discarded,
// so the same degraded-region job synthesizes again on the next request.
func TestAdaptiveCachePoisonForcesResynthesis(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	c, err := chip.New(cfg, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Wear part of the job's region so routing goes through the cache
	// path (the library path stores by geometry, not health key).
	for i := 0; i < 60; i++ {
		c.Actuate(rect(14, 9, 17, 13))
	}
	a := NewAdaptive()
	a.SetFaultInjector(&scriptedInjector{poisonAll: true})
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 2 {
		t.Errorf("syntheses = %d, want 2 (poisoned store must not be served)", a.Syntheses)
	}
	if a.CacheHits != 0 {
		t.Errorf("cache hits = %d, want 0", a.CacheHits)
	}
	// Detach: the next synthesis is stored and served from cache.
	a.SetFaultInjector(nil)
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.CacheHits != 1 {
		t.Errorf("cache hits after detach = %d, want 1", a.CacheHits)
	}
}

// TestInjectedTimeoutError: the injected error is ErrInjectedTimeout, so
// callers can distinguish it from real synthesis failures.
func TestInjectedTimeoutError(t *testing.T) {
	a := NewAdaptive()
	a.SetFaultInjector(&scriptedInjector{script: []bool{true}})
	c := freshChip(t, 1)
	_, _, err := a.Route(job(), c, nil)
	if !errors.Is(err, ErrInjectedTimeout) {
		t.Errorf("err = %v, want ErrInjectedTimeout", err)
	}
}

// TestFallbackPassthroughs: optional interfaces forward to the primary and
// degrade gracefully when the primary lacks them.
func TestFallbackPassthroughs(t *testing.T) {
	c := freshChip(t, 1)
	plain := NewFallback(&scriptedRouter{policy: somePolicy()}, NewBaseline())
	if plain.Prefetch(job(), c) {
		t.Error("Prefetch true without a Prefetcher primary")
	}
	plain.Drain() // must not panic
	if plain.InvalidateRegion(rect(1, 1, 5, 5)) != 0 {
		t.Error("InvalidateRegion nonzero without a RegionInvalidator primary")
	}
	plain.SetFaultInjector(&scriptedInjector{}) // must not panic

	adaptive := NewAdaptiveParallel(1, 8)
	f := NewFallback(adaptive, NewBaseline())
	if !f.Prefetch(job(), c) {
		t.Error("Prefetch refused with an idle pool")
	}
	f.Drain()
	if adaptive.PrefetchSyntheses() != 1 {
		t.Errorf("prefetch syntheses = %d, want 1", adaptive.PrefetchSyntheses())
	}
}

func TestCacheKeyHash(t *testing.T) {
	c := freshChip(t, 1)
	k1 := NewCacheKey(job(), synth.DefaultOptions(), c.HealthHash(job().Hazard))
	k2 := NewCacheKey(job(), synth.DefaultOptions(), c.HealthHash(job().Hazard))
	if k1.Hash() != k2.Hash() {
		t.Error("equal keys hash differently")
	}
	other := job()
	other.Goal = rect(21, 10, 23, 12)
	k3 := NewCacheKey(other, synth.DefaultOptions(), c.HealthHash(other.Hazard))
	if k1.Hash() == k3.Hash() {
		t.Error("distinct keys collide")
	}
}
