// Package sched provides the routing-strategy providers used by the hybrid
// scheduler of Sec. VI-D (Alg. 3): the degradation-unaware baseline router
// of Sec. VII-A and the adaptive router that synthesizes strategies from the
// current health matrix, backed by an offline library of strategies
// pre-synthesized under the no-degradation assumption.
package sched

import (
	"errors"
	"sync"

	"meda/internal/baseline"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/synth"
)

// ErrInjectedTimeout is the error an injected control-plane fault surfaces
// as: the synthesis "timed out" before producing a strategy. Callers treat
// it like any other synthesis failure; the Fallback router retries and then
// degrades.
var ErrInjectedTimeout = errors.New("sched: injected synthesis timeout")

// FaultInjector is the control-plane fault source consulted by the adaptive
// router (implemented by internal/fault's Injector; sched declares the
// interface locally to keep the dependency pointing into sched). Both
// methods must be pure functions of their arguments — they are called from
// the synchronous routing path and from background prefetch workers.
type FaultInjector interface {
	// SynthTimeout reports whether the attempt-th online synthesis for the
	// keyed job should fail with ErrInjectedTimeout.
	SynthTimeout(key uint64, attempt int) bool
	// CachePoison reports whether a strategy store under the keyed cache
	// line should be discarded (a poisoned line), forcing re-synthesis on
	// the next request.
	CachePoison(key uint64) bool
}

// FaultAware is implemented by routers that accept a control-plane fault
// injector.
type FaultAware interface {
	SetFaultInjector(FaultInjector)
}

// DegradedRouter is implemented by routers that offer a cheaper, more
// conservative routing mode for jobs the simulator has marked degraded
// (repeated divergence between planned and observed droplet state). The
// Fallback router serves these directly from its final-tier router.
type DegradedRouter interface {
	RouteDegraded(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error)
}

// Router produces a routing strategy for a job under the current biochip
// condition, returning the policy and its predicted cost in cycles (+Inf
// when no strategy exists is signaled by an error instead, to keep callers
// honest).
type Router interface {
	// Name identifies the router in experiment output.
	Name() string
	// HealthAware reports whether strategies depend on the health matrix
	// (and therefore must be refreshed when health changes).
	HealthAware() bool
	// Route computes the strategy for the job. obstacles lists regions
	// (other droplets resting on the array, already margin-expanded) the
	// route must avoid.
	Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error)
}

// Baseline is the shortest-path router: it minimizes distance traveled and
// never consults microelectrode health.
type Baseline struct {
	Model smg.ModelOptions
}

// NewBaseline returns the baseline router with the default action alphabet.
func NewBaseline() *Baseline {
	return &Baseline{Model: smg.DefaultModelOptions()}
}

// Name implements Router.
func (b *Baseline) Name() string { return "baseline" }

// HealthAware implements Router: the baseline ignores health.
func (b *Baseline) HealthAware() bool { return false }

// Route implements Router via breadth-first shortest path.
func (b *Baseline) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	rj = synth.NormalizeDispense(rj, c.W(), c.H())
	opt := b.Model
	opt.Blocked = obstacles
	policy, cycles, err := baseline.ShortestPath(rj, opt)
	if err != nil {
		return nil, 0, err
	}
	return policy, float64(cycles), nil
}

// libKey is the D4-canonical form of a routing job; two jobs with the same
// key have equivalent strategies under the no-degradation assumption, up to
// the translation/rotation/reflection that relates them.
type libKey struct {
	start, goal, hazard geom.Rect
}

type libEntry struct {
	policy synth.Policy
	value  float64
}

// Library is the offline strategy store of Alg. 3: strategies synthesized
// assuming full health, keyed by the job's canonical geometry. It is safe
// for concurrent use, so background prefetch workers can warm it while the
// scheduler routes.
type Library struct {
	mu      sync.Mutex
	entries map[libKey]libEntry
	hits    int
	misses  int
	// gen counts mutations (Store and Load merges). Persistence layers
	// poll it to decide whether a snapshot of the library is stale; see
	// Generation.
	gen uint64
}

// NewLibrary returns an empty strategy library.
func NewLibrary() *Library {
	return &Library{entries: make(map[libKey]libEntry)}
}

// canonical maps the job to its D4-canonical form (synth.Canonicalize):
// hazard at origin, dihedral element chosen to minimize the geometry tuple.
// Sound for the library because its strategies assume a fully healthy —
// hence uniform — window.
func canonical(rj route.RJ) (libKey, synth.Transform) {
	crj, tf := synth.Canonicalize(rj)
	return libKey{start: crj.Start, goal: crj.Goal, hazard: crj.Hazard}, tf
}

// Lookup returns the stored strategy mapped back to the job's actual
// position and orientation, or ok=false on a miss.
func (l *Library) Lookup(rj route.RJ) (synth.Policy, float64, bool) {
	key, tf := canonical(rj)
	l.mu.Lock()
	e, ok := l.entries[key]
	if !ok {
		l.misses++
		l.mu.Unlock()
		telLibMisses.Inc()
		return nil, 0, false
	}
	l.hits++
	l.mu.Unlock()
	telLibHits.Inc()
	return tf.InvertPolicy(e.policy), e.value, true
}

// Contains reports whether the library holds a strategy for the job's
// canonical geometry, without touching the hit/miss counters. Prefetch uses
// it to probe without distorting Stats.
func (l *Library) Contains(rj route.RJ) bool {
	key, _ := canonical(rj)
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[key]
	return ok
}

// Store records a strategy synthesized under the no-degradation assumption.
func (l *Library) Store(rj route.RJ, p synth.Policy, value float64) {
	key, tf := canonical(rj)
	e := libEntry{policy: tf.ApplyPolicy(p), value: value}
	l.mu.Lock()
	l.entries[key] = e
	l.gen++
	l.mu.Unlock()
}

// Generation returns a counter that increments on every mutation (Store or
// Load). A persistence layer that recorded the generation at its last Save
// can skip re-serializing an unchanged library:
//
//	if lib.Generation() != lastSaved { lib.Save(w); lastSaved = lib.Generation() }
//
// The counter is monotone within a process and carries no meaning across
// processes.
func (l *Library) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Stats returns (hits, misses, size).
func (l *Library) Stats() (hits, misses, size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, len(l.entries)
}

// RegionInvalidator is implemented by routers whose strategy caches can
// eagerly drop entries overlapping a degraded region.
type RegionInvalidator interface {
	// InvalidateRegion removes cached strategies whose hazard bounds
	// intersect region, returning how many were dropped.
	InvalidateRegion(region geom.Rect) int
}

// Prefetcher is implemented by routers that can synthesize a job's strategy
// in the background so a later Route call finds it ready. The simulator uses
// it to pre-synthesize the next microfluidic operation's routing jobs while
// the current one executes (Alg. 3's synthesis step moved off the critical
// path).
type Prefetcher interface {
	// Prefetch starts a background synthesis for rj under the chip's
	// current health, reporting whether a worker picked it up. The call
	// itself never blocks on synthesis.
	Prefetch(rj route.RJ, c *chip.Chip) bool
	// Drain blocks until every accepted prefetch has finished.
	Drain()
}

// Adaptive is the paper's router: Alg. 2 synthesis from the observed health
// matrix, with the hybrid offline library shortcut of Alg. 3 — when every
// microelectrode in the job's hazard bounds still reads fully healthy, the
// pre-synthesized (or memoized) healthy-chip strategy is reused. Degraded
// regions go through the health-keyed strategy Cache, and an optional
// synth.Pool pre-synthesizes upcoming jobs in the background.
type Adaptive struct {
	Opt synth.Options
	Lib *Library
	// Cache memoizes degraded-region strategies keyed by job geometry,
	// option fingerprint and the hazard region's health hash; nil disables
	// memoization.
	Cache *Cache
	// Pool runs background pre-syntheses; nil disables Prefetch. Routers
	// without a pool are fully deterministic (no goroutines).
	Pool *synth.Pool

	// Syntheses counts synchronous online synthesis runs (library misses
	// and uncached degraded regions); LibraryUses counts strategies served
	// from the library; CacheHits counts strategies served from Cache
	// (including ones a prefetch worker put there). Increments are guarded
	// by mu — the concurrent executor may route several jobs at once — but
	// reads are plain field access: sample them only after routing has
	// quiesced.
	Syntheses   int
	LibraryUses int
	CacheHits   int

	mu sync.Mutex
	// pending maps in-flight syntheses — background prefetches and
	// synchronous Route leaders alike — to their completion signal, so
	// concurrent requests for the same key coalesce into one synthesis.
	pending map[CacheKey]chan struct{}
	// prefetchSyntheses counts background syntheses; guarded by mu because
	// pool workers increment it.
	prefetchSyntheses int
	// faults is the optional control-plane fault injector; attempts counts
	// per-key synthesis attempts so injected timeouts draw independently per
	// retry. Both guarded by mu.
	faults   FaultInjector
	attempts map[CacheKey]int
}

// SetFaultInjector implements FaultAware. Passing nil detaches. Attempt
// counters are scoped to the injector's lifetime: attaching resets them, so
// an execution replayed with a fresh runner (the fleet service's resume
// path) draws the same injected-fault decisions as the original run.
func (a *Adaptive) SetFaultInjector(f FaultInjector) {
	a.mu.Lock()
	a.faults = f
	a.attempts = nil
	a.mu.Unlock()
}

func (a *Adaptive) injector() FaultInjector {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.faults
}

// injectTimeout consults the fault injector before an online synthesis for
// key, returning ErrInjectedTimeout when the attempt should fail. Each call
// advances the key's attempt counter, so a caller that retries draws a fresh
// decision.
func (a *Adaptive) injectTimeout(key CacheKey) error {
	a.mu.Lock()
	f := a.faults
	if f == nil {
		a.mu.Unlock()
		return nil
	}
	if a.attempts == nil {
		a.attempts = make(map[CacheKey]int)
	}
	attempt := a.attempts[key]
	a.attempts[key] = attempt + 1
	a.mu.Unlock()
	if f.SynthTimeout(key.Hash(), attempt) {
		telSynthTimeouts.Inc()
		return ErrInjectedTimeout
	}
	return nil
}

// poisoned reports whether a strategy store under key should be discarded.
func (a *Adaptive) poisoned(key CacheKey) bool {
	f := a.injector()
	if f != nil && f.CachePoison(key.Hash()) {
		telCachePoisoned.Inc()
		return true
	}
	return false
}

// NewAdaptive returns the adaptive router with the paper's default query
// (Rmin), a fresh library, and a default-sized strategy cache. No worker
// pool: routing is synchronous and deterministic.
func NewAdaptive() *Adaptive {
	return &Adaptive{Opt: synth.DefaultOptions(), Lib: NewLibrary(), Cache: NewCache(DefaultCacheSize)}
}

// NewAdaptiveParallel returns an adaptive router with a prefetch pool of the
// given size (0 means GOMAXPROCS) and a strategy cache bounded by cacheSize
// entries (0 disables the cache, negative means DefaultCacheSize).
func NewAdaptiveParallel(workers, cacheSize int) *Adaptive {
	a := &Adaptive{Opt: synth.DefaultOptions(), Lib: NewLibrary(), Pool: synth.NewPool(workers)}
	if cacheSize != 0 {
		a.Cache = NewCache(cacheSize)
	}
	return a
}

// Name implements Router.
func (a *Adaptive) Name() string { return "adaptive" }

// HealthAware implements Router.
func (a *Adaptive) HealthAware() bool { return true }

// bump increments one of the exported effectiveness counters under mu.
func (a *Adaptive) bump(counter *int) {
	a.mu.Lock()
	*counter++
	a.mu.Unlock()
}

// claim registers this caller as the synthesizer for key. When another
// synthesis (a prefetch worker or a concurrent Route) is already in flight,
// it returns that synthesis's completion signal and leader=false; the caller
// should wait and re-check its cache. The leader must call release exactly
// once, on every exit path.
func (a *Adaptive) claim(key CacheKey) (done chan struct{}, leader bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d := a.pending[key]; d != nil {
		return d, false
	}
	if a.pending == nil {
		a.pending = make(map[CacheKey]chan struct{})
	}
	d := make(chan struct{})
	a.pending[key] = d
	return d, true
}

// release ends a claim: the key accepts new synthesizers and every waiter
// wakes to re-check the cache.
func (a *Adaptive) release(key CacheKey, done chan struct{}) {
	a.mu.Lock()
	delete(a.pending, key)
	a.mu.Unlock()
	close(done)
}

// Route implements Router: library fast path on fully healthy, unobstructed
// regions, cached or online synthesis against the observed force field
// otherwise. Obstructed jobs always synthesize fresh — obstacle sets are
// transient droplet positions and not worth keying a cache on.
func (a *Adaptive) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	rj = synth.NormalizeDispense(rj, c.W(), c.H())
	top := 1<<uint(c.HealthBits()) - 1
	healthy := len(obstacles) == 0 && c.MinHealth(rj.Hazard) == top
	if a.Lib != nil && healthy {
		key := NewCacheKey(rj, a.Opt, c.HealthHash(rj.Hazard))
		// Single-flight with a double check: wait out any in-flight synthesis
		// for this key, and after winning the claim re-check the library once
		// more (a previous leader may have stored between our miss and our
		// claim) before synthesizing.
		var done chan struct{}
		for {
			if p, v, ok := a.Lib.Lookup(rj); ok {
				if done != nil {
					a.release(key, done)
				}
				a.bump(&a.LibraryUses)
				return p, v, nil
			}
			if done != nil {
				break
			}
			var leader bool
			if done, leader = a.claim(key); !leader {
				<-done
				done = nil
			}
		}
		defer a.release(key, done)
		if err := a.injectTimeout(key); err != nil {
			return nil, 0, err
		}
		res, err := synth.Synthesize(rj, func(x, y int) float64 { return 1 }, a.Opt)
		if err != nil {
			return nil, 0, err
		}
		a.bump(&a.Syntheses)
		telOnlineSyntheses.Inc()
		if res.Exists() && !a.poisoned(key) {
			a.Lib.Store(rj, res.Policy, res.Value)
		}
		return res.Policy, res.Value, nil
	}
	if a.Cache != nil && len(obstacles) == 0 {
		key, tf, canon := a.cacheKeyFor(rj, c)
		lookup := func() (synth.Policy, float64, bool) {
			p, v, ok := a.Cache.Lookup(key)
			if !ok {
				return nil, 0, false
			}
			if canon {
				telCanonHits.Inc()
				return tf.InvertPolicy(p), v, true
			}
			telRawHits.Inc()
			return p, v, true
		}
		// Same single-flight double check as the library path above.
		var done chan struct{}
		for {
			if p, v, ok := lookup(); ok {
				if done != nil {
					a.release(key, done)
				}
				a.bump(&a.CacheHits)
				return p, v, nil
			}
			if done != nil {
				break
			}
			var leader bool
			if done, leader = a.claim(key); !leader {
				<-done
				done = nil
			}
		}
		defer a.release(key, done)
		if err := a.injectTimeout(key); err != nil {
			return nil, 0, err
		}
		res, err := synth.Synthesize(rj, c.ObservedForceField(), a.Opt)
		if err != nil {
			return nil, 0, err
		}
		a.bump(&a.Syntheses)
		telOnlineSyntheses.Inc()
		if res.Exists() && !a.poisoned(key) {
			if canon {
				a.Cache.Store(key, tf.ApplyPolicy(res.Policy), res.Value)
			} else {
				a.Cache.Store(key, res.Policy, res.Value)
			}
		}
		return res.Policy, res.Value, nil
	}
	if err := a.injectTimeout(NewCacheKey(rj, a.Opt, c.HealthHash(rj.Hazard))); err != nil {
		return nil, 0, err
	}
	opt := a.Opt
	opt.Model.Blocked = obstacles
	res, err := synth.Synthesize(rj, c.ObservedForceField(), opt)
	if err != nil {
		return nil, 0, err
	}
	a.bump(&a.Syntheses)
	telOnlineSyntheses.Inc()
	return res.Policy, res.Value, nil
}

// cacheKeyFor picks the strategy-cache key for a degraded-region job: the
// D4-canonical per-shape key when the window's observed health is uniform
// (every translated/rotated/reflected window of the same shape and level
// shares the entry), the raw per-position key otherwise. canon reports
// which form was chosen; tf is meaningful only when canon is true.
func (a *Adaptive) cacheKeyFor(rj route.RJ, c *chip.Chip) (key CacheKey, tf synth.Transform, canon bool) {
	if code, uniform := c.UniformHealth(rj.Hazard); uniform {
		key, tf = NewCanonicalCacheKey(rj, a.Opt, code)
		return key, tf, true
	}
	return NewCacheKey(rj, a.Opt, c.HealthHash(rj.Hazard)), synth.Transform{}, false
}

// Prefetch implements Prefetcher: it snapshots the job's health region and,
// if an idle pool worker is available, synthesizes the strategy in the
// background. Healthy regions warm the library; degraded regions warm the
// cache under the same key Route would use (canonical for uniform-health
// windows, raw otherwise). Returns false (without spawning
// anything) when the strategy is already available, an identical prefetch
// is in flight, or the pool is saturated.
func (a *Adaptive) Prefetch(rj route.RJ, c *chip.Chip) bool {
	if a.Pool == nil {
		return false
	}
	rj = synth.NormalizeDispense(rj, c.W(), c.H())
	top := 1<<uint(c.HealthBits()) - 1
	healthy := c.MinHealth(rj.Hazard) == top
	if healthy && (a.Lib == nil || a.Lib.Contains(rj)) {
		return false
	}
	if !healthy && a.Cache == nil {
		return false
	}
	key, tf, canon := a.cacheKeyFor(rj, c)
	if !healthy && a.Cache.Contains(key) {
		return false
	}
	// The snapshot is taken on the caller's goroutine: workers must never
	// read live chip state.
	field := func(x, y int) float64 { return 1 }
	if !healthy {
		field = c.SnapshotForceField(rj.Hazard)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pending[key] != nil {
		return false
	}
	done := make(chan struct{})
	started := a.Pool.TryGo(func() {
		// Prefetch syntheses are off the critical path and are not
		// timeout-gated; a poisoned cache line still discards the result.
		res, err := synth.Synthesize(rj, field, a.Opt)
		if err == nil && res.Exists() && !a.poisoned(key) {
			switch {
			case healthy:
				a.Lib.Store(rj, res.Policy, res.Value)
			case canon:
				a.Cache.Store(key, tf.ApplyPolicy(res.Policy), res.Value)
			default:
				a.Cache.Store(key, res.Policy, res.Value)
			}
		}
		a.mu.Lock()
		a.prefetchSyntheses++
		telPrefetchSyntheses.Inc()
		delete(a.pending, key)
		a.mu.Unlock()
		close(done)
	})
	if !started {
		return false
	}
	if a.pending == nil {
		a.pending = make(map[CacheKey]chan struct{})
	}
	a.pending[key] = done
	return true
}

// Drain implements Prefetcher: it blocks until every background synthesis
// accepted so far has completed.
func (a *Adaptive) Drain() {
	if a.Pool != nil {
		a.Pool.Wait()
	}
}

// PrefetchSyntheses returns how many background syntheses have completed.
func (a *Adaptive) PrefetchSyntheses() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prefetchSyntheses
}

// InvalidateRegion eagerly drops cached strategies whose hazard bounds
// intersect the degraded region (stale entries could never be served anyway
// — keys embed the region health hash — but dropping them frees cache slots
// for live strategies).
func (a *Adaptive) InvalidateRegion(region geom.Rect) int {
	if a.Cache == nil {
		return 0
	}
	return a.Cache.Invalidate(region)
}
