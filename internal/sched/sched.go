// Package sched provides the routing-strategy providers used by the hybrid
// scheduler of Sec. VI-D (Alg. 3): the degradation-unaware baseline router
// of Sec. VII-A and the adaptive router that synthesizes strategies from the
// current health matrix, backed by an offline library of strategies
// pre-synthesized under the no-degradation assumption.
package sched

import (
	"meda/internal/baseline"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/synth"
)

// Router produces a routing strategy for a job under the current biochip
// condition, returning the policy and its predicted cost in cycles (+Inf
// when no strategy exists is signaled by an error instead, to keep callers
// honest).
type Router interface {
	// Name identifies the router in experiment output.
	Name() string
	// HealthAware reports whether strategies depend on the health matrix
	// (and therefore must be refreshed when health changes).
	HealthAware() bool
	// Route computes the strategy for the job. obstacles lists regions
	// (other droplets resting on the array, already margin-expanded) the
	// route must avoid.
	Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error)
}

// Baseline is the shortest-path router: it minimizes distance traveled and
// never consults microelectrode health.
type Baseline struct {
	Model smg.ModelOptions
}

// NewBaseline returns the baseline router with the default action alphabet.
func NewBaseline() *Baseline {
	return &Baseline{Model: smg.DefaultModelOptions()}
}

// Name implements Router.
func (b *Baseline) Name() string { return "baseline" }

// HealthAware implements Router: the baseline ignores health.
func (b *Baseline) HealthAware() bool { return false }

// Route implements Router via breadth-first shortest path.
func (b *Baseline) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	rj = synth.NormalizeDispense(rj, c.W(), c.H())
	opt := b.Model
	opt.Blocked = obstacles
	policy, cycles, err := baseline.ShortestPath(rj, opt)
	if err != nil {
		return nil, 0, err
	}
	return policy, float64(cycles), nil
}

// libKey is the canonical (origin-translated) form of a routing job; two
// jobs with the same key have identical strategies under the
// no-degradation assumption, up to translation.
type libKey struct {
	start, goal, hazard geom.Rect
}

type libEntry struct {
	policy synth.Policy
	value  float64
}

// Library is the offline strategy store of Alg. 3: strategies synthesized
// assuming full health, keyed by the job's canonical geometry. It is not
// safe for concurrent use; give each simulation its own Library (or share
// one across sequential executions to model the persistent offline store).
type Library struct {
	entries map[libKey]libEntry
	hits    int
	misses  int
}

// NewLibrary returns an empty strategy library.
func NewLibrary() *Library {
	return &Library{entries: make(map[libKey]libEntry)}
}

// canonical translates the job so its hazard rectangle starts at (1,1).
func canonical(rj route.RJ) (libKey, int, int) {
	dx := 1 - rj.Hazard.XA
	dy := 1 - rj.Hazard.YA
	return libKey{
		start:  rj.Start.Translate(dx, dy),
		goal:   rj.Goal.Translate(dx, dy),
		hazard: rj.Hazard.Translate(dx, dy),
	}, dx, dy
}

// Lookup returns the stored strategy translated to the job's actual
// position, or ok=false on a miss.
func (l *Library) Lookup(rj route.RJ) (synth.Policy, float64, bool) {
	key, dx, dy := canonical(rj)
	e, ok := l.entries[key]
	if !ok {
		l.misses++
		return nil, 0, false
	}
	l.hits++
	return e.policy.Translate(-dx, -dy), e.value, true
}

// Store records a strategy synthesized under the no-degradation assumption.
func (l *Library) Store(rj route.RJ, p synth.Policy, value float64) {
	key, dx, dy := canonical(rj)
	l.entries[key] = libEntry{policy: p.Translate(dx, dy), value: value}
}

// Stats returns (hits, misses, size).
func (l *Library) Stats() (hits, misses, size int) {
	return l.hits, l.misses, len(l.entries)
}

// Adaptive is the paper's router: Alg. 2 synthesis from the observed health
// matrix, with the hybrid offline library shortcut of Alg. 3 — when every
// microelectrode in the job's hazard bounds still reads fully healthy, the
// pre-synthesized (or memoized) healthy-chip strategy is reused.
type Adaptive struct {
	Opt synth.Options
	Lib *Library
	// Syntheses counts online synthesis runs (library misses and degraded
	// regions); LibraryUses counts strategies served from the library.
	Syntheses   int
	LibraryUses int
}

// NewAdaptive returns the adaptive router with the paper's default query
// (Rmin) and a fresh library.
func NewAdaptive() *Adaptive {
	return &Adaptive{Opt: synth.DefaultOptions(), Lib: NewLibrary()}
}

// Name implements Router.
func (a *Adaptive) Name() string { return "adaptive" }

// HealthAware implements Router.
func (a *Adaptive) HealthAware() bool { return true }

// Route implements Router: library fast path on fully healthy, unobstructed
// regions, online synthesis against the observed force field otherwise.
func (a *Adaptive) Route(rj route.RJ, c *chip.Chip, obstacles []geom.Rect) (synth.Policy, float64, error) {
	rj = synth.NormalizeDispense(rj, c.W(), c.H())
	top := 1<<uint(c.HealthBits()) - 1
	if a.Lib != nil && len(obstacles) == 0 && c.MinHealth(rj.Hazard) == top {
		if p, v, ok := a.Lib.Lookup(rj); ok {
			a.LibraryUses++
			return p, v, nil
		}
		res, err := synth.Synthesize(rj, func(x, y int) float64 { return 1 }, a.Opt)
		if err != nil {
			return nil, 0, err
		}
		a.Syntheses++
		if res.Exists() {
			a.Lib.Store(rj, res.Policy, res.Value)
		}
		return res.Policy, res.Value, nil
	}
	opt := a.Opt
	opt.Model.Blocked = obstacles
	res, err := synth.Synthesize(rj, c.ObservedForceField(), opt)
	if err != nil {
		return nil, 0, err
	}
	a.Syntheses++
	return res.Policy, res.Value, nil
}
