package sched

import (
	"math"
	"testing"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/synth"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func job() route.RJ {
	return route.RJ{
		Start:  rect(10, 10, 12, 12),
		Goal:   rect(20, 10, 22, 12),
		Hazard: rect(7, 7, 25, 15),
	}
}

func freshChip(t *testing.T, seed uint64) *chip.Chip {
	t.Helper()
	c, err := chip.New(chip.Default(), randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRouterIdentities(t *testing.T) {
	b := NewBaseline()
	a := NewAdaptive()
	if b.Name() != "baseline" || a.Name() != "adaptive" {
		t.Error("router names wrong")
	}
	if b.HealthAware() || !a.HealthAware() {
		t.Error("health awareness flags wrong")
	}
}

func TestBaselineRoute(t *testing.T) {
	c := freshChip(t, 1)
	p, v, err := NewBaseline().Route(job(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 { // 10 cells east; a 3×3 droplet has no double steps
		t.Errorf("baseline cost = %v, want 10", v)
	}
	if len(p) == 0 {
		t.Error("empty baseline policy")
	}
}

func TestAdaptiveRouteHealthyUsesLibrary(t *testing.T) {
	c := freshChip(t, 2)
	a := NewAdaptive()
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 1 || a.LibraryUses != 0 {
		t.Fatalf("first route: syntheses=%d lib=%d", a.Syntheses, a.LibraryUses)
	}
	// Same job again: served from the library.
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.LibraryUses != 1 {
		t.Errorf("second route should hit the library, lib=%d", a.LibraryUses)
	}
	// A translated copy of the job also hits (canonical keying).
	moved := job()
	moved.Start = moved.Start.Translate(5, 3)
	moved.Goal = moved.Goal.Translate(5, 3)
	moved.Hazard = moved.Hazard.Translate(5, 3)
	p, _, err := a.Route(moved, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.LibraryUses != 2 {
		t.Errorf("translated route should hit the library, lib=%d", a.LibraryUses)
	}
	if _, ok := p[moved.Start]; !ok {
		t.Error("translated policy must cover the translated start")
	}
}

func TestAdaptiveRouteDegradedSynthesizesOnline(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	c, err := chip.New(cfg, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Wear the job's region so its health drops below top.
	for i := 0; i < 60; i++ {
		c.Actuate(rect(14, 9, 17, 13))
	}
	a := NewAdaptive()
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.LibraryUses != 0 {
		t.Error("degraded region must not be served from the library")
	}
	if a.Syntheses != 1 {
		t.Errorf("syntheses = %d, want 1", a.Syntheses)
	}
	// Degraded routes are memoized: routing again under unchanged health
	// hits the strategy cache instead of re-synthesizing.
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 1 || a.CacheHits != 1 {
		t.Errorf("syntheses = %d cacheHits = %d, want 1/1", a.Syntheses, a.CacheHits)
	}
	// Degradation of a previously pristine corner of the region changes
	// the health key: the next route must synthesize against the new
	// health matrix.
	for i := 0; i < 60; i++ {
		c.Actuate(rect(8, 8, 10, 10))
	}
	if _, _, err := a.Route(job(), c, nil); err != nil {
		t.Fatal(err)
	}
	if a.Syntheses != 2 {
		t.Errorf("after degradation: syntheses = %d, want 2", a.Syntheses)
	}
}

func TestAdaptiveObstaclesBypassLibrary(t *testing.T) {
	c := freshChip(t, 4)
	a := NewAdaptive()
	obstacle := []geom.Rect{rect(15, 10, 18, 13)} // passable below (rows 7–9)
	p, v, err := a.Route(job(), c, obstacle)
	if err != nil {
		t.Fatal(err)
	}
	if a.LibraryUses != 0 {
		t.Error("obstructed route must not come from the library")
	}
	// The detour around the obstacle costs more than the straight line.
	if v <= 5 {
		t.Errorf("obstructed cost = %v, want > 5", v)
	}
	// Walking the policy (healthy chip: every move succeeds) never enters
	// the obstacle. (Blocked positions may still carry policy entries —
	// they are unreachable states of the model — so we check the actual
	// trajectory.)
	d := job().Start
	for step := 0; step < 50 && !job().Goal.ContainsRect(d); step++ {
		a, ok := p[d]
		if !ok {
			t.Fatalf("policy undefined at %v", d)
		}
		d = a.Apply(d)
		if d.Overlaps(obstacle[0]) {
			t.Fatalf("trajectory entered the obstacle at %v", d)
		}
	}
	if !job().Goal.ContainsRect(d) {
		t.Error("trajectory did not reach the goal")
	}
}

func TestBaselineObstacles(t *testing.T) {
	c := freshChip(t, 5)
	clear, v0, err := NewBaseline().Route(job(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	blockedP, v1, err := NewBaseline().Route(job(), c, []geom.Rect{rect(15, 10, 18, 13)})
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= v0 {
		t.Errorf("obstructed baseline cost %v should exceed clear cost %v", v1, v0)
	}
	if len(blockedP) >= len(clear) {
		t.Error("obstructed policy should cover fewer positions")
	}
}

func TestLibraryStats(t *testing.T) {
	lib := NewLibrary()
	if _, _, ok := lib.Lookup(job()); ok {
		t.Fatal("empty library hit")
	}
	lib.Store(job(), tinyPolicy(), 5)
	if _, _, ok := lib.Lookup(job()); !ok {
		t.Fatal("stored entry missed")
	}
	hits, misses, size := lib.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, size)
	}
}

func TestLibraryValueRoundTrip(t *testing.T) {
	lib := NewLibrary()
	lib.Store(job(), tinyPolicy(), 7.5)
	_, v, ok := lib.Lookup(job())
	if !ok || math.Abs(v-7.5) > 1e-12 {
		t.Errorf("value round trip = %v/%v", v, ok)
	}
}

func tinyPolicy() synth.Policy {
	return synth.Policy{rect(10, 10, 12, 12): action.MoveE}
}
