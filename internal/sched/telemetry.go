package sched

import "meda/internal/telemetry"

// Scheduler telemetry (internal/telemetry default registry). The cache
// counters aggregate over every Cache instance in the process; per-instance
// numbers remain available through Cache.Stats. sched.synth.online counts
// strategies synthesized on the routing critical path, sched.synth.prefetch
// those synthesized by background pool workers — their ratio is how much of
// Alg. 3's synthesis cost the prefetcher actually hides.
var (
	telCacheHits          = telemetry.C("sched.cache.hits")
	telCacheMisses        = telemetry.C("sched.cache.misses")
	telCacheEvictions     = telemetry.C("sched.cache.evictions")
	telCacheInvalidations = telemetry.C("sched.cache.invalidations")

	// Canonicalization effectiveness: hits served through a D4-canonical
	// key (the per-shape fast path) vs hits on raw per-position keys (the
	// non-uniform-health fallback). Their ratio is how often the degraded
	// window was uniform enough to share strategies across positions.
	telCanonHits = telemetry.C("sched.cache.canonical_hits")
	telRawHits   = telemetry.C("sched.cache.raw_hits")

	telLibHits   = telemetry.C("sched.library.hits")
	telLibMisses = telemetry.C("sched.library.misses")

	telOnlineSyntheses   = telemetry.C("sched.synth.online")
	telPrefetchSyntheses = telemetry.C("sched.synth.prefetch")

	// Fault-injection effects observed by the scheduler (the injection
	// decisions themselves are counted in internal/fault).
	telSynthTimeouts  = telemetry.C("sched.fault.synth_timeouts")
	telCachePoisoned  = telemetry.C("sched.fault.cache_poisoned")
	telFallbackRetry  = telemetry.C("sched.fallback.retries")
	telFallbackRecov  = telemetry.C("sched.fallback.recovered")
	telFallbackFinal  = telemetry.C("sched.fallback.final")
	telFallbackDegrad = telemetry.C("sched.fallback.degraded")
)
