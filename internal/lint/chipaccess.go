package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
)

// ChipAccess flags uses of chip.Chip from code that runs on another
// goroutine: function literals launched with a go statement or handed to
// synth.Pool (Go, TryGo). chip.Chip is deliberately unsynchronized — the
// simulator owns it — so background synthesis must work from an immutable
// snapshot taken on the submitting goroutine (chip.SnapshotForceField),
// never from the live chip. This is the static counterpart of the -race
// runs in make verify: it catches the pattern even on paths no test
// happens to race.
var ChipAccess = &analysis.Analyzer{
	Name: "chipaccess",
	Doc:  "flags reads of live chip.Chip state from background goroutines",
	Run:  runChipAccess,
}

const chipPkgPath = "meda/internal/chip"
const synthPkgPath = "meda/internal/synth"

func runChipAccess(pass *analysis.Pass) error {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, name string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos,
			"chip.Chip.%s accessed from a background goroutine; take a SnapshotForceField on the submitting goroutine and capture the snapshot instead",
			name)
	}
	scanAsync := func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isChipType(pass.TypesInfo.Types[sel.X].Type) {
				report(sel.Sel.Pos(), sel.Sel.Name)
			}
			return true
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// go c.Method(...) runs Method itself asynchronously;
				// go func(){...}(...) runs the literal's body.
				if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok {
					if isChipType(pass.TypesInfo.Types[sel.X].Type) {
						report(sel.Sel.Pos(), sel.Sel.Name)
					}
				}
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					scanAsync(lit.Body)
				}
			case *ast.CallExpr:
				if !isPoolSubmission(pass.TypesInfo, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						scanAsync(lit.Body)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isChipType reports whether t is chip.Chip or *chip.Chip.
func isChipType(t types.Type) bool {
	return isNamed(t, chipPkgPath, "Chip")
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isPoolSubmission reports whether call invokes a job-accepting method of
// synth.Pool (Go or TryGo).
func isPoolSubmission(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || (fn.Name() != "Go" && fn.Name() != "TryGo") {
		return false
	}
	return isNamed(s.Recv(), synthPkgPath, "Pool")
}
