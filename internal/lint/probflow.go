package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"regexp"

	"meda/internal/lint/absint"
	"meda/internal/lint/analysis"
	"meda/internal/lint/callgraph"
	"meda/internal/lint/cfg"
)

// ProbFlow confines probabilities to [0,1] by value-range abstract
// interpretation (internal/lint/absint), superseding the retired
// probliteral analyzer (whose name survives as a //lint:ignore alias). At
// every probability consumption site — a value written into a
// probability-named struct field (P, Prob, Probability) or passed for a
// probability-named float parameter — the analyzer evaluates the
// expression's interval under the assume-guarantee discipline that
// probability-named parameters and field reads are themselves in [0,1]
// (their write sites are checked the same way), so products, complements
// (1-p), and normalizations flow through exactly; a finite bound escaping
// [0,1] (`p+q`, `p*3`, a literal 1.5) is a finding, while an unknown ⊤
// never flags. The analysis is interprocedural two ways: return-range
// facts (ProbRangeFact) are computed bottom-up over the package call graph
// and cross package boundaries through the shared fact store, so
// `SetP(scale(x))` sees scale's actual range however many frames down, and
// seeded stdlib knowledge (rand.Float64 ∈ [0,1)) enters the same hook.
var ProbFlow = &analysis.Analyzer{
	Name: "probflow",
	Doc:  "confines computed probabilities to [0,1] by interval analysis",
	Run:  runProbFlow,
}

var probFieldRE = regexp.MustCompile(`^(P|Prob|Probability)$`)
var probParamRE = regexp.MustCompile(`(?i)^(p|prob|probability)$`)

// ProbRangeFact is the exported return-range of a float-valued function:
// callers evaluate calls into it as the interval [Lo, Hi]. Only ranges the
// analysis actually bounded are exported (⊤ stays implicit).
type ProbRangeFact struct {
	Lo, Hi float64
}

// AFact marks ProbRangeFact as an analysis fact.
func (*ProbRangeFact) AFact() {}

// probRangeRounds bounds the SCC fixpoint for return ranges: recursive
// float functions that have not stabilized by then are published as ⊤
// (i.e. not at all) rather than iterated forever.
const probRangeRounds = 4

// seededProbRanges maps known stdlib entry points (by analysis.ObjectKey)
// to their return ranges.
var seededProbRanges = map[string]absint.Interval{
	"math/rand.Float64":      absint.Range(0, 1),
	"math/rand.Rand.Float64": absint.Range(0, 1),
	"math.Abs":               absint.AtLeast(0),
	"math.Exp":               absint.AtLeast(0),
	"math.Sqrt":              absint.AtLeast(0),
}

func runProbFlow(pass *analysis.Pass) error {
	info := pass.TypesInfo
	ranges := make(map[*types.Func]absint.Interval)

	opts := absint.Options{
		ParamSeed: func(v *types.Var) (absint.Interval, bool) {
			if probParamRE.MatchString(v.Name()) && isFloat(v.Type()) {
				return absint.Unit, true
			}
			return absint.Top, false
		},
		ReadSeed: func(e ast.Expr) (absint.Interval, bool) {
			if sel, ok := e.(*ast.SelectorExpr); ok {
				if probFieldRE.MatchString(sel.Sel.Name) && isFloat(info.Types[e].Type) {
					return absint.Unit, true
				}
			}
			return absint.Top, false
		},
		CallResult: func(call *ast.CallExpr) (absint.Interval, bool) {
			fn := callgraph.StaticCallee(info, call)
			if fn == nil {
				return absint.Top, false
			}
			if iv, ok := ranges[fn]; ok {
				return iv, true
			}
			var fact ProbRangeFact
			if pass.ImportObjectFact(fn, &fact) {
				return absint.Range(fact.Lo, fact.Hi), true
			}
			if key, ok := analysis.ObjectKey(fn); ok {
				if iv, ok := seededProbRanges[key]; ok {
					return iv, true
				}
			}
			return absint.Top, false
		},
	}

	// Phase 1: bottom-up return ranges over the package call graph, so a
	// consumption site in this package (or downstream, through the exported
	// facts) evaluates calls by their actual range.
	g := callgraph.Build(pass.Pkg, info, pass.Files)
	for _, scc := range g.SCCs() {
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				if !hasSingleFloatResult(n.Fn) {
					continue
				}
				next := returnRange(info, n.Decl, opts)
				if prev, ok := ranges[n.Fn]; !ok || !prev.Eq(next) {
					changed = true
				}
				ranges[n.Fn] = next
			}
			if !changed {
				break
			}
			if round >= probRangeRounds {
				// Unstable recursion: publish nothing rather than iterate on.
				for _, n := range scc {
					delete(ranges, n.Fn)
				}
				break
			}
		}
	}
	for fn, iv := range ranges {
		if !iv.IsTop() && !iv.IsEmpty() {
			pass.ExportObjectFact(fn, &ProbRangeFact{Lo: iv.Lo, Hi: iv.Hi})
		}
	}

	// Phase 2: check every consumption site, function by function, with the
	// solved per-point environments.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := absint.Analyze(info, fd.Body, declParams(info, fd), opts)
			f.Walk(func(n ast.Node, env absint.Env) {
				if !env.Reached() {
					return
				}
				checkProbSites(pass, n, func(e ast.Expr) absint.Interval {
					return f.EvalIn(env, e)
				})
			})
		}
	}

	// Package-level declarations sit outside any CFG, and function literal
	// bodies run under environments their enclosing CFG does not model;
	// both still get the exact constant check (the probliteral heritage: a
	// 1.5 literal in a table of transition records).
	constEval := func(e ast.Expr) absint.Interval { return constProbInterval(info, e) }
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if gd, ok := d.(*ast.GenDecl); ok {
				checkProbSites(pass, gd, constEval)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkProbSites(pass, lit.Body, constEval)
			}
			return true
		})
	}
	return nil
}

// declParams returns the declared parameters of a function, receiver
// excluded (the receiver is never probability-named in this codebase).
func declParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// hasSingleFloatResult reports whether fn returns exactly one float value —
// the shape return-range facts attach to.
func hasSingleFloatResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isFloat(sig.Results().At(0).Type())
}

// returnRange joins the intervals of every reachable return value of one
// function body under the given interpreter options.
func returnRange(info *types.Info, fd *ast.FuncDecl, opts absint.Options) absint.Interval {
	f := absint.Analyze(info, fd.Body, declParams(info, fd), opts)
	out := absint.Empty
	sawReturn, sawNaked := false, false
	f.Walk(func(n ast.Node, env absint.Env) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) != 1 {
			sawNaked = true // named-result return: the value is untracked
			return
		}
		sawReturn = true
		if !env.Reached() {
			return
		}
		out = out.Join(f.EvalIn(env, ret.Results[0]))
	})
	if !sawReturn || sawNaked {
		return absint.Top
	}
	return out
}

// checkProbSites inspects one node for probability consumption sites and
// flags intervals whose finite bounds escape [0,1]. Function literals are
// skipped: their bodies run under a different environment and are visited
// by their own CFG nodes.
func checkProbSites(pass *analysis.Pass, node ast.Node, eval func(ast.Expr) absint.Interval) {
	info := pass.TypesInfo
	check := func(expr ast.Expr, what string) {
		if tv := info.Types[expr]; tv.Value != nil {
			// Constant: exact check, exact message (the probliteral
			// heritage golden suites rely on).
			if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
				return
			}
			if constant.Sign(tv.Value) >= 0 && !exceedsOne(tv.Value) {
				return
			}
			pass.Reportf(expr.Pos(), "probability literal %s for %s is outside [0,1]", tv.Value.String(), what)
			return
		}
		iv := eval(expr)
		if iv.IsEmpty() || iv.In(absint.Unit) {
			return
		}
		loBad := iv.Lo < 0 && !math.IsInf(iv.Lo, -1) // finite negative lower bound
		hiBad := iv.Hi > 1 && !math.IsInf(iv.Hi, 1)  // finite upper bound above 1
		if loBad || hiBad {
			pass.Reportf(expr.Pos(), "computed probability for %s is in %s, which can leave [0,1]", what, iv)
		}
	}
	cfg.Visit(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			st, ok := structOf(info.Types[n].Type)
			if !ok {
				return true
			}
			for i, elt := range n.Elts {
				name, value := "", ast.Expr(nil)
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						name, value = id.Name, kv.Value
					}
				} else if i < st.NumFields() {
					name, value = st.Field(i).Name(), elt
				}
				if value != nil && probFieldRE.MatchString(name) && isFloat(info.Types[value].Type) {
					check(value, "field "+name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(n.Rhs) || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				if probFieldRE.MatchString(sel.Sel.Name) && isFloat(info.Types[lhs].Type) {
					check(n.Rhs[i], "field "+sel.Sel.Name)
				}
			}
		case *ast.CallExpr:
			sig, ok := signatureOf(info, n.Fun)
			if !ok {
				return true
			}
			for i, arg := range n.Args {
				pi := i
				if sig.Variadic() && pi >= sig.Params().Len() {
					pi = sig.Params().Len() - 1
				}
				if pi < 0 || pi >= sig.Params().Len() {
					continue
				}
				param := sig.Params().At(pi)
				if probParamRE.MatchString(param.Name()) && isFloat(param.Type()) {
					check(arg, "parameter "+param.Name())
				}
			}
		}
		return true
	})
}

// constProbInterval evaluates constant expressions only — the evaluator for
// package-level declarations, where no CFG exists.
func constProbInterval(info *types.Info, e ast.Expr) absint.Interval {
	tv := info.Types[e]
	if tv.Value == nil {
		return absint.Top
	}
	if v, ok := constant.Float64Val(constant.ToFloat(tv.Value)); ok {
		return absint.Const(v)
	}
	return absint.Top
}

// exceedsOne reports v > 1 for a numeric constant.
func exceedsOne(v constant.Value) bool {
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return false
	}
	return constant.Compare(v, token.GTR, constant.MakeInt64(1))
}

// structOf unwraps t (possibly behind a pointer or a named type) to a
// struct.
func structOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// signatureOf resolves the signature of a call target, rejecting
// conversions and builtins.
func signatureOf(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv := info.Types[fun]
	if tv.Type == nil || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}
