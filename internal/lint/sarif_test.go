package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"meda/internal/lint"
)

// TestWriteSARIF: the emitter produces a valid SARIF 2.1.0 log with one
// rule per analyzer (plus the directive pseudo-rule) and module-relative
// forward-slash paths.
func TestWriteSARIF(t *testing.T) {
	findings := []lint.Finding{
		{
			Analyzer: "chanprotocol",
			Pos:      token.Position{Filename: "/repo/internal/sched/cache.go", Line: 12, Column: 3},
			Message:  "ch may already be closed",
		},
		{
			Analyzer: "detpure",
			Pos:      token.Position{Filename: "/elsewhere/x.go", Line: 1, Column: 1},
			Message:  "outside the module",
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, findings, lint.Analyzers(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "medalint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if want := len(lint.Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d (suite + directive)", len(run.Tool.Driver.Rules), want)
	}
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, id := range []string{"gridbounds", "probflow", "hotalloc"} {
		if !rules[id] {
			t.Errorf("value-range tier rule %q missing from SARIF rules", id)
		}
	}
	if rules["probliteral"] {
		t.Error("retired probliteral still appears as a SARIF rule; it lives on only as a //lint:ignore alias")
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	in := run.Results[0]
	if in.RuleID != "chanprotocol" || in.Level != "warning" {
		t.Errorf("result 0 = %s/%s, want chanprotocol/warning", in.RuleID, in.Level)
	}
	if uri := in.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/sched/cache.go" {
		t.Errorf("in-module URI = %q, want module-relative internal/sched/cache.go", uri)
	}
	if line := in.Locations[0].PhysicalLocation.Region.StartLine; line != 12 {
		t.Errorf("startLine = %d, want 12", line)
	}
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/x.go" {
		t.Errorf("out-of-module URI = %q, want the absolute path kept", uri)
	}
}
