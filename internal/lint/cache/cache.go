// Package cache is medalint's incremental analysis cache. The driver keys
// each package by a content hash — its own sources, the keys of its
// module-internal dependencies (so a change deep in the import graph
// invalidates everything downstream), and a salt covering the toolchain
// version plus the analyzer roster — and stores the package's
// post-suppression findings together with the analysis facts its passes
// exported. On a warm run, a hit replays the findings and injects the
// facts into the run's FactStore without parsing or type-checking the
// package at all, so `medalint ./...` after an edit re-analyzes only the
// changed packages and their dependents.
//
// Entries are gob-encoded files named by their key under a two-level
// directory, written atomically (temp file + rename) so concurrent or
// interrupted runs never observe a torn entry. Any read error or decoding
// mismatch is a miss, never a failure: the cache is an accelerator, and
// the driver must behave identically with it, without it, or with a
// corrupted copy of it. Fact values round-trip through gob, which demands
// two disciplines of fact types: they register with RegisterFact at init,
// and their token.Pos fields are scrubbed to zero on store — positions are
// offsets into the producing run's FileSet, meaningless in any other run,
// and keeping them would make entries nondeterministic.
package cache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"meda/internal/lint/analysis"
)

// Finding is one diagnostic in serializable form (token.Position flattened
// to its fields).
type Finding struct {
	Analyzer string
	File     string
	Offset   int
	Line     int
	Column   int
	Message  string
}

// Entry is everything one package contributes to a run: its findings
// (after suppression directives were applied) and the facts its passes
// exported for downstream packages.
type Entry struct {
	Findings     []Finding
	ObjectFacts  []analysis.ObjectFactRecord
	PackageFacts []analysis.Fact
}

// Cache is one on-disk cache directory.
type Cache struct {
	dir string
}

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// RegisterFact registers a fact's concrete type for gob round-tripping.
// Every fact type an analyzer exports must be registered before entries
// holding it can be stored or loaded; call it from the analyzer package's
// init.
func RegisterFact(f analysis.Fact) { gob.Register(f) }

// path places a key in a two-level layout so no single directory grows
// unboundedly.
func (c *Cache) path(key string) string {
	if len(key) < 3 {
		return filepath.Join(c.dir, "short", key)
	}
	return filepath.Join(c.dir, key[:2], key[2:])
}

// Load returns the entry stored under key, or ok=false on any miss —
// absence, unreadability, or a decoding mismatch (e.g. an entry written by
// a build with different fact types). A corrupt entry is removed so it
// cannot keep costing a read.
func (c *Cache) Load(key string) (*Entry, bool) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var e Entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		os.Remove(c.path(key))
		return nil, false
	}
	return &e, true
}

// Store writes the entry under key, scrubbing positions from facts and
// replacing any existing entry atomically.
func (c *Cache) Store(key string, e *Entry) error {
	for _, r := range e.ObjectFacts {
		scrubPos(reflect.ValueOf(r.Fact))
	}
	for _, f := range e.PackageFacts {
		scrubPos(reflect.ValueOf(f))
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(e); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: encoding %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// posType is the one field type scrubbed from stored facts.
var posType = reflect.TypeOf(token.Pos(0))

// scrubPos zeroes every token.Pos reachable from v through pointers,
// structs, slices, arrays, and maps with addressable values. Positions are
// FileSet offsets of the producing run; a consumer resolving them against
// its own FileSet would point anywhere, so the cache stores them as NoPos.
func scrubPos(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			scrubPos(v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Type() == posType && f.CanSet() {
				f.SetInt(int64(token.NoPos))
				continue
			}
			scrubPos(f)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			scrubPos(v.Index(i))
		}
	}
}

// Salt folds the run configuration that invalidates every entry at once —
// toolchain version, cache schema, analyzer roster — into one hash input.
func Salt(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashFiles hashes the named files (base names resolved under dir, hashed
// in sorted order, names included) — a package's source identity.
func HashFiles(dir string, names []string) (string, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, name := range sorted {
		io.WriteString(h, name)
		h.Write([]byte{0})
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Key combines the salt, a package's identity, its source hash, and its
// dependencies' keys (sorted, with their import paths) into the package's
// cache key.
func Key(salt, pkgPath, srcHash string, depKeys map[string]string) string {
	deps := make([]string, 0, len(depKeys))
	for path, key := range depKeys {
		deps = append(deps, path+"="+key)
	}
	sort.Strings(deps)
	h := sha256.New()
	io.WriteString(h, salt)
	h.Write([]byte{0})
	io.WriteString(h, pkgPath)
	h.Write([]byte{0})
	io.WriteString(h, srcHash)
	h.Write([]byte{0})
	for _, d := range deps {
		io.WriteString(h, d)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
