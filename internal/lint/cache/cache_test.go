package cache

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"meda/internal/lint/analysis"
)

// testFact mirrors the shape of real summary facts: a witness position
// that must not survive serialization, and payload that must.
type testFact struct {
	Kind string
	Pos  token.Pos
	Sub  []testSub
}

type testSub struct {
	Via string
	Pos token.Pos
}

func (*testFact) AFact() {}

func init() { RegisterFact(&testFact{}) }

func TestEntryRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{
		Findings: []Finding{{
			Analyzer: "probflow", File: "x.go", Line: 3, Column: 7,
			Message: "computed probability for field P is in [0, 2], which can leave [0,1]",
		}},
		ObjectFacts: []analysis.ObjectFactRecord{{
			Key:  "meda/internal/mdp.Builder.Add",
			Fact: &testFact{Kind: "make", Pos: 42, Sub: []testSub{{Via: "grow", Pos: 99}}},
		}},
	}
	if err := c.Store("k1", e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load("k1")
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if len(got.Findings) != 1 || got.Findings[0] != e.Findings[0] {
		t.Errorf("findings did not round-trip: %+v", got.Findings)
	}
	if len(got.ObjectFacts) != 1 {
		t.Fatalf("object facts did not round-trip: %+v", got.ObjectFacts)
	}
	f, ok := got.ObjectFacts[0].Fact.(*testFact)
	if !ok {
		t.Fatalf("fact decoded as %T, want *testFact", got.ObjectFacts[0].Fact)
	}
	if f.Kind != "make" || len(f.Sub) != 1 || f.Sub[0].Via != "grow" {
		t.Errorf("fact payload lost: %+v", f)
	}
	if f.Pos != token.NoPos || f.Sub[0].Pos != token.NoPos {
		t.Errorf("positions not scrubbed: Pos=%v Sub.Pos=%v", f.Pos, f.Sub[0].Pos)
	}
}

func TestLoadMissAndCorrupt(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("absent-key"); ok {
		t.Error("absent key loaded")
	}
	if err := c.Store("k2", &Entry{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path("k2"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load("k2"); ok {
		t.Error("corrupt entry loaded")
	}
	if _, err := os.Stat(c.path("k2")); !os.IsNotExist(err) {
		t.Error("corrupt entry was not removed")
	}
}

func TestKeyDeterminismAndSensitivity(t *testing.T) {
	deps := map[string]string{"a": "k-a", "b": "k-b"}
	k1 := Key("salt", "pkg", "src", deps)
	k2 := Key("salt", "pkg", "src", map[string]string{"b": "k-b", "a": "k-a"})
	if k1 != k2 {
		t.Error("key depends on dep map iteration order")
	}
	for name, other := range map[string]string{
		"salt":    Key("salt2", "pkg", "src", deps),
		"package": Key("salt", "pkg2", "src", deps),
		"source":  Key("salt", "pkg", "src2", deps),
		"deps":    Key("salt", "pkg", "src", map[string]string{"a": "k-a2", "b": "k-b"}),
	} {
		if other == k1 {
			t.Errorf("key insensitive to %s change", name)
		}
	}
}

func TestHashFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\n")
	write("b.go", "package p\nvar X = 1\n")
	h1, err := HashFiles(dir, []string{"a.go", "b.go"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashFiles(dir, []string{"b.go", "a.go"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("hash depends on file order")
	}
	write("b.go", "package p\nvar X = 2\n")
	h3, err := HashFiles(dir, []string{"a.go", "b.go"})
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("hash insensitive to content change")
	}
	if _, err := HashFiles(dir, []string{"missing.go"}); err == nil {
		t.Error("missing file did not error")
	}
}
