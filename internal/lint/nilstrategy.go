package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// NilStrategy flags flow paths where the result of a strategy lookup is
// used without checking the lookup's ok flag. The strategy cache and
// library (sched.Cache.Lookup, sched.Library.Lookup) follow the comma-ok
// contract: the returned policy is meaningful only when the final bool
// result is true, so a path that reaches a use of the policy without
// passing through a check of ok (or a nil/len test of the policy itself)
// routes droplets with a stale or zero policy. The analyzer solves a
// forward may-analysis per function: a lookup result enters the "possibly
// invalid" set at the call and leaves it on the branch edges a guard
// implies (the true edge of `if ok`, the false edge of `if p == nil`);
// any read of a still-possibly-invalid variable is reported.
//
// A lookup is any call to a function or method named Lookup with at least
// two results of which the last is bool, so the check applies to future
// caches without listing them here.
var NilStrategy = &analysis.Analyzer{
	Name: "nilstrategy",
	Doc:  "flags strategy lookup results used before their ok flag is checked",
	Run:  runNilStrategy,
}

// nilOrigin is the provenance of one possibly-invalid lookup result.
type nilOrigin struct {
	pos token.Pos  // position of the lookup call
	ok  *types.Var // the bool result variable guarding it; nil when discarded
}

type nilFact = dataflow.VarSet[*types.Var, nilOrigin]

func runNilStrategy(pass *analysis.Pass) error {
	for _, fb := range funcBodies(pass) {
		runNilStrategyBody(pass, fb)
	}
	return nil
}

func runNilStrategyBody(pass *analysis.Pass, fb funcBody) {
	info := pass.TypesInfo
	escaped := escapedVars(info, fb.Body)
	g := cfg.New(fb.Body)
	lat := dataflow.VarSetLattice[*types.Var, nilOrigin]{}

	step := func(fact nilFact, n ast.Node, report bool) nilFact {
		// Reads of a possibly-invalid variable first: in `p2 := p` or
		// `use(p)` the RHS executes before any LHS write takes effect.
		visitShallow(n, func(m ast.Node) bool {
			ident, ok := m.(*ast.Ident)
			if !ok {
				return !isGuardExpr(info, m, fact)
			}
			v, _ := info.Uses[ident].(*types.Var)
			if v == nil {
				return true
			}
			origin, tracked := fact[v]
			if !tracked || isWriteTarget(n, ident) {
				return true
			}
			if report {
				if origin.ok != nil {
					pass.Reportf(ident.Pos(), "%s may be invalid: ok result of the lookup at %s is not checked on this path",
						ident.Name, pass.Fset.Position(origin.pos))
				} else {
					pass.Reportf(ident.Pos(), "%s may be invalid: the lookup at %s discards its ok result and %s is not nil-checked on this path",
						ident.Name, pass.Fset.Position(origin.pos), ident.Name)
				}
			}
			// One report per path suffices; stop tracking the variable.
			fact = fact.Without(v)
			return true
		})
		// Writes: a lookup assignment starts tracking its first result;
		// any other assignment to a tracked variable stops it.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if v := localVar(info, lhs); v != nil {
					fact = fact.Without(v)
				}
			}
			if call, okVar, isLookup := lookupAssign(info, as); isLookup {
				v := localVar(info, as.Lhs[0])
				if v != nil && !escaped[v] && !isBlank(as.Lhs[0]) {
					fact = fact.With(v, nilOrigin{pos: call.Pos(), ok: okVar})
				}
			}
		}
		return fact
	}

	transfer := func(b *cfg.Block, in nilFact) nilFact {
		for _, n := range b.Nodes {
			in = step(in, n, false)
		}
		return in
	}
	edge := func(b *cfg.Block, succ int, out nilFact) nilFact {
		if b.Cond == nil {
			return out
		}
		return refineNil(info, out, b.Cond, succ == 0)
	}

	res := dataflow.Forward[nilFact](g, lat, nil, transfer, edge)
	for _, b := range g.Blocks {
		fact := res.In[b]
		for _, n := range b.Nodes {
			fact = step(fact, n, true)
		}
	}
}

// lookupAssign decomposes `p, ..., ok := x.Lookup(...)`: an assignment
// whose single RHS is a call to a function named Lookup with ≥2 results,
// the last of type bool. It returns the call and the variable bound to the
// ok result (nil when blank or when the assignment shape does not expose
// it).
func lookupAssign(info *types.Info, as *ast.AssignStmt) (*ast.CallExpr, *types.Var, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return nil, nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || calleeName(info, call) != "Lookup" {
		return nil, nil, false
	}
	tup, ok := info.Types[call].Type.(*types.Tuple)
	if !ok || tup.Len() < 2 || tup.Len() != len(as.Lhs) {
		return nil, nil, false
	}
	last, ok := tup.At(tup.Len() - 1).Type().(*types.Basic)
	if !ok || last.Kind() != types.Bool {
		return nil, nil, false
	}
	return call, localVar(info, as.Lhs[len(as.Lhs)-1]), true
}

// calleeName returns the bare name of a call's callee (method or function),
// or "" when it cannot be resolved.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isWriteTarget reports whether ident appears as a plain assignment target
// of n (so the occurrence is a write, not a read).
func isWriteTarget(n ast.Node, ident *ast.Ident) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == ast.Expr(ident) {
			return true
		}
	}
	return false
}

// isGuardExpr reports whether expr is a guard over a tracked variable — a
// nil comparison, a len() test, or a read of a guarding ok variable — whose
// inner reads must not themselves count as uses. The branch edges apply
// the guard's meaning via refineNil.
func isGuardExpr(info *types.Info, n ast.Node, fact nilFact) bool {
	switch e := n.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.EQL && e.Op != token.NEQ {
			return false
		}
		return isNilCheckOperands(info, e, fact)
	case *ast.CallExpr:
		// len(p) over a tracked variable.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "len" && info.Uses[id] == types.Universe.Lookup("len") {
			if len(e.Args) == 1 {
				if v := localVar(info, ast.Unparen(e.Args[0])); v != nil {
					_, tracked := fact[v]
					return tracked
				}
			}
		}
	case *ast.Ident:
		// Reading the guarding ok variable is the check itself.
		if v, ok := info.Uses[e].(*types.Var); ok {
			for _, origin := range fact {
				if origin.ok == v {
					return true
				}
			}
		}
	}
	return false
}

// isNilCheckOperands reports whether one side of an ==/!= is nil and the
// other a tracked variable.
func isNilCheckOperands(info *types.Info, e *ast.BinaryExpr, fact nilFact) bool {
	varSide := func(x, y ast.Expr) bool {
		if !isUntypedNil(info, y) {
			return false
		}
		v := localVar(info, ast.Unparen(x))
		if v == nil {
			return false
		}
		_, tracked := fact[v]
		return tracked
	}
	return varSide(e.X, e.Y) || varSide(e.Y, e.X)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

// refineNil applies what a branch condition implies on one edge: on the
// edge where the guard proves the result valid, tracked variables leave
// the possibly-invalid set.
func refineNil(info *types.Info, fact nilFact, cond ast.Expr, isTrue bool) nilFact {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return refineNil(info, fact, e.X, !isTrue)
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op == token.LAND && isTrue, e.Op == token.LOR && !isTrue:
			// Both conjuncts hold on this edge.
			return refineNil(info, refineNil(info, fact, e.X, isTrue), e.Y, isTrue)
		case e.Op == token.NEQ && isTrue, e.Op == token.EQL && !isTrue,
			e.Op == token.GTR && isTrue, e.Op == token.LSS && isTrue:
			// p != nil proven, or p == nil refuted: p is valid here. The
			// same for the len forms len(p) != 0, len(p) == 0, len(p) > 0,
			// and 0 < len(p) against the literal 0.
			if v := nilComparedVar(info, e, fact); v != nil {
				return fact.Without(v)
			}
		}
	case *ast.Ident:
		if !isTrue {
			return fact
		}
		// The guard variable itself: `if ok { ... }`.
		if v, ok := info.Uses[e].(*types.Var); ok {
			for tracked, origin := range fact {
				if origin.ok == v {
					fact = fact.Without(tracked)
				}
			}
		}
	}
	return fact
}

// nilComparedVar extracts the tracked variable from `p ==/!= nil` or
// `len(p) ==/!= 0`, or nil when the comparison is not such a guard.
func nilComparedVar(info *types.Info, e *ast.BinaryExpr, fact nilFact) *types.Var {
	extract := func(x, y ast.Expr) *types.Var {
		var inner ast.Expr
		switch {
		case isUntypedNil(info, y):
			inner = ast.Unparen(x)
		case isZeroLiteral(y):
			call, ok := ast.Unparen(x).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return nil
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" || info.Uses[id] != types.Universe.Lookup("len") {
				return nil
			}
			inner = ast.Unparen(call.Args[0])
		default:
			return nil
		}
		v := localVar(info, inner)
		if v == nil {
			return nil
		}
		if _, tracked := fact[v]; !tracked {
			return nil
		}
		return v
	}
	if v := extract(e.X, e.Y); v != nil {
		return v
	}
	return extract(e.Y, e.X)
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}
