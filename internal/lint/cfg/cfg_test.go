package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"meda/internal/lint/cfg"
)

// build parses src as the body of a function and returns its CFG.
func build(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body)
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\ny := x + 1\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should fall through to exit: %s", g)
	}
}

func TestIfElseJoin(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	e := g.Entry
	if e.Cond == nil {
		t.Fatalf("entry should end in a branch: %s", g)
	}
	if len(e.Succs) != 2 {
		t.Fatalf("branch block has %d succs, want 2: %s", len(e.Succs), g)
	}
	then, els := e.Succs[0], e.Succs[1]
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Errorf("then/else should rejoin at one block: %s", g)
	}
	join := then.Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Errorf("join should reach exit: %s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n}\n_ = x")
	e := g.Entry
	if len(e.Succs) != 2 {
		t.Fatalf("branch block has %d succs, want 2: %s", len(e.Succs), g)
	}
	then, join := e.Succs[0], e.Succs[1]
	if len(then.Succs) != 1 || then.Succs[0] != join {
		t.Errorf("then branch should fall into the false-edge block: %s", g)
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s")
	// entry(init) -> header(cond) -> {body, join}; body -> post -> header.
	header := g.Entry.Succs[0]
	if header.Cond == nil || len(header.Succs) != 2 {
		t.Fatalf("loop header malformed: %s", g)
	}
	body, join := header.Succs[0], header.Succs[1]
	if len(body.Succs) != 1 {
		t.Fatalf("body should continue to post: %s", g)
	}
	post := body.Succs[0]
	if len(post.Succs) != 1 || post.Succs[0] != header {
		t.Errorf("post should loop back to header: %s", g)
	}
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Errorf("loop exit should reach function exit: %s", g)
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := build(t, "for {\nbreak\n}\n_ = 1")
	header := g.Entry.Succs[0]
	if len(header.Succs) != 1 {
		t.Fatalf("condition-less header should only enter the body: %s", g)
	}
	// The break must reach a block that leads to exit.
	body := header.Succs[0]
	if len(body.Succs) != 1 {
		t.Fatalf("break should leave the loop: %s", g)
	}
	reached := reachable(body.Succs[0])
	if !reached[g.Exit] {
		t.Errorf("break target cannot reach exit: %s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, "xs := []int{1}\nt := 0\nfor _, x := range xs {\nt += x\n}\n_ = t")
	header := g.Entry.Succs[0]
	if len(header.Succs) != 2 {
		t.Fatalf("range header should branch body/join: %s", g)
	}
	// The header carries a synthetic assignment binding the iteration vars.
	found := false
	for _, n := range header.Nodes {
		if _, ok := n.(*ast.AssignStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("range header should hold the key/value binding: %s", g)
	}
	body := header.Succs[0]
	if len(body.Succs) != 1 || body.Succs[0] != header {
		t.Errorf("range body should loop back to header: %s", g)
	}
}

func TestReturnEdges(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	then := g.Entry.Succs[0]
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Errorf("return should edge straight to exit: %s", g)
	}
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit should have return + fall-off preds, got %d: %s", len(g.Exit.Preds), g)
	}
}

func TestSwitchClauses(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\ndefault:\nx = 4\n}\n_ = x")
	sw := g.Entry
	if len(sw.Succs) != 3 {
		t.Fatalf("switch with default should have one succ per clause, got %d: %s", len(sw.Succs), g)
	}
	join := sw.Succs[0].Succs[0]
	for i, c := range sw.Succs {
		if len(c.Succs) != 1 || c.Succs[0] != join {
			t.Errorf("clause %d should flow to the common join: %s", i, g)
		}
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\n}\n_ = x")
	sw := g.Entry
	if len(sw.Succs) != 2 {
		t.Fatalf("switch without default should also edge to join, got %d succs: %s", len(sw.Succs), g)
	}
}

func TestFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nfallthrough\ncase 2:\nx = 3\n}\n_ = x")
	sw := g.Entry
	c1 := sw.Succs[0]
	c2 := sw.Succs[1]
	ok := false
	for _, s := range c1.Succs {
		if s == c2 {
			ok = true
		}
	}
	if !ok {
		t.Errorf("fallthrough should edge from case 1 to case 2: %s", g)
	}
}

func TestSelectMarkers(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n_ = v\ndefault:\n}\n_ = ch")
	var sel *cfg.Select
	var comm *cfg.Comm
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *cfg.Select:
				sel = n
			case *cfg.Comm:
				comm = n
			}
		}
	}
	if sel == nil || comm == nil {
		t.Fatalf("select should leave Select and Comm markers: %s", g)
	}
	if sel.Blocking {
		t.Errorf("select with default should be non-blocking")
	}
	if sel.Pos() == token.NoPos || comm.Pos() == token.NoPos {
		t.Errorf("markers should carry positions")
	}

	g2 := build(t, "ch := make(chan int)\nselect {\ncase <-ch:\n}")
	blocking := false
	for _, b := range g2.Blocks {
		for _, n := range b.Nodes {
			if s, ok := n.(*cfg.Select); ok && s.Blocking {
				blocking = true
			}
		}
	}
	if !blocking {
		t.Errorf("select without default should be blocking: %s", g2)
	}
}

func TestGotoAndLabels(t *testing.T) {
	g := build(t, "x := 0\nloop:\nx++\nif x < 3 {\ngoto loop\n}\n_ = x")
	// The goto must create a cycle back to the labeled block.
	if !hasCycle(g) {
		t.Errorf("goto loop should create a cycle: %s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, "outer:\nfor i := 0; i < 3; i++ {\nfor {\nif i == 1 {\ncontinue outer\n}\nbreak outer\n}\n}")
	if !hasCycle(g) {
		t.Fatalf("labeled loop should cycle: %s", g)
	}
	// Everything reachable must still reach exit through labeled break.
	if !reachable(g.Entry)[g.Exit] {
		t.Errorf("labeled break should reach exit: %s", g)
	}
}

func TestReversePostorder(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\nfor x < 10 {\nx++\n}\n_ = x")
	order := g.ReversePostorder()
	if len(order) != len(g.Blocks) {
		t.Fatalf("RPO returned %d blocks, CFG has %d", len(order), len(g.Blocks))
	}
	pos := make(map[*cfg.Block]int, len(order))
	for i, b := range order {
		if _, dup := pos[b]; dup {
			t.Fatalf("block b%d repeated in RPO", b.Index)
		}
		pos[b] = i
	}
	if pos[g.Entry] != 0 {
		t.Errorf("entry should come first in RPO")
	}
	// Except for back edges, successors come after their predecessors.
	forward := 0
	for _, b := range order {
		for _, s := range b.Succs {
			if pos[s] > pos[b] {
				forward++
			}
		}
	}
	if forward == 0 {
		t.Errorf("RPO should order most edges forward: %s", g)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := build(t, "return\n_ = 1")
	order := g.ReversePostorder()
	if len(order) != len(g.Blocks) {
		t.Fatalf("unreachable blocks must still be visited")
	}
	dead := 0
	for _, b := range g.Blocks {
		if len(b.Preds) == 0 && b != g.Entry && len(b.Nodes) > 0 {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("want exactly one dead block holding the unreachable statement, got %d: %s", dead, g)
	}
}

func TestDeferAndGoStayInBlock(t *testing.T) {
	g := build(t, "defer func() {}()\ngo func() {}()\n_ = 1")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("defer/go are simple nodes, entry has %d nodes: %s", len(g.Entry.Nodes), g)
	}
}

func TestVisitUnwrapsMarkers(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase v := <-ch:\n_ = v\n}")
	idents := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Visit(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.Ident); ok {
					idents++
				}
				return true
			})
		}
	}
	if idents == 0 {
		t.Errorf("Visit should surface idents inside Comm markers")
	}
}

func TestString(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	s := g.String()
	if !strings.Contains(s, "b0[2]") {
		t.Errorf("String() = %q, want b0[2] entry", s)
	}
}

func reachable(from *cfg.Block) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{}
	var dfs func(*cfg.Block)
	dfs = func(b *cfg.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
	}
	dfs(from)
	return seen
}

func hasCycle(g *cfg.CFG) bool {
	state := make([]int, len(g.Blocks)) // 0 unvisited, 1 in progress, 2 done
	var dfs func(*cfg.Block) bool
	dfs = func(b *cfg.Block) bool {
		state[b.Index] = 1
		for _, s := range b.Succs {
			if state[s.Index] == 1 {
				return true
			}
			if state[s.Index] == 0 && dfs(s) {
				return true
			}
		}
		state[b.Index] = 2
		return false
	}
	return dfs(g.Entry)
}
