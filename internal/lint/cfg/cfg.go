// Package cfg builds per-function control-flow graphs over go/ast for the
// medalint dataflow analyzers. A CFG decomposes one function body into
// basic blocks of "simple" nodes — expressions and uncomposed statements —
// connected by the edges the composite statements induce: if/else, for and
// range loops, switch and select dispatch, break/continue/goto/fallthrough,
// and return. Function literals are opaque: a closure's body never joins
// the enclosing function's graph (it runs at call time, on whatever
// goroutine calls it), so analyzers schedule each literal as its own CFG.
//
// The graph is deliberately simpler than golang.org/x/tools/go/cfg where
// the medalint analyzers don't need the precision: panics and runtime
// aborts are not modeled, and unreachable code after a terminal statement
// is kept in blocks with no predecessors so analyzers still visit it.
//
// Two marker node types appear in blocks alongside standard ast nodes.
// *Select stands for the decision point of a select statement (its clause
// bodies get their own blocks), carrying whether the select can block; and
// *Comm wraps a clause's communication statement, whose channel operation
// is resolved by the select itself rather than blocking where it appears.
// Analyzers walk block nodes through Visit, which unwraps both.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block in creation order; Blocks[0] is the entry.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is a synthetic empty block: every return statement and the
	// fall-off-the-end path lead here, giving backward analyses a single
	// boundary block.
	Exit *Block
}

// Block is one basic block: nodes that execute sequentially, with control
// transferring to one of Succs afterwards.
type Block struct {
	Index int
	// Nodes are the block's statements and expressions in execution order.
	// Entries are standard go/ast nodes except for the *Select and *Comm
	// markers; walk them with Visit.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Cond, when non-nil, is the branch condition evaluated at the end of
	// the block: Succs[0] is the true edge and Succs[1] the false edge.
	// Cond also appears as the last entry of Nodes, so transfer functions
	// see its reads; edge-sensitive analyses refine on it per successor.
	Cond ast.Expr
}

// Select marks the decision point of a select statement. The clause bodies
// (and their communication statements) live in successor blocks; the marker
// records whether the statement can block the goroutine (no default
// clause).
type Select struct {
	Stmt *ast.SelectStmt
	// Blocking is true when the select has no default clause.
	Blocking bool
}

// Pos implements ast.Node.
func (s *Select) Pos() token.Pos { return s.Stmt.Pos() }

// End implements ast.Node.
func (s *Select) End() token.Pos { return s.Stmt.End() }

// Comm wraps the communication statement of a select clause (the send,
// receive, or receive-assignment in the case header). It executes only
// after the select chose its clause, so its channel operation does not
// itself block.
type Comm struct {
	Stmt ast.Stmt
}

// Pos implements ast.Node.
func (c *Comm) Pos() token.Pos { return c.Stmt.Pos() }

// End implements ast.Node.
func (c *Comm) End() token.Pos { return c.Stmt.End() }

// Visit walks the standard go/ast content of one block node in depth-first
// order, unwrapping the cfg marker nodes (a *Select has no standard
// content; a *Comm yields its statement). f follows the ast.Inspect
// contract: returning false prunes the subtree.
func Visit(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case *Select:
		// Clause bodies live in their own blocks.
	case *Comm:
		ast.Inspect(n.Stmt, f)
	default:
		ast.Inspect(n, f)
	}
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmt(body)
	b.jump(b.cur, g.Exit)
	return g
}

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder (every block before its successors, loops aside), followed by
// any unreachable blocks in index order so analyzers still visit dead code.
func (g *CFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	order := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			order = append(order, b)
		}
	}
	return order
}

// String renders the graph structure for tests and debugging: one line per
// block with its node count and successor indices.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%d]", b.Index, len(b.Nodes))
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// labelInfo tracks one label: the block a goto jumps to, plus the targets
// labeled break/continue resolve to while the labeled statement builds.
type labelInfo struct {
	block      *Block
	breakTo    *Block
	continueTo *Block
}

// frame is one enclosing breakable construct (loop, switch, select).
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type builder struct {
	g      *CFG
	cur    *Block
	frames []frame
	labels map[string]*labelInfo
	// curLabel is the pending label of the statement being built, consumed
	// by the next loop/switch/select so labeled break/continue resolve.
	curLabel string
	// fallTo is the next case block during switch clause construction,
	// targeted by fallthrough statements.
	fallTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) jump(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// terminate ends the current block with no fallthrough successor; nodes
// after a return/break/continue/goto land in a fresh block with no preds.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

// findBreak returns the break target for an optional label.
func (b *builder) findBreak(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil && li.breakTo != nil {
			return li.breakTo
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		return b.frames[i].breakTo
	}
	return nil
}

// findContinue returns the continue target for an optional label.
func (b *builder) findContinue(label string) *Block {
	if label != "" {
		if li := b.labels[label]; li != nil {
			return li.continueTo
		}
		return nil
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		if b.frames[i].continueTo != nil {
			return b.frames[i].continueTo
		}
	}
	return nil
}

// labelFor returns (creating on first use) the info for a label, so both
// forward and backward gotos resolve to the same block.
func (b *builder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.jump(b.cur, li.block)
		b.cur = li.block
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.switchStmt(caseClauses(s.Body), b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.switchStmt(caseClauses(s.Body), b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.g.Exit)
		b.terminate()
	default:
		// Simple statements: declarations, assignments, expression and
		// send statements, defer/go, increments, empties.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond
	then := b.newBlock()
	b.jump(cond, then) // Succs[0]: true edge
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	if s.Else != nil {
		elseB := b.newBlock()
		b.jump(cond, elseB) // Succs[1]: false edge
		b.cur = elseB
		b.stmt(s.Else)
		elseEnd := b.cur
		join := b.newBlock()
		b.jump(thenEnd, join)
		b.jump(elseEnd, join)
		b.cur = join
		return
	}
	join := b.newBlock()
	b.jump(cond, join) // Succs[1]: false edge
	b.jump(thenEnd, join)
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	b.add(s.Init)
	header := b.newBlock()
	b.jump(b.cur, header)
	join := b.newBlock()
	continueTo := header
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.jump(post, header)
		continueTo = post
	}
	body := b.newBlock()
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
		header.Cond = s.Cond
		b.jump(header, body) // true edge
		b.jump(header, join) // false edge
	} else {
		b.jump(header, body)
	}
	if label != "" {
		li := b.labelFor(label)
		li.breakTo, li.continueTo = join, continueTo
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: continueTo})
	b.cur = body
	b.stmt(s.Body)
	b.jump(b.cur, continueTo)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	header := b.newBlock()
	b.jump(b.cur, header)
	// Model the per-iteration key/value binding as an assignment from the
	// ranged expression so dataflow analyses see the definitions. The
	// synthetic node reuses the original sub-expressions, so type
	// information stays resolvable.
	if s.Key != nil && (s.Tok == token.DEFINE || s.Tok == token.ASSIGN) {
		lhs := []ast.Expr{s.Key}
		if s.Value != nil {
			lhs = append(lhs, s.Value)
		}
		header.Nodes = append(header.Nodes, &ast.AssignStmt{
			Lhs: lhs, TokPos: s.TokPos, Tok: s.Tok, Rhs: []ast.Expr{s.X},
		})
	}
	body := b.newBlock()
	join := b.newBlock()
	b.jump(header, body)
	b.jump(header, join)
	if label != "" {
		li := b.labelFor(label)
		li.breakTo, li.continueTo = join, header
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: header})
	b.cur = body
	b.stmt(s.Body)
	b.jump(b.cur, header)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// caseClauses extracts the clauses of a switch body (both expression and
// type switches use *ast.CaseClause).
func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	cs := make([]*ast.CaseClause, 0, len(body.List))
	for _, st := range body.List {
		if c, ok := st.(*ast.CaseClause); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

func (b *builder) switchStmt(clauses []*ast.CaseClause, label string) {
	sw := b.cur
	join := b.newBlock()
	if label != "" {
		li := b.labelFor(label)
		li.breakTo = join
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join})
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.jump(sw, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.jump(sw, join)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.add(e)
		}
		b.fallTo = nil
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.fallTo = nil
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	blocking := true
	for _, st := range s.Body.List {
		if c, ok := st.(*ast.CommClause); ok && c.Comm == nil {
			blocking = false
		}
	}
	b.add(&Select{Stmt: s, Blocking: blocking})
	sw := b.cur
	join := b.newBlock()
	if label != "" {
		li := b.labelFor(label)
		li.breakTo = join
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join})
	n := 0
	for _, st := range s.Body.List {
		c, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		n++
		caseB := b.newBlock()
		b.jump(sw, caseB)
		b.cur = caseB
		if c.Comm != nil {
			b.add(&Comm{Stmt: c.Comm})
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.jump(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if n == 0 {
		// select{} blocks forever; join is unreachable.
		b.terminate()
		return
	}
	b.cur = join
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	var target *Block
	switch s.Tok {
	case token.BREAK:
		target = b.findBreak(label)
	case token.CONTINUE:
		target = b.findContinue(label)
	case token.GOTO:
		if s.Label != nil {
			target = b.labelFor(s.Label.Name).block
		}
	case token.FALLTHROUGH:
		target = b.fallTo
	}
	b.add(s)
	if target != nil {
		b.jump(b.cur, target)
	}
	b.terminate()
}
