package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
	"meda/internal/lint/summary"
)

// ChanProtocol enforces the channel-ownership discipline the shutdown
// paths depend on, in three rules:
//
//   - double-close: a channel closed twice on some path panics at runtime.
//     The check is flow-sensitive (a forward dataflow over the function's
//     CFG tracks the closed set, so a close inside a loop or on both
//     branches of a join is caught) and interprocedural: a helper that
//     closes its parameter — in this package or, via Facts, any upstream
//     one — counts as a close at the call site.
//   - close-by-receiver: only the sending side may close a channel
//     (receivers cannot know whether a send is in flight; closing from the
//     consumer races send-on-closed-channel panics). A scope that receives
//     from a channel and closes it without ever sending on it is flagged.
//   - WaitGroup.Add inside the waited goroutine: `go func() { wg.Add(1);
//     … }` races wg.Wait — the Wait can pass before the goroutine is
//     scheduled. Add must happen on the launching side, before the go
//     statement.
var ChanProtocol = &analysis.Analyzer{
	Name: "chanprotocol",
	Doc:  "flags double-close, close-by-receiver, and WaitGroup.Add inside the waited goroutine",
	Run:  runChanProtocol,
}

func runChanProtocol(pass *analysis.Pass) error {
	sums := summary.Compute(pass)
	for _, fb := range funcBodies(pass) {
		runDoubleClose(pass, sums, fb)
		runCloseByReceiver(pass, fb)
	}
	runWaitGroupAdd(pass)
	return nil
}

type closedFact = dataflow.VarSet[*types.Var, token.Pos]

// runDoubleClose solves the closed-channel-set problem over one body and
// reports closes of already-closed channels.
func runDoubleClose(pass *analysis.Pass, sums summary.Summaries, fb funcBody) {
	info := pass.TypesInfo
	escaped := escapedVars(info, fb.Body)
	g := cfg.New(fb.Body)
	lat := dataflow.VarSetLattice[*types.Var, token.Pos]{}

	trackable := func(v *types.Var) bool {
		return v != nil && !escaped[v] && isChannelType(v.Type())
	}

	// closesAt returns the channel variable a node closes (directly or via
	// a summarized callee) along with the position of the closing
	// operation, or nil.
	closesAt := func(n ast.Node) (vs []*types.Var, poss []token.Pos) {
		visitShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "close" && len(call.Args) == 1 {
						if v := localVar(info, call.Args[0]); trackable(v) {
							vs = append(vs, v)
							poss = append(poss, call.Pos())
						}
					}
					return true
				}
			}
			for ai, arg := range call.Args {
				v := localVar(info, arg)
				if !trackable(v) {
					continue
				}
				if ops, known := calleeParamOps(pass, sums, call, ai); known && ops.Has(summary.OpClose) {
					vs = append(vs, v)
					poss = append(poss, call.Pos())
				}
			}
			return true
		})
		return vs, poss
	}

	step := func(fact closedFact, n ast.Node, report bool) closedFact {
		// A re-make resets the channel's protocol state.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if v := localVar(info, lhs); v != nil {
					fact = fact.Without(v)
				}
			}
		}
		vs, poss := closesAt(n)
		for i, v := range vs {
			if prev, closed := fact[v]; closed {
				if report {
					pass.Reportf(poss[i], "%s may already be closed (closed at %s): double close panics",
						v.Name(), pass.Fset.Position(prev))
				}
				continue
			}
			fact = fact.With(v, poss[i])
		}
		return fact
	}

	transfer := func(b *cfg.Block, in closedFact) closedFact {
		for _, n := range b.Nodes {
			in = step(in, n, false)
		}
		return in
	}

	res := dataflow.Forward[closedFact](g, lat, nil, transfer, nil)
	for _, b := range g.Blocks {
		fact := res.In[b]
		for _, n := range b.Nodes {
			fact = step(fact, n, true)
		}
	}
}

// runCloseByReceiver flags scopes that close a channel they receive from
// without ever sending on it. Sends anywhere in the body — including
// nested literals, which often are the producer goroutine — count as
// ownership and silence the rule.
func runCloseByReceiver(pass *analysis.Pass, fb funcBody) {
	info := pass.TypesInfo
	type usage struct {
		recv, send bool
		closePos   []token.Pos
	}
	uses := make(map[*types.Var]*usage)
	get := func(v *types.Var) *usage {
		if v == nil || !isChannelType(v.Type()) {
			return nil
		}
		u := uses[v]
		if u == nil {
			u = &usage{}
			uses[v] = u
		}
		return u
	}
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if u := get(localVar(info, n.Chan)); u != nil {
				u.send = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if u := get(localVar(info, n.X)); u != nil {
					u.recv = true
				}
			}
		case *ast.RangeStmt:
			if isChannelType(info.Types[n.X].Type) {
				if u := get(localVar(info, n.X)); u != nil {
					u.recv = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					if u := get(localVar(info, n.Args[0])); u != nil {
						u.closePos = append(u.closePos, n.Pos())
					}
				}
			}
		}
		return true
	})
	for v, u := range uses {
		if u.recv && !u.send && len(u.closePos) > 0 {
			for _, pos := range u.closePos {
				pass.Reportf(pos, "%s is closed by its receiver: only the sending side may close a channel", v.Name())
			}
		}
	}
}

// runWaitGroupAdd flags wg.Add calls inside go-launched function literals
// on a WaitGroup captured from the launching scope.
func runWaitGroupAdd(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			// Variables declared inside the literal are its own; a captured
			// WaitGroup is any other one.
			declared := make(map[*types.Var]bool)
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						declared[v] = true
					}
				}
				return true
			})
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				s := info.Selections[sel]
				if s == nil || !isWaitGroup(s.Recv()) {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && !declared[v] {
						pass.Reportf(call.Pos(),
							"WaitGroup.Add inside the goroutine it counts races Wait: call Add before the go statement")
					}
				}
				return true
			})
			return true
		})
	}
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
