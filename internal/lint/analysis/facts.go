package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a piece of information an analyzer derives about a package-level
// object (a function, method, type, or variable) or about a package as a
// whole, exported during one package's pass and importable by passes over
// packages analyzed later. It mirrors golang.org/x/tools/go/analysis.Fact
// with one simplification: facts live in an in-memory FactStore shared by
// one driver run (no gob serialization), keyed by the object's package
// path and qualified name rather than by objectpath — sufficient for the
// package-level contracts medalint checks (e.g. lockheld's "may block"
// facts on exported functions), and honest about its limits: facts can be
// attached only to package-level objects and methods, never to locals.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// FactStore carries facts across the packages of one driver run. The
// driver analyzes packages in dependency order (imports first), so a pass
// importing a fact about synth.Pool.Wait finds what the pass over
// meda/internal/synth exported. The store is not safe for concurrent use;
// the driver runs passes sequentially.
type FactStore struct {
	objects  map[objectFactKey]Fact
	packages map[packageFactKey]Fact
}

type objectFactKey struct {
	obj string // canonical object key: "pkg/path.Recv.Name"
	typ reflect.Type
}

type packageFactKey struct {
	path string
	typ  reflect.Type
}

// NewFactStore returns an empty store for one driver run.
func NewFactStore() *FactStore {
	return &FactStore{
		objects:  make(map[objectFactKey]Fact),
		packages: make(map[packageFactKey]Fact),
	}
}

// ObjectKey canonicalizes a package-level object (or method) to the key
// facts are stored under: "pkg/path.Name" for package-level objects,
// "pkg/path.Recv.Name" for methods (pointer receivers are normalized to
// their element type). It reports false for objects facts cannot attach to
// — locals, blanks, objects without a package.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "" || obj.Name() == "_" {
		return "", false
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok {
				return "", false // method on an unnamed receiver
			}
			return obj.Pkg().Path() + "." + named.Obj().Name() + "." + name, true
		}
		// Package-level function.
		return obj.Pkg().Path() + "." + name, true
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false // local
	}
	return obj.Pkg().Path() + "." + name, true
}

// factType validates the concrete type of a fact: it must be a non-nil
// pointer so Import can copy into the caller's variable.
func factType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("analysis: fact %T must be a pointer", fact))
	}
	return t
}

// copyFact copies src's pointee into dst (both *T for the same T).
func copyFact(dst, src Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// ExportObjectFact records a fact about obj, replacing any existing fact
// of the same type. No-op (returning false) when the object cannot carry
// facts or the pass has no store.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	p.Facts.objects[objectFactKey{key, factType(fact)}] = fact
	return true
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported about obj, reporting whether one was found. Safe on a pass
// without a store (reports false).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	src, ok := p.Facts.objects[objectFactKey{key, factType(fact)}]
	if !ok {
		return false
	}
	copyFact(fact, src)
	return true
}

// ExportPackageFact records a fact about the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) bool {
	if p.Facts == nil || p.Pkg == nil {
		return false
	}
	p.Facts.packages[packageFactKey{p.Pkg.Path(), factType(fact)}] = fact
	return true
}

// ImportPackageFact copies into fact the fact of fact's type previously
// exported about pkg, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	src, ok := p.Facts.packages[packageFactKey{pkg.Path(), factType(fact)}]
	if !ok {
		return false
	}
	copyFact(fact, src)
	return true
}

// ObjectFactRecord is one exported object fact in serializable form: the
// canonical object key plus the fact value. The incremental cache stores
// these per package and injects them back on a warm run.
type ObjectFactRecord struct {
	Key  string
	Fact Fact
}

// ObjectFactsOf returns the object facts attached to objects of the
// package at path, sorted by key then fact type name — the deterministic
// slice the incremental cache persists. An object's key is prefixed by its
// package path ("pkg/path.Name"), and every analyzer exports facts only
// about objects of the package under analysis, so the prefix identifies
// the exporting pass.
func (s *FactStore) ObjectFactsOf(path string) []ObjectFactRecord {
	prefix := path + "."
	var out []ObjectFactRecord
	for k, f := range s.objects {
		if strings.HasPrefix(k.obj, prefix) && !strings.Contains(k.obj[len(prefix):], "/") {
			out = append(out, ObjectFactRecord{Key: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}

// PackageFactsOf returns the whole-package facts of the package at path,
// sorted by fact type name.
func (s *FactStore) PackageFactsOf(path string) []Fact {
	var out []Fact
	for k, f := range s.packages {
		if k.path == path {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return reflect.TypeOf(out[i]).String() < reflect.TypeOf(out[j]).String()
	})
	return out
}

// InjectObjectFact stores a fact under a pre-canonicalized object key —
// the cache's warm-path replacement for ExportObjectFact, which needs a
// live types.Object the skipped load never produced.
func (s *FactStore) InjectObjectFact(key string, fact Fact) {
	s.objects[objectFactKey{key, factType(fact)}] = fact
}

// InjectPackageFact stores a whole-package fact for the package at path.
func (s *FactStore) InjectPackageFact(path string, fact Fact) {
	s.packages[packageFactKey{path, factType(fact)}] = fact
}

// AllObjectKeys returns the sorted object keys holding a fact of the same
// type as fact — a debugging/testing aid.
func (s *FactStore) AllObjectKeys(fact Fact) []string {
	t := factType(fact)
	var keys []string
	for k := range s.objects {
		if k.typ == t {
			keys = append(keys, k.obj)
		}
	}
	sort.Strings(keys)
	return keys
}
