// Package analysistest runs an analyzer over a golden testdata package and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest convention: a comment
//
//	x := a == b // want `float equality`
//
// expects exactly one diagnostic on that line whose message matches the
// (Go-quoted or backquoted) regular expression; several expectations may be
// listed on one line. Diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"meda/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("^//\\s*want\\s+(.*)$")
var argRE = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the package in dir, applies the analyzer, and reports any
// mismatch between its diagnostics and the package's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Collect expectations, keyed by file:line.
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest := m[1]
				for {
					am := argRE.FindStringSubmatch(rest)
					if am == nil {
						break
					}
					rest = rest[len(am[0]):]
					lit := am[1]
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else if pat, err = strconv.Unquote(lit); err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	diags := Diagnostics(t, pkg, a)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		ok := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// Diagnostics applies the analyzer to a loaded package and returns its
// findings with Category filled in. The pass gets a fresh fact store, so
// fact-producing analyzers see their own intra-package exports.
func Diagnostics(t *testing.T, pkg *analysis.Package, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     analysis.NewFactStore(),
		Report: func(d analysis.Diagnostic) {
			d.Category = a.Name
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	return diags
}
