package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module. The
// package under analysis is always checked from source; its imports are
// satisfied from the toolchain's export data, located with `go list
// -export` (a purely local operation against the build cache), so loading
// needs no network and no third-party machinery.
type Loader struct {
	ModRoot string
	modPath string
	fset    *token.FileSet
	exports map[string]string // import path → export data file
	warmed  bool              // bulk export warmup has run
	gc      types.Importer
	cache   map[string]*Package // by absolute dir
}

// NewLoader returns a loader rooted at the module containing dir (dir
// itself or an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModRoot: root,
		modPath: modPath,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		cache:   make(map[string]*Package),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l, nil
}

// warmExports fills the export map with every dependency of the module in
// one go list run. It runs lazily, on the first export-data miss, so a
// driver whose packages all come out of the incremental cache never pays
// for building export data at all; stragglers (imports that only testdata
// packages use) are still resolved per-path by exportFile.
func (l *Loader) warmExports() {
	if l.warmed {
		return
	}
	l.warmed = true
	out, err := l.golist("list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	if err == nil {
		for _, line := range strings.Split(out, "\n") {
			if path, file, ok := strings.Cut(line, "\t"); ok && file != "" {
				l.exports[path] = file
			}
		}
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

func (l *Loader) golist(args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModRoot
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, ee.Stderr)
		}
		return "", fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
	}
	return strings.TrimSpace(string(out)), nil
}

// exportFile locates the export data of an import path, asking the go
// command to (re)build it into the build cache on a cache miss.
func (l *Loader) exportFile(path string) (string, error) {
	if f, ok := l.exports[path]; ok {
		return f, nil
	}
	if l.warmExports(); l.exports[path] != "" {
		return l.exports[path], nil
	}
	out, err := l.golist("list", "-export", "-f", "{{.Export}}", "--", path)
	if err != nil {
		return "", err
	}
	if out == "" {
		return "", fmt.Errorf("analysis: no export data for %q", path)
	}
	l.exports[path] = out
	return out, nil
}

// lookup feeds the gc importer from the build cache.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	f, err := l.exportFile(path)
	if err != nil {
		return nil, err
	}
	return os.Open(f)
}

// Import implements types.Importer for the packages under analysis.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.gc.Import(path)
}

// Dirs expands go package patterns (./..., specific import paths, or
// directory arguments) into package directories, in go list order.
func (l *Loader) Dirs(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-f", "{{.Dir}}", "--"}, patterns...)
	out, err := l.golist(args...)
	if err != nil {
		return nil, err
	}
	if out == "" {
		return nil, nil
	}
	return strings.Split(out, "\n"), nil
}

// PkgMeta is the go list metadata of one package, gathered without parsing
// or type-checking it — the inputs the incremental cache keys on.
type PkgMeta struct {
	Path    string
	Dir     string
	GoFiles []string // build-included non-test sources, base names
	Imports []string
	// Internal marks packages of the enclosing module; only those
	// participate in dependency ordering and cache keys (the standard
	// library changes only with the toolchain, which salts the key).
	Internal bool
}

// PackagesInDependencyOrder expands patterns into package metadata, ordered
// so every matched package appears after the matched packages it imports.
// Drivers that propagate Facts across packages analyze in this order, so a
// pass importing a fact about an upstream package finds what the upstream
// pass exported. Ties keep go list order, making the output deterministic.
// The second result maps every module-internal package in the matched
// set's import closure (matched or not) to its metadata, so cache keys can
// include the content of upstream packages outside the matched set.
func (l *Loader) PackagesInDependencyOrder(patterns ...string) ([]*PkgMeta, map[string]*PkgMeta, error) {
	const format = "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}\t{{range .Imports}}{{.}} {{end}}"
	parse := func(out string) ([]*PkgMeta, error) {
		var metas []*PkgMeta
		if out == "" {
			return nil, nil
		}
		for _, line := range strings.Split(out, "\n") {
			parts := strings.SplitN(line, "\t", 4)
			if len(parts) < 2 {
				return nil, fmt.Errorf("analysis: malformed go list line %q", line)
			}
			m := &PkgMeta{Path: parts[0], Dir: parts[1]}
			// Trailing fields vanish entirely for an import-free package at
			// the end of the output (TrimSpace eats trailing tabs).
			if len(parts) > 2 {
				m.GoFiles = strings.Fields(parts[2])
			}
			if len(parts) > 3 {
				m.Imports = strings.Fields(parts[3])
			}
			m.Internal = m.Path == l.modPath || strings.HasPrefix(m.Path, l.modPath+"/")
			metas = append(metas, m)
		}
		return metas, nil
	}

	out, err := l.golist(append([]string{"list", "-f", format, "--"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	matched, err := parse(out)
	if err != nil {
		return nil, nil, err
	}
	out, err = l.golist(append([]string{"list", "-deps", "-f", format, "--"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	closureList, err := parse(out)
	if err != nil {
		return nil, nil, err
	}
	closure := make(map[string]*PkgMeta, len(closureList))
	for _, m := range closureList {
		if m.Internal {
			closure[m.Path] = m
		}
	}

	inMatch := make(map[string]*PkgMeta, len(matched))
	for _, m := range matched {
		inMatch[m.Path] = m
	}
	var ordered []*PkgMeta
	visited := make(map[string]bool, len(matched))
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		m, ok := inMatch[path]
		if !ok {
			return // import outside the matched set
		}
		for _, imp := range m.Imports {
			visit(imp)
		}
		ordered = append(ordered, m)
	}
	for _, m := range matched {
		visit(m.Path)
	}
	return ordered, closure, nil
}

// DirsInDependencyOrder expands patterns like Dirs but orders the result
// so every package appears after the packages it imports (restricted to
// the matched set).
func (l *Loader) DirsInDependencyOrder(patterns ...string) ([]string, error) {
	metas, _, err := l.PackagesInDependencyOrder(patterns...)
	if err != nil {
		return nil, err
	}
	dirs := make([]string, len(metas))
	for i, m := range metas {
		dirs[i] = m.Dir
	}
	return dirs, nil
}

// LoadDir parses and type-checks the package in dir. Build constraints are
// honored and _test.go files are excluded, matching what ships in the
// binary. Results are memoized per directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.cache[abs]; ok {
		return p, nil
	}
	ctx := build.Default
	bp, err := ctx.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	path := l.importPathFor(abs)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []string
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err.Error()) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s failed:\n  %s", path, strings.Join(terrs, "\n  "))
	}
	p := &Package{Path: path, Dir: abs, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[abs] = p
	return p, nil
}

// importPathFor derives the import path of a directory inside the module;
// directories outside it (never the case in practice) keep their base name.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(abs)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}
