// Package analysis is an offline stand-in for the golang.org/x/tools
// go/analysis framework: it defines the same Analyzer / Pass / Diagnostic
// contract (pinned to the v0.24.0 API shape) on top of the standard
// library's go/ast and go/types only, so the medalint suite builds
// hermetically without network access to the x/tools module. Analyzers
// written against this package port to the upstream framework by swapping
// the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single type-checked
// package through its Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters. It
	// must be a valid identifier.
	Name string
	// Doc is the one-line description shown by medalint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled in by the driver
	Message  string
}

// Pass carries one type-checked package through an analyzer run. The same
// fields exist on the upstream go/analysis Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records a diagnostic; the driver fills in Category.
	Report func(Diagnostic)
	// Facts is the cross-package fact store of the driver run (see
	// facts.go); nil when the driver does not propagate facts. The
	// Export/Import methods are nil-safe.
	Facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
