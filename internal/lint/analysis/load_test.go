package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestNewLoaderOutsideModule(t *testing.T) {
	_, err := NewLoader(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("NewLoader outside a module: got %v, want a no-go.mod error", err)
	}
}

func TestNewLoaderModuleDirectiveMissing(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "// not a module directive\n")
	_, err := NewLoader(dir)
	if err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("NewLoader with an empty go.mod: got %v, want a module-directive error", err)
	}
}

func TestLoadDirWithoutGoFiles(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir on a directory with no Go files: got nil error")
	}
}

func TestLoadDirTypeError(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write(t, dir, "bad.go", "package bad\n\nfunc f() { undeclared() }\n")
	_, err = l.LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("LoadDir on an ill-typed package: got %v, want a type-checking error", err)
	}
	if !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("type error does not mention the offending identifier: %v", err)
	}
}

func TestLoadDirUnresolvableImport(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write(t, dir, "imp.go", "package imp\n\nimport _ \"example.invalid/no/such/module\"\n")
	if _, err := l.LoadDir(dir); err == nil {
		t.Fatal("LoadDir importing an unresolvable module: got nil error")
	}
}

func TestDirsBadPattern(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Dirs("./no/such/dir/anywhere"); err == nil {
		t.Fatal("Dirs on a nonexistent pattern: got nil error")
	}
	if _, err := l.DirsInDependencyOrder("./no/such/dir/anywhere"); err == nil {
		t.Fatal("DirsInDependencyOrder on a nonexistent pattern: got nil error")
	}
}

// TestDirsInDependencyOrder: dataflow imports cfg, so cfg's directory must
// come first however the patterns are ordered.
func TestDirsInDependencyOrder(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.DirsInDependencyOrder("./internal/lint/dataflow", "./internal/lint/cfg")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d dirs, want 2: %v", len(dirs), dirs)
	}
	if filepath.Base(dirs[0]) != "cfg" || filepath.Base(dirs[1]) != "dataflow" {
		t.Errorf("dependency order wrong: %v (want cfg before dataflow)", dirs)
	}
}

func TestLoadDirMemoizes(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := l.LoadDir(filepath.Join(l.ModRoot, "internal", "lint", "cfg"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.LoadDir(filepath.Join(l.ModRoot, "internal", "lint", "cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("LoadDir did not memoize the package")
	}
	if p1.Path != "meda/internal/lint/cfg" {
		t.Errorf("import path = %q, want meda/internal/lint/cfg", p1.Path)
	}
}
