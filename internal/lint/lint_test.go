package lint_test

import (
	"path/filepath"
	"testing"

	"meda/internal/lint"
	"meda/internal/lint/analysis/analysistest"
)

func testdata(name string) string { return filepath.Join("testdata", name) }

func TestFloatCmp(t *testing.T)    { analysistest.Run(t, testdata("floatcmp"), lint.FloatCmp) }
func TestChipAccess(t *testing.T)  { analysistest.Run(t, testdata("chipaccess"), lint.ChipAccess) }
func TestCtxCancel(t *testing.T)   { analysistest.Run(t, testdata("ctxcancel"), lint.CtxCancel) }
func TestProbLiteral(t *testing.T) { analysistest.Run(t, testdata("probliteral"), lint.ProbLiteral) }
func TestLockOrder(t *testing.T)   { analysistest.Run(t, testdata("lockorder"), lint.LockOrder) }

// TestSuiteRegistry: the multichecker exposes exactly the five analyzers,
// each named and documented.
func TestSuiteRegistry(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 5 {
		t.Fatalf("Analyzers() returned %d analyzers, want 5", len(as))
	}
	want := map[string]bool{
		"floatcmp": true, "chipaccess": true, "ctxcancel": true,
		"probliteral": true, "lockorder": true,
	}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}

// TestRunOnCleanTree: the full suite over the real module must be clean —
// this is the make lint gate in test form.
func TestRunOnCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	findings, err := lint.Run(".", []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
