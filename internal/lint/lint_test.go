package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"meda/internal/lint"
	"meda/internal/lint/analysis"
	"meda/internal/lint/analysis/analysistest"
)

func testdata(name string) string { return filepath.Join("testdata", name) }

func TestFloatCmp(t *testing.T)     { analysistest.Run(t, testdata("floatcmp"), lint.FloatCmp) }
func TestChipAccess(t *testing.T)   { analysistest.Run(t, testdata("chipaccess"), lint.ChipAccess) }
func TestCtxCancel(t *testing.T)    { analysistest.Run(t, testdata("ctxcancel"), lint.CtxCancel) }
func TestProbLiteral(t *testing.T)  { analysistest.Run(t, testdata("probliteral"), lint.ProbLiteral) }
func TestLockOrder(t *testing.T)    { analysistest.Run(t, testdata("lockorder"), lint.LockOrder) }
func TestNilStrategy(t *testing.T)  { analysistest.Run(t, testdata("nilstrategy"), lint.NilStrategy) }
func TestErrFlow(t *testing.T)      { analysistest.Run(t, testdata("errflow"), lint.ErrFlow) }
func TestSnapshotFlow(t *testing.T) { analysistest.Run(t, testdata("snapshotflow"), lint.SnapshotFlow) }
func TestLockHeld(t *testing.T)     { analysistest.Run(t, testdata("lockheld"), lint.LockHeld) }

// TestLockHeldCrossPackageFacts drives the full Run pipeline over the
// provider/consumer golden pair: the finding in consumer exists only when
// the driver analyzes provider first and shares its MayBlock facts.
func TestLockHeldCrossPackageFacts(t *testing.T) {
	findings, err := lint.Run(".", []string{
		// Deliberately listed consumer-first: the driver must reorder to
		// dependency order on its own.
		"./internal/lint/testdata/lockheldfacts/consumer",
		"./internal/lint/testdata/lockheldfacts/provider",
	}, []*analysis.Analyzer{lint.LockHeld})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lockheld" {
		t.Errorf("finding analyzer = %q, want lockheld", f.Analyzer)
	}
	if !strings.Contains(f.Message, "provider.Blocks") || !strings.Contains(f.Message, "channel receive") {
		t.Errorf("finding message %q does not name the imported blocking function", f.Message)
	}
	if !strings.HasSuffix(f.Pos.Filename, "consumer.go") {
		t.Errorf("finding at %s, want it inside consumer.go", f.Pos)
	}
}

// TestSuiteRegistry: the multichecker exposes exactly the nine analyzers,
// each named and documented.
func TestSuiteRegistry(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 9 {
		t.Fatalf("Analyzers() returned %d analyzers, want 9", len(as))
	}
	want := map[string]bool{
		"floatcmp": true, "chipaccess": true, "ctxcancel": true,
		"probliteral": true, "lockorder": true, "nilstrategy": true,
		"errflow": true, "snapshotflow": true, "lockheld": true,
	}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}

// TestRunOnCleanTree: the full suite over the real module must be clean —
// this is the make lint gate in test form.
func TestRunOnCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	findings, err := lint.Run(".", []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
