package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"meda/internal/lint"
	"meda/internal/lint/analysis"
	"meda/internal/lint/analysis/analysistest"
)

func testdata(name string) string { return filepath.Join("testdata", name) }

func TestFloatCmp(t *testing.T)     { analysistest.Run(t, testdata("floatcmp"), lint.FloatCmp) }
func TestChipAccess(t *testing.T)   { analysistest.Run(t, testdata("chipaccess"), lint.ChipAccess) }
func TestCtxCancel(t *testing.T)    { analysistest.Run(t, testdata("ctxcancel"), lint.CtxCancel) }
func TestLockOrder(t *testing.T)    { analysistest.Run(t, testdata("lockorder"), lint.LockOrder) }
func TestNilStrategy(t *testing.T)  { analysistest.Run(t, testdata("nilstrategy"), lint.NilStrategy) }
func TestErrFlow(t *testing.T)      { analysistest.Run(t, testdata("errflow"), lint.ErrFlow) }
func TestSnapshotFlow(t *testing.T) { analysistest.Run(t, testdata("snapshotflow"), lint.SnapshotFlow) }
func TestLockHeld(t *testing.T)     { analysistest.Run(t, testdata("lockheld"), lint.LockHeld) }

func TestDetPure(t *testing.T) { analysistest.Run(t, testdata("detpure"), lint.DetPure) }
func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, testdata("goroutineleak"), lint.GoroutineLeak)
}
func TestChanProtocol(t *testing.T) { analysistest.Run(t, testdata("chanprotocol"), lint.ChanProtocol) }

func TestGridBounds(t *testing.T) { analysistest.Run(t, testdata("gridbounds"), lint.GridBounds) }
func TestProbFlow(t *testing.T)   { analysistest.Run(t, testdata("probflow"), lint.ProbFlow) }
func TestHotAlloc(t *testing.T)   { analysistest.Run(t, testdata("hotalloc"), lint.HotAlloc) }

func TestErrFlowStrict(t *testing.T) {
	analysistest.Run(t, testdata("errflowstrict"), lint.ErrFlowStrict)
}

// TestStrictCmdAudit: the strict dropped-error analyzer must stay clean
// over every command main — the make lint gate for cmd/ in test form.
func TestStrictCmdAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cmd audit in -short mode")
	}
	findings, err := lint.Run(".", []string{"./cmd/..."},
		append(lint.Analyzers(), lint.ErrFlowStrict))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestLockHeldCrossPackageFacts drives the full Run pipeline over the
// provider/consumer golden pair: the finding in consumer exists only when
// the driver analyzes provider first and shares its MayBlock facts.
func TestLockHeldCrossPackageFacts(t *testing.T) {
	findings, err := lint.Run(".", []string{
		// Deliberately listed consumer-first: the driver must reorder to
		// dependency order on its own.
		"./internal/lint/testdata/lockheldfacts/consumer",
		"./internal/lint/testdata/lockheldfacts/provider",
	}, []*analysis.Analyzer{lint.LockHeld})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lockheld" {
		t.Errorf("finding analyzer = %q, want lockheld", f.Analyzer)
	}
	if !strings.Contains(f.Message, "provider.Blocks") || !strings.Contains(f.Message, "channel receive") {
		t.Errorf("finding message %q does not name the imported blocking function", f.Message)
	}
	if !strings.HasSuffix(f.Pos.Filename, "consumer.go") {
		t.Errorf("finding at %s, want it inside consumer.go", f.Pos)
	}
}

// TestSummaryCrossPackageFacts drives the full Run pipeline over the
// summary provider/consumer golden pair: each of the three interprocedural
// analyzers has one finding in consumer that exists only because provider's
// FnSummary facts crossed the package boundary through the shared store.
func TestSummaryCrossPackageFacts(t *testing.T) {
	findings, err := lint.Run(".", []string{
		// Consumer-first on purpose: the driver must reorder on its own.
		"./internal/lint/testdata/summaryfacts/consumer",
		"./internal/lint/testdata/summaryfacts/provider",
	}, []*analysis.Analyzer{lint.DetPure, lint.GoroutineLeak, lint.ChanProtocol})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := make(map[string]lint.Finding)
	for _, f := range findings {
		if !strings.HasSuffix(f.Pos.Filename, "consumer.go") {
			t.Errorf("finding at %s, want all findings inside consumer.go", f.Pos)
		}
		byAnalyzer[f.Analyzer] = f
	}
	if len(findings) != 3 || len(byAnalyzer) != 3 {
		t.Fatalf("got %d findings (%d analyzers), want 3 distinct: %v", len(findings), len(byAnalyzer), findings)
	}
	if f := byAnalyzer["detpure"]; !strings.Contains(f.Message, "time.Now via provider.Clock") {
		t.Errorf("detpure finding %q does not carry the cross-package witness chain", f.Message)
	}
	if f := byAnalyzer["goroutineleak"]; !strings.Contains(f.Message, "sends on ch") {
		t.Errorf("goroutineleak finding %q does not name the leaked send", f.Message)
	}
	if f := byAnalyzer["chanprotocol"]; !strings.Contains(f.Message, "already be closed") {
		t.Errorf("chanprotocol finding %q is not the double close", f.Message)
	}
}

// TestProbFlowCrossPackageFacts drives the full Run pipeline over the
// probflow provider/consumer golden pair: the finding in consumer exists
// only because provider's ProbRangeFact return ranges crossed the package
// boundary through the shared store.
func TestProbFlowCrossPackageFacts(t *testing.T) {
	findings, err := lint.Run(".", []string{
		// Consumer-first on purpose: the driver must reorder on its own.
		"./internal/lint/testdata/probflowfacts/consumer",
		"./internal/lint/testdata/probflowfacts/provider",
	}, []*analysis.Analyzer{lint.ProbFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "probflow" {
		t.Errorf("finding analyzer = %q, want probflow", f.Analyzer)
	}
	if !strings.Contains(f.Message, "[0, 1.5]") {
		t.Errorf("finding message %q does not carry the imported return range", f.Message)
	}
	if !strings.HasSuffix(f.Pos.Filename, "consumer.go") {
		t.Errorf("finding at %s, want it inside consumer.go", f.Pos)
	}
}

// TestHotAllocCrossPackageFacts drives the full Run pipeline over the
// hotalloc provider/consumer golden pair: the //meda:hotpath violation is
// two call frames away in another package and reaches the contract site
// only through provider's exported AllocFacts.
func TestHotAllocCrossPackageFacts(t *testing.T) {
	findings, err := lint.Run(".", []string{
		// Consumer-first on purpose: the driver must reorder on its own.
		"./internal/lint/testdata/hotallocfacts/consumer",
		"./internal/lint/testdata/hotallocfacts/provider",
	}, []*analysis.Analyzer{lint.HotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "hotalloc" {
		t.Errorf("finding analyzer = %q, want hotalloc", f.Analyzer)
	}
	if !strings.Contains(f.Message, "make via provider.Outer → Grow") {
		t.Errorf("finding message %q does not carry the cross-package witness chain", f.Message)
	}
	if !strings.HasSuffix(f.Pos.Filename, "consumer.go") {
		t.Errorf("finding at %s, want it inside consumer.go", f.Pos)
	}
}

// TestIncrementalCacheWarmRun: the second run over the same tree must
// replay every package from the cache and produce byte-identical findings
// — including the cross-package fact-dependent ones, which exist on the
// warm run only because the cache re-injected the provider's facts.
func TestIncrementalCacheWarmRun(t *testing.T) {
	patterns := []string{
		"./internal/lint/testdata/probflowfacts/...",
		"./internal/lint/testdata/hotallocfacts/...",
		"./internal/lint/testdata/suppress",
	}
	analyzers := lint.Analyzers()
	opts := lint.Options{CacheDir: t.TempDir()}

	cold, _, coldStats, err := lint.RunOpts(".", patterns, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Hits != 0 {
		t.Errorf("cold run hit the cache %d times, want 0", coldStats.Hits)
	}
	warm, _, warmStats, err := lint.RunOpts(".", patterns, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Packages == 0 || warmStats.Hits != warmStats.Packages {
		t.Errorf("warm run reused %d/%d packages, want all", warmStats.Hits, warmStats.Packages)
	}
	uncached, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	render := func(fs []lint.Finding) string {
		var sb strings.Builder
		for _, f := range fs {
			sb.WriteString(f.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if render(warm) != render(cold) {
		t.Errorf("warm findings differ from cold:\ncold:\n%swarm:\n%s", render(cold), render(warm))
	}
	if render(cold) != render(uncached) {
		t.Errorf("cached findings differ from uncached:\nuncached:\n%scached:\n%s", render(uncached), render(cold))
	}
	// The fact-dependent findings must be present on the warm run.
	for _, want := range []string{"[0, 1.5]", "make via provider.Outer → Grow"} {
		found := false
		for _, f := range warm {
			if strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("warm run lost the fact-dependent finding %q", want)
		}
	}
}

// TestSuppressionDirectives: a reasoned //lint:ignore removes its finding;
// a reasonless, unknown-analyzer, or dead directive is itself a finding.
func TestSuppressionDirectives(t *testing.T) {
	findings, err := lint.Run(".", []string{"./internal/lint/testdata/suppress"}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var directive, chanprotocol []string
	for _, f := range findings {
		switch f.Analyzer {
		case "directive":
			directive = append(directive, f.Message)
		case "chanprotocol":
			chanprotocol = append(chanprotocol, f.Message)
		default:
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
		}
	}
	// Only unknownAnalyzer's double close survives: the well-formed and the
	// reasonless directives both suppress theirs.
	if len(chanprotocol) != 1 {
		t.Errorf("got %d chanprotocol findings, want 1 (the misspelled directive suppresses nothing): %v",
			len(chanprotocol), chanprotocol)
	}
	wantDirective := []string{"unknown analyzer", "has no reason", "suppresses nothing"}
	if len(directive) != len(wantDirective) {
		t.Fatalf("got %d directive findings, want %d: %v", len(directive), len(wantDirective), directive)
	}
	for _, want := range wantDirective {
		found := false
		for _, msg := range directive {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no directive finding matching %q in %v", want, directive)
		}
	}
}

// TestSuiteRegistry: the multichecker exposes exactly the fourteen
// analyzers, each named and documented.
func TestSuiteRegistry(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 14 {
		t.Fatalf("Analyzers() returned %d analyzers, want 14", len(as))
	}
	want := map[string]bool{
		"floatcmp": true, "chipaccess": true, "ctxcancel": true,
		"lockorder": true, "nilstrategy": true,
		"errflow": true, "snapshotflow": true, "lockheld": true,
		"detpure": true, "goroutineleak": true, "chanprotocol": true,
		"gridbounds": true, "probflow": true, "hotalloc": true,
	}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}

// TestRunOnCleanTree: the full suite over the real module must be clean —
// this is the make lint gate in test form.
func TestRunOnCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	findings, err := lint.Run(".", []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
