package absint

import (
	"go/types"
	"sort"
	"strings"
)

// Ref identifies one abstract storage location: a local variable or
// parameter (Path == ""), a field path rooted at one ("h" + ".w" for h.w,
// nested as ".g.tos"), or the synthetic length cell of a slice-valued ref
// (Path suffix "#len"). Field paths read through pointers share the struct
// identity of their root, which is sound under the interpreter's kill
// discipline: any write through a same-named field or any opaque call
// havocs them.
type Ref struct {
	Root *types.Var
	Path string
}

// lenSuffix marks the synthetic length cell of a slice ref.
const lenSuffix = "#len"

// lenRef returns the length cell of a slice-valued ref.
func lenRef(r Ref) Ref { return Ref{r.Root, r.Path + lenSuffix} }

// isLen reports whether r is a length cell.
func (r Ref) isLen() bool { return strings.HasSuffix(r.Path, lenSuffix) }

// isField reports whether r reaches through at least one field selection.
func (r Ref) isField() bool { return strings.Contains(r.Path, ".") }

// String renders the ref the way the source spells it.
func (r Ref) String() string {
	s := r.Root.Name() + strings.TrimSuffix(r.Path, lenSuffix)
	if r.isLen() {
		return "len(" + s + ")"
	}
	return s
}

// Val is the abstract value of one ref: its numeric interval, the set of
// slice refs it is proven strictly below the length of (established by
// branch refinement: `i < len(s)` on the true edge, `i >= len(s)` on the
// false one), and a taint bit marking values derived from a non-constant
// product — the "linearized 2D coordinate" shape gridbounds keys on.
type Val struct {
	I     Interval
	LtLen map[Ref]bool
	// LenOf records that this value equals len(s) for each s in the set
	// (established by `n := len(s)`), so a later `i < n` proves i < len(s)
	// without the guard spelling out the len call.
	LenOf map[Ref]bool
	Coord bool
}

// isTop reports whether the value carries no information at all (such
// entries are dropped from the environment).
func (v Val) isTop() bool {
	return v.I.IsTop() && len(v.LtLen) == 0 && len(v.LenOf) == 0 && !v.Coord
}

func (v Val) eq(o Val) bool {
	if !v.I.Eq(o.I) || v.Coord != o.Coord || len(v.LtLen) != len(o.LtLen) || len(v.LenOf) != len(o.LenOf) {
		return false
	}
	for r := range v.LtLen {
		if !o.LtLen[r] {
			return false
		}
	}
	for r := range v.LenOf {
		if !o.LenOf[r] {
			return false
		}
	}
	return true
}

// withLtLen returns a copy of v with s added to its below-length set.
func (v Val) withLtLen(s Ref) Val {
	lt := make(map[Ref]bool, len(v.LtLen)+1)
	for r := range v.LtLen {
		lt[r] = true
	}
	lt[s] = true
	v.LtLen = lt
	return v
}

// joinVal joins pointwise: interval hull, below-length and length-alias
// intersection (must-facts), coordinate-taint union (a may-fact).
func joinVal(a, b Val) Val {
	out := Val{I: a.I.Join(b.I), Coord: a.Coord || b.Coord}
	out.LtLen = intersectRefs(a.LtLen, b.LtLen)
	out.LenOf = intersectRefs(a.LenOf, b.LenOf)
	return out
}

func intersectRefs(a, b map[Ref]bool) map[Ref]bool {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var out map[Ref]bool
	for r := range a {
		if b[r] {
			if out == nil {
				out = make(map[Ref]bool)
			}
			out[r] = true
		}
	}
	return out
}

// Env is the abstract state at one program point: reached marks the point
// as reachable from the entry (the zero Env is the lattice bottom), vals
// binds refs to abstract values; refs absent from vals are unconstrained
// (⊤). All operations are copy-on-write, as the dataflow solver requires.
type Env struct {
	reached bool
	vals    map[Ref]Val
}

// Reached reports whether the program point is reachable.
func (e Env) Reached() bool { return e.reached }

// Get returns the abstract value bound to r (⊤ when unbound).
func (e Env) Get(r Ref) Val {
	if v, ok := e.vals[r]; ok {
		return v
	}
	return Val{I: Top}
}

// with returns a copy with r bound to v (dropping no-information values).
func (e Env) with(r Ref, v Val) Env {
	out := Env{reached: e.reached, vals: make(map[Ref]Val, len(e.vals)+1)}
	for k, kv := range e.vals {
		out.vals[k] = kv
	}
	if v.isTop() {
		delete(out.vals, r)
	} else {
		out.vals[r] = v
	}
	return out
}

// kill unbinds every ref drop reports true for, and removes killed refs
// from every surviving below-length set (a fact about len(s) dies with s).
func (e Env) kill(drop func(Ref) bool) Env {
	out := Env{reached: e.reached, vals: make(map[Ref]Val, len(e.vals))}
	for k, v := range e.vals {
		if drop(k) {
			continue
		}
		v.LtLen = scrubRefs(v.LtLen, drop)
		v.LenOf = scrubRefs(v.LenOf, drop)
		if v.isTop() {
			continue
		}
		out.vals[k] = v
	}
	return out
}

// scrubRefs drops the refs drop reports for (or whose length cell it
// drops) from a relational set — a fact about len(s) dies with s.
func scrubRefs(set map[Ref]bool, drop func(Ref) bool) map[Ref]bool {
	if len(set) == 0 {
		return nil
	}
	var out map[Ref]bool
	for s := range set {
		if drop(s) || drop(lenRef(s)) {
			continue
		}
		if out == nil {
			out = make(map[Ref]bool, len(set))
		}
		out[s] = true
	}
	return out
}

// killRef unbinds one ref, its length cell, and every below-length fact
// naming it — the kill set of an assignment to a slice or scalar.
func (e Env) killRef(r Ref) Env {
	lr := lenRef(r)
	return e.kill(func(k Ref) bool { return k == r || k == lr })
}

// refs returns the bound refs in deterministic order (tests, debugging).
func (e Env) refs() []Ref {
	out := make([]Ref, 0, len(e.vals))
	for r := range e.vals {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Root != b.Root {
			return a.Root.Pos() < b.Root.Pos()
		}
		return a.Path < b.Path
	})
	return out
}

// envLattice is the widening lattice over environments the solver runs on.
type envLattice struct{}

// Bottom returns the unreachable environment.
func (envLattice) Bottom() Env { return Env{} }

// Join merges two environments: an unreachable side is the identity;
// otherwise values join pointwise, with refs bound on only one side
// surviving solely as coordinate taint (their interval information is ⊤ on
// the absent side, but taint is a may-property and unions).
func (envLattice) Join(a, b Env) Env {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := Env{reached: true, vals: make(map[Ref]Val, len(a.vals))}
	for r, av := range a.vals {
		if bv, ok := b.vals[r]; ok {
			if j := joinVal(av, bv); !j.isTop() {
				out.vals[r] = j
			}
		} else if av.Coord {
			out.vals[r] = Val{I: Top, Coord: true}
		}
	}
	for r, bv := range b.vals {
		if _, ok := a.vals[r]; !ok && bv.Coord {
			out.vals[r] = Val{I: Top, Coord: true}
		}
	}
	return out
}

// Equal implements the fixpoint termination test.
func (envLattice) Equal(a, b Env) bool {
	if a.reached != b.reached || len(a.vals) != len(b.vals) {
		return false
	}
	for r, av := range a.vals {
		bv, ok := b.vals[r]
		if !ok || !av.eq(bv) {
			return false
		}
	}
	return true
}

// Widen extrapolates intervals pointwise at loop heads; refs unstable
// enough to disappear from next have already been dropped by Join, so the
// domain's only infinite ascent — interval endpoints — is cut here.
func (envLattice) Widen(prev, next Env) Env {
	if !prev.reached {
		return next
	}
	if !next.reached {
		return prev
	}
	out := Env{reached: true, vals: make(map[Ref]Val, len(next.vals))}
	for r, nv := range next.vals {
		if pv, ok := prev.vals[r]; ok {
			w := nv
			w.I = pv.I.Widen(nv.I)
			out.vals[r] = w
		} else if nv.Coord {
			// Unknown in the previous iterate: interval widens to ⊤, taint
			// survives.
			out.vals[r] = Val{I: Top, Coord: nv.Coord}
		}
	}
	return out
}

// Narrow recovers precision after the ascending phase: widened-to-infinite
// bounds adopt the recomputed next, refs the widening dropped come back.
func (envLattice) Narrow(prev, next Env) Env {
	if !prev.reached || !next.reached {
		return next
	}
	out := Env{reached: true, vals: make(map[Ref]Val, len(next.vals))}
	for r, nv := range next.vals {
		if pv, ok := prev.vals[r]; ok {
			n := nv
			n.I = pv.I.Narrow(nv.I)
			out.vals[r] = n
		} else {
			out.vals[r] = nv
		}
	}
	return out
}
