package absint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// Options inject the client analyzer's domain knowledge into the
// interpreter. All hooks are optional.
type Options struct {
	// ParamSeed returns the entry interval assumed for a parameter (e.g.
	// probflow assumes probability-named float parameters lie in [0,1] —
	// the call-site half of that contract is checked at every call).
	ParamSeed func(v *types.Var) (Interval, bool)
	// CallResult returns the interval of a single-result call — the
	// interprocedural hook through which return-range facts of upstream
	// functions (and seeded stdlib knowledge) enter the local analysis.
	CallResult func(call *ast.CallExpr) (Interval, bool)
	// ReadSeed returns the interval assumed for a non-local read the
	// interpreter would otherwise treat as unknown (a probability-named
	// field, say). Consulted only when the environment has no binding.
	ReadSeed func(e ast.Expr) (Interval, bool)
}

// Func is the solved value-range analysis of one function body.
type Func struct {
	Info *types.Info
	Opts Options
	G    *cfg.CFG

	res       dataflow.Result[Env]
	addrTaken map[*types.Var]bool
	intKind   map[ast.Expr]bool // memo: static type is integral
}

// Analyze runs the interval interpreter over one function body. params are
// the declared parameters (receiver included if the caller wants it
// tracked); the entry environment binds each through Options.ParamSeed.
func Analyze(info *types.Info, body *ast.BlockStmt, params []*types.Var, opts Options) *Func {
	f := &Func{
		Info:      info,
		Opts:      opts,
		G:         cfg.New(body),
		addrTaken: findAddrTaken(info, body),
	}
	boundary := Env{reached: true, vals: make(map[Ref]Val)}
	for _, p := range params {
		if opts.ParamSeed != nil {
			if iv, ok := opts.ParamSeed(p); ok {
				boundary.vals[Ref{Root: p}] = Val{I: iv}
			}
		}
	}
	f.res = dataflow.ForwardWidened[Env](f.G, envLattice{}, boundary,
		func(b *cfg.Block, in Env) Env { return f.transfer(b, in) },
		func(b *cfg.Block, succ int, out Env) Env { return f.edge(b, succ, out) },
	)
	return f
}

// Walk visits every CFG node in block-creation order (which follows the
// source), passing the environment holding immediately before the node.
// Nodes in unreachable blocks are visited with an unreached environment.
func (f *Func) Walk(visit func(n ast.Node, env Env)) {
	for _, b := range f.G.Blocks {
		env := f.res.In[b]
		for _, n := range b.Nodes {
			visit(n, env)
			env = f.step(env, n)
		}
	}
}

// EvalIn evaluates an expression in an environment (exposed for analyzers
// checking sub-expressions of the node Walk handed them).
func (f *Func) EvalIn(env Env, e ast.Expr) Interval { return f.eval(env, e) }

// ValueOf returns the full abstract value of an expression: its interval
// plus, when the expression resolves to a tracked ref, the relational
// facts bound to it.
func (f *Func) ValueOf(env Env, e ast.Expr) Val {
	if r, ok := f.refOf(e); ok {
		v := env.Get(r)
		if v.I.IsTop() {
			v.I = f.eval(env, e) // pick up read seeds
		}
		return v
	}
	return Val{I: f.eval(env, e), Coord: f.isCoordExpr(env, e)}
}

// CoordDerived reports whether the expression carries the linearized
// 2D-coordinate shape gridbounds keys on: a product of two non-constant
// integer operands anywhere inside it, or a read of a variable tainted by
// one.
func (f *Func) CoordDerived(env Env, e ast.Expr) bool {
	if r, ok := f.refOf(e); ok && env.Get(r).Coord {
		return true
	}
	return f.isCoordExpr(env, e)
}

// IndexProven reports whether the environment proves s[i] in bounds:
// i ≥ 0 numerically, and i < len(s) either relationally (a below-length
// fact for s's ref) or numerically against s's length interval (arrays use
// their constant length). The string names the missing half when unproven.
func (f *Func) IndexProven(env Env, s, index ast.Expr) (bool, string) {
	iv := f.ValueOf(env, index)
	if iv.I.IsEmpty() {
		return true, "" // unreachable
	}
	if iv.I.Lo < 0 {
		return false, "cannot prove index ≥ 0 (index in " + iv.I.String() + ")"
	}
	ln := f.lenInterval(env, s)
	if !iv.I.IsEmpty() && iv.I.Hi < ln.Lo {
		return true, ""
	}
	if sref, ok := f.refOf(s); ok && iv.LtLen[sref] {
		return true, ""
	}
	return false, "cannot prove index < len (index in " + iv.I.String() + ", len in " + ln.String() + ")"
}

// transfer interprets one block's nodes in order.
func (f *Func) transfer(b *cfg.Block, in Env) Env {
	if !in.reached {
		return in
	}
	env := in
	for _, n := range b.Nodes {
		env = f.step(env, n)
	}
	return env
}

// step applies one node's effects. Any node containing an opaque call
// first havocs what the call may mutate (field paths and address-taken
// locals); losing the information before the node's own reads is sound —
// it only widens.
func (f *Func) step(env Env, n ast.Node) Env {
	if !env.reached {
		return env
	}
	if f.hasOpaqueCall(n) {
		env = env.kill(func(r Ref) bool {
			return r.isField() || f.addrTaken[r.Root]
		})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return f.assign(env, n)
	case *ast.IncDecStmt:
		if r, ok := f.refOf(n.X); ok {
			delta := Const(1)
			if n.Tok == token.DEC {
				delta = Const(-1)
			}
			v := env.Get(r)
			nv := Val{I: v.I.Add(delta)}
			// i++ can step onto len(s); i-- preserves i < len(s).
			if n.Tok == token.DEC {
				nv.LtLen = v.LtLen
			}
			nv.Coord = v.Coord
			return env.killRef(r).with(r, nv)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := f.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					r := Ref{Root: v}
					switch {
					case len(vs.Values) == len(vs.Names):
						env = f.bind(env, r, vs.Values[i], f.valOf(env, vs.Values[i]))
					case len(vs.Values) == 0 && isNumeric(v.Type()):
						env = env.killRef(r).with(r, Val{I: Const(0)})
					default:
						env = env.killRef(r)
					}
				}
			}
		}
	}
	return env
}

// assign interprets one assignment statement, including the synthetic
// `key, value := X` binding the CFG builder plants at range-loop headers.
func (f *Func) assign(env Env, n *ast.AssignStmt) Env {
	// Range header: one RHS whose type cannot match the LHS tuple.
	if len(n.Rhs) == 1 && f.isRangeBinding(n) {
		return f.rangeBind(env, n)
	}
	switch n.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(n.Lhs) == len(n.Rhs) {
			// Evaluate every RHS in the pre-state (swap semantics), then bind.
			vals := make([]Val, len(n.Rhs))
			for i, rhs := range n.Rhs {
				vals[i] = f.valOf(env, rhs)
			}
			for i, lhs := range n.Lhs {
				env = f.bindLHS(env, lhs, n.Rhs[i], vals[i])
			}
			return env
		}
		// Multi-value form (call, map read, type assertion): havoc targets.
		for _, lhs := range n.Lhs {
			env = f.havocLHS(env, lhs)
		}
		return env
	default:
		// Compound assignment: x op= y.
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return env
		}
		lhs := n.Lhs[0]
		r, ok := f.refOf(lhs)
		if !ok {
			return f.havocLHS(env, lhs)
		}
		cur := env.Get(r)
		op, hasOp := compoundOp(n.Tok)
		if !hasOp {
			return env.killRef(r)
		}
		rhs := f.eval(env, n.Rhs[0])
		nv := Val{I: f.binop(op, cur.I, rhs, f.isIntExpr(lhs)), Coord: cur.Coord || f.isCoordExpr(env, n.Rhs[0])}
		if op == token.MUL && !isConstExpr(f.Info, n.Rhs[0]) {
			nv.Coord = true
		}
		return env.killRef(r).with(r, nv)
	}
}

func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	}
	return token.ILLEGAL, false
}

// bindLHS binds one assignment target. Non-ref targets (index and pointer
// stores) cannot be tracked; pointer stores additionally havoc every field
// path (the pointee may alias anything).
func (f *Func) bindLHS(env Env, lhs, rhs ast.Expr, v Val) Env {
	if r, ok := f.refOf(lhs); ok {
		return f.bindRef(env, r, rhs, v)
	}
	return f.havocLHS(env, lhs)
}

func (f *Func) havocLHS(env Env, lhs ast.Expr) Env {
	if r, ok := f.refOf(lhs); ok {
		return env.killRef(r)
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.StarExpr:
		return env.kill(func(r Ref) bool { return r.isField() })
	case *ast.SelectorExpr:
		// Write through an untracked base: kill same-named fields anywhere.
		name := "." + lhs.Sel.Name
		return env.kill(func(r Ref) bool { return r.isField() && hasFieldSeg(r.Path, name) })
	}
	return env
}

// bind is bindLHS for targets already resolved to a ref.
func (f *Func) bind(env Env, r Ref, rhs ast.Expr, v Val) Env {
	return f.bindRef(env, r, rhs, v)
}

func (f *Func) bindRef(env Env, r Ref, rhs ast.Expr, v Val) Env {
	// Writing a field invalidates same-named fields under other roots
	// (aliased pointers); writing a plain local cannot alias.
	if r.isField() {
		name := r.Path[lastDot(r.Path):]
		env = env.kill(func(k Ref) bool {
			return k != r && k.isField() && hasFieldSeg(k.Path, name)
		})
	}
	// Self-append keeps the slice identity: length grows, below-length
	// facts naming it stay valid.
	if grow, spread, isSelf := f.appendInfo(rhs, r); isSelf {
		lr := lenRef(r)
		ln := env.Get(lr).I
		if ln.IsTop() {
			ln = AtLeast(0)
		}
		if spread {
			ln = Interval{ln.Lo, Top.Hi}
		} else {
			ln = ln.Add(Const(float64(grow)))
		}
		return env.with(lr, Val{I: ln})
	}
	env = env.killRef(r)
	// n := len(s) makes n a length alias of s: a later `i < n` proves
	// i < len(s) without re-spelling the len call.
	if s, extra, ok := f.lenOperand(env, rhs); ok && extra == 0 && !s.isLen() {
		v.I = v.I.Meet(AtLeast(0))
		v.LenOf = map[Ref]bool{s: true}
	}
	if !v.isTop() {
		env = env.with(r, v)
	}
	// A fresh make([]T, n) pins the new slice's length to n's interval.
	if ln, ok := f.makeLen(env, rhs); ok {
		env = env.with(lenRef(r), Val{I: ln})
	}
	return env
}

// appendInfo recognizes rhs as append(base, ...) growing the same ref it
// is being assigned to, returning how many elements are appended.
func (f *Func) appendInfo(rhs ast.Expr, target Ref) (grow int, spread, isSelf bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return 0, false, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return 0, false, false
	}
	if b, ok := f.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return 0, false, false
	}
	base, ok := f.refOf(call.Args[0])
	if !ok || base != target {
		return 0, false, false
	}
	return len(call.Args) - 1, call.Ellipsis.IsValid(), true
}

// makeLen recognizes rhs as make([]T, n[, c]) and returns n's interval
// clamped to ≥ 0 (a negative length panics at runtime).
func (f *Func) makeLen(env Env, rhs ast.Expr) (Interval, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return Top, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return Top, false
	}
	if b, ok := f.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return Top, false
	}
	if t := f.Info.Types[call.Args[0]].Type; t == nil || !isSliceType(t) {
		return Top, false
	}
	ln := f.eval(env, call.Args[1]).Meet(AtLeast(0))
	return ln, true
}

// isRangeBinding distinguishes the CFG builder's synthetic range-header
// assignment from real code: a single RHS whose static type is a
// container (or integer, for `range n`) bound to loop-variable LHS whose
// types do not match a normal assignment of that RHS.
func (f *Func) isRangeBinding(n *ast.AssignStmt) bool {
	rt := f.Info.Types[n.Rhs[0]].Type
	if rt == nil {
		return false
	}
	if len(n.Lhs) > 1 {
		// `a, b = expr` with one RHS is either a multi-value call (tuple
		// type) or a range binding; tuples never reach here as container
		// types.
		switch rt.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Map, *types.Basic, *types.Chan, *types.Signature:
			return true
		}
		return false
	}
	// Single LHS: a range binding iff assigning RHS to LHS directly would
	// be ill-typed (k := someSlice can never appear as a real assignment
	// with k integer).
	lt := f.Info.Types[n.Lhs[0]].Type
	if lt == nil {
		if id, ok := n.Lhs[0].(*ast.Ident); ok {
			if v, ok := f.Info.Defs[id].(*types.Var); ok {
				lt = v.Type()
			}
		}
	}
	if lt == nil {
		return false
	}
	switch rt.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map, *types.Chan, *types.Signature:
		return !types.AssignableTo(rt, lt)
	case *types.Pointer: // *[N]T
		return !types.AssignableTo(rt, lt)
	case *types.Basic:
		b := rt.Underlying().(*types.Basic)
		if b.Info()&types.IsString != 0 {
			return !types.AssignableTo(rt, lt)
		}
		// range over integer: LHS is the same integer type, so
		// assignability cannot discriminate — but a real `k := n`
		// assignment is handled identically to the range bound below
		// (k ∈ [0, n-1] would be wrong). Require the statement to sit at
		// a loop header: the builder plants it as the block's first node
		// with the range token position. Conservative fallback: treat as
		// a plain assignment.
		return false
	}
	return false
}

// rangeBind applies the range-header binding: the key variable of a
// slice/array/string range is a fresh index in [0, len-1].
func (f *Func) rangeBind(env Env, n *ast.AssignStmt) Env {
	x := n.Rhs[0]
	rt := f.Info.Types[x].Type
	// Havoc the loop variables first.
	for _, lhs := range n.Lhs {
		if r, ok := f.refOf(lhs); ok {
			env = env.killRef(r)
		}
	}
	if rt == nil {
		return env
	}
	indexed := false
	switch u := rt.Underlying().(type) {
	case *types.Slice, *types.Basic:
		indexed = true
	case *types.Array:
		_ = u
		indexed = true
	case *types.Pointer:
		if _, ok := u.Elem().Underlying().(*types.Array); ok {
			indexed = true
		}
	}
	if !indexed || len(n.Lhs) == 0 {
		return env
	}
	kr, ok := f.refOf(n.Lhs[0])
	if !ok {
		return env
	}
	kv := Val{I: AtLeast(0)}
	if sref, ok := f.refOf(x); ok && isSliceType(rt) {
		kv = kv.withLtLen(sref)
	}
	if ln := f.lenInterval(env, x); !ln.IsTop() && ln.Hi >= 1 {
		kv.I = kv.I.Meet(AtMost(ln.Hi - 1))
	}
	return env.with(kr, kv)
}

// lenInterval returns the interval of len(x): the constant length of
// arrays, the tracked length cell of slices, [0, +∞) otherwise.
func (f *Func) lenInterval(env Env, x ast.Expr) Interval {
	t := f.Info.Types[x].Type
	if t != nil {
		u := t.Underlying()
		if p, ok := u.(*types.Pointer); ok {
			u = p.Elem().Underlying()
		}
		if arr, ok := u.(*types.Array); ok {
			return Const(float64(arr.Len()))
		}
	}
	if r, ok := f.refOf(x); ok {
		if v, bound := env.vals[lenRef(r)]; bound {
			return v.I
		}
	}
	return AtLeast(0)
}

// eval computes the interval of an expression in an environment.
func (f *Func) eval(env Env, e ast.Expr) Interval {
	if iv, ok := constInterval(f.Info, e); ok {
		return iv
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if r, ok := f.refOf(e.(ast.Expr)); ok {
			if v, bound := env.vals[r]; bound {
				return v.I
			}
		}
		if f.Opts.ReadSeed != nil {
			if iv, ok := f.Opts.ReadSeed(e.(ast.Expr)); ok {
				return iv
			}
		}
		if isUnsignedExpr(f.Info, e.(ast.Expr)) {
			return AtLeast(0)
		}
		return Top
	case *ast.BinaryExpr:
		x, y := f.eval(env, e.X), f.eval(env, e.Y)
		return f.binop(e.Op, x, y, f.isIntExpr(e))
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return f.eval(env, e.X).Neg()
		case token.ADD:
			return f.eval(env, e.X)
		}
		return Top
	case *ast.CallExpr:
		return f.evalCall(env, e)
	case *ast.IndexExpr, *ast.StarExpr:
		if isUnsignedExpr(f.Info, e.(ast.Expr)) {
			return AtLeast(0)
		}
		return Top
	}
	if ex, ok := e.(ast.Expr); ok && isUnsignedExpr(f.Info, ex) {
		return AtLeast(0)
	}
	return Top
}

// evalCall evaluates builtins the domain understands, conversions, and —
// through the CallResult hook — summarized callees.
func (f *Func) evalCall(env Env, call *ast.CallExpr) Interval {
	// Conversion T(x): the interval passes through, truncated for
	// float→int.
	if tv, ok := f.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		iv := f.eval(env, call.Args[0])
		if isIntegerType(tv.Type) {
			iv = iv.Trunc()
			if isUnsignedType(tv.Type) {
				iv = iv.Meet(AtLeast(0)) // conversion wraps; assume in-range use
			}
		}
		return iv
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := f.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len":
				if len(call.Args) == 1 {
					return f.lenInterval(env, call.Args[0])
				}
			case "cap":
				return AtLeast(0)
			case "min":
				iv := f.eval(env, call.Args[0])
				for _, a := range call.Args[1:] {
					o := f.eval(env, a)
					iv = Interval{minF(iv.Lo, o.Lo), minF(iv.Hi, o.Hi)}
				}
				return iv
			case "max":
				iv := f.eval(env, call.Args[0])
				for _, a := range call.Args[1:] {
					o := f.eval(env, a)
					iv = Interval{maxF(iv.Lo, o.Lo), maxF(iv.Hi, o.Hi)}
				}
				return iv
			}
			return Top
		}
	}
	if f.Opts.CallResult != nil {
		if iv, ok := f.Opts.CallResult(call); ok {
			return iv
		}
	}
	if isUnsignedExpr(f.Info, call) {
		return AtLeast(0)
	}
	return Top
}

// binop applies one binary operator over intervals; isInt selects the
// truncating division and enables modulo bounds.
func (f *Func) binop(op token.Token, x, y Interval, isInt bool) Interval {
	switch op {
	case token.ADD:
		return x.Add(y)
	case token.SUB:
		return x.Sub(y)
	case token.MUL:
		return x.Mul(y)
	case token.QUO:
		q := x.Div(y)
		if isInt {
			q = q.Trunc()
		}
		return q
	case token.REM:
		// x % y for y with known positive bound: |result| < y.Hi, and the
		// result keeps x's sign.
		if y.IsEmpty() || x.IsEmpty() {
			return Empty
		}
		if y.Lo > 0 || (y.Hi < 0) {
			bound := maxF(absF(y.Lo), absF(y.Hi)) - 1
			out := Interval{-bound, bound}
			if x.Lo >= 0 {
				out.Lo = 0
			}
			if x.Hi <= 0 {
				out.Hi = 0
			}
			return out
		}
		return Top
	case token.SHR:
		if x.Lo >= 0 {
			return Interval{0, x.Hi}
		}
		return Top
	case token.SHL, token.AND, token.OR, token.XOR, token.AND_NOT:
		if x.Lo >= 0 && y.Lo >= 0 {
			if op == token.AND {
				return Interval{0, minF(x.Hi, y.Hi)}
			}
			return AtLeast(0)
		}
		return Top
	}
	return Top
}

// edge refines the out-fact along one branch edge using the block's
// condition: successor 0 is the true edge, successor 1 the false edge.
// Non-conditional multi-successor blocks (switch/select dispatch) pass the
// fact through unrefined.
func (f *Func) edge(b *cfg.Block, succ int, out Env) Env {
	if b.Cond == nil || !out.reached {
		return out
	}
	switch succ {
	case 0:
		return f.refine(out, b.Cond, true)
	case 1:
		return f.refine(out, b.Cond, false)
	}
	return out
}

// refine sharpens the environment under "cond is isTrue".
func (f *Func) refine(env Env, cond ast.Expr, isTrue bool) Env {
	if !env.reached {
		return env
	}
	switch cond := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			return f.refine(env, cond.X, !isTrue)
		}
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if isTrue {
				return f.refine(f.refine(env, cond.X, true), cond.Y, true)
			}
			return env // ¬(a∧b) splits; the join is the unrefined fact
		case token.LOR:
			if !isTrue {
				return f.refine(f.refine(env, cond.X, false), cond.Y, false)
			}
			return env
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := cond.Op
			if !isTrue {
				op = negateCmp(op)
			}
			env = f.refineCmp(env, cond.X, op, cond.Y)
			env = f.refineCmp(env, cond.Y, flipCmp(op), cond.X)
			return env
		}
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

// refineCmp sharpens the value of x under "x op y".
func (f *Func) refineCmp(env Env, x ast.Expr, op token.Token, y ast.Expr) Env {
	r, ok := f.refOf(x)
	if !ok {
		return env
	}
	v := env.Get(r)
	yv := f.eval(env, y)
	isInt := f.isIntExpr(x)
	step := 0.0
	if isInt {
		step = 1
	}
	switch op {
	case token.LSS:
		v.I = v.I.Meet(AtMost(yv.Hi - step))
		if s, extra, ok := f.lenOperand(env, y); ok && extra <= 0 {
			v = v.withLtLen(s)
		}
	case token.LEQ:
		v.I = v.I.Meet(AtMost(yv.Hi))
		if s, extra, ok := f.lenOperand(env, y); ok && extra <= -step && step > 0 {
			v = v.withLtLen(s)
		}
	case token.GTR:
		v.I = v.I.Meet(AtLeast(yv.Lo + step))
	case token.GEQ:
		v.I = v.I.Meet(AtLeast(yv.Lo))
	case token.EQL:
		v.I = v.I.Meet(yv)
		if s, extra, ok := f.lenOperand(env, y); ok && extra <= -step && step > 0 {
			v = v.withLtLen(s)
		}
	case token.NEQ:
		if isInt && eqF(yv.Lo, yv.Hi) {
			if eqF(v.I.Lo, yv.Lo) {
				v.I = v.I.Meet(AtLeast(yv.Lo + 1))
			} else if eqF(v.I.Hi, yv.Hi) {
				v.I = v.I.Meet(AtMost(yv.Hi - 1))
			}
		}
	}
	if v.I.IsEmpty() {
		// The branch contradicts the incoming fact: the edge is infeasible.
		return Env{}
	}
	return env.with(r, v)
}

// lenOperand decomposes y as len(s) + extra (extra a constant, possibly
// negative), the shapes bounds guards are written in: i < len(s),
// i <= len(s)-1, i < len(s)-margin — and, through the LenOf crumb, a
// variable previously bound by `n := len(s)`.
func (f *Func) lenOperand(env Env, y ast.Expr) (s Ref, extra float64, ok bool) {
	switch y := ast.Unparen(y).(type) {
	case *ast.CallExpr:
		if id, isID := ast.Unparen(y.Fun).(*ast.Ident); isID && len(y.Args) == 1 {
			if b, isB := f.Info.Uses[id].(*types.Builtin); isB && b.Name() == "len" {
				if r, got := f.refOf(y.Args[0]); got {
					return r, 0, true
				}
			}
		}
	case *ast.BinaryExpr:
		if y.Op == token.ADD || y.Op == token.SUB {
			if c, isC := constInterval(f.Info, y.Y); isC && eqF(c.Lo, c.Hi) {
				if s, e, got := f.lenOperand(env, y.X); got {
					if y.Op == token.SUB {
						return s, e - c.Lo, true
					}
					return s, e + c.Lo, true
				}
			}
		}
	case *ast.Ident:
		if r, got := f.refOf(y); got {
			for s := range env.Get(r).LenOf {
				return s, 0, true
			}
		}
	}
	return Ref{}, 0, false
}

// valOf evaluates an expression to a full abstract value: the interval,
// inherited relational facts when the RHS is itself a tracked ref, and the
// coordinate taint of product-shaped arithmetic.
func (f *Func) valOf(env Env, e ast.Expr) Val {
	if r, ok := f.refOf(e); ok {
		v := env.Get(r)
		if v.I.IsTop() {
			v.I = f.eval(env, e)
		}
		return v
	}
	return Val{I: f.eval(env, e), Coord: f.isCoordExpr(env, e)}
}

// isCoordExpr reports whether the expression has the linearized-coordinate
// shape gridbounds keys on: it contains a product of two non-constant
// operands, or reads a variable already tainted as coordinate-derived.
func (f *Func) isCoordExpr(env Env, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.MUL && !isConstExpr(f.Info, n.X) && !isConstExpr(f.Info, n.Y) &&
				f.isIntExpr(n) {
				found = true
				return false
			}
		case *ast.Ident, *ast.SelectorExpr:
			if r, ok := f.refOf(n.(ast.Expr)); ok {
				if env.Get(r).Coord {
					found = true
				}
				return false
			}
		case *ast.CallExpr:
			return false // a call result is not itself a coordinate product
		}
		return true
	})
	return found
}

// refOf resolves an expression to a tracked storage location.
func (f *Func) refOf(e ast.Expr) (Ref, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := f.Info.Uses[e]
		if obj == nil {
			obj = f.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return Ref{Root: v}, true
		}
	case *ast.SelectorExpr:
		sel := f.Info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return Ref{}, false
		}
		base, ok := f.refOf(e.X)
		if !ok || base.Path != "" && len(base.Path) > 64 {
			return Ref{}, false
		}
		return Ref{Root: base.Root, Path: base.Path + "." + e.Sel.Name}, true
	}
	return Ref{}, false
}

// hasOpaqueCall reports whether the node contains a call that may mutate
// state the environment tracks (anything but builtins).
func (f *Func) hasOpaqueCall(n ast.Node) bool {
	found := false
	cfg.Visit(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := f.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			if tv, ok := f.Info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// isIntExpr reports whether the expression's static type is integral.
func (f *Func) isIntExpr(e ast.Expr) bool {
	if f.intKind == nil {
		f.intKind = make(map[ast.Expr]bool)
	}
	if v, ok := f.intKind[e]; ok {
		return v
	}
	t := f.Info.Types[e].Type
	v := t != nil && isIntegerType(t)
	f.intKind[e] = v
	return v
}

// findAddrTaken collects the local variables whose address is taken
// anywhere in the body: opaque calls may mutate them.
func findAddrTaken(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			return true
		}
		if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// constInterval returns the singleton interval of a constant expression.
func constInterval(info *types.Info, e ast.Expr) (Interval, bool) {
	tv := info.Types[e]
	if tv.Value == nil {
		return Top, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		if v, ok := constant.Float64Val(constant.ToFloat(tv.Value)); ok {
			return Const(v), true
		}
	}
	return Top, false
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUnsignedType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func isUnsignedExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && isUnsignedType(t)
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func hasFieldSeg(path, seg string) bool {
	for i := 0; i+len(seg) <= len(path); i++ {
		if path[i:i+len(seg)] == seg {
			end := i + len(seg)
			if end == len(path) || path[end] == '.' || path[end] == '#' {
				return true
			}
		}
	}
	return false
}

func lastDot(path string) int {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return i
		}
	}
	return 0
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absF(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}
