// Package absint is the value-range abstract interpretation tier of
// medalint: a flow-sensitive interval analysis over the per-function CFGs
// of internal/lint/cfg, solved with the widening worklist solver of
// internal/lint/dataflow. The domain is the classic interval lattice with
// ±∞ endpoints, extended with two relational crumbs the grid-index proofs
// need: per-variable "strictly below len(s)" facts established by branch
// conditions, and symbolic length intervals for slices created by make or
// grown by append. Branch conditions refine the environment on each edge
// (`if x < chip.W` bounds x on the true edge; `if i >= len(s) { return }`
// proves i < len(s) after the guard), and widening-with-thresholds at loop
// heads guarantees termination on unbounded counters while the narrowing
// pass recovers `for i := 0; i < n; i++` ⇒ i ∈ [0, n-1].
//
// Two analyzers consume the interpreter directly: gridbounds (prove or
// flag coordinate-derived slice indexing) and probflow (confine computed
// probabilities to [0,1] through products, complements and normalization,
// interprocedurally via return-interval facts). Both instantiate the same
// machinery; hooks on Options inject their domain assumptions (probability
// parameter seeding, callee return intervals).
package absint

import (
	"fmt"
	"math"
)

// Interval is one value range with endpoints in ℝ ∪ {±∞}. Integer-typed
// variables use the same representation (float64 holds every int the grid
// arithmetic can produce exactly, far below 2⁵³); integer-specific
// refinements (x < y ⇒ x ≤ y-1) are applied by the interpreter where the
// static type justifies them. The empty interval (Lo > Hi) is the bottom
// element: unreachable, or a branch refinement that contradicts the
// incoming fact.
type Interval struct {
	Lo, Hi float64
}

// Canonical elements.
var (
	// Top is the unconstrained interval (-∞, +∞).
	Top = Interval{math.Inf(-1), math.Inf(1)}
	// Empty is the canonical bottom element.
	Empty = Interval{1, 0}
	// Unit is [0, 1], the probability range.
	Unit = Interval{0, 1}
)

// Const returns the singleton interval [v, v].
func Const(v float64) Interval { return Interval{v, v} }

// Range returns [lo, hi].
func Range(lo, hi float64) Interval { return Interval{lo, hi} }

// AtLeast returns [lo, +∞).
func AtLeast(lo float64) Interval { return Interval{lo, math.Inf(1)} }

// AtMost returns (-∞, hi].
func AtMost(hi float64) Interval { return Interval{math.Inf(-1), hi} }

// IsEmpty reports whether the interval contains no value.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval is unconstrained on both sides.
func (iv Interval) IsTop() bool { return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1) }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// In reports whether the interval is entirely contained in outer (the
// empty interval is contained in everything).
func (iv Interval) In(outer Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	return outer.Lo <= iv.Lo && iv.Hi <= outer.Hi
}

// eqF is exact float64 equality for abstract-lattice endpoints. Interval
// bounds are code-derived values the transfer functions copy around, not
// measurements: the fixpoint termination argument needs bit-exact
// comparison, and an epsilon here would make Widen/Narrow oscillate.
func eqF(a, b float64) bool {
	//lint:ignore floatcmp lattice endpoints compare exactly; the fixpoint test must not use an epsilon
	return a == b
}

// Eq reports interval equality; all empty intervals are equal.
func (iv Interval) Eq(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return iv.IsEmpty() == o.IsEmpty()
	}
	return eqF(iv.Lo, o.Lo) && eqF(iv.Hi, o.Hi)
}

// String renders the interval for diagnostics: [0, 1], [2, +inf), (-inf,
// +inf), or ∅.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	open, close, lo, hi := "[", "]", "", ""
	if math.IsInf(iv.Lo, -1) {
		open, lo = "(", "-inf"
	} else {
		lo = trimFloat(iv.Lo)
	}
	if math.IsInf(iv.Hi, 1) {
		close, hi = ")", "+inf"
	} else {
		hi = trimFloat(iv.Hi)
	}
	return open + lo + ", " + hi + close
}

func trimFloat(v float64) string {
	if eqF(v, math.Trunc(v)) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Join returns the least interval containing both (the convex hull).
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Meet returns the intersection.
func (iv Interval) Meet(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	m := Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
	if m.IsEmpty() {
		return Empty
	}
	return m
}

// wideningThresholds are the landing points widening jumps to before giving
// up to ±∞: the bounds that matter to the medalint clients (0 and 1 confine
// probabilities, -1/0 confine indices) stay finite one extra iteration, so
// a loop that oscillates within [0,1] stabilizes there instead of at ⊤.
var wideningThresholds = [...]float64{-1, 0, 1}

// Widen extrapolates the unstable bounds of next relative to prev: a lower
// bound that dropped jumps to the largest threshold at or below it (else
// -∞), an upper bound that rose jumps to the smallest threshold at or above
// it (else +∞). Stable bounds are kept, so ascending chains stabilize after
// at most len(thresholds)+1 widenings per side.
func (iv Interval) Widen(next Interval) Interval {
	if iv.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return iv
	}
	w := iv
	if next.Lo < iv.Lo {
		w.Lo = math.Inf(-1)
		for i := len(wideningThresholds) - 1; i >= 0; i-- {
			if t := wideningThresholds[i]; t <= next.Lo {
				w.Lo = t
				break
			}
		}
	}
	if next.Hi > iv.Hi {
		w.Hi = math.Inf(1)
		for _, t := range wideningThresholds {
			if t >= next.Hi {
				w.Hi = t
				break
			}
		}
	}
	return w
}

// Narrow refines a widened interval with the recomputed next: infinite
// bounds adopt next's (the information widening threw away), finite bounds
// are kept (narrowing must never undercut the ascending solution).
func (iv Interval) Narrow(next Interval) Interval {
	if iv.IsEmpty() || next.IsEmpty() {
		return next
	}
	n := iv
	if math.IsInf(iv.Lo, -1) {
		n.Lo = next.Lo
	}
	if math.IsInf(iv.Hi, 1) {
		n.Hi = next.Hi
	}
	if n.IsEmpty() {
		return Empty
	}
	return n
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	return Interval{addLo(iv.Lo, o.Lo), addHi(iv.Hi, o.Hi)}
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	return Interval{addLo(iv.Lo, -o.Hi), addHi(iv.Hi, -o.Lo)}
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return Empty
	}
	return Interval{-iv.Hi, -iv.Lo}
}

// addLo/addHi add endpoints resolving the ∞ + (-∞) ambiguity toward the
// sound side of each bound.
func addLo(a, b float64) float64 {
	if math.IsInf(a, -1) || math.IsInf(b, -1) {
		return math.Inf(-1)
	}
	return a + b
}

func addHi(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.Inf(1)
	}
	return a + b
}

// Mul returns the interval product (min/max over endpoint products, with
// 0·∞ resolved to 0 — the factor is exactly zero, so the product is).
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	p := [4]float64{
		mulEnd(iv.Lo, o.Lo), mulEnd(iv.Lo, o.Hi),
		mulEnd(iv.Hi, o.Lo), mulEnd(iv.Hi, o.Hi),
	}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Interval{lo, hi}
}

func mulEnd(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

// Div returns the interval quotient. A divisor interval containing zero
// yields ⊤ (the analysis cannot exclude the singularity); empty operands
// propagate.
func (iv Interval) Div(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return Empty
	}
	if o.Contains(0) {
		return Top
	}
	inv := Interval{1 / o.Hi, 1 / o.Lo}
	return iv.Mul(inv)
}

// Trunc truncates both endpoints toward zero — the image of an interval
// under Go's truncating conversions and integer division (trunc is
// monotone, so applying it endpoint-wise is exact up to integrality).
func (iv Interval) Trunc() Interval {
	if iv.IsEmpty() {
		return Empty
	}
	return Interval{math.Trunc(iv.Lo), math.Trunc(iv.Hi)}
}
