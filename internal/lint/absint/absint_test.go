package absint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"testing"
)

// --- Interval lattice laws -------------------------------------------------

var lawSamples = []Interval{
	Top, Empty, Unit, Const(0), Const(1), Const(-3),
	Range(-2, 5), Range(0, 10), AtLeast(0), AtLeast(2), AtMost(-1), AtMost(7),
	Range(3, 3), Range(-1e6, 1e6),
}

func TestJoinLaws(t *testing.T) {
	for _, a := range lawSamples {
		for _, b := range lawSamples {
			if !a.Join(b).Eq(b.Join(a)) {
				t.Errorf("join not commutative: %v ⊔ %v = %v, %v ⊔ %v = %v",
					a, b, a.Join(b), b, a, b.Join(a))
			}
			for _, c := range lawSamples {
				if !a.Join(b).Join(c).Eq(a.Join(b.Join(c))) {
					t.Errorf("join not associative on %v, %v, %v", a, b, c)
				}
			}
		}
		if !a.Join(a).Eq(a) {
			t.Errorf("join not idempotent on %v", a)
		}
		if !a.Join(Empty).Eq(a) {
			t.Errorf("empty not join identity on %v", a)
		}
	}
}

func TestMeetLaws(t *testing.T) {
	for _, a := range lawSamples {
		for _, b := range lawSamples {
			if !a.Meet(b).Eq(b.Meet(a)) {
				t.Errorf("meet not commutative: %v ⊓ %v vs %v ⊓ %v", a, b, b, a)
			}
			for _, c := range lawSamples {
				if !a.Meet(b).Meet(c).Eq(a.Meet(b.Meet(c))) {
					t.Errorf("meet not associative on %v, %v, %v", a, b, c)
				}
			}
		}
		if !a.Meet(a).Eq(a) {
			t.Errorf("meet not idempotent on %v", a)
		}
		if !a.Meet(Top).Eq(a) {
			t.Errorf("top not meet identity on %v", a)
		}
	}
}

func TestAbsorption(t *testing.T) {
	for _, a := range lawSamples {
		for _, b := range lawSamples {
			if !a.Join(a.Meet(b)).Eq(a) {
				t.Errorf("absorption a ⊔ (a ⊓ b) failed on %v, %v", a, b)
			}
			// a ⊓ (a ⊔ b) = a holds only when join is exact; the convex hull
			// is exact for intervals, so it must hold.
			if !a.Meet(a.Join(b)).Eq(a) {
				t.Errorf("absorption a ⊓ (a ⊔ b) failed on %v, %v", a, b)
			}
		}
	}
}

// TestWideningTermination constructs an infinite ascending chain — the
// iterates of a counter loop — and checks widening stabilizes it in a
// bounded number of steps (the thresholds plus the jump to +∞).
func TestWideningTermination(t *testing.T) {
	cur := Const(0)
	steps := 0
	for {
		next := cur.Join(cur.Add(Const(1))) // the loop body: i = i + 1
		w := cur.Widen(next)
		if w.Eq(cur) {
			break
		}
		cur = w
		steps++
		if steps > len(wideningThresholds)+2 {
			t.Fatalf("widening did not stabilize after %d steps: %v", steps, cur)
		}
	}
	if !math.IsInf(cur.Hi, 1) || cur.Lo != 0 {
		t.Errorf("ascending counter should widen to [0, +inf), got %v", cur)
	}

	// Descending chain on the lower bound.
	cur = Const(0)
	steps = 0
	for {
		next := cur.Join(cur.Sub(Const(1)))
		w := cur.Widen(next)
		if w.Eq(cur) {
			break
		}
		cur = w
		steps++
		if steps > len(wideningThresholds)+2 {
			t.Fatalf("descending widening did not stabilize after %d steps: %v", steps, cur)
		}
	}
	if !math.IsInf(cur.Lo, -1) || cur.Hi != 0 {
		t.Errorf("descending counter should widen to (-inf, 0], got %v", cur)
	}
}

// TestWideningThresholds: an iterate oscillating inside [0,1] must stop at
// the 1 threshold, not blow through to +∞ — the property probflow relies on.
func TestWideningThresholds(t *testing.T) {
	got := Range(0, 0.5).Widen(Range(0, 0.9))
	if !got.Eq(Unit) {
		t.Errorf("widening [0,0.5] by [0,0.9] should land on [0,1], got %v", got)
	}
	got = Range(-0.5, 2).Widen(Range(-0.9, 2))
	if got.Lo != -1 || got.Hi != 2 {
		t.Errorf("lower widening should land on -1 threshold, got %v", got)
	}
}

func TestWideningIsUpperBound(t *testing.T) {
	for _, a := range lawSamples {
		for _, b := range lawSamples {
			w := a.Widen(b)
			if !a.In(w) || !b.In(w) {
				t.Errorf("Widen(%v, %v) = %v is not an upper bound", a, b, w)
			}
		}
	}
}

func TestNarrowStaysBetween(t *testing.T) {
	for _, a := range lawSamples {
		for _, b := range lawSamples {
			if !b.In(a) {
				continue // narrowing is only applied to descending pairs
			}
			n := a.Narrow(b)
			if !b.In(n) || !n.In(a) {
				t.Errorf("Narrow(%v, %v) = %v escapes [next, prev]", a, b, n)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		got, want Interval
		name      string
	}{
		{Range(1, 2).Add(Range(10, 20)), Range(11, 22), "add"},
		{Range(1, 2).Sub(Range(0, 1)), Range(0, 2), "sub"},
		{Range(-2, 3).Mul(Range(-1, 4)), Range(-8, 12), "mul mixed"},
		{Unit.Mul(Unit), Unit, "unit closed under product"},
		{Const(1).Sub(Unit), Unit, "complement of probability"},
		{Range(5, 5).Div(Range(2, 2)).Trunc(), Const(2), "integer division truncates"},
		{Range(-5, -5).Div(Range(2, 2)).Trunc(), Const(-2), "negative trunc toward zero"},
		{Range(1, 3).Div(Range(-1, 1)), Top, "division by zero-straddling"},
		{AtLeast(0).Mul(Const(0)), Const(0), "0 · ∞ = 0"},
		{Range(0, 10).Neg(), Range(-10, 0), "neg"},
	}
	for _, c := range cases {
		if !c.got.Eq(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

// --- Environment lattice ---------------------------------------------------

func TestEnvLatticeLaws(t *testing.T) {
	v := types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])
	r := Ref{Root: v}
	lat := envLattice{}
	bot := lat.Bottom()
	a := Env{reached: true, vals: map[Ref]Val{r: {I: Range(0, 5)}}}
	b := Env{reached: true, vals: map[Ref]Val{r: {I: Range(3, 9)}}}

	if !lat.Equal(lat.Join(a, b), lat.Join(b, a)) {
		t.Error("env join not commutative")
	}
	if !lat.Equal(lat.Join(a, bot), a) || !lat.Equal(lat.Join(bot, a), a) {
		t.Error("bottom not join identity")
	}
	if !lat.Equal(lat.Join(a, a), a) {
		t.Error("env join not idempotent")
	}
	j := lat.Join(a, b)
	if got := j.Get(r).I; !got.Eq(Range(0, 9)) {
		t.Errorf("env join should hull intervals, got %v", got)
	}
}

// --- Interpreter -----------------------------------------------------------

// analyzeSnippet type-checks one function and runs the interpreter on it.
func analyzeSnippet(t *testing.T, src string, opts Options) (*Func, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	_ = pkg
	var decl *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Name.Name == "g" {
			decl = fd
			break
		}
	}
	if decl == nil {
		t.Fatal("no function in snippet")
	}
	var params []*types.Var
	for _, fld := range decl.Type.Params.List {
		for _, name := range fld.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				params = append(params, v)
			}
		}
	}
	return Analyze(info, decl.Body, params, opts), info, fset
}

// intervalAt finds the marked expression (immediately preceding a
// line-comment is too fragile; instead we find the unique identifier use
// named name inside a call to sink) and returns its interval there.
func intervalAtSink(t *testing.T, f *Func, info *types.Info) Interval {
	t.Helper()
	var got Interval
	found := false
	f.Walk(func(n ast.Node, env Env) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "sink" || len(call.Args) != 1 {
			return
		}
		got = f.EvalIn(env, call.Args[0])
		found = true
	})
	if !found {
		t.Fatal("no sink(x) call in snippet")
	}
	return got
}

const sinkDecl = "func sink(v int) {}\nfunc sinkf(v float64) {}\n"

func TestLoopNarrowing(t *testing.T) {
	// The classic result: after widening to [0,+inf) the narrowing pass
	// recovers i ∈ [0, 9] inside the loop body.
	f, info, _ := analyzeSnippet(t, sinkDecl+`
func g() {
	for i := 0; i < 10; i++ {
		sink(i)
	}
}`, Options{})
	got := intervalAtSink(t, f, info)
	if !got.Eq(Range(0, 9)) {
		t.Errorf("loop body index should be [0, 9], got %v", got)
	}
}

func TestLoopVariableBound(t *testing.T) {
	f, info, _ := analyzeSnippet(t, sinkDecl+`
func g(n int) {
	for i := 0; i < n; i++ {
		sink(i)
	}
}`, Options{})
	got := intervalAtSink(t, f, info)
	if got.Lo != 0 || !math.IsInf(got.Hi, 1) {
		t.Errorf("loop over unknown n: index should be [0, +inf), got %v", got)
	}
}

func TestBranchRefinement(t *testing.T) {
	f, info, _ := analyzeSnippet(t, sinkDecl+`
func g(x int) {
	if x >= 0 && x < 100 {
		sink(x)
	}
}`, Options{})
	got := intervalAtSink(t, f, info)
	if !got.Eq(Range(0, 99)) {
		t.Errorf("guarded x should be [0, 99], got %v", got)
	}
}

func TestGuardClauseRefinement(t *testing.T) {
	// The early-return shape: after `if x < 0 { return }` x is ≥ 0.
	f, info, _ := analyzeSnippet(t, sinkDecl+`
func g(x int) {
	if x < 0 {
		return
	}
	sink(x)
}`, Options{})
	got := intervalAtSink(t, f, info)
	if got.Lo != 0 {
		t.Errorf("x after negative guard should have Lo = 0, got %v", got)
	}
}

func TestInfeasibleBranch(t *testing.T) {
	// x == 5 inside x > 10: the true edge is infeasible, the sink env is
	// unreachable and evaluates to empty.
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(x int) {
	if x > 10 {
		if x == 5 {
			sink(x)
		}
	}
}`, Options{})
	reachedSink := false
	f.Walk(func(n ast.Node, env Env) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" && env.Reached() {
				reachedSink = true
			}
		}
	})
	if reachedSink {
		t.Error("sink under contradictory guards should be unreachable")
	}
}

func TestLtLenFact(t *testing.T) {
	f, info, _ := analyzeSnippet(t, sinkDecl+`
func g(s []int, i int) int {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return 0
}`, Options{})
	checked := false
	f.Walk(func(n ast.Node, env Env) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return
		}
		ix, ok := ret.Results[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		ok2, why := f.IndexProven(env, ix.X, ix.Index)
		if !ok2 {
			t.Errorf("guarded s[i] should be proven: %s", why)
		}
		checked = true
	})
	if !checked {
		t.Fatal("no indexed return found")
	}
	_ = info
}

func TestLenAliasProven(t *testing.T) {
	// n := len(s) then i < n must prove s[i], without spelling len(s) in
	// the guard.
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(s []int) int {
	t := 0
	n := len(s)
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}`, Options{})
	proven := false
	f.Walk(func(n ast.Node, env Env) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN {
			return
		}
		ix, ok := as.Rhs[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		ok2, why := f.IndexProven(env, ix.X, ix.Index)
		if !ok2 {
			t.Errorf("s[i] under i < n with n := len(s) should be proven: %s", why)
		}
		proven = true
	})
	if !proven {
		t.Fatal("no index expression found")
	}
}

func TestRangeIndexProven(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(s []int) int {
	t := 0
	for i := range s {
		t += s[i]
	}
	return t
}`, Options{})
	proven := false
	f.Walk(func(n ast.Node, env Env) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ADD_ASSIGN {
			return
		}
		ix, ok := as.Rhs[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		ok2, why := f.IndexProven(env, ix.X, ix.Index)
		if !ok2 {
			t.Errorf("range index s[i] should be proven: %s", why)
		}
		proven = true
	})
	if !proven {
		t.Fatal("no index expression found")
	}
}

func TestMakeLenAndConstIndex(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(n int) {
	if n <= 0 {
		return
	}
	s := make([]int, n)
	s[0] = 1
	_ = s
}`, Options{})
	proven := false
	f.Walk(func(n ast.Node, env Env) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return
		}
		ix, ok := as.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		ok2, why := f.IndexProven(env, ix.X, ix.Index)
		if !ok2 {
			t.Errorf("s[0] after make([]int, n) with n ≥ 1 should be proven: %s", why)
		}
		proven = true
	})
	if !proven {
		t.Fatal("no index store found")
	}
}

func TestUncheckedIndexUnproven(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(s []int, y, w, x int) int {
	return s[y*w+x]
}`, Options{})
	flagged := false
	f.Walk(func(n ast.Node, env Env) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return
		}
		ix, ok := ret.Results[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		if ok2, _ := f.IndexProven(env, ix.X, ix.Index); !ok2 {
			flagged = true
		}
		if !f.ValueOf(env, ix.Index).Coord && !f.isCoordExpr(env, ix.Index) {
			t.Error("y*w+x should be coordinate-tainted")
		}
	})
	if !flagged {
		t.Error("unchecked s[y*w+x] must be unproven")
	}
}

func TestCoordTaintFlowsThroughAssignment(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(s []int, y, w, x int) int {
	idx := y*w + x
	return s[idx]
}`, Options{})
	sawTaint := false
	f.Walk(func(n ast.Node, env Env) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return
		}
		if ix, ok := ret.Results[0].(*ast.IndexExpr); ok {
			if f.ValueOf(env, ix.Index).Coord {
				sawTaint = true
			}
		}
	})
	if !sawTaint {
		t.Error("coordinate taint should flow through idx := y*w + x")
	}
}

func TestProbabilityPropagation(t *testing.T) {
	seed := func(v *types.Var) (Interval, bool) {
		if v.Name() == "p" || v.Name() == "q" {
			return Unit, true
		}
		return Top, false
	}
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(p, q float64) {
	prod := p * q
	comp := 1 - p
	bad := p + q
	sinkf(prod)
	sinkf(comp)
	sinkf(bad)
}`, Options{ParamSeed: seed})
	want := map[string]Interval{"prod": Unit, "comp": Unit, "bad": Range(0, 2)}
	f.Walk(func(n ast.Node, env Env) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "sinkf" {
			return
		}
		arg := call.Args[0].(*ast.Ident)
		got := f.EvalIn(env, arg)
		if w, ok := want[arg.Name]; ok && !got.Eq(w) {
			t.Errorf("%s should be %v, got %v", arg.Name, w, got)
		}
	})
}

func TestCallHavocsFields(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
type h struct{ w int }
func opaque()
func g(v *h) {
	if v.w > 0 {
		opaque()
		sink(v.w)
	}
}`, Options{})
	f.Walk(func(n ast.Node, env Env) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			got := f.EvalIn(env, call.Args[0])
			if !got.IsTop() {
				t.Errorf("v.w after opaque call should be ⊤, got %v", got)
			}
		}
	})
}

func TestAppendGrowsLen(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g() {
	s := make([]int, 0)
	s = append(s, 1)
	s = append(s, 2)
	sink(len(s))
}`, Options{})
	var got Interval
	found := false
	f.Walk(func(n ast.Node, env Env) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			got = f.EvalIn(env, call.Args[0])
			found = true
		}
	})
	if !found {
		t.Fatal("no sink")
	}
	if !got.Eq(Const(2)) {
		t.Errorf("len after two appends to empty slice should be [2, 2], got %v", got)
	}
}

// TestInterpreterTermination runs the interpreter over a deliberately nasty
// nest of loops whose counters ascend without bound — termination is the
// point of the widening; the test failing would hang, so it is guarded by
// the package test timeout.
func TestInterpreterTermination(t *testing.T) {
	f, _, _ := analyzeSnippet(t, sinkDecl+`
func g(n int) {
	x := 0
	for {
		x++
		for j := 0; ; j += x {
			if j > n {
				break
			}
			x += j
		}
		if x < 0 {
			break
		}
	}
	sink(x)
}`, Options{})
	if f == nil {
		t.Fatal("analysis returned nil")
	}
}
