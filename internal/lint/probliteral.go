package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"meda/internal/lint/analysis"
)

// ProbLiteral flags constant probabilities outside [0, 1]: literals written
// into probability-named struct fields (P, Prob, Probability), assigned to
// such fields, or passed for probability-named parameters. mdp.Validate
// catches bad distributions at model-build time, but only on the states a
// run happens to construct; this analyzer rejects the literal at compile
// time, wherever it appears.
var ProbLiteral = &analysis.Analyzer{
	Name: "probliteral",
	Doc:  "flags probability literals outside [0,1]",
	Run:  runProbLiteral,
}

var probFieldRE = regexp.MustCompile(`^(P|Prob|Probability)$`)
var probParamRE = regexp.MustCompile(`(?i)^(p|prob|probability)$`)

func runProbLiteral(pass *analysis.Pass) error {
	info := pass.TypesInfo
	check := func(expr ast.Expr, what string) {
		tv := info.Types[expr]
		if tv.Value == nil {
			return
		}
		if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
			return
		}
		if constant.Sign(tv.Value) >= 0 && !exceedsOne(tv.Value) {
			return
		}
		pass.Reportf(expr.Pos(), "probability literal %s for %s is outside [0,1]", tv.Value.String(), what)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				st, ok := structOf(info.Types[n].Type)
				if !ok {
					return true
				}
				for i, elt := range n.Elts {
					name, value := "", ast.Expr(nil)
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							name, value = id.Name, kv.Value
						}
					} else if i < st.NumFields() {
						name, value = st.Field(i).Name(), elt
					}
					if value != nil && probFieldRE.MatchString(name) && isFloat(info.Types[value].Type) {
						check(value, "field "+name)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) || len(n.Lhs) != len(n.Rhs) {
						continue
					}
					if probFieldRE.MatchString(sel.Sel.Name) && isFloat(info.Types[lhs].Type) {
						check(n.Rhs[i], "field "+sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				sig, ok := signatureOf(info, n.Fun)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					pi := i
					if sig.Variadic() && pi >= sig.Params().Len() {
						pi = sig.Params().Len() - 1
					}
					if pi < 0 || pi >= sig.Params().Len() {
						continue
					}
					param := sig.Params().At(pi)
					if probParamRE.MatchString(param.Name()) && isFloat(param.Type()) {
						check(arg, "parameter "+param.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// exceedsOne reports v > 1 for a numeric constant.
func exceedsOne(v constant.Value) bool {
	if v.Kind() != constant.Int && v.Kind() != constant.Float {
		return false
	}
	return constant.Compare(v, token.GTR, constant.MakeInt64(1))
}

// structOf unwraps t (possibly behind a pointer or a named type) to a
// struct.
func structOf(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// signatureOf resolves the signature of a call target, rejecting
// conversions and builtins.
func signatureOf(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	tv := info.Types[fun]
	if tv.Type == nil || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}
