package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"meda/internal/lint/analysis"
	"meda/internal/lint/callgraph"
)

// AllocFacts is the exported allocation summary of one function: the heap
// costs a call into it can incur, one witness per kind, with the same
// bottom-up Via chains as FnSummary.Nondet. hotalloc consumes these to
// enforce the //meda:hotpath contract; the kinds mirror PR 6's
// allocation-budget postmortem — the regressions that silently re-inflate
// an 8 allocs/op path are exactly make/boxing/closure/defer, not exotic
// escapes.
type AllocFacts struct {
	// Allocs holds the reachable allocation sources, sorted by Kind, one
	// witness per kind.
	Allocs []Source
}

// AFact marks AllocFacts as an analysis fact.
func (*AllocFacts) AFact() {}

// allocFingerprint is the monotone measure for the SCC fixpoint.
func (a *AllocFacts) allocFingerprint() string {
	var sb strings.Builder
	for _, s := range a.Allocs {
		sb.WriteString(s.Kind)
		sb.WriteByte(';')
	}
	return sb.String()
}

// AllocSummaries maps the analyzed package's functions to their allocation
// summaries.
type AllocSummaries map[*types.Func]*AllocFacts

// Of resolves an allocation summary for any function: a node of the
// analyzed package, or an upstream function through its imported fact.
func (s AllocSummaries) Of(pass *analysis.Pass, fn *types.Func) *AllocFacts {
	if fn == nil {
		return nil
	}
	if sum, ok := s[fn]; ok {
		return sum
	}
	var fact AllocFacts
	if pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	return nil
}

// ComputeAllocs builds the package call graph and computes bottom-up
// allocation summaries, exporting an AllocFacts fact for every function
// that can allocate so downstream packages resolve calls into this one.
// The soundness posture matches FnSummary: static calls always contribute;
// interface calls contribute their CHA candidates while narrow; wide
// dispatch and function values are opaque and contribute nothing.
func ComputeAllocs(pass *analysis.Pass) AllocSummaries {
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	sums := make(AllocSummaries, len(g.Nodes))
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				old := ""
				if prev, ok := sums[n.Fn]; ok {
					old = prev.allocFingerprint()
				}
				next := summarizeAllocs(pass, sums, n)
				if next.allocFingerprint() != old {
					changed = true
				}
				sums[n.Fn] = next
			}
		}
	}
	for fn, sum := range sums {
		if len(sum.Allocs) > 0 {
			pass.ExportObjectFact(fn, sum)
		}
	}
	return sums
}

// summarizeAllocs computes one function's allocation summary from its body
// and the current summaries of its callees.
func summarizeAllocs(pass *analysis.Pass, sums AllocSummaries, n *callgraph.Node) *AllocFacts {
	sum := &AllocFacts{}
	add := func(src Source) {
		for _, have := range sum.Allocs {
			if have.Kind == src.Kind {
				return // one witness per kind; first (shallowest) wins
			}
		}
		sum.Allocs = append(sum.Allocs, src)
	}

	scanAllocs(pass, n.Decl, add)

	for _, call := range n.Calls {
		targets := call.Targets
		if call.Kind == callgraph.Interface && len(targets) > maxCHATargets {
			targets = nil // wide dispatch: opaque
		}
		for _, callee := range targets {
			cs := sums.Of(pass, callee)
			if cs == nil {
				continue
			}
			name := displayName(pass, callee)
			for _, src := range cs.Allocs {
				via := name
				if src.Via != "" {
					via = name + " → " + src.Via
				}
				if parts := strings.Split(via, " → "); len(parts) > maxViaChain {
					via = strings.Join(parts[:maxViaChain], " → ") + " → …"
				}
				add(Source{Kind: src.Kind, Via: via, Pos: call.Site.Pos()})
			}
		}
	}

	sort.Slice(sum.Allocs, func(i, j int) bool { return sum.Allocs[i].Kind < sum.Allocs[j].Kind })
	return sum
}

// scanAllocs records the direct allocation sources of one function body.
// go/defer statements and closures are flagged as constructs (the goroutine,
// the deferred frame, the closure object each allocate); their bodies are
// not descended into — the construct finding already gates the site, and a
// deferred call's own allocations surface through its callee summary at the
// call edge anyway.
func scanAllocs(pass *analysis.Pass, decl *ast.FuncDecl, add func(Source)) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(info, n) {
				add(Source{Kind: "closure capture", Pos: n.Pos()})
			}
			return false
		case *ast.GoStmt:
			add(Source{Kind: "go statement", Pos: n.Pos()})
			return false
		case *ast.DeferStmt:
			add(Source{Kind: "defer", Pos: n.Pos()})
			return false
		case *ast.RangeStmt:
			if isMap(info.Types[n.X].Type) {
				add(Source{Kind: "map iteration", Pos: n.Range})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(Source{Kind: "composite literal allocation", Pos: n.Pos()})
				}
			}
		case *ast.CompositeLit:
			// A slice or map literal allocates its backing store even
			// without &.
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					add(Source{Kind: "composite literal allocation", Pos: n.Pos()})
				}
			}
		case *ast.CallExpr:
			scanAllocCall(info, n, add)
		case *ast.AssignStmt:
			// Non-self append: `dst = append(src, …)` with dst ≠ src
			// abandons the amortized-growth pattern and copies on every call.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if isNonSelfAppend(info, n.Lhs[i], rhs) {
					add(Source{Kind: "append (non-self)", Pos: rhs.Pos()})
				}
			}
			checkBoxedAssign(info, n, add)
		}
		return true
	})
}

// scanAllocCall handles one call's direct allocation contributions:
// make/new builtins, conversions to interface types, and interface boxing
// of concrete arguments at the call boundary.
func scanAllocCall(info *types.Info, call *ast.CallExpr, add func(Source)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(Source{Kind: "make", Pos: call.Pos()})
			case "new":
				add(Source{Kind: "new", Pos: call.Pos()})
			}
			return
		}
	}
	// Conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			add(Source{Kind: "interface boxing", Pos: call.Pos()})
		}
		return
	}
	// Concrete arguments passed for interface parameters box at the call.
	sig := signatureOfCall(info, call.Fun)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if types.IsInterface(pt) && boxes(info, arg) {
			add(Source{Kind: "interface boxing", Pos: arg.Pos()})
		}
	}
}

// checkBoxedAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkBoxedAssign(info *types.Info, n *ast.AssignStmt, add func(Source)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := info.Types[lhs].Type
		if lt == nil {
			if id, ok := lhs.(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					lt = v.Type()
				}
			}
		}
		if lt != nil && types.IsInterface(lt) && boxes(info, n.Rhs[i]) {
			add(Source{Kind: "interface boxing", Pos: n.Rhs[i].Pos()})
		}
	}
}

// boxes reports whether assigning the expression to an interface
// destination allocates: its static type is concrete and non-pointer-sized
// data moves to the heap. Constants (untyped or typed) are exempt — the
// compiler materializes them in static data, so `panic("msg")` stays free —
// as are nil, pointers, and values already of interface type.
func boxes(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	if tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// Pointer-shaped values fit the interface word without copying.
		return false
	}
	return true
}

// isNonSelfAppend reports whether rhs is append(base, …) whose base is
// spelled differently from the assignment target — the copying shape, as
// opposed to the amortized self-append `s = append(s, x)` (including
// through field paths: `b.g.tos = append(b.g.tos, x)`). A reslice of the
// target itself, `s = append(s[:0], x)`, is the truncate-and-reuse idiom:
// the append writes into s's existing backing array, so it counts as self.
func isNonSelfAppend(info *types.Info, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	base := ast.Unparen(call.Args[0])
	if sl, ok := base.(*ast.SliceExpr); ok && !sl.Slice3 {
		base = ast.Unparen(sl.X)
	}
	return types.ExprString(ast.Unparen(lhs)) != types.ExprString(base)
}

// capturesOuter reports whether a function literal references a variable
// declared outside itself — the closure must then carry an allocated
// environment; capture-free literals compile to static functions.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	declared := make(map[*types.Var]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				declared[v] = true
			}
		}
		return true
	})
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if !declared[v] && !v.IsField() && v.Parent() != nil &&
					v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
					captures = true
				}
			}
		}
		return !captures
	})
	return captures
}

// signatureOfCall resolves the signature of a call target, rejecting
// conversions and builtins.
func signatureOfCall(info *types.Info, fun ast.Expr) *types.Signature {
	tv := info.Types[fun]
	if tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
