package summary_test

import (
	"path/filepath"
	"testing"

	"meda/internal/lint/analysis"
	"meda/internal/lint/summary"
)

// loadAllocs computes allocation summaries for the allocs fixture package.
func loadAllocs(t *testing.T) (*analysis.Pass, summary.AllocSummaries) {
	t.Helper()
	dir := filepath.Join("testdata", "allocs")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     analysis.NewFactStore(),
		Report:    func(analysis.Diagnostic) {},
	}
	return pass, summary.ComputeAllocs(pass)
}

// kindsOf flattens a summary to its kind strings.
func kindsOf(s *summary.AllocFacts) map[string]summary.Source {
	out := map[string]summary.Source{}
	if s == nil {
		return out
	}
	for _, src := range s.Allocs {
		out[src.Kind] = src
	}
	return out
}

// TestDirectAllocKinds: each fixture function reports exactly the kind it
// was written to exhibit.
func TestDirectAllocKinds(t *testing.T) {
	pass, sums := loadAllocs(t)
	cases := map[string]string{
		"MakeSlice":     "make",
		"NewInt":        "new",
		"AmpLit":        "composite literal allocation",
		"SliceLit":      "composite literal allocation",
		"MapLit":        "composite literal allocation",
		"BoxArg":        "interface boxing",
		"BoxVariadic":   "interface boxing",
		"BoxAssign":     "interface boxing",
		"BoxConv":       "interface boxing",
		"NonSelfAppend": "append (non-self)",
		"Closure":       "closure capture",
		"Spawn":         "go statement",
		"Deferred":      "defer",
		"MapWalk":       "map iteration",
	}
	for name, want := range cases {
		s := sums.Of(pass, fn(t, pass, name))
		kinds := kindsOf(s)
		if _, ok := kinds[want]; !ok {
			t.Errorf("%s: missing alloc kind %q (got %v)", name, want, kinds)
		}
		if src := kinds[want]; !src.Pos.IsValid() {
			t.Errorf("%s: witness for %q has no position", name, want)
		}
	}
}

// TestCleanFunctionsStayClean: the counterexamples report no sources, and
// export no facts.
func TestCleanFunctionsStayClean(t *testing.T) {
	pass, sums := loadAllocs(t)
	for _, name := range []string{"Clean", "SelfAppend", "ReuseAppend", "ConstArg", "PointerArg", "InterfaceArg", "FreeLit", "eat"} {
		if s := sums.Of(pass, fn(t, pass, name)); s != nil && len(s.Allocs) > 0 {
			t.Errorf("%s: unexpected alloc sources %v", name, kindsOf(s))
		}
	}
	var fact summary.AllocFacts
	if pass.ImportObjectFact(fn(t, pass, "Clean"), &fact) {
		t.Errorf("Clean exported an alloc fact: %+v", fact)
	}
}

// TestTransitiveAllocsWithViaChain: callee sources propagate bottom-up with
// witness chains, and allocating functions export facts.
func TestTransitiveAllocsWithViaChain(t *testing.T) {
	pass, sums := loadAllocs(t)
	one := kindsOf(sums.Of(pass, fn(t, pass, "CallsMake")))
	if src, ok := one["make"]; !ok || src.Via != "MakeSlice" {
		t.Errorf("CallsMake: want make via MakeSlice, got %v", one)
	}
	two := kindsOf(sums.Of(pass, fn(t, pass, "CallsCallsMake")))
	if src, ok := two["make"]; !ok || src.Via != "CallsMake → MakeSlice" {
		t.Errorf("CallsCallsMake: want make via CallsMake → MakeSlice, got %v", two)
	}

	var fact summary.AllocFacts
	if !pass.ImportObjectFact(fn(t, pass, "MakeSlice"), &fact) {
		t.Fatal("MakeSlice: no AllocFacts fact exported")
	}
	if len(fact.Allocs) != 1 || fact.Allocs[0].Kind != "make" {
		t.Errorf("MakeSlice fact = %+v", fact)
	}
}

// TestAllocsOfResolution: Of answers from the local map, falls back to the
// fact store, and is nil-safe.
func TestAllocsOfResolution(t *testing.T) {
	pass, _ := loadAllocs(t)
	var empty summary.AllocSummaries
	if empty.Of(pass, nil) != nil {
		t.Error("Of(nil) should be nil")
	}
	// The compute pass exported facts, so even an empty map resolves an
	// allocating function through the store…
	if s := empty.Of(pass, fn(t, pass, "MakeSlice")); s == nil || len(s.Allocs) != 1 {
		t.Errorf("fact fallback failed: %+v", s)
	}
	// …while a clean function (no fact) stays unresolved.
	if s := empty.Of(pass, fn(t, pass, "Clean")); s != nil {
		t.Errorf("Clean resolved to %+v, want nil", s)
	}
}
