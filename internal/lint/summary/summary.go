// Package summary computes per-function interprocedural summaries for the
// medalint analyzers, in the classic bottom-up style: the package call
// graph (internal/lint/callgraph) is condensed into strongly connected
// components, the components are processed callees-first, and each
// component iterates to a fixpoint, so direct and mutual recursion converge
// instead of recursing. Calls that leave the package resolve through
// analysis Facts: the driver analyzes packages in dependency order sharing
// one fact store, so by the time a downstream package is summarized, every
// upstream function already carries its FnSummary fact — summaries flow
// between packages exactly like lockheld's MayBlock facts.
//
// A summary answers three questions about a function f:
//
//   - Nondet: which nondeterminism sources can executing f reach —
//     wall-clock reads (time.Now/Since/Until), the global math/rand
//     source, crypto/rand, map iteration order feeding ordered output, and
//     scheduler-dependent select arm choice — each with a witness call
//     chain for diagnostics.
//   - BlockReason: can a call into f block the calling goroutine (channel
//     operations, selects without default, WaitGroup/Cond waits,
//     time.Sleep, or a call into another blocking function). Operations
//     inside go statements, function literals, and defers do not count:
//     they run off the caller's control flow or at return.
//   - Params: per-parameter channel-protocol bits — does f send on,
//     receive from, or close a channel passed as parameter i, and does
//     parameter i escape (stored, returned, captured, or passed to an
//     unknown callee).
//
// Soundness posture: static calls always contribute to the caller's
// summary. Interface calls contribute the union of their CHA candidates,
// but only while the candidate set is narrow (at most maxCHATargets) — the
// domain interfaces the analyzers care about (Router, FaultModel,
// ForceField) have one to three implementations, while wide stdlib
// interfaces like io.Writer would drown every summary in false reachability.
// Wide interface calls and calls through function values are treated as
// opaque: they contribute nothing, which keeps the analyzers quiet rather
// than wrong-by-noise. Channel-typed arguments passed to an opaque call
// mark the parameter as escaping, so the leak analyzers know they lost
// track of it.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"meda/internal/lint/analysis"
	"meda/internal/lint/callgraph"
)

// maxCHATargets bounds how wide an interface dispatch may be before the
// call is treated as opaque rather than unioned into the summary.
const maxCHATargets = 3

// maxViaChain bounds the length of recorded witness chains; deeper sources
// keep the truncated prefix with an ellipsis.
const maxViaChain = 6

// ParamOps is the channel-protocol bitmask of one parameter.
type ParamOps uint8

const (
	// OpSend: the function may send on the channel parameter.
	OpSend ParamOps = 1 << iota
	// OpRecv: the function may receive from the channel parameter
	// (including range).
	OpRecv
	// OpClose: the function may close the channel parameter.
	OpClose
	// OpEscape: the parameter escapes — stored, returned, captured by a
	// function literal, or passed to a callee the analysis cannot see into.
	OpEscape
)

// Has reports whether all bits of mask are set.
func (p ParamOps) Has(mask ParamOps) bool { return p&mask == mask }

// Source is one nondeterminism source reachable from a function.
type Source struct {
	// Kind names the source: "time.Now", "math/rand.Intn", "map iteration
	// order", "select arm order".
	Kind string
	// Via is the call chain below the summarized function that reaches the
	// source (" → "-separated), empty when the source is in the function's
	// own body.
	Via string
	// Pos is the witness position inside the summarized function's body:
	// the offending operation itself, or the call through which the source
	// is reached.
	Pos token.Pos
}

// String renders the source for diagnostics.
func (s Source) String() string {
	if s.Via == "" {
		return s.Kind
	}
	return s.Kind + " via " + s.Via
}

// FnSummary is the exported fact: the interprocedural summary of one
// package-level function or method.
type FnSummary struct {
	// Nondet holds the reachable nondeterminism sources, sorted by Kind,
	// one witness per kind.
	Nondet []Source
	// BlockReason is the blocking operation a call bottoms out in, empty
	// when the function cannot block its caller.
	BlockReason string
	// Params holds one ParamOps per declared parameter (variadic included,
	// receiver excluded).
	Params []ParamOps
}

// AFact marks FnSummary as an analysis fact.
func (*FnSummary) AFact() {}

// MayBlock reports whether a call into the function can block the caller.
func (s *FnSummary) MayBlock() bool { return s != nil && s.BlockReason != "" }

// NondetFor returns the recorded source of a kind, if any.
func (s *FnSummary) NondetFor(kind string) (Source, bool) {
	for _, src := range s.Nondet {
		if src.Kind == kind {
			return src, true
		}
	}
	return Source{}, false
}

// fingerprint is the monotone-growth measure the SCC fixpoint compares:
// summaries only ever gain nondet kinds, a block reason, and param bits.
func (s *FnSummary) fingerprint() string {
	var sb strings.Builder
	for _, src := range s.Nondet {
		sb.WriteString(src.Kind)
		sb.WriteByte(';')
	}
	sb.WriteByte('|')
	if s.BlockReason != "" {
		sb.WriteByte('B')
	}
	for _, p := range s.Params {
		fmt.Fprintf(&sb, "%d,", p)
	}
	return sb.String()
}

// Summaries maps the analyzed package's functions to their summaries.
type Summaries map[*types.Func]*FnSummary

// Of resolves a summary for any function: a node of the analyzed package,
// or an upstream function through its imported fact. Returns nil when the
// function is unknown (no body analyzed, no fact exported).
func (s Summaries) Of(pass *analysis.Pass, fn *types.Func) *FnSummary {
	if fn == nil {
		return nil
	}
	if sum, ok := s[fn]; ok {
		return sum
	}
	var fact FnSummary
	if pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	if seed := seededSummary(fn); seed != nil {
		return seed
	}
	return nil
}

// Compute builds the package call graph, runs the bottom-up fixpoint, and
// exports an FnSummary fact for every function with a non-empty summary so
// downstream packages can resolve calls into this one. The returned map
// also covers functions whose summary is empty.
func Compute(pass *analysis.Pass) Summaries {
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	sums := make(Summaries, len(g.Nodes))
	for _, scc := range g.SCCs() {
		// Iterate the component to a fixpoint. Singleton components without
		// self-loops stabilize in one pass; recursive components grow their
		// summaries monotonically until nothing changes.
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				old := ""
				if prev, ok := sums[n.Fn]; ok {
					old = prev.fingerprint()
				}
				next := summarize(pass, sums, n)
				if next.fingerprint() != old {
					changed = true
				}
				sums[n.Fn] = next
			}
		}
	}
	for fn, sum := range sums {
		if len(sum.Nondet) > 0 || sum.BlockReason != "" || anyOps(sum.Params) {
			pass.ExportObjectFact(fn, sum)
		}
	}
	return sums
}

func anyOps(params []ParamOps) bool {
	for _, p := range params {
		if p != 0 {
			return true
		}
	}
	return false
}

// displayName renders a function for witness chains: pkg.Fn or
// pkg.Recv.Fn, with the package omitted for the analyzed package itself.
func displayName(pass *analysis.Pass, fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// summarize computes one function's summary from its body and the current
// summaries of its callees.
func summarize(pass *analysis.Pass, sums Summaries, n *callgraph.Node) *FnSummary {
	info := pass.TypesInfo
	sum := &FnSummary{}
	params := paramVars(info, n.Decl)
	sum.Params = make([]ParamOps, len(params))
	paramIndex := make(map[*types.Var]int, len(params))
	for i, v := range params {
		paramIndex[v] = i
	}

	addNondet := func(src Source) {
		for _, have := range sum.Nondet {
			if have.Kind == src.Kind {
				return // one witness per kind; first (shallowest) wins
			}
		}
		sum.Nondet = append(sum.Nondet, src)
	}
	setBlock := func(reason string) {
		if sum.BlockReason == "" {
			sum.BlockReason = reason
		}
	}

	// Direct, body-level facts: channel ops, selects, map ranges, and
	// parameter usage. Calls are folded in afterwards from the call graph's
	// resolved sites.
	scanBody(pass, n.Decl.Body, paramIndex, sum, addNondet, setBlock)

	// Callee contributions.
	for _, call := range n.Calls {
		targets := call.Targets
		if call.Kind == callgraph.Interface && len(targets) > maxCHATargets {
			targets = nil // wide dispatch: opaque
		}
		for _, callee := range targets {
			cs := sums.Of(pass, callee)
			if cs == nil {
				continue
			}
			name := displayName(pass, callee)
			for _, src := range cs.Nondet {
				via := name
				if src.Via != "" {
					via = name + " → " + src.Via
				}
				if parts := strings.Split(via, " → "); len(parts) > maxViaChain {
					via = strings.Join(parts[:maxViaChain], " → ") + " → …"
				}
				addNondet(Source{Kind: src.Kind, Via: via, Pos: call.Site.Pos()})
			}
			if cs.BlockReason != "" && !call.Async && !call.Deferred {
				setBlock(fmt.Sprintf("call to %s (may block: %s)", name, cs.BlockReason))
			}
			// Map callee param ops back onto our own parameters when a
			// parameter is passed straight through as an argument.
			for ai, arg := range call.Site.Args {
				v := identVar(info, arg)
				pi, isParam := paramIndex[v]
				if !isParam {
					continue
				}
				ci := ai
				if ci >= len(cs.Params) {
					if len(cs.Params) == 0 {
						continue
					}
					ci = len(cs.Params) - 1 // variadic tail
				}
				sum.Params[pi] |= cs.Params[ci] & (OpSend | OpRecv | OpClose | OpEscape)
			}
		}
		// Opaque calls (dynamic, wide interface, or no summary): any
		// parameter passed in escapes our tracking.
		if len(targets) == 0 {
			for _, arg := range call.Site.Args {
				if pi, ok := paramIndex[identVar(info, arg)]; ok {
					sum.Params[pi] |= OpEscape
				}
			}
		} else {
			// A resolved callee without a summary (stdlib, no fact) is
			// opaque too.
			resolvedAny := false
			for _, callee := range targets {
				if sums.Of(pass, callee) != nil {
					resolvedAny = true
					break
				}
			}
			if !resolvedAny {
				for _, arg := range call.Site.Args {
					if pi, ok := paramIndex[identVar(info, arg)]; ok {
						sum.Params[pi] |= OpEscape
					}
				}
			}
		}
	}

	sort.Slice(sum.Nondet, func(i, j int) bool { return sum.Nondet[i].Kind < sum.Nondet[j].Kind })
	return sum
}

// paramVars returns the declared parameter variables of a declaration, in
// order (receiver excluded).
func paramVars(info *types.Info, decl *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// identVar resolves an expression to the variable it reads, or nil.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// scanBody records the body-level facts of one function: direct
// nondeterminism sources, direct blocking operations, and direct parameter
// ops/escapes. Blocking honors execution context (go/defer/literal bodies
// don't block the caller); nondeterminism does not (a launched goroutine
// still executes the effect).
func scanBody(pass *analysis.Pass, body *ast.BlockStmt, paramIndex map[*types.Var]int,
	sum *FnSummary, addNondet func(Source), setBlock func(string)) {
	info := pass.TypesInfo
	hasSortCall := containsSortCall(info, body)

	paramOf := func(e ast.Expr) (int, bool) {
		i, ok := paramIndex[identVar(info, e)]
		return i, ok
	}

	var walk func(n ast.Node, offFlow bool)
	walk = func(n ast.Node, offFlow bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// Parameters referenced inside a literal escape the
				// flow-insensitive tracking; the literal's operations run
				// off the caller's control flow.
				walk(m.Body, true)
				return false
			case *ast.GoStmt:
				walk(m.Call, true)
				return false
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.SendStmt:
				if !offFlow {
					setBlock("channel send")
				}
				if i, ok := paramOf(m.Chan); ok {
					sum.Params[i] |= OpSend
				}
				if i, ok := paramOf(m.Value); ok {
					sum.Params[i] |= OpEscape // the value leaves through the channel
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if !offFlow {
						setBlock("channel receive")
					}
					if i, ok := paramOf(m.X); ok {
						sum.Params[i] |= OpRecv
					}
				}
				if m.Op == token.AND {
					if i, ok := paramOf(m.X); ok {
						sum.Params[i] |= OpEscape
					}
				}
			case *ast.RangeStmt:
				t := info.Types[m.X].Type
				if isChan(t) {
					if !offFlow {
						setBlock("range over channel")
					}
					if i, ok := paramOf(m.X); ok {
						sum.Params[i] |= OpRecv
					}
				}
				if isMap(t) && !hasSortCall && mapRangeEmits(info, m) {
					addNondet(Source{Kind: "map iteration order", Pos: m.Range})
				}
			case *ast.SelectStmt:
				comms := 0
				hasDefault := false
				for _, st := range m.Body.List {
					if c, ok := st.(*ast.CommClause); ok {
						if c.Comm == nil {
							hasDefault = true
						} else {
							comms++
						}
					}
				}
				if !hasDefault && !offFlow {
					setBlock("select without default")
				}
				if comms >= 2 {
					addNondet(Source{Kind: "select arm order", Pos: m.Select})
				}
				// Clause headers' channel operations are decided by the
				// select, not blocking where they appear: record their
				// parameter ops without a block reason, then walk the
				// clause bodies normally.
				for _, st := range m.Body.List {
					c, ok := st.(*ast.CommClause)
					if !ok {
						continue
					}
					if c.Comm != nil {
						ast.Inspect(c.Comm, func(h ast.Node) bool {
							switch h := h.(type) {
							case *ast.SendStmt:
								if i, ok := paramOf(h.Chan); ok {
									sum.Params[i] |= OpSend
								}
							case *ast.UnaryExpr:
								if h.Op == token.ARROW {
									if i, ok := paramOf(h.X); ok {
										sum.Params[i] |= OpRecv
									}
								}
							}
							return true
						})
					}
					for _, bst := range c.Body {
						walk(bst, offFlow)
					}
				}
				return false
			case *ast.CallExpr:
				scanCall(pass, m, paramOf, sum, addNondet, setBlock, offFlow)
			case *ast.AssignStmt:
				// A parameter assigned to anything that is not a plain
				// local escapes (field, index, global, dereference).
				for i, rhs := range m.Rhs {
					pi, ok := paramOf(rhs)
					if !ok {
						continue
					}
					if i < len(m.Lhs) && !isLocalLHS(info, m.Lhs[i]) {
						sum.Params[pi] |= OpEscape
					}
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if i, ok := paramOf(r); ok {
						sum.Params[i] |= OpEscape
					}
				}
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					e := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if i, ok := paramOf(e); ok {
						sum.Params[i] |= OpEscape
					}
				}
			case *ast.Ident:
				// Any reference inside an off-flow scope (literal, go,
				// defer) escapes: the closure may do anything with it later.
				if offFlow {
					if i, ok := paramIndex[identVar(info, m)]; ok {
						sum.Params[i] |= OpEscape
					}
				}
			}
			return true
		})
	}
	walk(body, false)
}

// scanCall handles one call expression's direct contributions: builtin
// close, seeded nondeterminism and blocking primitives.
func scanCall(pass *analysis.Pass, call *ast.CallExpr, paramOf func(ast.Expr) (int, bool),
	sum *FnSummary, addNondet func(Source), setBlock func(string), offFlow bool) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "close" && len(call.Args) == 1 {
				if i, ok := paramOf(call.Args[0]); ok {
					sum.Params[i] |= OpClose
				}
			}
			return
		}
	}
	fn := staticCallee(info, call)
	if fn == nil {
		return
	}
	key, ok := analysis.ObjectKey(fn)
	if !ok {
		return
	}
	if kind, ok := seededNondet[key]; ok {
		addNondet(Source{Kind: kind, Pos: call.Pos()})
	} else if strings.HasPrefix(key, "math/rand.") && !strings.HasPrefix(fn.Name(), "New") &&
		fn.Type().(*types.Signature).Recv() == nil {
		// Any package-level math/rand function draws from the unseeded
		// global source; seeded *rand.Rand methods stay deterministic.
		addNondet(Source{Kind: key, Pos: call.Pos()})
	}
	if reason, ok := seededBlocking[key]; ok && !offFlow {
		setBlock(reason)
	}
}

// staticCallee resolves a call's static callee function, or nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	return callgraph.StaticCallee(info, call)
}

// seededNondet maps known nondeterministic stdlib entry points (by
// analysis.ObjectKey) to the source kind recorded for them.
var seededNondet = map[string]string{
	"time.Now":          "time.Now",
	"time.Since":        "time.Now", // Since(t) == Now().Sub(t)
	"time.Until":        "time.Now",
	"crypto/rand.Read":  "crypto/rand",
	"crypto/rand.Int":   "crypto/rand",
	"crypto/rand.Prime": "crypto/rand",
}

// seededBlocking maps known blocking stdlib primitives to block reasons,
// mirroring lockheld's seed set.
var seededBlocking = map[string]string{
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
	"time.Sleep":          "time.Sleep",
}

// seededSummary returns a synthetic summary for seeded stdlib functions so
// callers resolve them even without facts.
func seededSummary(fn *types.Func) *FnSummary {
	key, ok := analysis.ObjectKey(fn)
	if !ok {
		return nil
	}
	var sum FnSummary
	found := false
	if kind, ok := seededNondet[key]; ok {
		sum.Nondet = []Source{{Kind: kind}}
		found = true
	} else if strings.HasPrefix(key, "math/rand.") && !strings.HasPrefix(fn.Name(), "New") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			sum.Nondet = []Source{{Kind: key}}
			found = true
		}
	}
	if reason, ok := seededBlocking[key]; ok {
		sum.BlockReason = reason
		found = true
	}
	if !found {
		return nil
	}
	return &sum
}

// isLocalLHS reports whether an assignment target is a plain local
// variable — anything else (selector, index, dereference, global) lets the
// assigned value escape the function.
func isLocalLHS(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return id.Name == "_"
	}
	return v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// containsSortCall reports whether the body calls into package sort or the
// slices sorting helpers anywhere — the conventional fix for map-range
// nondeterminism (collect, sort, emit), which neutralizes the map-range
// source for the whole function.
func containsSortCall(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}

// mapRangeEmits reports whether a map range's iteration order can feed
// ordered output: its body appends, sends on a channel, or passes the loop
// variables to a call — the shapes through which per-iteration order
// becomes observable sequence. Pure per-key reductions (sums, max,
// membership tests) stay order-insensitive and are not flagged.
func mapRangeEmits(info *types.Info, rng *ast.RangeStmt) bool {
	loopVars := make(map[*types.Var]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				loopVars[v] = true
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				loopVars[v] = true
			}
		}
	}
	usesLoopVar := func(e ast.Expr) bool {
		uses := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && loopVars[v] {
					uses = true
				}
			}
			return !uses
		})
		return uses
	}
	emits := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emits {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if b.Name() == "append" {
						emits = true
						return false
					}
					return true // other builtins (len, delete, …) don't emit
				}
			}
			for _, arg := range n.Args {
				if usesLoopVar(arg) {
					emits = true
					return false
				}
			}
		case *ast.SendStmt:
			emits = true
			return false
		}
		return true
	})
	return emits
}
