package summary_test

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"meda/internal/lint/analysis"
	"meda/internal/lint/summary"
)

// loadSums computes the fixture package's summaries once per test run.
func loadSums(t *testing.T) (*analysis.Pass, summary.Summaries) {
	t.Helper()
	dir := filepath.Join("testdata", "sums")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     analysis.NewFactStore(),
		Report:    func(analysis.Diagnostic) {},
	}
	return pass, summary.Compute(pass)
}

func fn(t *testing.T, pass *analysis.Pass, name string) *types.Func {
	t.Helper()
	parts := strings.Split(name, ".")
	obj := pass.Pkg.Scope().Lookup(parts[0])
	if obj == nil {
		t.Fatalf("no object %s", name)
	}
	if len(parts) == 1 {
		f, ok := obj.(*types.Func)
		if !ok {
			t.Fatalf("%s is not a function", name)
		}
		return f
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		t.Fatalf("%s is not a named type", parts[0])
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == parts[1] {
			return named.Method(i)
		}
	}
	t.Fatalf("no method %s", name)
	return nil
}

func sumOf(t *testing.T, pass *analysis.Pass, sums summary.Summaries, name string) *summary.FnSummary {
	t.Helper()
	s := sums.Of(pass, fn(t, pass, name))
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func TestDirectNondet(t *testing.T) {
	pass, sums := loadSums(t)
	for name, kind := range map[string]string{
		"Clock":     "time.Now",
		"Roll":      "math/rand.Intn",
		"MapEmit":   "map iteration order",
		"Race":      "select arm order",
		"UseTicker": "time.Now", // narrow CHA through Ticker → WallTicker
	} {
		s := sumOf(t, pass, sums, name)
		if _, ok := s.NondetFor(kind); !ok {
			t.Errorf("%s: missing nondet source %q (got %v)", name, kind, s.Nondet)
		}
	}
}

func TestDeterministicFunctionsStayClean(t *testing.T) {
	pass, sums := loadSums(t)
	for _, name := range []string{"SeededRoll", "MapSorted", "MapReduce", "SelfClean", "FixedTicker.Tick"} {
		if s := sums.Of(pass, fn(t, pass, name)); s != nil && len(s.Nondet) > 0 {
			t.Errorf("%s: unexpected nondet sources %v", name, s.Nondet)
		}
	}
}

func TestTransitiveNondetWithViaChain(t *testing.T) {
	pass, sums := loadSums(t)
	s := sumOf(t, pass, sums, "ViaTwo")
	src, ok := s.NondetFor("time.Now")
	if !ok {
		t.Fatalf("ViaTwo: missing time.Now source, got %v", s.Nondet)
	}
	if src.Via != "ViaOne → Clock" {
		t.Errorf("ViaTwo witness chain = %q, want %q", src.Via, "ViaOne → Clock")
	}
	if !src.Pos.IsValid() {
		t.Error("ViaTwo witness has no position")
	}
	if src.String() != "time.Now via ViaOne → Clock" {
		t.Errorf("Source.String() = %q", src.String())
	}
}

func TestBlocking(t *testing.T) {
	pass, sums := loadSums(t)
	if s := sumOf(t, pass, sums, "Recv"); !s.MayBlock() {
		t.Error("Recv should block")
	}
	s := sumOf(t, pass, sums, "RecvVia")
	if !s.MayBlock() || !strings.Contains(s.BlockReason, "Recv") {
		t.Errorf("RecvVia block reason = %q, want a call-to-Recv reason", s.BlockReason)
	}
	for _, name := range []string{"Spawn", "Poll", "SeededRoll"} {
		if s := sums.Of(pass, fn(t, pass, name)); s.MayBlock() {
			t.Errorf("%s should not block (reason %q)", name, s.BlockReason)
		}
	}
}

// TestSCCConvergence: the mutually recursive Ping/Pong pair and the
// self-recursive SelfClean must both reach a fixpoint, the former tainted,
// the latter empty.
func TestSCCConvergence(t *testing.T) {
	pass, sums := loadSums(t)
	for _, name := range []string{"PingNondet", "PongNondet"} {
		s := sumOf(t, pass, sums, name)
		if _, ok := s.NondetFor("time.Now"); !ok {
			t.Errorf("%s: recursion did not converge to the time.Now source (got %v)", name, s.Nondet)
		}
	}
	if s := sums.Of(pass, fn(t, pass, "SelfClean")); s != nil && (len(s.Nondet) > 0 || s.MayBlock()) {
		t.Errorf("SelfClean: summary should be empty, got %+v", s)
	}
}

func TestParamOps(t *testing.T) {
	pass, sums := loadSums(t)
	cases := []struct {
		fn    string
		param int
		want  summary.ParamOps
	}{
		{"SendTo", 0, summary.OpSend},
		{"CloseIt", 0, summary.OpClose},
		{"DrainVia", 0, summary.OpRecv},
		{"Recv", 0, summary.OpRecv},
		{"Leak", 0, summary.OpEscape},
		{"Hand", 0, summary.OpEscape},
		{"Capture", 0, summary.OpEscape},
		{"Opaque", 0, summary.OpEscape},
	}
	for _, c := range cases {
		s := sumOf(t, pass, sums, c.fn)
		if len(s.Params) <= c.param {
			t.Errorf("%s: summary has %d params, want > %d", c.fn, len(s.Params), c.param)
			continue
		}
		if !s.Params[c.param].Has(c.want) {
			t.Errorf("%s param %d ops = %b, want bit %b set", c.fn, c.param, s.Params[c.param], c.want)
		}
	}
}

// TestFactsExported: non-empty summaries must be exported as facts keyed by
// object, so downstream packages can import them.
func TestFactsExported(t *testing.T) {
	pass, sums := loadSums(t)
	_ = sums
	var fact summary.FnSummary
	if !pass.ImportObjectFact(fn(t, pass, "Clock"), &fact) {
		t.Fatal("Clock: no FnSummary fact exported")
	}
	if _, ok := fact.NondetFor("time.Now"); !ok {
		t.Errorf("Clock fact lacks the time.Now source: %+v", fact)
	}
	// A clean function exports no fact.
	var clean summary.FnSummary
	if pass.ImportObjectFact(fn(t, pass, "SelfClean"), &clean) {
		t.Errorf("SelfClean exported a fact: %+v", clean)
	}
}

// TestSeededStdlibResolution: Of falls back to the seeded tables for
// stdlib functions no pass analyzed.
func TestSeededStdlibResolution(t *testing.T) {
	pass, sums := loadSums(t)
	timePkg := (*types.Package)(nil)
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "time" {
			timePkg = imp
		}
	}
	if timePkg == nil {
		t.Fatal("fixture does not import time")
	}
	now, _ := timePkg.Scope().Lookup("Now").(*types.Func)
	s := sums.Of(pass, now)
	if s == nil {
		t.Fatal("no seeded summary for time.Now")
	}
	if _, ok := s.NondetFor("time.Now"); !ok {
		t.Errorf("seeded time.Now summary = %+v", s)
	}
	if sums.Of(pass, nil) != nil {
		t.Error("Of(nil) should be nil")
	}
}
