// Package allocs is the allocation-summary test fixture: one function per
// allocation kind the analyzer distinguishes, plus clean counterexamples.
package allocs

type point struct{ x, y int }

// eat is an interface sink for boxing tests.
func eat(v interface{}) { _ = v }

// eatMany is a variadic interface sink.
func eatMany(vs ...interface{}) { _ = vs }

// ---- direct allocation sources ----------------------------------------

// MakeSlice allocates with the make builtin.
func MakeSlice(n int) []int { return make([]int, n) }

// NewInt allocates with the new builtin.
func NewInt() *int { return new(int) }

// AmpLit takes the address of a composite literal.
func AmpLit() *point { return &point{1, 2} }

// SliceLit allocates a slice literal's backing array.
func SliceLit() []int { return []int{1, 2, 3} }

// MapLit allocates a map literal.
func MapLit() map[string]int { return map[string]int{"a": 1} }

// BoxArg boxes a concrete int into an interface parameter.
func BoxArg(x int) { eat(x) }

// BoxVariadic boxes concrete values into a variadic interface parameter.
func BoxVariadic(a, b int) { eatMany(a, b) }

// BoxAssign boxes through an assignment to an interface variable.
func BoxAssign(x int) interface{} {
	var v interface{}
	v = x
	return v
}

// BoxConv boxes through an explicit conversion to an interface type.
func BoxConv(x point) interface{} { return interface{}(x) }

// NonSelfAppend copies src on every call.
func NonSelfAppend(dst, src []int) []int {
	dst = append(src, 1)
	return dst
}

// Closure captures a local and must carry an environment.
func Closure(x int) func() int { return func() int { return x } }

// Spawn starts a goroutine.
func Spawn() { go func() {}() }

// Deferred defers a call.
func Deferred() {
	defer eatNothing()
}

func eatNothing() {}

// MapWalk iterates a map.
func MapWalk(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// ---- transitive propagation -------------------------------------------

// CallsMake allocates only through its callee.
func CallsMake(n int) []int { return MakeSlice(n) }

// CallsCallsMake is two hops from the make.
func CallsCallsMake(n int) []int { return CallsMake(n) }

// ---- clean counterexamples --------------------------------------------

// Clean does arithmetic only.
func Clean(a, b int) int { return a*b + a }

// SelfAppend is the amortized-growth idiom.
func SelfAppend(s []int, x int) []int {
	s = append(s, x)
	return s
}

// ReuseAppend truncates and reuses the target's backing array.
func ReuseAppend(s []int, x int) []int {
	s = append(s[:0], x)
	return s
}

// ConstArg passes a constant to an interface parameter: materialized in
// static data, not boxed at run time.
func ConstArg() { eat("msg") }

// PointerArg passes a pointer: fits the interface word, no boxing.
func PointerArg(p *point) { eat(p) }

// InterfaceArg re-passes a value already of interface type.
func InterfaceArg(v interface{}) { eat(v) }

// FreeLit is a capture-free function literal: compiles to a static func.
func FreeLit() func(int) int { return func(x int) int { return x + 1 } }
