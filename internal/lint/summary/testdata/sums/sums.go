// Package sums is the summary test fixture.
package sums

import (
	"math/rand"
	"sort"
	"time"
)

// ---- nondeterminism sources -------------------------------------------

// Clock reads the wall clock directly.
func Clock() int64 { return time.Now().UnixNano() }

// Roll draws from the global math/rand source.
func Roll() int { return rand.Intn(6) }

// SeededRoll uses an explicitly seeded source: deterministic.
func SeededRoll(seed int64) int { return rand.New(rand.NewSource(seed)).Intn(6) }

// ViaOne reaches time.Now through one frame.
func ViaOne() int64 { return Clock() }

// ViaTwo reaches time.Now through two frames.
func ViaTwo() int64 { return ViaOne() }

// MapEmit ranges a map appending per-iteration: order feeds output.
func MapEmit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// MapSorted collects then sorts: the conventional deterministic pattern.
func MapSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MapReduce folds a map without emitting per-iteration order.
func MapReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Race selects between two channels: scheduler-dependent arm order.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// ---- blocking ----------------------------------------------------------

// Recv blocks on a channel receive.
func Recv(ch chan int) int { return <-ch }

// RecvVia blocks transitively.
func RecvVia(ch chan int) int { return Recv(ch) }

// Spawn launches the blocking work on another goroutine: the caller never
// blocks.
func Spawn(ch chan int) {
	go func() { <-ch }()
}

// Poll uses a select with default: never blocks.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// ---- recursion / SCC convergence ---------------------------------------

// PingNondet and PongNondet are mutually recursive; Pong bottoms out in the
// clock, so both must converge to the time.Now source.
func PingNondet(n int) int64 {
	if n <= 0 {
		return 0
	}
	return PongNondet(n - 1)
}

func PongNondet(n int) int64 {
	if n == 1 {
		return Clock()
	}
	return PingNondet(n - 1)
}

// SelfClean recurses directly with no sources: the fixpoint must terminate
// with an empty summary.
func SelfClean(n int) int {
	if n <= 0 {
		return 0
	}
	return SelfClean(n - 1)
}

// ---- parameter ops -----------------------------------------------------

// SendTo sends on its parameter.
func SendTo(ch chan int, v int) { ch <- v }

// CloseIt closes its parameter.
func CloseIt(ch chan int) { close(ch) }

// DrainVia receives from its parameter through a helper.
func DrainVia(ch chan int) int { return Recv(ch) }

var sink chan int

// Leak stores its parameter in a global: escape.
func Leak(ch chan int) { sink = ch }

// Hand returns its parameter: escape.
func Hand(ch chan int) chan int { return ch }

// Capture hands its parameter to a goroutine closure: escape.
func Capture(ch chan int) {
	go func() { ch <- 1 }()
}

// Opaque passes its parameter through a function value: the analysis loses
// track, so the parameter escapes.
func Opaque(ch chan int, f func(chan int)) { f(ch) }

// ---- interface dispatch ------------------------------------------------

// Ticker has two implementations: narrow dispatch, CHA applies.
type Ticker interface{ Tick() int64 }

type WallTicker struct{}

func (WallTicker) Tick() int64 { return time.Now().UnixNano() }

type FixedTicker struct{ V int64 }

func (f FixedTicker) Tick() int64 { return f.V }

// UseTicker dispatches through the narrow interface: the wall-clock
// implementation taints it.
func UseTicker(t Ticker) int64 { return t.Tick() }
