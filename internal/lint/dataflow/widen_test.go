package dataflow_test

import (
	"go/ast"
	"go/token"
	"math"
	"strconv"
	"testing"

	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// interval is a single-variable integer range; the infinite-height domain
// ForwardWidened exists for. bot marks "no value yet"; math.MinInt and
// math.MaxInt stand for the unbounded ends.
type interval struct {
	lo, hi int
	bot    bool
}

type intervalLattice struct{}

func (intervalLattice) Bottom() interval { return interval{bot: true} }

func (intervalLattice) Join(a, b interval) interval {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	return interval{lo: min(a.lo, b.lo), hi: max(a.hi, b.hi)}
}

func (intervalLattice) Equal(a, b interval) bool { return a == b }

func (intervalLattice) Widen(prev, next interval) interval {
	if prev.bot {
		return next
	}
	if next.bot {
		return prev
	}
	w := prev
	if next.lo < prev.lo {
		w.lo = math.MinInt
	}
	if next.hi > prev.hi {
		w.hi = math.MaxInt
	}
	return w
}

func (intervalLattice) Narrow(prev, next interval) interval {
	if prev.bot || next.bot {
		return next
	}
	n := prev
	if prev.lo == math.MinInt {
		n.lo = next.lo
	}
	if prev.hi == math.MaxInt {
		n.hi = next.hi
	}
	return n
}

// incTransfer adds one to the interval for every x++ in the block.
func incTransfer(b *cfg.Block, in interval) interval {
	out := in
	for _, n := range b.Nodes {
		cfg.Visit(n, func(m ast.Node) bool {
			if inc, ok := m.(*ast.IncDecStmt); ok && inc.Tok == token.INC && !out.bot {
				if out.lo != math.MinInt && out.lo != math.MaxInt {
					out.lo++
				}
				if out.hi != math.MaxInt {
					out.hi++
				}
			}
			return true
		})
	}
	return out
}

// ltEdge refines on conditions of the shape `x < K`: the true edge clamps
// the upper bound to K-1, the false edge lifts the lower bound to K.
func ltEdge(b *cfg.Block, succ int, out interval) interval {
	be, ok := b.Cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.LSS || out.bot {
		return out
	}
	lit, ok := be.Y.(*ast.BasicLit)
	if !ok {
		return out
	}
	k, err := strconv.Atoi(lit.Value)
	if err != nil {
		return out
	}
	v := out
	if succ == 0 && v.hi > k-1 {
		v.hi = k - 1
	}
	if succ == 1 && v.lo < k {
		v.lo = k
	}
	return v
}

// TestForwardWidenedLoop is the doc-comment example: a counter climbing in
// `for x < 5 { x++ }` would ascend forever in plain Forward; widening at
// the loop head forces termination, and narrowing recovers the bounds —
// [0,5] at the header, exactly [5,5] after the loop.
func TestForwardWidenedLoop(t *testing.T) {
	g := build(t, "x := 0\nfor x < 5 {\nx++\n}\n_ = x")
	res := dataflow.ForwardWidened[interval](g, intervalLattice{}, interval{lo: 0, hi: 0}, incTransfer, ltEdge)

	header := g.Entry.Succs[0]
	if got, want := res.In[header], (interval{lo: 0, hi: 5}); got != want {
		t.Errorf("header in = %+v, want %+v", got, want)
	}
	if got, want := res.In[g.Exit], (interval{lo: 5, hi: 5}); got != want {
		t.Errorf("exit in = %+v, want %+v", got, want)
	}
}

// TestForwardWidenedNoLoop: with no back-edges there are no widening
// points, and the solver degenerates to plain forward propagation — here
// with a nil edge function, exercising that path too.
func TestForwardWidenedNoLoop(t *testing.T) {
	g := build(t, "x := 0\nx++\nx++\n_ = x")
	res := dataflow.ForwardWidened[interval](g, intervalLattice{}, interval{lo: 0, hi: 0}, incTransfer, nil)
	if got, want := res.In[g.Exit], (interval{lo: 2, hi: 2}); got != want {
		t.Errorf("exit in = %+v, want %+v", got, want)
	}
}

// TestForwardWidenedBranchJoin: widening must not destroy precision where
// no loop exists — joining two branch arms keeps the finite hull.
func TestForwardWidenedBranchJoin(t *testing.T) {
	g := build(t, "x := 0\nif x < 3 {\nx++\n} else {\nx++\nx++\n}\n_ = x")
	res := dataflow.ForwardWidened[interval](g, intervalLattice{}, interval{lo: 0, hi: 0}, incTransfer, nil)
	if got, want := res.In[g.Exit], (interval{lo: 1, hi: 2}); got != want {
		t.Errorf("exit in = %+v, want %+v", got, want)
	}
}
