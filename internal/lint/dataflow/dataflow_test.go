package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

func build(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

type set = dataflow.VarSet[string, int]
type lattice = dataflow.VarSetLattice[string, int]

// defsIn collects the names defined (:=) by a block's nodes.
func defs(b *cfg.Block) []string {
	var out []string
	for _, n := range b.Nodes {
		cfg.Visit(n, func(m ast.Node) bool {
			if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						out = append(out, id.Name)
					}
				}
			}
			return true
		})
	}
	return out
}

// TestForwardReachingDefs: "may reach" union join across an if/else.
func TestForwardReachingDefs(t *testing.T) {
	g := build(t, "a := 1\nif a > 0 {\nb := 2\n_ = b\n} else {\nc := 3\n_ = c\n}\n_ = a")
	transfer := func(b *cfg.Block, in set) set {
		out := in
		for _, name := range defs(b) {
			out = out.With(name, b.Index)
		}
		return out
	}
	res := dataflow.Forward[set](g, lattice{}, nil, transfer, nil)
	exit := res.In[g.Exit]
	for _, want := range []string{"a", "b", "c"} {
		if _, ok := exit[want]; !ok {
			t.Errorf("def %q should reach exit, got %v", want, exit)
		}
	}
	// Inside the then branch, c is not yet defined.
	then := g.Entry.Succs[0]
	if _, ok := res.In[then]["c"]; ok {
		t.Errorf("c defined on else branch must not reach then entry")
	}
}

// TestForwardLoopFixpoint: defs inside a loop body reach the loop header
// through the back edge.
func TestForwardLoopFixpoint(t *testing.T) {
	g := build(t, "x := 0\nfor x < 5 {\ny := x\n_ = y\nx++\n}\n_ = x")
	transfer := func(b *cfg.Block, in set) set {
		out := in
		for _, name := range defs(b) {
			out = out.With(name, b.Index)
		}
		return out
	}
	res := dataflow.Forward[set](g, lattice{}, nil, transfer, nil)
	header := g.Entry.Succs[0]
	if _, ok := res.In[header]["y"]; !ok {
		t.Errorf("loop-body def should flow back to the header: in=%v", res.In[header])
	}
}

// TestForwardEdgeRefinement: an EdgeFunc can drop facts on one edge only.
func TestForwardEdgeRefinement(t *testing.T) {
	g := build(t, "a := 1\nif a > 0 {\n_ = a\n} else {\n_ = a\n}")
	transfer := func(b *cfg.Block, in set) set {
		out := in
		for _, name := range defs(b) {
			out = out.With(name, b.Index)
		}
		return out
	}
	edge := func(b *cfg.Block, succ int, out set) set {
		if b.Cond != nil && succ == 1 { // kill everything on false edges
			return nil
		}
		return out
	}
	res := dataflow.Forward[set](g, lattice{}, nil, transfer, edge)
	then, els := g.Entry.Succs[0], g.Entry.Succs[1]
	if _, ok := res.In[then]["a"]; !ok {
		t.Errorf("true edge should keep the fact")
	}
	if len(res.In[els]) != 0 {
		t.Errorf("false edge should have been refined to empty, got %v", res.In[els])
	}
}

// TestBackwardLiveness: a classic liveness problem — uses propagate
// backwards until killed by a definition.
func TestBackwardLiveness(t *testing.T) {
	g := build(t, "a := 1\nb := 2\nif a > 0 {\n_ = b\n}")
	transfer := func(b *cfg.Block, out set) set {
		in := out
		// Reverse node order: later nodes first.
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			// Kill definitions, then add uses (approximated textually).
			cfg.Visit(n, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							in = in.Without(id.Name)
						}
					}
					return true
				}
				return true
			})
			cfg.Visit(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Obj != nil && isUse(n, id) {
					in = in.With(id.Name, b.Index)
				}
				return true
			})
		}
		return in
	}
	res := dataflow.Backward[set](g, lattice{}, nil, transfer)
	// b is used in the then-branch, so it is live at the branch block's out.
	if _, ok := res.Out[g.Entry]["b"]; !ok {
		t.Errorf("b should be live leaving the entry block: %v", res.Out[g.Entry])
	}
	// Nothing is live at function entry before its definition.
	if _, ok := res.In[g.Entry]["b"]; ok {
		t.Errorf("b must be killed by its own definition: %v", res.In[g.Entry])
	}
}

// isUse reports whether id appears outside a define LHS within n (small
// test approximation).
func isUse(n ast.Node, id *ast.Ident) bool {
	use := true
	cfg.Visit(n, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, l := range as.Lhs {
				if l == ast.Expr(id) {
					use = false
				}
			}
		}
		return true
	})
	return use
}

func TestVarSetOps(t *testing.T) {
	var s set
	s2 := s.With("a", 1).With("b", 2)
	if len(s2) != 2 {
		t.Fatalf("With: got %v", s2)
	}
	if s3 := s2.Without("a"); len(s3) != 1 || s3["b"] != 2 {
		t.Errorf("Without: got %v", s3)
	}
	if s4 := s2.Without("zzz"); len(s4) != 2 {
		t.Errorf("Without absent key should be identity, got %v", s4)
	}

	lat := lattice{}
	j := lat.Join(s2, set{"c": 3})
	if len(j) != 3 {
		t.Errorf("Join: got %v", j)
	}
	if !lat.Equal(j, set{"a": 9, "b": 9, "c": 9}) {
		t.Errorf("Equal compares key sets only")
	}
	if lat.Equal(j, s2) {
		t.Errorf("different key sets must not be equal")
	}
	if lat.Join(nil, nil) != nil {
		t.Errorf("Join of bottoms should stay bottom")
	}
	if got := lat.Join(s2, nil); len(got) != 2 {
		t.Errorf("Join with bottom should be identity, got %v", got)
	}
	// Earlier insertion wins on payload conflicts.
	if got := lat.Join(set{"k": 1}, set{"k": 2}); got["k"] != 1 {
		t.Errorf("Join payload: got %v", got)
	}
}

// TestUnreachableBlocksGetBottom: blocks after a return still appear in the
// result maps (with bottom facts) so reporting passes can visit them.
func TestUnreachableBlocksGetBottom(t *testing.T) {
	g := build(t, "return\n_ = 1")
	transfer := func(b *cfg.Block, in set) set { return in }
	res := dataflow.Forward[set](g, lattice{}, set{"seed": 0}, transfer, nil)
	if len(res.In) != len(g.Blocks) {
		t.Fatalf("every block should have an In fact")
	}
	for _, b := range g.Blocks {
		if b != g.Entry && len(b.Preds) == 0 && len(res.In[b]) != 0 {
			t.Errorf("unreachable block b%d should hold bottom, got %v", b.Index, res.In[b])
		}
	}
}
