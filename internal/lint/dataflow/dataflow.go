// Package dataflow is a generic fixpoint solver over the control-flow
// graphs of package cfg. An analysis supplies a join-semilattice of facts
// (Lattice), a per-block transfer function, and — for branch-sensitive
// forward problems — an optional edge refinement that sharpens the fact
// flowing to a specific successor (e.g. "ok is true on the then edge").
// The solver iterates a worklist seeded in reverse postorder until the
// facts stabilize, and returns the fact at the entry (In) and exit (Out)
// of every block.
//
// Transfer and edge functions must be pure with respect to their inputs:
// they receive a fact and return a (possibly new) fact, never mutating the
// argument in place, because the solver joins the same fact into several
// successors.
package dataflow

import "meda/internal/lint/cfg"

// Lattice defines the fact domain of one analysis: a bottom element, a
// commutative/associative/idempotent join, and equality (the fixpoint
// termination test). Facts must form a finite-height lattice for the
// solver to terminate.
type Lattice[T any] interface {
	Bottom() T
	Join(a, b T) T
	Equal(a, b T) bool
}

// TransferFunc computes the fact at the far side of a block from the fact
// at its near side: out-from-in for forward analyses, in-from-out for
// backward ones.
type TransferFunc[T any] func(b *cfg.Block, fact T) T

// EdgeFunc refines the fact flowing from a block to its i-th successor.
// Forward branch-sensitive analyses use it to apply what the branch
// condition implies on each edge (cfg.Block.Cond: successor 0 is the true
// edge, successor 1 the false edge).
type EdgeFunc[T any] func(b *cfg.Block, succ int, out T) T

// Result carries the solved facts: In[b] holds at the start of b, Out[b]
// after its last node.
type Result[T any] struct {
	In  map[*cfg.Block]T
	Out map[*cfg.Block]T
}

// Forward solves a forward dataflow problem: boundary is the fact at the
// CFG entry, transfer maps a block's in-fact to its out-fact, and edge
// (optional, may be nil) refines the out-fact per successor edge.
func Forward[T any](g *cfg.CFG, lat Lattice[T], boundary T, transfer TransferFunc[T], edge EdgeFunc[T]) Result[T] {
	res := Result[T]{In: make(map[*cfg.Block]T, len(g.Blocks)), Out: make(map[*cfg.Block]T, len(g.Blocks))}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.In[g.Entry] = boundary

	order := g.ReversePostorder()
	prio := make(map[*cfg.Block]int, len(order))
	for i, b := range order {
		prio[b] = i
	}
	wl := newWorklist(order, prio)
	for {
		b, ok := wl.pop()
		if !ok {
			return res
		}
		out := transfer(b, res.In[b])
		res.Out[b] = out
		for i, s := range b.Succs {
			v := out
			if edge != nil {
				v = edge(b, i, out)
			}
			joined := lat.Join(res.In[s], v)
			if !lat.Equal(joined, res.In[s]) {
				res.In[s] = joined
				wl.push(s)
			}
		}
	}
}

// Backward solves a backward dataflow problem: boundary is the fact at the
// CFG exit, and transfer maps a block's out-fact to its in-fact (the
// analysis walks the block's nodes in reverse).
func Backward[T any](g *cfg.CFG, lat Lattice[T], boundary T, transfer TransferFunc[T]) Result[T] {
	res := Result[T]{In: make(map[*cfg.Block]T, len(g.Blocks)), Out: make(map[*cfg.Block]T, len(g.Blocks))}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.Out[g.Exit] = boundary

	// Postorder (reverse of RPO) converges fastest for backward problems.
	rpo := g.ReversePostorder()
	order := make([]*cfg.Block, len(rpo))
	for i, b := range rpo {
		order[len(rpo)-1-i] = b
	}
	prio := make(map[*cfg.Block]int, len(order))
	for i, b := range order {
		prio[b] = i
	}
	wl := newWorklist(order, prio)
	for {
		b, ok := wl.pop()
		if !ok {
			return res
		}
		in := transfer(b, res.Out[b])
		res.In[b] = in
		for _, p := range b.Preds {
			joined := lat.Join(res.Out[p], in)
			if !lat.Equal(joined, res.Out[p]) {
				res.Out[p] = joined
				wl.push(p)
			}
		}
	}
}

// WideningLattice extends Lattice for infinite-height domains (intervals):
// Widen extrapolates an unstable chain to force termination, Narrow walks
// the result back toward precision once the ascending phase stabilized.
// Widen(prev, next) must be an upper bound of both arguments and must
// stabilize every ascending chain in finitely many steps; Narrow(prev,
// next) must stay between next and prev.
type WideningLattice[T any] interface {
	Lattice[T]
	Widen(prev, next T) T
	Narrow(prev, next T) T
}

// narrowingPasses bounds the descending phase of ForwardWidened: narrowing
// is not guaranteed to reach a fixpoint, so the solver applies a fixed
// number of full passes and keeps whatever precision they recover.
const narrowingPasses = 2

// ForwardWidened solves a forward dataflow problem over an infinite-height
// lattice. It runs the same worklist as Forward but applies lat.Widen at
// loop heads (targets of back-edges in the reverse-postorder numbering), so
// counters that would climb forever jump to a stable over-approximation;
// once ascended, a bounded descending phase re-applies the transfer with
// lat.Narrow at the same heads, recovering precision the widening jumped
// over (the classic interval result: i widened to [0,+∞) inside
// `for i := 0; i < n; i++` narrows back to [0, n]).
func ForwardWidened[T any](g *cfg.CFG, lat WideningLattice[T], boundary T, transfer TransferFunc[T], edge EdgeFunc[T]) Result[T] {
	res := Result[T]{In: make(map[*cfg.Block]T, len(g.Blocks)), Out: make(map[*cfg.Block]T, len(g.Blocks))}
	for _, b := range g.Blocks {
		res.In[b] = lat.Bottom()
		res.Out[b] = lat.Bottom()
	}
	res.In[g.Entry] = boundary

	order := g.ReversePostorder()
	prio := make(map[*cfg.Block]int, len(order))
	for i, b := range order {
		prio[b] = i
	}
	heads := loopHeads(order, prio)

	// Ascending phase with widening at loop heads.
	wl := newWorklist(order, prio)
	for {
		b, ok := wl.pop()
		if !ok {
			break
		}
		out := transfer(b, res.In[b])
		res.Out[b] = out
		for i, s := range b.Succs {
			v := out
			if edge != nil {
				v = edge(b, i, out)
			}
			joined := lat.Join(res.In[s], v)
			if heads[s] {
				joined = lat.Widen(res.In[s], joined)
			}
			if !lat.Equal(joined, res.In[s]) {
				res.In[s] = joined
				wl.push(s)
			}
		}
	}

	// Bounded descending phase: recompute every block's in-fact from its
	// predecessors' refined out-facts, narrowing at loop heads. The entry
	// keeps its boundary fact.
	for pass := 0; pass < narrowingPasses; pass++ {
		for _, b := range order {
			if b != g.Entry {
				in := lat.Bottom()
				for _, p := range b.Preds {
					v := res.Out[p]
					if edge != nil {
						for i, s := range p.Succs {
							if s == b {
								v = edge(p, i, res.Out[p])
								break
							}
						}
					}
					in = lat.Join(in, v)
				}
				if heads[b] {
					in = lat.Narrow(res.In[b], in)
				}
				res.In[b] = in
			}
			res.Out[b] = transfer(b, res.In[b])
		}
	}
	return res
}

// loopHeads identifies the widening points: blocks that are the target of
// an edge from a block later in the reverse-postorder numbering (back-edges
// of reducible loops; irreducible flow over-approximates by widening at
// every retreating-edge target, which stays sound).
func loopHeads(order []*cfg.Block, prio map[*cfg.Block]int) map[*cfg.Block]bool {
	heads := make(map[*cfg.Block]bool)
	for _, b := range order {
		for _, s := range b.Succs {
			if prio[s] <= prio[b] {
				heads[s] = true
			}
		}
	}
	return heads
}

// worklist is a priority queue of blocks keyed by a fixed iteration order,
// deduplicating pending entries; initial seeding visits every block once.
type worklist struct {
	prio    map[*cfg.Block]int
	pending map[*cfg.Block]bool
	queue   []*cfg.Block
}

func newWorklist(seed []*cfg.Block, prio map[*cfg.Block]int) *worklist {
	wl := &worklist{prio: prio, pending: make(map[*cfg.Block]bool, len(seed))}
	for _, b := range seed {
		wl.push(b)
	}
	return wl
}

func (wl *worklist) push(b *cfg.Block) {
	if wl.pending[b] {
		return
	}
	wl.pending[b] = true
	wl.queue = append(wl.queue, b)
}

func (wl *worklist) pop() (*cfg.Block, bool) {
	if len(wl.queue) == 0 {
		return nil, false
	}
	// Pick the pending block earliest in the iteration order: cheap linear
	// scan — CFGs of single functions are small.
	best := 0
	for i := 1; i < len(wl.queue); i++ {
		if wl.prio[wl.queue[i]] < wl.prio[wl.queue[best]] {
			best = i
		}
	}
	b := wl.queue[best]
	wl.queue[best] = wl.queue[len(wl.queue)-1]
	wl.queue = wl.queue[:len(wl.queue)-1]
	wl.pending[b] = false
	return b, true
}

// VarSet is the workhorse fact domain of the medalint analyzers: a set of
// keys (variables, lock names) each carrying a position-like payload, under
// union join. The zero map is bottom; all operations are copy-on-write so
// transfer functions can share inputs safely.
type VarSet[K comparable, V any] map[K]V

// VarSetLattice is the union-join lattice over VarSet. On conflicting
// payloads the earlier insertion wins (payloads are provenance — a def
// site — not analysis state, so any representative is acceptable).
type VarSetLattice[K comparable, V any] struct{}

// Bottom implements Lattice.
func (VarSetLattice[K, V]) Bottom() VarSet[K, V] { return nil }

// Join implements Lattice by set union.
func (VarSetLattice[K, V]) Join(a, b VarSet[K, V]) VarSet[K, V] {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(VarSet[K, V], len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// Equal implements Lattice; payloads are provenance and do not affect
// equality — only the key sets are compared.
func (VarSetLattice[K, V]) Equal(a, b VarSet[K, V]) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// With returns a copy of s with k set to v.
func (s VarSet[K, V]) With(k K, v V) VarSet[K, V] {
	out := make(VarSet[K, V], len(s)+1)
	for k2, v2 := range s {
		out[k2] = v2
	}
	out[k] = v
	return out
}

// Without returns s with k removed (s itself when k is absent).
func (s VarSet[K, V]) Without(k K) VarSet[K, V] {
	if _, ok := s[k]; !ok {
		return s
	}
	out := make(VarSet[K, V], len(s))
	for k2, v2 := range s {
		if k2 != k {
			out[k2] = v2
		}
	}
	return out
}
