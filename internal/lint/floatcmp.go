package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"meda/internal/lint/analysis"
)

// FloatCmp flags == and != between floating-point operands. Probabilities,
// force values and value-iteration results are float64 throughout the
// engine, and raw equality on them is almost always a latent bug (two
// mathematically equal quantities computed along different paths rarely
// compare equal in binary64). Comparisons belong in the shared epsilon
// helpers of internal/mdp (ApproxEqual, IsZeroProb, IsOneProb); the bodies
// of such helpers — any function whose name marks it as an epsilon
// primitive — are exempt, as are comparisons where both operands are
// compile-time constants and comparisons against the constants 0 and 1:
// both are exactly representable in binary64, and the probability code
// tests those boundaries deliberately (absorbing states, certain
// transitions), so `p == 0` is a semantic check, not a rounding hazard.
var FloatCmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= on floating-point values outside approved epsilon helpers",
	Run:  runFloatCmp,
}

// approvedFloatCmpFunc matches the names of functions allowed to compare
// floats exactly: the epsilon helpers themselves.
var approvedFloatCmpFunc = regexp.MustCompile(`(?i)(approx|epsilon|iszero|isone|exacteq)`)

func runFloatCmp(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if approvedFloatCmpFunc.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt := pass.TypesInfo.Types[be.X]
				yt := pass.TypesInfo.Types[be.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded; no runtime comparison
				}
				if isBoundaryConst(xt.Value) || isBoundaryConst(yt.Value) {
					return true // exact boundary: 0 and 1 are representable
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison; use an epsilon helper (mdp.ApproxEqual, mdp.IsZeroProb, mdp.IsOneProb)",
					be.Op)
				return true
			})
		}
	}
	return nil
}

// isBoundaryConst reports whether v is a compile-time constant exactly
// equal to 0 or 1 — the probability boundaries, exactly representable in
// every floating-point width.
func isBoundaryConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, exact := constant.Float64Val(v)
	return exact && (f == 0 || f == 1)
}

// isFloat reports whether t is (or is based on) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
