package lint

import (
	"go/ast"
	"go/types"

	"meda/internal/lint/absint"
	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
)

// GridBounds proves coordinate-derived slice indexing in bounds, or flags
// it. The MEDA grid layers (cell health, force field, CSR transition slabs)
// are flat slices indexed by linearized 2D coordinates — `health[y*w+x]`,
// `probs[rowStart+k]` — and the paper's hazard-free routing argument
// assumes every such access lands inside the chip. The analyzer runs the
// interval interpreter (internal/lint/absint) over each function and checks
// every index expression whose index is coordinate-derived (contains a
// product of two non-constant integer operands, or a variable tainted by
// one): the access is silent when the environment proves 0 ≤ index and
// index < len(slice) — numerically, or relationally via a dominating
// `if i >= len(s)` guard, a `for i := 0; i < n; i++` bound with
// n := len(s), or a range loop — and a finding otherwise. Plain
// non-coordinate indexing (s[i] over a range, s[0]) is out of scope: the
// runtime bounds check covers it without the noise, but a computed
// linearization that panics mid-route is exactly the crash the formal
// model says cannot happen, so it must be proven or visibly waived.
var GridBounds = &analysis.Analyzer{
	Name: "gridbounds",
	Doc:  "proves coordinate-derived slice indexing in bounds, or flags it",
	Run:  runGridBounds,
}

func runGridBounds(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f := absint.Analyze(info, fd.Body, declParams(info, fd), absint.Options{})
			f.Walk(func(n ast.Node, env absint.Env) {
				if !env.Reached() {
					return
				}
				cfg.Visit(n, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.FuncLit:
						return false // its body runs under a different env
					case *ast.IndexExpr:
						checkGridIndex(pass, f, env, m)
					}
					return true
				})
			})
		}
	}
	return nil
}

// checkGridIndex checks one index expression: slices and arrays with an
// integer, coordinate-derived index must be proven in bounds.
func checkGridIndex(pass *analysis.Pass, f *absint.Func, env absint.Env, ix *ast.IndexExpr) {
	base := pass.TypesInfo.Types[ix.X].Type
	if base == nil || !isIndexable(base) {
		return
	}
	it := pass.TypesInfo.Types[ix.Index].Type
	if it == nil {
		return
	}
	if b, ok := it.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return
	}
	if !f.CoordDerived(env, ix.Index) {
		return
	}
	if proven, why := f.IndexProven(env, ix.X, ix.Index); !proven {
		pass.Reportf(ix.Index.Pos(),
			"coordinate-derived index %s into %s is unproven: %s; add a bounds guard or //lint:ignore gridbounds with the invariant",
			types.ExprString(ix.Index), types.ExprString(ix.X), why)
	}
}

// isIndexable reports whether indexing t is the slice/array shape the
// analyzer guards (maps and strings are out of scope).
func isIndexable(t types.Type) bool {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	switch u.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
