// Package snapshotflow is the golden input for the snapshotflow analyzer.
package snapshotflow

import (
	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/route"
	"meda/internal/synth"
)

func region() geom.Rect { return geom.Rect{XA: 1, YA: 1, XB: 8, YB: 8} }

func liveFieldIntoGoroutine(c *chip.Chip) {
	field := c.ObservedForceField()
	go func() {
		_ = field(1, 1) // want `field holds a live chip force field`
	}()
}

func liveFieldIntoPool(c *chip.Chip, p *synth.Pool) {
	field := c.TrueForceField()
	p.Go(func() {
		_ = field(1, 1) // want `field holds a live chip force field`
	})
}

func snapshotIsSafe(c *chip.Chip, p *synth.Pool) {
	field := c.SnapshotForceField(region())
	p.Go(func() {
		_ = field(1, 1)
	})
}

func inlineLiveFieldIntoSubmit(c *chip.Chip, p *synth.Pool) {
	fut := p.Submit(route.RJ{}, c.ObservedForceField(), synth.DefaultOptions()) // want `live chip force field passed across a goroutine boundary`
	_, _ = fut.Wait()
}

func inlineSnapshotIntoSubmit(c *chip.Chip, p *synth.Pool) {
	fut := p.Submit(route.RJ{}, c.SnapshotForceField(region()), synth.DefaultOptions())
	_, _ = fut.Wait()
}

func taintedVarIntoSubmit(c *chip.Chip, p *synth.Pool) {
	field := c.ObservedForceField()
	fut := p.Submit(route.RJ{}, field, synth.DefaultOptions()) // want `field holds a live chip force field`
	_, _ = fut.Wait()
}

func reassignedFromSnapshotIsSafe(c *chip.Chip, p *synth.Pool) {
	field := c.ObservedForceField()
	_ = field(1, 1) // fine on the submitting goroutine
	field = c.SnapshotForceField(region())
	p.Go(func() {
		_ = field(1, 1)
	})
}

func reassignedToLiveIsFlagged(c *chip.Chip) {
	field := c.SnapshotForceField(region())
	field = c.ObservedForceField()
	go func() {
		_ = field(1, 1) // want `field holds a live chip force field`
	}()
}

func taintFlowsThroughCopies(c *chip.Chip) {
	a := c.TrueForceField()
	b := a
	go func() {
		_ = b(2, 2) // want `b holds a live chip force field`
	}()
}

// Even SnapshotForceField as an unbound method value closes over the live
// chip: the copy only happens when it is finally called.
func methodValueIsLive(c *chip.Chip) {
	snap := c.SnapshotForceField
	go func() {
		_ = snap(region()) // want `snap holds a live chip force field`
	}()
}

func unrelatedFuncValuesUntainted(p *synth.Pool) {
	var field action.ForceField = func(x, y int) float64 { return 1 }
	p.Go(func() {
		_ = field(1, 1)
	})
}

func scalarCopiesUntainted(c *chip.Chip, p *synth.Pool) {
	w, h := c.W(), c.H()
	p.Go(func() {
		_ = w * h
	})
}
