// Package suppress is the driver-level fixture for //lint:ignore
// directives: one well-formed suppression, one without a reason, one naming
// an unknown analyzer, and one suppressing nothing.
package suppress

func suppressed() {
	ch := make(chan int)
	close(ch)
	//lint:ignore chanprotocol fixture exercises an accepted double close
	close(ch)
}

func noReason() {
	ch := make(chan int)
	close(ch)
	//lint:ignore chanprotocol
	close(ch)
}

func unknownAnalyzer() {
	ch := make(chan int)
	close(ch)
	//lint:ignore nosuchcheck the analyzer name is misspelled
	close(ch)
}

type edge struct {
	P float64
}

// A directive naming the retired probliteral analyzer keeps suppressing its
// successor probflow, and is exempt from the staleness check.
func aliased() edge {
	//lint:ignore probliteral fixture exercises the retired-name alias
	return edge{P: 1.5}
}

func stale() {
	//lint:ignore chanprotocol nothing on this line ever fires
	_ = 0
}
