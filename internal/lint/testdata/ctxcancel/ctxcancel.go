// Package ctxcancel is the golden input for the ctxcancel analyzer.
package ctxcancel

import (
	"meda/internal/action"
	"meda/internal/route"
	"meda/internal/synth"
)

func flat(x, y int) float64 { return 1 }

func droppedHandle(p *synth.Pool, rj route.RJ) {
	p.Submit(rj, action.ForceField(flat), synth.DefaultOptions()) // want `result of synth\.Pool\.Submit dropped`
}

func blankHandle(p *synth.Pool, rj route.RJ) {
	_ = p.Submit(rj, action.ForceField(flat), synth.DefaultOptions()) // want `synth\.Pool submission result assigned to _`
}

func droppedTryGo(p *synth.Pool) {
	p.TryGo(func() {})     // want `started flag of synth\.Pool\.TryGo dropped`
	_ = p.TryGo(func() {}) // want `synth\.Pool submission result assigned to _`
}

func droppedWait(f *synth.Future) {
	f.Wait() // want `result and error of synth\.Future\.Wait dropped`
}

func blankWaitErr(f *synth.Future) synth.Result {
	res, _ := f.Wait() // want `error of synth\.Future\.Wait assigned to _`
	return res
}

func keptEverything(p *synth.Pool, rj route.RJ) (synth.Result, error) {
	fut := p.Submit(rj, action.ForceField(flat), synth.DefaultOptions())
	if started := p.TryGo(func() {}); !started {
		_ = started
	}
	return fut.Wait()
}
