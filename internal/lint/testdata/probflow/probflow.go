// Package probflow is the golden input for the probflow analyzer: the
// constant cases inherited from the retired probliteral analyzer, plus the
// computed-interval cases the value-range tier adds on top.
package probflow

import (
	"math/rand"

	"meda/internal/mdp"
)

type edge struct {
	To   int
	P    float64
	Prob float64
}

func literals() []edge {
	return []edge{
		{To: 1, P: 0.5},
		{To: 2, P: 1.5},  // want `probability literal 1\.5 for field P is outside \[0,1\]`
		{To: 3, P: -0.1}, // want `probability literal -0\.1 for field P is outside \[0,1\]`
		{4, 1.0, 2.0},    // want `probability literal 2 for field Prob is outside \[0,1\]`
	}
}

func assigned(e *edge) {
	e.P = 1
	e.P = 1.01 // want `probability literal 1\.01 for field P is outside \[0,1\]`
}

func addTransition(to int, p float64) edge { return edge{To: to, P: p} }

func calls() {
	_ = addTransition(1, 0.25)
	_ = addTransition(1, 7)           // want `probability literal 7 for parameter p is outside \[0,1\]`
	_ = mdp.Transition{To: 0, P: 3.5} // want `probability literal 3\.5 for field P is outside \[0,1\]`
}

// Probability-named parameters are assumed in [0,1] (their call sites are
// checked), so products and complements stay confined and are silent.
func computed(p, prob float64) {
	_ = edge{P: p * prob}
	_ = edge{P: 1 - p}
	_ = edge{P: p / 2}
	_ = edge{P: p + prob} // want `computed probability for field P is in \[0, 2\], which can leave \[0,1\]`
	_ = edge{P: p * 3}    // want `computed probability for field P is in \[0, 3\], which can leave \[0,1\]`
	_ = edge{P: 0 - p}    // want `computed probability for field P is in \[-1, 0\], which can leave \[0,1\]`
	_ = addTransition(1, p*prob)
	_ = addTransition(1, p+prob) // want `computed probability for parameter p is in \[0, 2\], which can leave \[0,1\]`
}

// Probability-named field reads carry the same assumption.
func fromFields(e edge) {
	_ = edge{P: e.P * e.Prob}
	_ = edge{P: e.P + e.Prob} // want `computed probability for field P is in \[0, 2\], which can leave \[0,1\]`
}

// A branch guard refines an unknown value into [0,1].
func clamped(x float64) {
	if x < 0 || x > 1 {
		return
	}
	_ = edge{P: x}
}

// An unguarded unknown is ⊤ and never flags: absence of information is not
// evidence of escape.
func unknown(x float64) {
	_ = edge{P: x}
}

// scale's return range [0, 1.5] is computed bottom-up over the package call
// graph, so the consumption site two frames away sees the escape.
func scale(p float64) float64 { return p * 1.5 }

func halve(p float64) float64 { return p / 2 }

func consume(q float64) {
	_ = edge{P: halve(q)}
	_ = edge{P: scale(q)} // want `computed probability for field P is in \[0, 1\.5\], which can leave \[0,1\]`
}

// Seeded stdlib knowledge: rand.Float64 is in [0,1).
func draw(r *rand.Rand) {
	_ = edge{P: r.Float64()}
	_ = edge{P: r.Float64() * 2} // want `computed probability for field P is in \[0, 2\], which can leave \[0,1\]`
}

func notProbabilities(x float64, n int) {
	// Fields and parameters without probability names are not constrained.
	type point struct{ X, Y float64 }
	_ = point{X: 4.5, Y: -2}
	_ = n
}
