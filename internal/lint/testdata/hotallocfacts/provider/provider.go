// Package provider exports allocation summaries (AllocFacts) that the
// consumer package resolves through the shared fact store.
package provider

// Grow allocates in its own body.
func Grow() []int { return make([]int, 4) }

// Outer reaches Grow's make one frame down, so the exported witness chain
// already carries "Grow".
func Outer() []int { return Grow() }
