// Package consumer holds a //meda:hotpath function whose allocation is two
// frames away in another package: the finding exists only because
// provider's AllocFacts crossed the package boundary.
package consumer

import "meda/internal/lint/testdata/hotallocfacts/provider"

//meda:hotpath
func Hot() int {
	s := provider.Outer() // reaches make via provider.Outer → Grow
	return len(s)
}
