// Package gridbounds is the golden input for the gridbounds analyzer:
// coordinate-derived slice indexing must be proven in bounds by the
// interval interpreter, or flagged.
package gridbounds

type chip struct {
	w, h int
}

// An unguarded linearized index is the finding the analyzer exists for.
func get(health []float64, c chip, x, y int) float64 {
	return health[y*c.w+x] // want `coordinate-derived index .* into health is unproven`
}

// The taint survives assignment: idx is coordinate-derived even though the
// index expression itself is a plain identifier.
func tainted(health []float64, x, y, w int) float64 {
	idx := y*w + x
	return health[idx] // want `coordinate-derived index idx into health is unproven`
}

// A dominating two-sided guard proves the access.
func guarded(health []float64, c chip, x, y int) float64 {
	idx := y*c.w + x
	if idx < 0 || idx >= len(health) {
		return 0
	}
	return health[idx]
}

// A one-sided guard is not enough: the lower bound is still unproven.
func halfGuarded(health []float64, c chip, x, y int) float64 {
	idx := y*c.w + x
	if idx >= len(health) {
		return 0
	}
	return health[idx] // want `coordinate-derived index idx into health is unproven: cannot prove index ≥ 0`
}

// Loop bounds plus an in-loop guard prove the row-major sweep.
func rowMajor(field []float64, w, h int) float64 {
	s := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if i < 0 || i >= len(field) {
				continue
			}
			s += field[i]
		}
	}
	return s
}

// A guard spelled against a saved length alias (n := len(s)) still proves
// the access: the interpreter tracks that n equals len(s).
func lenAlias(vals []float64, w, k int) float64 {
	n := len(vals)
	i := w * k
	if i < 0 || i >= n {
		return 0
	}
	return vals[i]
}

// A numeric proof needs no relational fact: the refined coordinate ranges
// multiply out strictly below the make length.
func constProof(x, y, w int) float64 {
	buf := make([]float64, 256)
	if w != 16 || x < 0 || x > 15 || y < 0 || y > 15 {
		return 0
	}
	return buf[y*w+x]
}

// Plain non-coordinate indexing is out of scope — the runtime bounds check
// covers it without analyzer noise.
func plain(s []float64, i int) float64 {
	return s[i]
}
