// Package consumer is the downstream half of the lockheld cross-package
// golden pair: it calls provider.Blocks while holding a mutex, which only
// a driver that analyzes provider first and shares its facts can flag.
package consumer

import (
	"sync"

	"meda/internal/lint/testdata/lockheldfacts/provider"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) Bad(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = provider.Blocks(ch) // finding: blocking call under g.mu
	return g.n
}

func (g *guarded) Good(ch chan int) int {
	g.mu.Lock()
	g.n = provider.Computes(g.n)
	g.mu.Unlock()
	return provider.Blocks(ch)
}
