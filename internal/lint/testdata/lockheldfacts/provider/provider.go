// Package provider is the upstream half of the lockheld cross-package
// golden pair: Blocks receives on a channel, so the lockheld pass over
// this package exports a MayBlock fact about it for downstream packages.
package provider

// Blocks waits for a value; callers holding a mutex must not call it.
func Blocks(ch chan int) int { return <-ch }

// Computes is a pure function; no fact is exported about it.
func Computes(n int) int { return n + 1 }
