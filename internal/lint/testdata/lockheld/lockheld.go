// Package lockheld is the golden input for the lockheld analyzer.
package lockheld

import (
	"sync"
	"time"
)

func sendWhileHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want `potentially blocking operation \(channel send\) while holding`
	mu.Unlock()
}

func recvWhileHeld(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want `potentially blocking operation \(channel receive\) while holding`
}

func sendAfterUnlock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

func blockingSelectWhileHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want `potentially blocking operation \(select without default\) while holding`
	case v := <-ch:
		_ = v
	}
}

func nonBlockingSelectWhileHeld(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

func waitGroupWhileHeld(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want `potentially blocking operation \(call to sync\.WaitGroup\.Wait\) while holding`
}

func sleepWhileHeld(mu *sync.RWMutex) {
	mu.RLock()
	time.Sleep(time.Millisecond) // want `potentially blocking operation \(call to time\.Sleep\) while holding`
	mu.RUnlock()
}

// helper blocks on its channel; the package-local fixpoint infers it.
func helper(ch chan int) int { return <-ch }

// indirect blocks because helper does; the inference is transitive.
func indirect(ch chan int) int { return helper(ch) }

func localCallWhileHeld(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return indirect(ch) // want `potentially blocking operation \(call to .*indirect \(may block: .*helper \(may block: channel receive\)\)\) while holding`
}

func goroutineBodyIsSeparate(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() { <-ch }() // runs elsewhere; does not block the holder
	mu.Unlock()
}

func deferredCallRunsAtReturn(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	defer wg.Wait() // runs at return, outside the scan
	mu.Unlock()
}

func heldOnOnePath(mu *sync.Mutex, ch chan int, flag bool) {
	if flag {
		mu.Lock()
		defer mu.Unlock()
	}
	<-ch // want `potentially blocking operation \(channel receive\) while holding`
}

func nonBlockingCallsAreFine(mu *sync.Mutex, other *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	pureWork(2)
}

func pureWork(n int) int { return n * n }

// tryAcquire never blocks: the select has a default clause, mirroring
// synth.Pool.TryGo.
func tryAcquire(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func trySubmitWhileHeld(mu *sync.Mutex, sem chan struct{}) bool {
	mu.Lock()
	defer mu.Unlock()
	return tryAcquire(sem)
}
