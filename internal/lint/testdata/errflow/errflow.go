// Package errflow is the golden input for the errflow analyzer.
package errflow

import (
	"errors"
	"fmt"
)

func produce() error       { return errors.New("boom") }
func pair() (int, error)   { return 0, errors.New("boom") }
func consume(err error)    { _ = err }
func wrap(err error) error { return fmt.Errorf("wrapped: %w", err) }

func overwritten() {
	err := produce()
	err = produce() // want `err is overwritten before the error assigned at .* is checked`
	if err != nil {
		consume(err)
	}
}

func checkedThenReassigned() {
	err := produce()
	if err != nil {
		return
	}
	err = produce()
	consume(err)
}

func wrappingIsARead() {
	err := produce()
	err = wrap(err) // reading err on the right consumes it first
	consume(err)
}

func checkedThenDropped() {
	err := produce()
	consume(err)
	err = produce() // want `error assigned to err is not checked before the function returns on some path`
}

func droppedOnOnePath(flag bool) {
	err := produce() // want `error assigned to err is not checked before the function returns on some path`
	if flag {
		consume(err)
	}
}

func tupleDroppedOnOnePath() int {
	n, err := pair() // want `error assigned to err is not checked before the function returns on some path`
	if n > 0 {
		consume(err)
	}
	return n
}

func tupleChecked() int {
	n, err := pair()
	if err != nil {
		return -1
	}
	return n
}

func returningIsARead() error {
	err := produce()
	return err
}

func declForm(flag bool) {
	var err error = produce() // want `error assigned to err is not checked before the function returns on some path`
	if flag {
		consume(err)
	}
}

func nilStoreDoesNotTrack() {
	var err error
	err = nil
	consume(err)
}

func copiesDoNotTrack() {
	err := produce()
	err2 := err // reads err (consuming it); a copy is not a fresh error
	consume(err2)
}

// namedResult's assignment to err is how the function returns it.
func namedResult() (err error) {
	err = produce()
	return
}

// closureCapture is excluded: the closure may consume err at any time.
func closureCapture() {
	err := produce()
	defer func() { consume(err) }()
}

func overwrittenAcrossBranches(flag bool) {
	err := produce()
	if flag {
		err = produce() // want `err is overwritten before the error assigned at .* is checked`
	}
	consume(err)
}

func loopLastErrorKept(tries int) error {
	var err error
	for i := 0; i < tries; i++ {
		err = produce() // want `err is overwritten before the error assigned at .* is checked`
	}
	return err
}

func loopCheckedEachIteration(tries int) error {
	for i := 0; i < tries; i++ {
		err := produce()
		if err != nil {
			return err
		}
	}
	return nil
}
