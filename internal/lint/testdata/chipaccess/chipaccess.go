// Package chipaccess is the golden input for the chipaccess analyzer.
package chipaccess

import (
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/synth"
)

func region() geom.Rect { return geom.Rect{XA: 1, YA: 1, XB: 8, YB: 8} }

func goStatementReads(c *chip.Chip) {
	go func() {
		_ = c.Health(1, 1) // want `chip\.Chip\.Health accessed from a background goroutine`
	}()
	go func() {
		f := c.ObservedForceField() // want `chip\.Chip\.ObservedForceField accessed from a background goroutine`
		_ = f
	}()
	go c.Actuate(region()) // want `chip\.Chip\.Actuate accessed from a background goroutine`
}

func snapshotInGoroutineStillFlagged(c *chip.Chip) {
	// Even the snapshot method races when called off the owning goroutine;
	// the snapshot must be taken by the submitter.
	go func() {
		_ = c.SnapshotForceField(region()) // want `chip\.Chip\.SnapshotForceField accessed from a background goroutine`
	}()
}

func poolReads(p *synth.Pool, c *chip.Chip) {
	p.Go(func() {
		_ = c.MinHealth(region()) // want `chip\.Chip\.MinHealth accessed from a background goroutine`
	})
	started := p.TryGo(func() {
		_ = c.W() // want `chip\.Chip\.W accessed from a background goroutine`
	})
	_ = started
}

func snapshotOnSubmitter(p *synth.Pool, c *chip.Chip) {
	// The sanctioned pattern: snapshot on the submitting goroutine, hand
	// the immutable snapshot to the worker.
	field := c.SnapshotForceField(region())
	p.Go(func() {
		_ = field(2, 2)
	})
}

func synchronousUseIsFine(c *chip.Chip) int {
	return c.Health(2, 2)
}
