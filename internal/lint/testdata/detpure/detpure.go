// Package detpure is the golden fixture for the detpure analyzer: functions
// annotated //meda:deterministic must not reach nondeterminism sources.
package detpure

import (
	"math/rand"
	"sort"
	"time"
)

//meda:deterministic
func Stamp() int64 {
	return time.Now().UnixNano() // want `Stamp is marked //meda:deterministic but reaches time\.Now`
}

//meda:deterministic
func Pick(n int) int {
	return rand.Intn(n) // want `Pick is marked //meda:deterministic but reaches math/rand\.Intn`
}

func stamp() int64 { return time.Now().UnixNano() }

func jitter() int64 { return stamp() + 1 }

// Key reaches the wall clock two frames down; the diagnostic carries the
// witness chain.
//
//meda:deterministic
func Key(seed int64) int64 {
	return seed ^ jitter() // want `Key is marked //meda:deterministic but reaches time\.Now via jitter → stamp`
}

//meda:deterministic
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `Keys is marked //meda:deterministic but reaches map iteration order`
		out = append(out, k)
	}
	return out
}

//meda:deterministic
func Merge(a, b <-chan int) int {
	select { // want `Merge is marked //meda:deterministic but reaches select arm order`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

type Clocked struct{ base int64 }

//meda:deterministic
func (c Clocked) Offset() int64 {
	return c.base + time.Now().Unix() // want `Offset is marked //meda:deterministic but reaches time\.Now`
}

// SeededPick draws from an explicitly seeded source: deterministic by
// construction, not a finding.
//
//meda:deterministic
func SeededPick(r *rand.Rand, n int) int { return r.Intn(n) }

// SortedKeys ranges over a map but sorts before the order can be observed.
//
//meda:deterministic
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reduce folds a map order-insensitively: no emission, no finding.
//
//meda:deterministic
func Reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// FreeClock is nondeterministic but makes no contract: detpure only
// enforces declared determinism.
func FreeClock() int64 { return time.Now().UnixNano() }
