// Package probliteral is the golden input for the probliteral analyzer.
package probliteral

import "meda/internal/mdp"

type edge struct {
	To   int
	P    float64
	Prob float64
}

func literals() []edge {
	return []edge{
		{To: 1, P: 0.5},
		{To: 2, P: 1.5},  // want `probability literal 1\.5 for field P is outside \[0,1\]`
		{To: 3, P: -0.1}, // want `probability literal -0\.1 for field P is outside \[0,1\]`
		{4, 1.0, 2.0},    // want `probability literal 2 for field Prob is outside \[0,1\]`
	}
}

func assigned(e *edge) {
	e.P = 1
	e.P = 1.01 // want `probability literal 1\.01 for field P is outside \[0,1\]`
}

func addTransition(to int, p float64) edge { return edge{To: to, P: p} }

func calls() {
	_ = addTransition(1, 0.25)
	_ = addTransition(1, 7)           // want `probability literal 7 for parameter p is outside \[0,1\]`
	_ = mdp.Transition{To: 0, P: 3.5} // want `probability literal 3\.5 for field P is outside \[0,1\]`
}

func notProbabilities(x float64, n int) {
	// Fields and parameters without probability names are not constrained.
	type point struct{ X, Y float64 }
	_ = point{X: 4.5, Y: -2}
	_ = n
}
