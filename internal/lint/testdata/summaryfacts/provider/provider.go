// Package provider is the upstream half of the interprocedural summary
// cross-package golden pair: the summary pass over this package exports
// FnSummary facts (nondeterminism sources, channel parameter ops) that the
// consumer package's analyzers must resolve through the shared fact store.
package provider

import "time"

// Clock reads the wall clock: its summary carries a time.Now source.
func Clock() int64 { return time.Now().UnixNano() }

// SendOn forwards v into ch: its summary marks parameter 0 as sent-on.
func SendOn(ch chan int, v int) { ch <- v }

// CloseOut closes ch: its summary marks parameter 0 as closed.
func CloseOut(ch chan int) { close(ch) }
