// Package consumer is the downstream half of the interprocedural summary
// cross-package golden pair: each function here is a finding that exists
// only when the driver analyzed provider first and its FnSummary facts
// crossed the package boundary.
package consumer

import "meda/internal/lint/testdata/summaryfacts/provider"

// Key breaks its determinism contract through provider.Clock's fact.
//
//meda:deterministic
func Key(seed int64) int64 {
	return seed ^ provider.Clock() // finding: reaches time.Now via provider.Clock
}

// Leak launches a goroutine whose send lives inside provider.SendOn.
func Leak() {
	ch := make(chan int)
	go provider.SendOn(ch, 1) // finding: send with no local receiver
}

// Shut closes ch and then hands it to provider.CloseOut, which closes it
// again.
func Shut() {
	ch := make(chan int)
	close(ch)
	provider.CloseOut(ch) // finding: double close through the fact
}
