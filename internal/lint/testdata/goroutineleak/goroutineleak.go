// Package goroutineleak is the golden fixture for the goroutineleak
// analyzer: goroutines blocked forever on channels with no counterpart.
package goroutineleak

func reallySend(ch chan int) { ch <- 1 }

func sendDeep(ch chan int) { reallySend(ch) }

func drain(ch chan int) { <-ch }

// LeakSend launches a sender nobody ever receives from.
func LeakSend() {
	ch := make(chan int)
	go func() { // want `goroutine sends on ch but the enclosing function never receives from it`
		ch <- 1
	}()
}

// LeakRecv launches a receiver nothing ever sends to or closes.
func LeakRecv() {
	ch := make(chan int)
	go func() { // want `goroutine receives on ch but nothing sends on or closes it`
		<-ch
	}()
}

// LeakDeep leaks through two call frames: the send happens inside
// reallySend, reached via sendDeep's summary.
func LeakDeep() {
	ch := make(chan int)
	go func() { // want `goroutine sends on ch but the enclosing function never receives from it`
		sendDeep(ch)
	}()
}

// LeakGoCall leaks through a direct `go fn(ch)` launch.
func LeakGoCall() {
	ch := make(chan int)
	go drain(ch) // want `goroutine receives on ch but nothing sends on or closes it`
}

// BufferedOK: the buffer absorbs the send.
func BufferedOK() {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
}

// HandoffOK: the classic result handoff — the enclosing function receives.
func HandoffOK() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

// PairOK: a second goroutine is a legitimate counterpart.
func PairOK() {
	ch := make(chan int)
	done := make(chan struct{})
	go func() { ch <- 1 }()
	go func() {
		<-ch
		close(done)
	}()
	<-done
}

// GuardedOK: a select with a second arm is an escape hatch.
func GuardedOK(quit chan struct{}) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-quit:
		}
	}()
}

// EscapeOK: the channel escapes through the return; the caller may consume.
func EscapeOK() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}

// OpaqueOK: a function-value callee may do anything with the channel.
func OpaqueOK(f func(chan int)) {
	ch := make(chan int)
	go func() { ch <- 1 }()
	f(ch)
}

// DrainedOK: the counterpart receive arrives through a helper's summary.
func DrainedOK() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	drain(ch)
}
