// Package chanprotocol is the golden fixture for the chanprotocol
// analyzer: double-close, close-by-receiver, and WaitGroup.Add placement.
package chanprotocol

import "sync"

func shutdown(ch chan int) { close(ch) }

func shutdownDeep(ch chan int) { shutdown(ch) }

// DoubleClose closes the same channel twice on a straight-line path.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `ch may already be closed`
}

// BranchClose: the branch path closes first, so the unconditional close
// below may be the second.
func BranchClose(cond bool) {
	ch := make(chan int)
	if cond {
		close(ch)
	}
	close(ch) // want `ch may already be closed`
}

// HelperClose: the helper closes its parameter — closing again panics.
func HelperClose() {
	ch := make(chan int)
	close(ch)
	shutdown(ch) // want `ch may already be closed`
}

// DeepClose: the first close happens two frames down via shutdownDeep.
func DeepClose() {
	ch := make(chan int)
	shutdownDeep(ch)
	shutdown(ch) // want `ch may already be closed`
}

// LoopClose: the close reaches itself along the loop's back edge.
func LoopClose(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		close(ch) // want `ch may already be closed`
	}
}

// RemakeOK: re-making the channel resets its protocol state.
func RemakeOK(n int) {
	var ch chan int
	for i := 0; i < n; i++ {
		ch = make(chan int)
		close(ch)
	}
}

// EitherOK: exclusive branches each close once.
func EitherOK(cond bool) {
	ch := make(chan int)
	if cond {
		close(ch)
	} else {
		close(ch)
	}
}

// ReceiverClose: the consumer closes a channel the producer may still be
// sending on.
func ReceiverClose(ch chan int) {
	<-ch
	close(ch) // want `ch is closed by its receiver: only the sending side may close a channel`
}

// RangeClose: draining by range then closing is the same mistake.
func RangeClose(ch chan int) {
	for range ch {
	}
	close(ch) // want `ch is closed by its receiver: only the sending side may close a channel`
}

// ProducerOK: the sending side closing is the correct shutdown protocol.
func ProducerOK(ch chan int) {
	ch <- 1
	close(ch)
}

// ConsumeOK: the producer literal sends and closes; the enclosing scope's
// sends (anywhere in the body) count as ownership.
func ConsumeOK() int {
	ch := make(chan int, 4)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// AddInside: Add in the counted goroutine races Wait.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `WaitGroup\.Add inside the goroutine it counts races Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// AddOutside: Add on the launching side, before the go statement.
func AddOutside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// LocalAddOK: a WaitGroup declared inside the literal is its own.
func LocalAddOK() {
	go func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { wg.Done() }()
		wg.Wait()
	}()
}
