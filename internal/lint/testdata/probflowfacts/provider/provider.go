// Package provider exports probflow return-range facts (ProbRangeFact)
// that the consumer package resolves through the shared fact store.
package provider

// Scale escapes the unit interval: its exported return range is [0, 1.5].
func Scale(p float64) float64 { return p * 1.5 }

// Halve stays confined: its exported return range is [0, 0.5].
func Halve(p float64) float64 { return p / 2 }
