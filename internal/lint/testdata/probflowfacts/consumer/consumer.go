// Package consumer consumes probability values computed upstream: the
// finding exists only because provider's return-range facts crossed the
// package boundary.
package consumer

import "meda/internal/lint/testdata/probflowfacts/provider"

type edge struct {
	To int
	P  float64
}

func use(x float64) {
	_ = edge{P: provider.Halve(x)}
	_ = edge{P: provider.Scale(x)} // in [0, 1.5]: flagged through the imported fact
}
