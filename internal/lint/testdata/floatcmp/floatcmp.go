// Package floatcmp is the golden input for the floatcmp analyzer.
package floatcmp

const eps = 1e-9

// ApproxEqual is an approved epsilon helper: exact comparisons inside it
// are the implementation of the tolerance itself.
func ApproxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps || a == b
}

// IsZeroProb is likewise approved.
func IsZeroProb(p float64) bool { return p == 0 }

type result struct {
	value float64
	iters int
}

func converged(prev, next float64) bool {
	return prev == next // want `floating-point == comparison`
}

func residual(r result, v float64) bool {
	if r.value != v { // want `floating-point != comparison`
		return false
	}
	return r.iters == 0 // ints compare fine
}

func mixed(p float32, n int) bool {
	if float64(n) == 3.5 { // want `floating-point == comparison`
		return true
	}
	return p != 0.25 // want `floating-point != comparison`
}

func constantFold() bool {
	const a, b = 0.1, 0.2
	return a+b == 0.3 // constant-folded: no runtime comparison, not flagged
}

// Comparisons against the exactly-representable boundaries 0 and 1 are
// deliberate semantic checks (absorbing states, certain transitions), not
// rounding hazards, and are not flagged in any spelling of the constant.
func boundaries(p float64, f float32) bool {
	if p == 0 || p != 1 {
		return true
	}
	if f == 0.0 || f != 1.0 {
		return true
	}
	const one = 1.0
	if p == one {
		return true
	}
	return 0 != p
}

// Non-boundary constants still compare approximately.
func nearBoundaries(p float64) bool {
	if p == 0.5 { // want `floating-point == comparison`
		return true
	}
	return p != 1.0000001 // want `floating-point != comparison`
}
