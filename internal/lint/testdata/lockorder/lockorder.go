// Package lockorder is the golden input for the lockorder analyzer.
package lockorder

import "sync"

type registry struct {
	mu      sync.Mutex
	entries map[string]int
}

type scheduler struct {
	mu   sync.Mutex
	reg  *registry
	busy bool
}

// lockAB acquires scheduler.mu then registry.mu.
func (s *scheduler) lockAB() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.mu.Lock() // want `lockorder\.registry\.mu is locked while holding lockorder\.scheduler\.mu`
	s.reg.entries["x"]++
	s.reg.mu.Unlock()
}

// lockBA acquires them in the opposite order: a latent deadlock with lockAB.
func (s *scheduler) lockBA() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	s.mu.Lock() // want `lockorder\.scheduler\.mu is locked while holding lockorder\.registry\.mu`
	s.busy = true
	s.mu.Unlock()
}

// sequential acquisition (release before the next Lock) imposes no order.
func (s *scheduler) sequential() {
	s.mu.Lock()
	s.busy = false
	s.mu.Unlock()
	s.reg.mu.Lock()
	s.reg.entries["y"]++
	s.reg.mu.Unlock()
}

// A goroutine body is its own scope: the submitter's held set does not
// leak into it, so this is not an ordering edge.
func (s *scheduler) asyncScope() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.reg.mu.Lock()
		s.reg.entries["z"]++
		s.reg.mu.Unlock()
	}()
}
