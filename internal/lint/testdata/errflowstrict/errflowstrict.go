// Package errflowstrict is the golden fixture for the strict dropped-error
// analyzer used to audit command mains.
package errflowstrict

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func value() int { return 0 }

func Drop() {
	fallible() // want `error result of errflowstrict\.fallible is discarded`
}

func DropFile(f *os.File) {
	f.Close() // want `error result of File\.Close is discarded`
}

func BlankSingle() {
	_ = fallible() // want `error result of errflowstrict\.fallible is discarded into _`
}

func BlankTuple() {
	n, _ := pair() // want `error result of errflowstrict\.pair is discarded into _`
	_ = n
}

func HandledOK() error {
	if err := fallible(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	return err
}

func DeferredOK(f *os.File) {
	defer f.Close()
}

func PrintOK(w *os.File) {
	fmt.Println("status")
	fmt.Fprintf(w, "detail\n")
}

func SinkOK(sb *strings.Builder, buf *bytes.Buffer) {
	sb.WriteString("a")
	buf.WriteByte('b')
}

func PlainOK() {
	value()
	_ = value()
}
