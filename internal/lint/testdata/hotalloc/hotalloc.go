// Package hotalloc is the golden input for the hotalloc analyzer: functions
// annotated //meda:hotpath must not reach heap allocations, however many
// call frames down.
package hotalloc

type builder struct {
	tos []int
}

// Self-append assigning back to the appended slice (including field slabs)
// is the approved amortized-growth pattern.
//
//meda:hotpath
func (b *builder) push(v int) {
	b.tos = append(b.tos, v)
}

// Truncate-and-reuse is self-append too: the base is a reslice of the
// assignment target, so the append fills the existing backing array.
//
//meda:hotpath
func (b *builder) reset() {
	b.tos = append(b.tos[:0], 0)
}

//meda:hotpath
func leaky(n int) []int {
	s := make([]int, n) // want `leaky is marked //meda:hotpath but reaches make`
	return s
}

//meda:hotpath
func boxed(v int) {
	sink(v) // want `boxed is marked //meda:hotpath but reaches interface boxing`
}

func sink(x interface{}) { _ = x }

// Constant operands materialize statically — panic("message") stays free.
//
//meda:hotpath
func constPanic(ok bool) {
	if !ok {
		panic("invariant violated")
	}
}

//meda:hotpath
func deferred() {
	defer cleanup() // want `deferred is marked //meda:hotpath but reaches defer`
}

func cleanup() {}

//meda:hotpath
func iterates(m map[int]int) int {
	t := 0
	for _, v := range m { // want `iterates is marked //meda:hotpath but reaches map iteration`
		t += v
	}
	return t
}

//meda:hotpath
func captures(n int) func() int {
	return func() int { return n } // want `captures is marked //meda:hotpath but reaches closure capture`
}

//meda:hotpath
func copies(src []int) []int {
	var out []int
	out = append(src, 1) // want `copies is marked //meda:hotpath but reaches append \(non-self\)`
	return out
}

// The contract is interprocedural: the witness names the call chain.
//
//meda:hotpath
func viaHelper() {
	grow() // want `viaHelper is marked //meda:hotpath but reaches make via grow`
}

func grow() { _ = make([]int, 4) }

// Two frames down, the chain still resolves.
//
//meda:hotpath
func viaTwo() {
	outer() // want `viaTwo is marked //meda:hotpath but reaches make via outer → grow`
}

func outer() { grow() }

// Unannotated functions may allocate freely.
func unannotated() []int {
	return make([]int, 8)
}
