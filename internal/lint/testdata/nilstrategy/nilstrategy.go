// Package nilstrategy is the golden input for the nilstrategy analyzer.
package nilstrategy

type policy map[int]int

type cache struct{ entries map[string]policy }

// Lookup follows the comma-ok contract of sched.Cache.Lookup: the policy
// is meaningful only when the bool result is true.
func (c *cache) Lookup(key string) (policy, float64, bool) {
	p, ok := c.entries[key]
	return p, 0.5, ok
}

// Lookup is the package-level two-result form of the contract.
func Lookup(key string) (policy, bool) {
	return nil, false
}

func uncheckedUse(c *cache) int {
	p, _, ok := c.Lookup("a")
	_ = ok
	return p[0] // want `p may be invalid: ok result of the lookup at .* is not checked on this path`
}

func checkedUse(c *cache) int {
	p, _, ok := c.Lookup("a")
	if !ok {
		return -1
	}
	return p[0]
}

func checkedInIfHeader(c *cache) int {
	if p, _, ok := c.Lookup("a"); ok {
		return p[0]
	}
	return -1
}

func elseBranchUse(c *cache) int {
	p, _, ok := c.Lookup("a")
	if ok {
		return p[0]
	}
	return p[1] // want `p may be invalid`
}

func discardedOkNilChecked(c *cache) int {
	p, _, _ := c.Lookup("a")
	if p == nil {
		return -1
	}
	return p[0]
}

func discardedOkUnchecked(c *cache) int {
	p, _, _ := c.Lookup("a")
	return p[0] // want `p may be invalid: the lookup at .* discards its ok result`
}

func lenGuard(c *cache) int {
	p, _, _ := c.Lookup("a")
	if len(p) == 0 {
		return -1
	}
	return p[0]
}

func lenGuardPositive(c *cache) int {
	p, _, _ := c.Lookup("a")
	if len(p) > 0 {
		return p[0]
	}
	return -1
}

func conjunctionGuard(c *cache, want bool) int {
	p, _, ok := c.Lookup("a")
	if ok && want {
		return p[0]
	}
	return -1
}

func checkOnOnePathOnly(c *cache, deep bool) int {
	p, _, ok := c.Lookup("a")
	if deep {
		if !ok {
			return -1
		}
	}
	return p[0] // want `p may be invalid`
}

func reassignedClears(c *cache) int {
	p, _, _ := c.Lookup("a")
	p = policy{0: 1}
	return p[0]
}

func twoResultForm() bool {
	p, ok := Lookup("a")
	if !ok {
		return false
	}
	return p[0] == 1
}

func twoResultFormUnchecked() int {
	p, ok := Lookup("a")
	_ = ok
	return p[0] // want `p may be invalid`
}

// fetch is not a lookup: the callee name differs, so the comma-ok
// contract is not assumed.
func fetch(key string) (policy, bool) { return nil, false }

func otherNamesUntracked() int {
	p, ok := fetch("a")
	_ = ok
	return p[0]
}

func loopRecheckEachIteration(c *cache, keys []string) int {
	total := 0
	for _, k := range keys {
		p, _, ok := c.Lookup(k)
		if !ok {
			continue
		}
		total += p[0]
	}
	return total
}
