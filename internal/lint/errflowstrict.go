package lint

import (
	"go/ast"
	"go/types"

	"meda/internal/lint/analysis"
)

// ErrFlowStrict is errflow's strict companion for command mains: it flags
// call results whose error is discarded outright — a bare call statement
// returning an error, or an error result assigned to the blank identifier.
// The base errflow analyzer only tracks errors that were assigned to a
// variable; a command that never binds the error in the first place
// (`f.Close()`, `enc.Encode(v)`) sails past it, and in a main package there
// is no caller left to recover. The analyzer is not part of the default
// suite; medalint -strict adds it, and make lint runs it over ./cmd/...
//
// Print-style calls into package fmt and writes into in-memory sinks
// (*strings.Builder, *bytes.Buffer — their Write methods are documented
// never to fail) are exempt. Deferred calls are exempt too: `defer
// f.Close()` on a read path is conventional, and errflow already covers the
// cases where the deferred error is captured.
var ErrFlowStrict = &analysis.Analyzer{
	Name: "errflowstrict",
	Doc:  "flags discarded error results in command mains (bare calls, blank assignments)",
	Run:  runErrFlowStrict,
}

func runErrFlowStrict(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(n.X).(*ast.CallExpr)
				if !ok || strictExempt(info, call) {
					return true
				}
				if errorResultCount(info, call) > 0 {
					pass.Reportf(call.Pos(), "error result of %s is discarded: handle it or assign it", callName(info, call))
				}
			case *ast.AssignStmt:
				reportBlankErrors(pass, n)
			}
			return true
		})
	}
	return nil
}

// reportBlankErrors flags error results assigned to the blank identifier,
// in both the tuple form `v, _ := f()` and the paired form `_ = f()`.
func reportBlankErrors(pass *analysis.Pass, as *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || strictExempt(info, call) {
			return
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i < tuple.Len() && isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result of %s is discarded into _: handle it or assign it", callName(info, call))
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || strictExempt(info, call) {
			continue
		}
		if t := info.Types[call].Type; t != nil && isErrorType(t) {
			pass.Reportf(lhs.Pos(), "error result of %s is discarded into _: handle it or assign it", callName(info, call))
		}
	}
}

// errorResultCount returns how many of a call's results are errors.
func errorResultCount(info *types.Info, call *ast.CallExpr) int {
	t := info.Types[call].Type
	switch t := t.(type) {
	case nil:
		return 0
	case *types.Tuple:
		n := 0
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				n++
			}
		}
		return n
	default:
		if isErrorType(t) {
			return 1
		}
		return 0
	}
}

// strictExempt reports whether a call's dropped error is conventionally
// acceptable: fmt printing, or writes into in-memory sinks that never fail.
func strictExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders a call target for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "the call"
}
