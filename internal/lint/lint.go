// Package lint is the medalint analyzer suite: domain-specific static
// checks that guard the invariants the synthesis engine's correctness
// argument rests on (Sec. VI-C's SMG→MDP reduction and the concurrent
// synthesis path of Alg. 3). The fourteen default analyzers are
//
//	floatcmp      — no raw ==/!= on floating-point probabilities, forces or
//	                values outside approved epsilon helpers
//	chipaccess    — background goroutines must not read live chip.Chip
//	                state; they get snapshots (chip.SnapshotForceField)
//	ctxcancel     — synth.Pool submissions must keep the returned
//	                handle/started flag, and Future errors must be checked
//	lockorder     — mutexes in sched/synth are acquired in one global order
//	nilstrategy   — a policy produced by a lookup reporting !ok must not
//	                flow to a use without an ok/nil check on the path
//	errflow       — an error assigned to a variable must be checked before
//	                it is overwritten or the function returns
//	snapshotflow  — live force-field closures derived from a chip.Chip must
//	                not cross into goroutines or pool submissions
//	lockheld      — no potentially blocking call (channel op, Pool/Future
//	                waits, solver entry points) while a mutex is held
//	detpure       — functions declaring //meda:deterministic must not reach
//	                a nondeterminism source, however many call frames down
//	goroutineleak — goroutines must not block forever on channels with no
//	                counterpart operation and no escape hatch
//	chanprotocol  — no double close, no close from the receiving side, no
//	                WaitGroup.Add inside the goroutine it counts
//	gridbounds    — coordinate-derived slice indexing (health[y*w+x], CSR
//	                offsets) must be proven in bounds by interval analysis
//	probflow      — computed probabilities are confined to [0,1] through
//	                products, complements and normalization (supersedes the
//	                retired probliteral, whose name survives as a
//	                //lint:ignore alias)
//	hotalloc      — functions declaring //meda:hotpath must not reach heap
//	                allocations, interface boxing, closures, defer, or map
//	                iteration, however many call frames down
//
// (errflowstrict, the fifteenth, joins under -strict.) The first three and
// lockorder are syntactic, single-pass checks; nilstrategy through lockheld
// are flow-sensitive: each builds a per-function control-flow graph
// (internal/lint/cfg) and solves a dataflow problem over it
// (internal/lint/dataflow). detpure, goroutineleak, chanprotocol, and
// hotalloc are interprocedural: they build the package call graph
// (internal/lint/callgraph) and consume bottom-up function summaries
// (internal/lint/summary) that cross package boundaries as analysis facts —
// the driver analyzes packages in dependency order sharing one
// analysis.FactStore, so a send three frames deep in an upstream package
// still registers at the call site downstream. gridbounds and probflow form
// the value-range tier: both instantiate the interval abstract interpreter
// of internal/lint/absint (widening/narrowing over the same CFGs), and
// probflow additionally exports bottom-up return-range facts.
//
// A finding can be suppressed at the site with a directive comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the finding's line or the line above it. The directive itself is
// checked: an unknown analyzer name, a missing reason, or a directive that
// suppresses nothing is reported under the pseudo-analyzer "directive", so
// stale suppressions rot visibly instead of silently. Directives naming a
// retired analyzer (probliteral) suppress its successor's findings and are
// exempt from the staleness check.
//
// Each analyzer follows the go/analysis contract of internal/lint/analysis
// and is exercised by an analysistest golden package under testdata/.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"time"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cache"
	"meda/internal/lint/summary"
)

// Analyzers returns the full medalint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FloatCmp, ChipAccess, CtxCancel, LockOrder,
		NilStrategy, ErrFlow, SnapshotFlow, LockHeld,
		DetPure, GoroutineLeak, ChanProtocol,
		GridBounds, ProbFlow, HotAlloc,
	}
}

// analyzerAliases maps retired analyzer names to their successors:
// directives written against the old name keep suppressing the successor's
// findings, and the staleness check leaves them alone.
var analyzerAliases = map[string]string{
	"probliteral": ProbFlow.Name,
}

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding the way compilers do, so editors can jump to
// it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Timing is the wall-clock cost of one analyzer summed over every package
// it ran on.
type Timing struct {
	Analyzer string
	Seconds  float64
}

// ignoreRE matches a suppression directive comment. The analyzer name is
// mandatory; the reason is validated separately so its absence can carry a
// dedicated diagnostic.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)[ \t]*(.*)$`)

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Position
	used     bool
}

// collectDirectives parses the suppression directives of one package.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &directive{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					file:     pos.Filename,
					line:     pos.Line,
					pos:      pos,
				})
			}
		}
	}
	return out
}

// suppresses reports whether the directive covers a finding: same analyzer
// (a retired name covers its successor), same file, on the directive's line
// or the one below it (the conventional comment-above-the-statement
// placement).
func (d *directive) suppresses(f Finding) bool {
	if d.analyzer != f.Analyzer && analyzerAliases[d.analyzer] != f.Analyzer {
		return false
	}
	return d.file == f.Pos.Filename && (f.Pos.Line == d.line || f.Pos.Line == d.line+1)
}

// applyDirectives filters suppressed findings out and appends "directive"
// findings for suppressions that are malformed (unknown analyzer, missing
// reason) or dead (suppress nothing). known is the full analyzer registry —
// a directive for a registered analyzer that simply isn't part of this run
// (errflowstrict outside -strict) is left alone rather than called unknown,
// and its usedness is only judged when its analyzer actually ran.
func applyDirectives(findings []Finding, directives []*directive, known, ran map[string]bool) []Finding {
	if len(directives) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.suppresses(f) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		_, aliased := analyzerAliases[d.analyzer]
		switch {
		case !known[d.analyzer] && !aliased:
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", d.analyzer),
			})
		case d.reason == "":
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore %s has no reason: say why the finding is acceptable", d.analyzer),
			})
		case !d.used && ran[d.analyzer] && !aliased:
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing: remove the stale directive", d.analyzer),
			})
		}
	}
	return kept
}

// Options configures a driver run.
type Options struct {
	// CacheDir roots the incremental analysis cache; empty disables
	// caching (every package is analyzed from source).
	CacheDir string
}

// CacheStats reports how much of a run came out of the incremental cache.
type CacheStats struct {
	// Packages is the number of matched packages.
	Packages int
	// Hits is how many of them were replayed from the cache.
	Hits int
}

// cacheSchema invalidates every cache entry when the shape of what is
// stored changes. Bump it whenever Entry, a fact type, or the finding
// pipeline changes meaning.
const cacheSchema = "medalint-cache-v1"

// init registers every fact type the suite exports, so cache entries can
// round-trip them through gob.
func init() {
	cache.RegisterFact(&MayBlock{})
	cache.RegisterFact(&ProbRangeFact{})
	cache.RegisterFact(&summary.FnSummary{})
	cache.RegisterFact(&summary.AllocFacts{})
}

// Run loads every package matched by the patterns (relative to a directory
// inside the module) and applies the analyzers, returning all findings
// sorted by position. Packages are analyzed in dependency order (imports
// first) sharing one fact store, so fact-consuming analyzers like lockheld
// and the summary-based interprocedural checks see what upstream passes
// exported. Packages that fail to load abort the run: the suite lints only
// code that compiles.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunTimed(dir, patterns, analyzers)
	return findings, err
}

// RunTimed is Run plus per-analyzer wall-clock timing, sorted by decreasing
// cost. Neither Run nor RunTimed uses the incremental cache; RunOpts does,
// when given a cache directory.
func RunTimed(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, []Timing, error) {
	findings, timings, _, err := RunOpts(dir, patterns, analyzers, Options{})
	return findings, timings, err
}

// RunOpts is the full driver: analyze in dependency order, share facts,
// apply suppression directives, and — when opts.CacheDir is set — replay
// unchanged packages from the incremental cache instead of re-analyzing
// them. A package's key covers its sources, every module-internal package
// it transitively imports, the toolchain version, and the analyzer roster;
// a hit replays the package's findings and re-injects the facts it had
// exported, so downstream packages analyze exactly as they would have on a
// cold run. Cache failures of any kind degrade to analysis, never to
// errors.
func RunOpts(dir string, patterns []string, analyzers []*analysis.Analyzer, opts Options) ([]Finding, []Timing, CacheStats, error) {
	var stats CacheStats
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	metas, closure, err := loader.PackagesInDependencyOrder(patterns...)
	if err != nil {
		return nil, nil, stats, err
	}
	facts := analysis.NewFactStore()
	known := map[string]bool{"directive": true, ErrFlowStrict.Name: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}

	var store *cache.Cache
	var keys map[string]string
	if opts.CacheDir != "" {
		if store, err = cache.Open(opts.CacheDir); err != nil {
			store = nil // degrade to uncached
		} else {
			keys = cacheKeys(closure, analyzers)
		}
	}

	seconds := make(map[string]float64, len(analyzers))
	var findings []Finding
	stats.Packages = len(metas)
	for _, m := range metas {
		key := ""
		if store != nil {
			key = keys[m.Path]
		}
		if key != "" {
			if e, ok := store.Load(key); ok {
				stats.Hits++
				for _, f := range e.Findings {
					findings = append(findings, Finding{
						Analyzer: f.Analyzer,
						Pos: token.Position{
							Filename: f.File, Offset: f.Offset,
							Line: f.Line, Column: f.Column,
						},
						Message: f.Message,
					})
				}
				for _, r := range e.ObjectFacts {
					facts.InjectObjectFact(r.Key, r.Fact)
				}
				for _, f := range e.PackageFacts {
					facts.InjectPackageFact(m.Path, f)
				}
				continue
			}
		}
		pkg, err := loader.LoadDir(m.Dir)
		if err != nil {
			return nil, nil, stats, err
		}
		var pkgFindings []Finding
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				Report: func(diag analysis.Diagnostic) {
					pkgFindings = append(pkgFindings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(diag.Pos),
						Message:  diag.Message,
					})
				},
			}
			start := time.Now()
			err := a.Run(pass)
			seconds[a.Name] += time.Since(start).Seconds()
			if err != nil {
				return nil, nil, stats, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		// Directives suppress findings of their own files only, so applying
		// them per package is equivalent to a whole-run application — and it
		// makes the package's post-suppression findings a cacheable unit.
		directives := collectDirectives(pkg.Fset, pkg.Files)
		pkgFindings = applyDirectives(pkgFindings, directives, known, ran)
		findings = append(findings, pkgFindings...)
		if key != "" {
			e := &cache.Entry{
				ObjectFacts:  facts.ObjectFactsOf(m.Path),
				PackageFacts: facts.PackageFactsOf(m.Path),
			}
			for _, f := range pkgFindings {
				e.Findings = append(e.Findings, cache.Finding{
					Analyzer: f.Analyzer,
					File:     f.Pos.Filename, Offset: f.Pos.Offset,
					Line: f.Pos.Line, Column: f.Pos.Column,
					Message: f.Message,
				})
			}
			// A failed store only forfeits the speedup.
			_ = store.Store(key, e)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Seconds: seconds[a.Name]})
	}
	sort.Slice(timings, func(i, j int) bool {
		if timings[i].Seconds > timings[j].Seconds {
			return true
		}
		if timings[i].Seconds < timings[j].Seconds {
			return false
		}
		return timings[i].Analyzer < timings[j].Analyzer
	})
	return findings, timings, stats, nil
}

// cacheKeys computes every matched package's cache key bottom-up over the
// module-internal import closure. A package whose sources (or any
// transitive internal dependency's sources) cannot be hashed gets no key
// and is analyzed from source.
func cacheKeys(closure map[string]*analysis.PkgMeta, analyzers []*analysis.Analyzer) map[string]string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	salt := cache.Salt(append([]string{cacheSchema, runtime.Version()}, names...)...)

	keys := make(map[string]string, len(closure))
	visiting := make(map[string]bool, len(closure))
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		m, ok := closure[path]
		if !ok || visiting[path] {
			return "" // external (salted by toolchain version) or a cycle
		}
		visiting[path] = true
		defer delete(visiting, path)
		src, err := cache.HashFiles(m.Dir, m.GoFiles)
		if err != nil {
			keys[path] = ""
			return ""
		}
		deps := make(map[string]string)
		for _, imp := range m.Imports {
			if dm, ok := closure[imp]; ok {
				dk := keyOf(dm.Path)
				if dk == "" {
					keys[path] = ""
					return ""
				}
				deps[imp] = dk
			}
		}
		k := cache.Key(salt, path, src, deps)
		keys[path] = k
		return k
	}
	for path := range closure {
		keyOf(path)
	}
	return keys
}
