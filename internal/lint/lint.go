// Package lint is the medalint analyzer suite: domain-specific static
// checks that guard the invariants the synthesis engine's correctness
// argument rests on (Sec. VI-C's SMG→MDP reduction and the concurrent
// synthesis path of Alg. 3). The twelve analyzers are
//
//	floatcmp      — no raw ==/!= on floating-point probabilities, forces or
//	                values outside approved epsilon helpers
//	chipaccess    — background goroutines must not read live chip.Chip
//	                state; they get snapshots (chip.SnapshotForceField)
//	ctxcancel     — synth.Pool submissions must keep the returned
//	                handle/started flag, and Future errors must be checked
//	probliteral   — literal probabilities stay within [0, 1]
//	lockorder     — mutexes in sched/synth are acquired in one global order
//	nilstrategy   — a policy produced by a lookup reporting !ok must not
//	                flow to a use without an ok/nil check on the path
//	errflow       — an error assigned to a variable must be checked before
//	                it is overwritten or the function returns
//	snapshotflow  — live force-field closures derived from a chip.Chip must
//	                not cross into goroutines or pool submissions
//	lockheld      — no potentially blocking call (channel op, Pool/Future
//	                waits, solver entry points) while a mutex is held
//	detpure       — functions declaring //meda:deterministic must not reach
//	                a nondeterminism source, however many call frames down
//	goroutineleak — goroutines must not block forever on channels with no
//	                counterpart operation and no escape hatch
//	chanprotocol  — no double close, no close from the receiving side, no
//	                WaitGroup.Add inside the goroutine it counts
//
// The first five are syntactic, single-pass checks; the next four are
// flow-sensitive: each builds a per-function control-flow graph
// (internal/lint/cfg) and solves a dataflow problem over it
// (internal/lint/dataflow). The last three are interprocedural: they build
// the package call graph (internal/lint/callgraph) and consume bottom-up
// function summaries (internal/lint/summary) that cross package boundaries
// as analysis facts — the driver analyzes packages in dependency order
// sharing one analysis.FactStore, so a send three frames deep in an
// upstream package still registers at the call site downstream.
//
// A finding can be suppressed at the site with a directive comment
//
//	//lint:ignore <analyzer> <reason>
//
// on the finding's line or the line above it. The directive itself is
// checked: an unknown analyzer name, a missing reason, or a directive that
// suppresses nothing is reported under the pseudo-analyzer "directive", so
// stale suppressions rot visibly instead of silently.
//
// Each analyzer follows the go/analysis contract of internal/lint/analysis
// and is exercised by an analysistest golden package under testdata/.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"

	"meda/internal/lint/analysis"
)

// Analyzers returns the full medalint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FloatCmp, ChipAccess, CtxCancel, ProbLiteral, LockOrder,
		NilStrategy, ErrFlow, SnapshotFlow, LockHeld,
		DetPure, GoroutineLeak, ChanProtocol,
	}
}

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding the way compilers do, so editors can jump to
// it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Timing is the wall-clock cost of one analyzer summed over every package
// it ran on.
type Timing struct {
	Analyzer string
	Seconds  float64
}

// ignoreRE matches a suppression directive comment. The analyzer name is
// mandatory; the reason is validated separately so its absence can carry a
// dedicated diagnostic.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)[ \t]*(.*)$`)

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Position
	used     bool
}

// collectDirectives parses the suppression directives of one package.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &directive{
					analyzer: m[1],
					reason:   strings.TrimSpace(m[2]),
					file:     pos.Filename,
					line:     pos.Line,
					pos:      pos,
				})
			}
		}
	}
	return out
}

// suppresses reports whether the directive covers a finding: same analyzer,
// same file, on the directive's line or the one below it (the conventional
// comment-above-the-statement placement).
func (d *directive) suppresses(f Finding) bool {
	return d.analyzer == f.Analyzer && d.file == f.Pos.Filename &&
		(f.Pos.Line == d.line || f.Pos.Line == d.line+1)
}

// applyDirectives filters suppressed findings out and appends "directive"
// findings for suppressions that are malformed (unknown analyzer, missing
// reason) or dead (suppress nothing). known is the full analyzer registry —
// a directive for a registered analyzer that simply isn't part of this run
// (errflowstrict outside -strict) is left alone rather than called unknown,
// and its usedness is only judged when its analyzer actually ran.
func applyDirectives(findings []Finding, directives []*directive, known, ran map[string]bool) []Finding {
	if len(directives) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.suppresses(f) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, d := range directives {
		switch {
		case !known[d.analyzer]:
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", d.analyzer),
			})
		case d.reason == "":
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore %s has no reason: say why the finding is acceptable", d.analyzer),
			})
		case !d.used && ran[d.analyzer]:
			kept = append(kept, Finding{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing: remove the stale directive", d.analyzer),
			})
		}
	}
	return kept
}

// Run loads every package matched by the patterns (relative to a directory
// inside the module) and applies the analyzers, returning all findings
// sorted by position. Packages are analyzed in dependency order (imports
// first) sharing one fact store, so fact-consuming analyzers like lockheld
// and the summary-based interprocedural checks see what upstream passes
// exported. Packages that fail to load abort the run: the suite lints only
// code that compiles.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	findings, _, err := RunTimed(dir, patterns, analyzers)
	return findings, err
}

// RunTimed is Run plus per-analyzer wall-clock timing, sorted by decreasing
// cost.
func RunTimed(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, []Timing, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := loader.DirsInDependencyOrder(patterns...)
	if err != nil {
		return nil, nil, err
	}
	facts := analysis.NewFactStore()
	known := map[string]bool{"directive": true, ErrFlowStrict.Name: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	seconds := make(map[string]float64, len(analyzers))
	var findings []Finding
	var directives []*directive
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, nil, err
		}
		directives = append(directives, collectDirectives(pkg.Fset, pkg.Files)...)
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				Report: func(diag analysis.Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(diag.Pos),
						Message:  diag.Message,
					})
				},
			}
			start := time.Now()
			err := a.Run(pass)
			seconds[a.Name] += time.Since(start).Seconds()
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	findings = applyDirectives(findings, directives, known, ran)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Analyzer: a.Name, Seconds: seconds[a.Name]})
	}
	sort.Slice(timings, func(i, j int) bool {
		if timings[i].Seconds > timings[j].Seconds {
			return true
		}
		if timings[i].Seconds < timings[j].Seconds {
			return false
		}
		return timings[i].Analyzer < timings[j].Analyzer
	})
	return findings, timings, nil
}
