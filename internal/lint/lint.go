// Package lint is the medalint analyzer suite: domain-specific static
// checks that guard the invariants the synthesis engine's correctness
// argument rests on (Sec. VI-C's SMG→MDP reduction and the concurrent
// synthesis path of Alg. 3). The nine analyzers are
//
//	floatcmp     — no raw ==/!= on floating-point probabilities, forces or
//	               values outside approved epsilon helpers
//	chipaccess   — background goroutines must not read live chip.Chip
//	               state; they get snapshots (chip.SnapshotForceField)
//	ctxcancel    — synth.Pool submissions must keep the returned
//	               handle/started flag, and Future errors must be checked
//	probliteral  — literal probabilities stay within [0, 1]
//	lockorder    — mutexes in sched/synth are acquired in one global order
//	nilstrategy  — a policy produced by a lookup reporting !ok must not
//	               flow to a use without an ok/nil check on the path
//	errflow      — an error assigned to a variable must be checked before
//	               it is overwritten or the function returns
//	snapshotflow — live force-field closures derived from a chip.Chip must
//	               not cross into goroutines or pool submissions
//	lockheld     — no potentially blocking call (channel op, Pool/Future
//	               waits, solver entry points) while a mutex is held
//
// The first five are syntactic, single-pass checks; the last four are
// flow-sensitive: each builds a per-function control-flow graph
// (internal/lint/cfg) and solves a dataflow problem over it
// (internal/lint/dataflow). lockheld additionally consumes cross-package
// facts — "may block" markers exported while analyzing upstream packages —
// so the driver analyzes packages in dependency order sharing one
// analysis.FactStore.
//
// Each analyzer follows the go/analysis contract of internal/lint/analysis
// and is exercised by an analysistest golden package under testdata/.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"meda/internal/lint/analysis"
)

// Analyzers returns the full medalint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		FloatCmp, ChipAccess, CtxCancel, ProbLiteral, LockOrder,
		NilStrategy, ErrFlow, SnapshotFlow, LockHeld,
	}
}

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding the way compilers do, so editors can jump to
// it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads every package matched by the patterns (relative to a directory
// inside the module) and applies the analyzers, returning all findings
// sorted by position. Packages are analyzed in dependency order (imports
// first) sharing one fact store, so fact-consuming analyzers like lockheld
// see what upstream passes exported. Packages that fail to load abort the
// run: the suite lints only code that compiles.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.DirsInDependencyOrder(patterns...)
	if err != nil {
		return nil, err
	}
	facts := analysis.NewFactStore()
	var findings []Finding
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			a := a
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     facts,
				Report: func(diag analysis.Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(diag.Pos),
						Message:  diag.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
