package lint

import (
	"go/ast"
	"go/types"

	"meda/internal/lint/analysis"
)

// CtxCancel flags synthesis-pool submissions whose handle or outcome is
// dropped. A discarded *synth.Future means nobody will ever observe the
// synthesis result or its error; a discarded TryGo flag means the caller
// cannot tell a declined speculative job from an accepted one (the sched
// prefetch bookkeeping depends on that flag); and ignoring the error half
// of Future.Wait silently routes a droplet on a zero-value policy. Each is
// a cancellation/err-propagation hole on the concurrent synthesis path.
var CtxCancel = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "flags synth.Pool submissions and Future waits that drop the handle or error",
	Run:  runCtxCancel,
}

func runCtxCancel(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isMethodCall(info, call, synthPkgPath, "Pool", "Submit"):
					pass.Reportf(call.Pos(), "result of synth.Pool.Submit dropped; keep the *Future (or use Go) so the synthesis outcome is observable")
				case isMethodCall(info, call, synthPkgPath, "Pool", "TryGo"):
					pass.Reportf(call.Pos(), "started flag of synth.Pool.TryGo dropped; a declined speculative job would go unnoticed")
				case isMethodCall(info, call, synthPkgPath, "Future", "Wait"):
					pass.Reportf(call.Pos(), "result and error of synth.Future.Wait dropped")
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					switch {
					case isMethodCall(info, call, synthPkgPath, "Pool", "Submit"),
						isMethodCall(info, call, synthPkgPath, "Pool", "TryGo"):
						// Single-result call: with one RHS call per LHS slot
						// (or a 1:1 assign), the matching LHS must be
						// non-blank.
						if lhs := matchingLHS(n, i); lhs != nil && isBlank(lhs) {
							pass.Reportf(call.Pos(), "synth.Pool submission result assigned to _; keep the handle")
						}
					case isMethodCall(info, call, synthPkgPath, "Future", "Wait"):
						// Two-result call: the error is the last LHS.
						if len(n.Rhs) == 1 && len(n.Lhs) == 2 && isBlank(n.Lhs[1]) {
							pass.Reportf(call.Pos(), "error of synth.Future.Wait assigned to _; a failed synthesis would be routed on a zero policy")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// matchingLHS returns the LHS expression receiving the i-th RHS of a 1:1
// assignment, or nil when the shapes don't line up.
func matchingLHS(a *ast.AssignStmt, i int) ast.Expr {
	if len(a.Lhs) == len(a.Rhs) && i < len(a.Lhs) {
		return a.Lhs[i]
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isMethodCall reports whether call invokes pkgPath.recvName.method.
func isMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, recvName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Name() != method {
		return false
	}
	return isNamed(s.Recv(), pkgPath, recvName)
}
