package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"meda/internal/lint/analysis"
	"meda/internal/lint/summary"
)

// DetPure enforces declared determinism contracts interprocedurally. A
// function annotated
//
//	//meda:deterministic
//
// in its doc comment promises that its output depends only on its inputs —
// the property the replay story rests on: fault-injection decisions,
// strategy-cache keys, and trace payloads must be byte-identical across
// replays of the same seed. The analyzer computes bottom-up call-graph
// summaries (internal/lint/summary) and reports every nondeterminism
// source transitively reachable from an annotated function, however many
// call frames down and across package boundaries (summaries propagate as
// analysis Facts): wall-clock reads (time.Now/Since/Until), draws from the
// global math/rand source (seeded *rand.Rand instances stay legal),
// crypto/rand, map iteration order feeding ordered output (a sort call in
// the ranging function neutralizes it), and scheduler-dependent select arm
// choice. Each finding carries the witness call chain, so a `time.Now` two
// frames below a cache-key hash reads as "reaches time.Now via jitter →
// stamp".
var DetPure = &analysis.Analyzer{
	Name: "detpure",
	Doc:  "flags nondeterminism reachable from //meda:deterministic functions",
	Run:  runDetPure,
}

// deterministicDirective is the doc-comment annotation declaring a
// determinism contract.
const deterministicDirective = "//meda:deterministic"

func runDetPure(pass *analysis.Pass) error {
	sums := summary.Compute(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, deterministicDirective) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := sums.Of(pass, fn)
			if sum == nil {
				continue
			}
			for _, src := range sum.Nondet {
				pos := src.Pos
				if !pos.IsValid() {
					pos = fd.Name.Pos()
				}
				pass.Reportf(pos, "%s is marked //meda:deterministic but reaches %s", fn.Name(), src)
			}
		}
	}
	return nil
}

// hasDirective reports whether a comment group contains the directive as a
// whole comment line (directives never carry trailing text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
