package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"meda/internal/lint/analysis"
)

// LockOrder flags inconsistent mutex acquisition order. The analyzer scans
// each function body lexically, tracking which mutexes are held when
// another Lock is issued, and records the resulting "A before B" edges
// package-wide; two functions that acquire the same pair of mutexes in
// opposite orders are a latent deadlock on the concurrent synthesis path
// (sched's Adaptive/Library/Cache mutexes plus synth.Pool's semaphore).
// Mutexes are identified by owning type and field (sched.Adaptive.mu), so
// the order is enforced across methods regardless of receiver names.
// Function literals are separate scopes: a goroutine body does not inherit
// the submitter's held set, matching when it actually runs.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex pairs acquired in opposite orders in different functions",
	Run:  runLockOrder,
}

type lockEdge struct{ first, second string }

func runLockOrder(pass *analysis.Pass) error {
	info := pass.TypesInfo
	edges := make(map[lockEdge]token.Pos) // first observed position per directed pair

	var scanScope func(body ast.Node)
	scanScope = func(body ast.Node) {
		var held []string
		var queue []ast.Node
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != body {
					queue = append(queue, n.Body)
					return false
				}
			case *ast.DeferStmt:
				// defer mu.Unlock() keeps the mutex held for the rest of
				// the (lexical) body; a deferred closure is its own scope.
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					queue = append(queue, lit.Body)
				}
				return false
			case *ast.CallExpr:
				recv, method, ok := mutexCall(info, n)
				if !ok {
					return true
				}
				key := mutexKey(pass, recv)
				switch method {
				case "Lock", "RLock":
					for _, h := range held {
						if h == key {
							continue
						}
						e := lockEdge{h, key}
						if _, seen := edges[e]; !seen {
							edges[e] = n.Pos()
						}
					}
					held = append(held, key)
				case "Unlock", "RUnlock":
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			}
			return true
		})
		for _, b := range queue {
			scanScope(b)
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				scanScope(fd.Body)
			}
		}
	}

	// Report each unordered pair that appears in both directions, at both
	// sites, in deterministic order.
	var conflicts []lockEdge
	for e := range edges {
		if _, rev := edges[lockEdge{e.second, e.first}]; rev && e.first < e.second {
			conflicts = append(conflicts, e)
		}
	}
	sort.Slice(conflicts, func(i, j int) bool {
		return conflicts[i].first+"\x00"+conflicts[i].second < conflicts[j].first+"\x00"+conflicts[j].second
	})
	for _, e := range conflicts {
		rev := lockEdge{e.second, e.first}
		pass.Reportf(edges[e], "%s is locked while holding %s, but %s locks them in the opposite order",
			e.second, e.first, pass.Fset.Position(edges[rev]))
		pass.Reportf(edges[rev], "%s is locked while holding %s, but %s locks them in the opposite order",
			e.first, e.second, pass.Fset.Position(edges[e]))
	}
	return nil
}

// mutexCall decomposes a call into (mutex expression, method name) when it
// is Lock/Unlock/RLock/RUnlock on a sync.Mutex or sync.RWMutex.
func mutexCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	t := info.Types[sel.X].Type
	if !isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex") {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// mutexKey names a mutex so the same lock is recognized across functions:
// struct fields are keyed by owning type ("sched.Adaptive.mu"),
// package-level vars by package, and locals by their declaration site.
func mutexKey(pass *analysis.Pass, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		t := pass.TypesInfo.Types[e.X].Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil {
				return fmt.Sprintf("%s.%s.%s", obj.Pkg().Name(), obj.Name(), e.Sel.Name)
			}
			return obj.Name() + "." + e.Sel.Name
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + e.Name
			}
			return fmt.Sprintf("%s@%s", e.Name, pass.Fset.Position(obj.Pos()))
		}
	}
	return types.ExprString(expr)
}
