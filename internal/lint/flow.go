package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
)

// funcBody is one analysis scope for the flow-sensitive analyzers: a
// function declaration's body or a function literal's body. Closures never
// share a CFG with their enclosing function (they run at call time, often
// on another goroutine), so each body is solved independently.
type funcBody struct {
	Body *ast.BlockStmt
	// Decl is the enclosing declaration when the body belongs to one
	// directly (nil for function literals).
	Decl *ast.FuncDecl
	// Type is the literal's type when the body belongs to a FuncLit.
	Type *ast.FuncType
}

// FuncType returns the signature AST of the scope, from whichever of
// Decl/Type is set.
func (fb funcBody) FuncType() *ast.FuncType {
	if fb.Decl != nil {
		return fb.Decl.Type
	}
	return fb.Type
}

// funcBodies collects every function body in the package — declarations and
// literals, however deeply nested — each as its own scope.
func funcBodies(pass *analysis.Pass) []funcBody {
	var out []funcBody
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, funcBody{Body: n.Body, Decl: n})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{Body: n.Body, Type: n.Type})
			}
			return true
		})
	}
	return out
}

// escapedVars returns the local variables of body that a flow-sensitive,
// single-scope analysis cannot track soundly: variables referenced inside
// nested function literals (the closure may read or write them at any
// time) and variables whose address is taken.
func escapedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	escaped := make(map[*types.Var]bool)
	var scan func(n ast.Node, inLit bool)
	scan = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if m.Body != nil {
					scan(m.Body, true)
				}
				return false
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if id, ok := m.X.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							escaped[v] = true
						}
					}
				}
			case *ast.Ident:
				if !inLit {
					return true
				}
				if v, ok := info.Uses[m].(*types.Var); ok {
					escaped[v] = true
				}
				if v, ok := info.Defs[m].(*types.Var); ok {
					escaped[v] = true
				}
			}
			return true
		})
	}
	scan(body, false)
	return escaped
}

// visitShallow walks the go/ast content of one CFG block node, unwrapping
// cfg markers and pruning nested function literals, which are separate
// analysis scopes.
func visitShallow(n ast.Node, f func(ast.Node) bool) {
	cfg.Visit(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}

// localVar resolves an identifier to the local variable it reads or
// writes, or nil.
func localVar(info *types.Info, e ast.Expr) *types.Var {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[ident]
	if obj == nil {
		obj = info.Defs[ident]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Name() == "_" || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // blank, package-level, or not a variable
	}
	return v
}

// namedResultVars returns the named result variables of a signature AST,
// resolved through the type info. Analyses exclude these: assigning one is
// how a function returns it.
func namedResultVars(info *types.Info, ft *ast.FuncType) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if ft == nil || ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out
}
