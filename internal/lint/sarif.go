package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"meda/internal/lint/analysis"
)

// SARIF emission: the minimal SARIF 2.1.0 subset GitHub code scanning
// ingests — one run, one rule per analyzer, one result per finding with a
// physical location. Paths are emitted relative to the module root with
// forward slashes, as the spec requires for artifactLocation URIs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. base is the
// directory file paths are made relative to (the module root); paths
// outside it keep their absolute form.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*analysis.Analyzer, base string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: firstDocLine(a.Doc)}})
	}
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed or stale //lint:ignore suppression directive"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(base, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "medalint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func firstDocLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
