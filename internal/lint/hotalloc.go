package lint

import (
	"go/ast"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/summary"
)

// HotAlloc enforces declared allocation budgets interprocedurally. A
// function annotated
//
//	//meda:hotpath
//
// in its doc comment promises that calling it incurs no hidden heap cost —
// the discipline behind the MDP builder's slab reuse and the solver sweeps'
// zero-alloc inner loops: one stray make, interface boxing, closure, defer,
// or map iteration re-inflates an 8 allocs/op path back to thousands long
// before the bench gate notices. The analyzer computes bottom-up
// allocation summaries (summary.ComputeAllocs) over the package call graph
// and reports every allocation source transitively reachable from an
// annotated function, with the witness call chain, across package
// boundaries through analysis Facts.
//
// The approved amortized-growth pattern — `s = append(s, x)` assigning back
// to the appended slice (including field slabs like b.tos) — is not
// flagged: its amortized cost is the budget the contract grants. Constant
// operands of interface conversions (panic("message")) are exempt too: the
// compiler materializes them statically.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags heap allocations reachable from //meda:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathDirective is the doc-comment annotation declaring an allocation
// budget contract.
const hotpathDirective = "//meda:hotpath"

func runHotAlloc(pass *analysis.Pass) error {
	sums := summary.ComputeAllocs(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := sums.Of(pass, fn)
			if sum == nil {
				continue
			}
			for _, src := range sum.Allocs {
				pos := src.Pos
				if !pos.IsValid() {
					pos = fd.Name.Pos()
				}
				pass.Reportf(pos, "%s is marked //meda:hotpath but reaches %s", fn.Name(), src)
			}
		}
	}
	return nil
}
