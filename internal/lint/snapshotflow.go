package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// SnapshotFlow flags live chip-derived force fields crossing a goroutine
// boundary. chipaccess catches direct chip.Chip selectors inside goroutine
// bodies, but a closure over the live chip escapes that check the moment
// it is bound to a variable first:
//
//	field := c.ObservedForceField() // closes over the live chip
//	pool.Submit(rj, field, opt)     // background worker now races
//
// The analyzer runs a forward taint analysis per function: a variable is
// tainted when it receives a func-typed value produced from a chip.Chip —
// a method call result other than SnapshotForceField (whose whole point is
// the defensive copy), or a method value like c.ObservedForceField, which
// closes over the chip even unbound — and taint propagates through
// assignments. Sinks are go statements and synth.Pool submissions (Go,
// TryGo, Submit): a tainted variable referenced in the submitted function
// or argument list, or a live-producing chip expression appearing inline
// there, is reported. Reassigning a variable from a snapshot (or any
// untainted value) clears it, so the analysis follows the actual flow
// rather than the variable's worst historical value.
var SnapshotFlow = &analysis.Analyzer{
	Name: "snapshotflow",
	Doc:  "flags live chip force fields captured by background goroutines",
	Run:  runSnapshotFlow,
}

type taintFact = dataflow.VarSet[*types.Var, token.Pos]

func runSnapshotFlow(pass *analysis.Pass) error {
	for _, fb := range funcBodies(pass) {
		runSnapshotFlowBody(pass, fb)
	}
	return nil
}

func runSnapshotFlowBody(pass *analysis.Pass, fb funcBody) {
	info := pass.TypesInfo
	g := cfg.New(fb.Body)
	lat := dataflow.VarSetLattice[*types.Var, token.Pos]{}

	step := func(fact taintFact, n ast.Node, report bool) taintFact {
		if report {
			checkSinks(pass, fact, n)
		}
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				v := localVar(info, lhs)
				if v == nil {
					continue
				}
				switch {
				case liveChipValue(info, as.Rhs[i]):
					fact = fact.With(v, as.Rhs[i].Pos())
				case taintedRead(info, fact, as.Rhs[i]):
					fact = fact.With(v, fact[localVar(info, ast.Unparen(as.Rhs[i]))])
				default:
					fact = fact.Without(v)
				}
			}
		}
		return fact
	}

	transfer := func(b *cfg.Block, in taintFact) taintFact {
		for _, n := range b.Nodes {
			in = step(in, n, false)
		}
		return in
	}

	res := dataflow.Forward[taintFact](g, lat, nil, transfer, nil)
	for _, b := range g.Blocks {
		fact := res.In[b]
		for _, n := range b.Nodes {
			fact = step(fact, n, true)
		}
	}
}

// checkSinks reports tainted values escaping into asynchronous execution
// within node n: go statements and synth.Pool submissions.
func checkSinks(pass *analysis.Pass, fact taintFact, n ast.Node) {
	info := pass.TypesInfo
	scan := func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.Ident:
				v, _ := info.Uses[m].(*types.Var)
				if v == nil {
					return true
				}
				if pos, tainted := fact[v]; tainted {
					pass.Reportf(m.Pos(), "%s holds a live chip force field (built at %s) and crosses a goroutine boundary; snapshot it with SnapshotForceField on the submitting goroutine",
						m.Name, pass.Fset.Position(pos))
				}
			case *ast.CallExpr:
				if liveChipValue(info, m) {
					pass.Reportf(m.Pos(), "live chip force field passed across a goroutine boundary; snapshot it with SnapshotForceField on the submitting goroutine")
					return false
				}
			}
			return true
		})
	}
	cfg.Visit(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			scan(m.Call)
			return false
		case *ast.CallExpr:
			if isPoolSubmission(info, m) || isPoolSubmit(info, m) {
				for _, arg := range m.Args {
					scan(arg)
				}
				return false
			}
		}
		return true
	})
}

// liveChipValue reports whether e produces a func-typed value that closes
// over live chip.Chip state: a method call on a chip other than
// SnapshotForceField returning a function, or a chip method value (bound
// but uncalled — even SnapshotForceField itself, which only copies once
// actually invoked on the submitting goroutine).
func liveChipValue(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || !isChipType(info.Types[sel.X].Type) {
			return false
		}
		if sel.Sel.Name == "SnapshotForceField" {
			return false
		}
		return isFuncType(info.Types[e].Type)
	case *ast.SelectorExpr:
		if !isChipType(info.Types[e.X].Type) {
			return false
		}
		return isFuncType(info.Types[e].Type)
	}
	return false
}

// taintedRead reports whether e is a plain read of a tainted variable.
func taintedRead(info *types.Info, fact taintFact, e ast.Expr) bool {
	v := localVar(info, ast.Unparen(e))
	if v == nil {
		return false
	}
	_, tainted := fact[v]
	return tainted
}

func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// isPoolSubmit reports whether call is synth.Pool.Submit (job plus
// arguments; the submitted field runs on a worker goroutine).
func isPoolSubmit(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Name() != "Submit" {
		return false
	}
	return isNamed(s.Recv(), synthPkgPath, "Pool")
}
