package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// ErrFlow flags error values that are assigned but never consumed: an
// error variable overwritten by a later assignment before any read, or
// still unread on a path that leaves the function. This is the
// flow-sensitive upgrade of ctxcancel's Future-error rule: where ctxcancel
// checks single expressions, errflow follows each error variable through
// the function's CFG, so `err = f(); err = g()` is caught even across
// branches, while `err = f(); if cond { return err }; use(err)` is not.
//
// Any read counts as consumption — a comparison, a return, passing the
// error onward, wrapping it — because the analyzer enforces that errors
// cannot be silently dropped, not how they are handled. Variables captured
// by closures or whose address is taken are excluded (the closure may
// consume them at any time), as are named result variables (assigning one
// is how a function returns it).
var ErrFlow = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "flags error values overwritten or dropped before any read",
	Run:  runErrFlow,
}

type errFact = dataflow.VarSet[*types.Var, token.Pos]

func runErrFlow(pass *analysis.Pass) error {
	for _, fb := range funcBodies(pass) {
		runErrFlowBody(pass, fb)
	}
	return nil
}

func runErrFlowBody(pass *analysis.Pass, fb funcBody) {
	info := pass.TypesInfo
	escaped := escapedVars(info, fb.Body)
	named := namedResultVars(info, fb.FuncType())
	g := cfg.New(fb.Body)
	lat := dataflow.VarSetLattice[*types.Var, token.Pos]{}

	trackable := func(v *types.Var) bool {
		return v != nil && !escaped[v] && !named[v] && isErrorType(v.Type())
	}

	step := func(fact errFact, n ast.Node, report bool) errFact {
		// Reads consume pending errors; RHS reads precede LHS writes.
		visitShallow(n, func(m ast.Node) bool {
			ident, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := info.Uses[ident].(*types.Var)
			if v == nil || isWriteTarget(n, ident) {
				return true
			}
			if _, pending := fact[v]; pending {
				fact = fact.Without(v)
			}
			return true
		})
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				v := localVar(info, lhs)
				if !trackable(v) {
					continue
				}
				if pos, pending := fact[v]; pending {
					if report {
						pass.Reportf(lhs.Pos(), "%s is overwritten before the error assigned at %s is checked",
							v.Name(), pass.Fset.Position(pos))
					}
					fact = fact.Without(v)
				}
				if errProducingRHS(n, i) {
					fact = fact.With(v, n.Pos())
				}
			}
		case *ast.DeclStmt:
			// var err error = f() — same contract as := assignments.
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				break
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					v, _ := info.Defs[name].(*types.Var)
					if !trackable(v) {
						continue
					}
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else {
						rhs = vs.Values[0] // tuple form
					}
					if derivesFromCall(rhs) {
						fact = fact.With(v, name.Pos())
					}
				}
			}
		}
		return fact
	}

	transfer := func(b *cfg.Block, in errFact) errFact {
		for _, n := range b.Nodes {
			in = step(in, n, false)
		}
		return in
	}

	res := dataflow.Forward[errFact](g, lat, nil, transfer, nil)
	for _, b := range g.Blocks {
		fact := res.In[b]
		for _, n := range b.Nodes {
			fact = step(fact, n, true)
		}
	}
	// Errors still pending where control leaves the function were dropped
	// on at least one path.
	for v, pos := range res.In[g.Exit] {
		pass.Reportf(pos, "error assigned to %s is not checked before the function returns on some path", v.Name())
	}
}

// errProducingRHS reports whether the i-th assignment target receives a
// freshly produced error — the result of a call (including a multi-result
// call assigned as a tuple) or a type assertion. Copies of other
// variables and nil stores do not start tracking.
func errProducingRHS(as *ast.AssignStmt, i int) bool {
	var rhs ast.Expr
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	} else if len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	} else {
		return false
	}
	return derivesFromCall(rhs)
}

func derivesFromCall(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.CallExpr, *ast.TypeAssertExpr:
		return true
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
