package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"meda/internal/lint/analysis"
	"meda/internal/lint/cfg"
	"meda/internal/lint/dataflow"
)

// LockHeld flags potentially blocking operations performed while a mutex
// is held. On the concurrent synthesis path a goroutine that blocks on a
// channel or waits for the worker pool while holding one of the sched
// mutexes stalls every routing decision behind it — and, combined with a
// worker that needs the same mutex, deadlocks the scheduler. The analyzer
// runs in two layers:
//
// First, a package-local fixpoint infers which functions may block: a
// function blocks if its body (function literals, go statements, and
// defers excluded — they run elsewhere or at return) contains a channel
// send or receive, a select without a default clause, a call to a known
// blocking primitive (sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep),
// or a call to another may-block function. The results are exported as
// MayBlock facts, so when the driver analyzes packages in dependency
// order, downstream passes see that e.g. synth.Future.Wait and the mdp
// solver entry points may block without any hard-coded list.
//
// Second, a forward dataflow pass per function tracks the set of held
// mutexes (Lock adds, Unlock removes; a deferred Unlock keeps the mutex
// held to function end by design) and reports any may-block operation
// reached while the set is non-empty. Select statements with a default
// clause are non-blocking, as are the communication operations in select
// clause headers — the cfg package's Select/Comm markers carry exactly
// this distinction.
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flags potentially blocking operations while a mutex is held",
	Run:  runLockHeld,
}

// MayBlock is the fact lockheld exports for every package-level function
// or method that may block its calling goroutine.
type MayBlock struct {
	// Reason names the blocking operation the function bottoms out in.
	Reason string
}

// AFact marks MayBlock as an analysis fact.
func (*MayBlock) AFact() {}

// seededBlocking are the blocking primitives the inference bottoms out in,
// keyed by analysis.ObjectKey form.
var seededBlocking = map[string]string{
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
	"time.Sleep":          "time.Sleep",
}

func runLockHeld(pass *analysis.Pass) error {
	local := inferMayBlock(pass)
	for fn, reason := range local {
		pass.ExportObjectFact(fn, &MayBlock{Reason: reason})
	}
	for _, fb := range funcBodies(pass) {
		runLockHeldBody(pass, fb, local)
	}
	return nil
}

// inferMayBlock computes the package-local may-block set: a fixpoint over
// the package's call graph seeded with directly blocking bodies.
func inferMayBlock(pass *analysis.Pass) map[*types.Func]string {
	info := pass.TypesInfo
	type declInfo struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []declInfo
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declInfo{fn: fn, body: fd.Body})
		}
	}
	blocking := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if _, done := blocking[d.fn]; done {
				continue
			}
			if reason, ok := bodyMayBlock(pass, d.body, blocking); ok {
				blocking[d.fn] = reason
				changed = true
			}
		}
	}
	return blocking
}

// bodyMayBlock scans one function body for a blocking operation on the
// calling goroutine, treating function literals, go statements, and defers
// as opaque (their bodies run elsewhere or at return, after the scan's
// question — "can a call into this function block?" — is already
// answered).
func bodyMayBlock(pass *analysis.Pass, body *ast.BlockStmt, local map[*types.Func]string) (string, bool) {
	var reason string
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if reason != "" {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.SendStmt:
				reason = "channel send"
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					reason = "channel receive"
					return false
				}
			case *ast.RangeStmt:
				if isChannelType(pass.TypesInfo.Types[m.X].Type) {
					reason = "range over channel"
					return false
				}
			case *ast.SelectStmt:
				if !selectHasDefault(m) {
					reason = "select without default"
					return false
				}
				// A select with a default never blocks; its clause headers'
				// channel operations execute only once chosen.
				for _, st := range m.Body.List {
					if c, ok := st.(*ast.CommClause); ok {
						for _, bst := range c.Body {
							scan(bst)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if r, ok := callMayBlock(pass, m, local); ok {
					reason = r
					return false
				}
			}
			return true
		})
	}
	scan(body)
	return reason, reason != ""
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, st := range s.Body.List {
		if c, ok := st.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// callMayBlock resolves a call's static callee and reports whether it may
// block: a seeded primitive, a package-local may-block function, or a
// function another package's pass exported a MayBlock fact about. Calls
// that cannot be resolved statically (interface methods, function values)
// are assumed non-blocking to keep the analyzer quiet on dynamic code.
func callMayBlock(pass *analysis.Pass, call *ast.CallExpr, local map[*types.Func]string) (string, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	key, ok := analysis.ObjectKey(fn)
	if !ok {
		return "", false
	}
	if prim, ok := seededBlocking[key]; ok {
		return prim, true
	}
	if reason, ok := local[fn]; ok {
		return fmt.Sprintf("%s (may block: %s)", key, reason), true
	}
	var fact MayBlock
	if pass.ImportObjectFact(fn, &fact) {
		return fmt.Sprintf("%s (may block: %s)", key, fact.Reason), true
	}
	return "", false
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isChannelType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

type heldFact = dataflow.VarSet[string, token.Pos]

// runLockHeldBody solves the held-mutex problem over one function body and
// reports blocking operations reached with a non-empty held set.
func runLockHeldBody(pass *analysis.Pass, fb funcBody, local map[*types.Func]string) {
	info := pass.TypesInfo
	g := cfg.New(fb.Body)
	lat := dataflow.VarSetLattice[string, token.Pos]{}

	step := func(fact heldFact, n ast.Node, report bool) heldFact {
		if report && len(fact) > 0 {
			if reason, pos, ok := nodeMayBlock(pass, n, local); ok {
				pass.Reportf(pos, "potentially blocking operation (%s) while holding %s",
					reason, describeHeld(pass, fact))
			}
		}
		// Lock-set updates after the block check: mu.Lock() itself may wait,
		// but that contention is lockorder's concern, not a blocking call
		// under this mutex.
		visitShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				// A deferred Unlock releases at return: the mutex stays held
				// for the rest of the body. Goroutine bodies are separate
				// scopes.
				return false
			case *ast.CallExpr:
				recv, method, ok := mutexCall(info, m)
				if !ok {
					return true
				}
				key := mutexKey(pass, recv)
				switch method {
				case "Lock", "RLock":
					fact = fact.With(key, m.Pos())
				case "Unlock", "RUnlock":
					fact = fact.Without(key)
				}
			}
			return true
		})
		return fact
	}

	transfer := func(b *cfg.Block, in heldFact) heldFact {
		for _, n := range b.Nodes {
			in = step(in, n, false)
		}
		return in
	}

	res := dataflow.Forward[heldFact](g, lat, nil, transfer, nil)
	for _, b := range g.Blocks {
		fact := res.In[b]
		for _, n := range b.Nodes {
			fact = step(fact, n, true)
		}
	}
}

// nodeMayBlock reports the first blocking operation within one CFG node,
// skipping scopes that do not run here (function literals, go statements,
// defers) and honoring the cfg markers: a Select marker blocks only
// without a default clause, and a Comm node's channel operation is decided
// by its select, not blocking where it appears.
func nodeMayBlock(pass *analysis.Pass, n ast.Node, local map[*types.Func]string) (string, token.Pos, bool) {
	if sel, ok := n.(*cfg.Select); ok {
		if sel.Blocking {
			return "select without default", sel.Pos(), true
		}
		return "", token.NoPos, false
	}
	if _, ok := n.(*cfg.Comm); ok {
		return "", token.NoPos, false
	}
	var reason string
	var pos token.Pos
	visitShallow(n, func(m ast.Node) bool {
		if reason != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			reason, pos = "channel send", m.Arrow
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				reason, pos = "channel receive", m.OpPos
				return false
			}
		case *ast.CallExpr:
			if r, ok := callMayBlock(pass, m, local); ok {
				reason, pos = "call to "+r, m.Pos()
				return false
			}
		}
		return true
	})
	return reason, pos, reason != ""
}

// describeHeld renders the held mutex set deterministically, each with its
// lock site.
func describeHeld(pass *analysis.Pass, fact heldFact) string {
	keys := make([]string, 0, len(fact))
	for k := range fact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s (locked at %s)", k, pass.Fset.Position(fact[k]))
	}
	return out
}
