package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"meda/internal/lint/analysis"
	"meda/internal/lint/summary"
)

// GoroutineLeak flags goroutines that can block forever on a channel
// operation with no matching counterpart and no escape hatch — the
// whole-program upgrade of lockheld's MayBlock reasoning. A goroutine
// launched with `go` that sends on an unbuffered channel nobody ever
// receives from (or receives from a channel nothing sends to or closes)
// parks permanently: under fleet load, every leaked prefetch or shutdown
// goroutine is memory and a semaphore slot that never comes back.
//
// The analyzer reasons per enclosing function over the channels it creates
// itself (`ch := make(chan T)`): for every `go` statement, it collects the
// channel operations the goroutine performs — directly, or any number of
// call frames down through the interprocedural summaries (a helper that
// does `ch <- v` three frames deep still counts, across package boundaries
// via Facts) — and requires a counterpart somewhere else in the enclosing
// function: a receive (or range) for a send, a send or close for a
// receive. Reports land on the `go` statement.
//
// The analysis stays quiet in exactly the situations it cannot see:
// channels that escape the enclosing function (stored, returned, captured
// beyond the goroutine, or passed to a callee whose summary marks the
// parameter escaping) are skipped, sends on buffered channels are exempt
// (the buffer absorbs them), and an operation wrapped in a select with a
// default clause or with multiple arms (a done/ctx.Done escape hatch) is
// considered guarded.
var GoroutineLeak = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "flags goroutines blocked forever on channels with no counterpart operation",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *analysis.Pass) error {
	sums := summary.Compute(pass)
	for _, fb := range funcBodies(pass) {
		runGoroutineLeakBody(pass, sums, fb)
	}
	return nil
}

// chanOps records what one zone (a particular goroutine, or the rest of
// the function) does to one channel.
type chanOps struct {
	send, recv, close bool
	// guarded is set when every goroutine-side operation sits inside a
	// select with a default or with multiple arms.
	guarded bool
	pos     token.Pos
}

// localChan describes a channel created by the enclosing function.
type localChan struct {
	buffered bool
	escaped  bool
}

func runGoroutineLeakBody(pass *analysis.Pass, sums summary.Summaries, fb funcBody) {
	chans := collectLocalChans(pass, sums, fb.Body)
	if len(chans) == 0 {
		return
	}

	// Zone -1 is "the enclosing function outside the goroutine under
	// consideration". For each go statement we gather the goroutine's ops
	// and everything else's ops, then compare.
	var goStmts []*ast.GoStmt
	ast.Inspect(fb.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}

	for _, g := range goStmts {
		inside := make(map[*types.Var]*chanOps)
		outside := make(map[*types.Var]*chanOps)
		collectOps(pass, sums, g, chans, inside)
		collectOpsOutside(pass, sums, fb.Body, g, chans, outside)
		for v, ops := range inside {
			ch := chans[v]
			if ch == nil || ch.escaped || ops.guarded {
				continue
			}
			out := outside[v]
			if ops.send && !ch.buffered && (out == nil || !out.recv) {
				pass.Reportf(g.Go, "goroutine sends on %s but the enclosing function never receives from it: goroutine may leak", v.Name())
				continue
			}
			if ops.recv && !ops.send && (out == nil || (!out.send && !out.close)) && !ops.close {
				pass.Reportf(g.Go, "goroutine receives on %s but nothing sends on or closes it: goroutine may leak", v.Name())
			}
		}
	}
}

// collectLocalChans finds the channels the body makes itself and decides
// whether they escape the function's view: address taken, returned, stored
// into a non-local, sent as a value, or passed to a call whose summary the
// analysis cannot resolve (or that marks the parameter escaping).
func collectLocalChans(pass *analysis.Pass, sums summary.Summaries, body *ast.BlockStmt) map[*types.Var]*localChan {
	info := pass.TypesInfo
	chans := make(map[*types.Var]*localChan)

	// Pass 1: find `ch := make(chan T[, n])` definitions.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			v := localVar(info, lhs)
			if v == nil || !isChannelType(v.Type()) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			lc := &localChan{}
			if len(call.Args) >= 2 {
				tv := info.Types[call.Args[1]]
				// A non-constant or nonzero capacity counts as buffered
				// (conservative: buffered sends are exempt).
				if tv.Value == nil || tv.Value.String() != "0" {
					lc.buffered = true
				}
			}
			if prev, redefined := chans[v]; redefined {
				// Re-made channels (loops) keep the weaker assumption.
				prev.buffered = prev.buffered || lc.buffered
				continue
			}
			chans[v] = lc
		}
		return true
	})
	if len(chans) == 0 {
		return chans
	}

	// Pass 2: escape analysis over the whole body, nested literals
	// included.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lc := chans[localVar(info, n.X)]; lc != nil {
					lc.escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if lc := chans[localVar(info, r)]; lc != nil {
					lc.escaped = true
				}
			}
		case *ast.SendStmt:
			if lc := chans[localVar(info, n.Value)]; lc != nil {
				lc.escaped = true // the channel itself travels through another channel
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lc := chans[localVar(info, rhs)]
				if lc == nil {
					continue
				}
				if i >= len(n.Lhs) || localVar(info, n.Lhs[i]) == nil {
					lc.escaped = true // stored into a field, index, global, or alias we don't track
				} else if localVar(info, n.Lhs[i]) != localVar(info, rhs) {
					lc.escaped = true // aliased to another local
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if lc := chans[localVar(info, e)]; lc != nil {
					lc.escaped = true
				}
			}
		case *ast.CallExpr:
			// Builtins (close, len, cap) never capture. Calls with a known
			// summary keep tracking unless the parameter escapes there;
			// everything else loses the channel.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					return true
				}
			}
			for ai, arg := range n.Args {
				v := localVar(info, arg)
				lc := chans[v]
				if lc == nil {
					continue
				}
				ops, known := calleeParamOps(pass, sums, n, ai)
				if !known || ops.Has(summary.OpEscape) {
					lc.escaped = true
				}
			}
		}
		return true
	})
	return chans
}

// calleeParamOps resolves the summary ParamOps a call applies to its ai-th
// argument, reporting whether the callee was resolvable at all.
func calleeParamOps(pass *analysis.Pass, sums summary.Summaries, call *ast.CallExpr, ai int) (summary.ParamOps, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return 0, false
	}
	sum := sums.Of(pass, fn)
	if sum == nil {
		return 0, false
	}
	if ai >= len(sum.Params) {
		if len(sum.Params) == 0 {
			return 0, true
		}
		ai = len(sum.Params) - 1 // variadic tail
	}
	return sum.Params[ai], true
}

// collectOps gathers the channel operations performed inside one go
// statement — directly or through summarized calls.
func collectOps(pass *analysis.Pass, sums summary.Summaries, g *ast.GoStmt, chans map[*types.Var]*localChan, out map[*types.Var]*chanOps) {
	collectOpsIn(pass, sums, g.Call, chans, out, 0)
	// `go fn(ch)`: the call's argument ops come from the callee summary,
	// already handled by collectOpsIn's call case. `go func(){...}()`:
	// the literal body is part of g.Call.Fun and walked the same way.
}

// collectOpsOutside gathers ops over the body excluding the given go
// statement (other goroutines included: a consumer launched elsewhere is a
// legitimate counterpart).
func collectOpsOutside(pass *analysis.Pass, sums summary.Summaries, body *ast.BlockStmt, skip *ast.GoStmt, chans map[*types.Var]*localChan, out map[*types.Var]*chanOps) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			// Walk other goroutines' contents as counterparts.
			return true
		}
		recordOp(pass, sums, n, chans, out, 0)
		return true
	})
}

// collectOpsIn walks one subtree recording ops, tracking select guarding
// depth: selectDepth > 0 means the op sits under a select with an escape
// hatch.
func collectOpsIn(pass *analysis.Pass, sums summary.Summaries, root ast.Node, chans map[*types.Var]*localChan, out map[*types.Var]*chanOps, selectDepth int) {
	ast.Inspect(root, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			hatch := selectHasDefault(sel)
			comms := 0
			for _, st := range sel.Body.List {
				if c, ok := st.(*ast.CommClause); ok && c.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				hatch = true
			}
			depth := selectDepth
			if hatch {
				depth++
			}
			for _, st := range sel.Body.List {
				collectOpsIn(pass, sums, st, chans, out, depth)
			}
			return false
		}
		recordOp(pass, sums, n, chans, out, selectDepth)
		return true
	})
}

// recordOp records a single node's channel operation, if any.
func recordOp(pass *analysis.Pass, sums summary.Summaries, n ast.Node, chans map[*types.Var]*localChan, out map[*types.Var]*chanOps, selectDepth int) {
	info := pass.TypesInfo
	get := func(v *types.Var) *chanOps {
		if v == nil || chans[v] == nil {
			return nil
		}
		ops := out[v]
		if ops == nil {
			ops = &chanOps{guarded: true}
			out[v] = ops
		}
		return ops
	}
	mark := func(v *types.Var, pos token.Pos, f func(*chanOps)) {
		ops := get(v)
		if ops == nil {
			return
		}
		f(ops)
		ops.pos = pos
		if selectDepth == 0 {
			ops.guarded = false
		}
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		mark(localVar(info, n.Chan), n.Arrow, func(o *chanOps) { o.send = true })
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			mark(localVar(info, n.X), n.OpPos, func(o *chanOps) { o.recv = true })
		}
	case *ast.RangeStmt:
		if isChannelType(info.Types[n.X].Type) {
			mark(localVar(info, n.X), n.Range, func(o *chanOps) { o.recv = true })
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "close" && len(n.Args) == 1 {
					mark(localVar(info, n.Args[0]), n.Pos(), func(o *chanOps) { o.close = true })
				}
				return
			}
		}
		for ai, arg := range n.Args {
			v := localVar(info, arg)
			if v == nil || chans[v] == nil {
				continue
			}
			ops, known := calleeParamOps(pass, sums, n, ai)
			if !known {
				continue // escape analysis already dropped the channel
			}
			mark(v, n.Pos(), func(o *chanOps) {
				o.send = o.send || ops.Has(summary.OpSend)
				o.recv = o.recv || ops.Has(summary.OpRecv)
				o.close = o.close || ops.Has(summary.OpClose)
			})
		}
	}
}
