package callgraph_test

import (
	"go/types"
	"path/filepath"
	"testing"

	"meda/internal/lint/analysis"
	"meda/internal/lint/callgraph"
)

func load(t *testing.T) (*analysis.Package, *callgraph.Graph) {
	t.Helper()
	dir := filepath.Join("testdata", "graph")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkg, callgraph.Build(pkg.Types, pkg.Info, pkg.Files)
}

func fnByName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

func TestStaticCalls(t *testing.T) {
	_, g := load(t)
	caller := fnByName(t, g, "Caller")
	if len(caller.Calls) != 2 {
		t.Fatalf("Caller has %d calls, want 2", len(caller.Calls))
	}
	for _, c := range caller.Calls {
		if c.Kind != callgraph.Static {
			t.Errorf("Caller call kind = %v, want static", c.Kind)
		}
		if len(c.Targets) != 1 || c.Targets[0].Name() != "Leaf" {
			t.Errorf("Caller call targets = %v, want [Leaf]", c.Targets)
		}
	}
	if leaf := fnByName(t, g, "Leaf"); len(leaf.Calls) != 0 {
		t.Errorf("Leaf has %d calls, want 0", len(leaf.Calls))
	}
}

func TestInterfaceDispatchCHA(t *testing.T) {
	_, g := load(t)
	measure := fnByName(t, g, "Measure")
	if len(measure.Calls) != 1 {
		t.Fatalf("Measure has %d calls, want 1", len(measure.Calls))
	}
	c := measure.Calls[0]
	if c.Kind != callgraph.Interface {
		t.Fatalf("Measure call kind = %v, want interface", c.Kind)
	}
	got := map[string]bool{}
	for _, tgt := range c.Targets {
		sig := tgt.Type().(*types.Signature)
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		got[recv.(*types.Named).Obj().Name()] = true
	}
	if !got["Square"] || !got["Circle"] {
		t.Errorf("CHA targets miss a receiver: got %v, want Square and Circle", got)
	}
}

func TestDynamicCall(t *testing.T) {
	_, g := load(t)
	dyn := fnByName(t, g, "Dynamic")
	if len(dyn.Calls) != 1 {
		t.Fatalf("Dynamic has %d calls, want 1", len(dyn.Calls))
	}
	if c := dyn.Calls[0]; c.Kind != callgraph.Dynamic || len(c.Targets) != 0 {
		t.Errorf("Dynamic call = kind %v targets %v, want dynamic with no targets", c.Kind, c.Targets)
	}
}

func TestCallContexts(t *testing.T) {
	_, g := load(t)
	ctx := fnByName(t, g, "Contexts")
	// Calls in body order: Leaf(), defer Leaf(), go Leaf(), func(){Leaf()},
	// f(). The literal's inner call and the go call are async; the deferred
	// call is deferred; the dynamic f() is neither.
	var plain, deferred, async int
	for _, c := range ctx.Calls {
		switch {
		case c.Deferred:
			deferred++
		case c.Async:
			async++
		default:
			plain++
		}
	}
	if plain != 2 || deferred != 1 || async != 2 {
		t.Errorf("Contexts calls: plain=%d deferred=%d async=%d, want 2/1/2", plain, deferred, async)
	}
}

func TestExternalCallHasTargetWithoutNode(t *testing.T) {
	_, g := load(t)
	ext := fnByName(t, g, "External")
	if len(ext.Calls) != 1 {
		t.Fatalf("External has %d calls, want 1", len(ext.Calls))
	}
	c := ext.Calls[0]
	if c.Kind != callgraph.Static || len(c.Targets) != 1 {
		t.Fatalf("External call = kind %v targets %v, want one static target", c.Kind, c.Targets)
	}
	if g.Node(c.Targets[0]) != nil {
		t.Errorf("io.WriteString has a node in the package graph; external callees must not")
	}
}

// TestSCCsBottomUp: direct recursion and mutual recursion each condense to
// one component, and every component appears after the components it calls.
func TestSCCsBottomUp(t *testing.T) {
	_, g := load(t)
	sccs := g.SCCs()
	compOf := make(map[string]int)
	for i, comp := range sccs {
		for _, n := range comp {
			compOf[n.Fn.Name()] = i
		}
	}
	if compOf["Even"] != compOf["Odd"] {
		t.Errorf("Even (comp %d) and Odd (comp %d) should share an SCC", compOf["Even"], compOf["Odd"])
	}
	for i, comp := range sccs {
		for _, n := range comp {
			if n.Fn.Name() == "SelfRec" && len(comp) != 1 {
				t.Errorf("SelfRec SCC has %d members, want 1 (self-loop)", len(comp))
			}
			_ = i
		}
	}
	// Bottom-up: callees come first.
	if !(compOf["Leaf"] < compOf["Caller"] && compOf["Caller"] < compOf["Chain"]) {
		t.Errorf("SCC order not bottom-up: Leaf=%d Caller=%d Chain=%d",
			compOf["Leaf"], compOf["Caller"], compOf["Chain"])
	}
	if compOf["Square"] >= compOf["Measure"] || compOf["Circle"] >= compOf["Measure"] {
		t.Errorf("interface targets should precede Measure: Square=%d Circle=%d Measure=%d",
			compOf["Square"], compOf["Circle"], compOf["Measure"])
	}
}

func TestNodeLookup(t *testing.T) {
	pkg, g := load(t)
	obj := pkg.Types.Scope().Lookup("Leaf").(*types.Func)
	if g.Node(obj) == nil {
		t.Error("Node(Leaf) = nil, want its graph node")
	}
	if g.Node(nil) != nil {
		t.Error("Node(nil) should be nil")
	}
}
