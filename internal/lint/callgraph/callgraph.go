// Package callgraph builds a per-package call graph for the medalint
// interprocedural analyzers. Nodes are the functions and methods declared
// in the package under analysis; edges are their call sites, resolved three
// ways:
//
//   - Static calls (pkg.F(), recv.M() with a concrete receiver) resolve to
//     exactly one callee.
//   - Interface method calls resolve by class-hierarchy analysis (CHA): the
//     callee set is every method with the right name on a named type — in
//     the package under analysis or any package reachable through its
//     imports (loaded from gc export data by the driver's loader) — whose
//     type implements the interface. CHA over-approximates: it asks "what
//     could this call dispatch to anywhere in the program we can see",
//     never "what does it dispatch to here".
//   - Calls through function values, and calls the type checker cannot
//     resolve, stay in the graph as dynamic edges with no targets.
//
// Call sites carry two context bits the summary lattices depend on: Async
// marks sites inside go statements or function literals (they run off the
// caller's control flow, so they cannot block the caller but still execute
// its effects), and Deferred marks sites in defer statements (they run at
// return).
//
// SCCs condenses the intra-package subgraph with Tarjan's algorithm and
// returns the components bottom-up (callees before callers), the order the
// summary package's fixpoint wants. Recursion — direct or mutual — lands in
// one component and converges by iteration instead of unbounded descent.
package callgraph

import (
	"go/ast"
	"go/types"
)

// Kind classifies how a call site was resolved.
type Kind int

const (
	// Static calls have exactly one statically known callee.
	Static Kind = iota
	// Interface calls dispatch through an interface method; Targets holds
	// the CHA candidate set.
	Interface
	// Dynamic calls go through a function value and have no known targets.
	Dynamic
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	default:
		return "dynamic"
	}
}

// Call is one call site inside a node's body.
type Call struct {
	Site *ast.CallExpr
	Kind Kind
	// Targets are the possible callees: one function for Static, the CHA
	// candidate set for Interface, empty for Dynamic. Targets may include
	// functions from other packages; the summary layer resolves those
	// through facts.
	Targets []*types.Func
	// Async marks a site inside a go statement or a function literal: it
	// runs off the caller's own control flow.
	Async bool
	// Deferred marks a site inside a defer statement (at any nesting depth
	// outside function literals): it runs when the caller returns.
	Deferred bool
}

// Node is one function or method declared in the package under analysis.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// Graph is the call graph of one package.
type Graph struct {
	// Nodes holds every declared function with a body, in declaration
	// order (deterministic across runs).
	Nodes []*Node
	byFn  map[*types.Func]*Node
}

// Node returns the graph node of fn, or nil when fn is not declared (with a
// body) in the analyzed package.
func (g *Graph) Node(fn *types.Func) *Node { return g.byFn[fn] }

// Build constructs the call graph of one type-checked package. The universe
// for CHA interface resolution is pkg plus every package transitively
// reachable through its imports.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{byFn: make(map[*types.Func]*Node)}
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			g.Nodes = append(g.Nodes, n)
			g.byFn[fn] = n
		}
	}
	cha := newCHA(pkg)
	for _, n := range g.Nodes {
		n.Calls = collectCalls(info, cha, n.Decl.Body)
	}
	return g
}

// collectCalls walks one body gathering call sites with their async/defer
// context. Function literal bodies are included (their calls run under this
// function's dynamic extent once the literal is invoked) but marked Async.
func collectCalls(info *types.Info, cha *chaIndex, body *ast.BlockStmt) []Call {
	var calls []Call
	var walk func(n ast.Node, async, deferred bool)
	walk = func(n ast.Node, async, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, true, deferred)
				return false
			case *ast.GoStmt:
				walk(m.Call, true, deferred)
				return false
			case *ast.DeferStmt:
				walk(m.Call, async, true)
				return false
			case *ast.CallExpr:
				calls = append(calls, resolveCall(info, cha, m, async, deferred))
			}
			return true
		})
	}
	walk(body, false, false)
	return calls
}

// resolveCall classifies one call site and resolves its targets.
func resolveCall(info *types.Info, cha *chaIndex, call *ast.CallExpr, async, deferred bool) Call {
	c := Call{Site: call, Async: async, Deferred: deferred}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			c.Kind, c.Targets = Static, []*types.Func{fn}
			return c
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				break
			}
			if types.IsInterface(sel.Recv()) {
				c.Kind = Interface
				c.Targets = cha.implementations(sel.Recv(), fn.Name())
				return c
			}
			c.Kind, c.Targets = Static, []*types.Func{fn}
			return c
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			c.Kind, c.Targets = Static, []*types.Func{fn}
			return c
		}
	}
	c.Kind = Dynamic
	return c
}

// StaticCallee resolves a call's static callee function — a plain or
// package-qualified function, or a method on a concrete receiver — or nil
// for builtins, conversions, interface dispatch, and function values. The
// summary and probflow layers share it to key seeded knowledge and facts.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if types.IsInterface(s.Recv()) {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// chaIndex is the type universe for interface resolution: every named type
// visible from the analyzed package.
type chaIndex struct {
	named []*types.Named
}

// newCHA collects the named types of pkg and all packages transitively
// reachable through its imports, in deterministic order (scope names are
// sorted; packages visit depth-first in import order).
func newCHA(pkg *types.Package) *chaIndex {
	idx := &chaIndex{}
	seen := make(map[*types.Package]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				idx.named = append(idx.named, named)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	return idx
}

// implementations returns the concrete methods named name on every type in
// the universe that implements iface (as value or pointer receiver).
func (idx *chaIndex) implementations(iface types.Type, name string) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range idx.named {
		var impl types.Type
		switch {
		case types.Implements(named, it):
			impl = named
		case types.Implements(types.NewPointer(named), it):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// SCCs condenses the intra-package call graph into strongly connected
// components, returned bottom-up: every component appears after the
// components it calls into, so a bottom-up summary fixpoint can process the
// slice front to back. Edges to functions outside the package (or without
// bodies) do not participate — the summary layer resolves them through
// facts instead.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan's algorithm, iterative state kept per node.
	index := make(map[*Node]int, len(g.Nodes))
	low := make(map[*Node]int, len(g.Nodes))
	onStack := make(map[*Node]bool, len(g.Nodes))
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				m := g.byFn[t]
				if m == nil {
					continue
				}
				if _, visited := index[m]; !visited {
					strongconnect(m)
					if low[m] < low[n] {
						low[n] = low[m]
					}
				} else if onStack[m] && index[m] < low[n] {
					low[n] = index[m]
				}
			}
		}
		if low[n] == index[n] {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range g.Nodes {
		if _, visited := index[n]; !visited {
			strongconnect(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — exactly the bottom-up order we promise.
	return sccs
}
