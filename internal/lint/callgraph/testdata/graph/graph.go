// Package graph is the callgraph test fixture: static, interface, and
// dynamic calls; go/defer/literal contexts; direct and mutual recursion.
package graph

import "io"

// Leaf has no calls.
func Leaf() int { return 1 }

// Caller calls Leaf statically, twice.
func Caller() int { return Leaf() + Leaf() }

// SelfRec recurses directly.
func SelfRec(n int) int {
	if n <= 0 {
		return 0
	}
	return SelfRec(n - 1)
}

// Even and Odd recurse mutually.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Shape is implemented by Square (value receiver) and Circle (pointer
// receiver).
type Shape interface{ Area() float64 }

type Square struct{ S float64 }

func (s Square) Area() float64 { return s.S * s.S }

type Circle struct{ R float64 }

func (c *Circle) Area() float64 { return 3 * c.R * c.R }

// Measure dispatches through the interface: CHA resolves to both Area
// methods.
func Measure(s Shape) float64 { return s.Area() }

// Dynamic calls through a function value: no targets.
func Dynamic(f func() int) int { return f() }

// Contexts exercises the async/deferred bits: Leaf is called directly,
// under defer, under go, and inside a function literal.
func Contexts() {
	Leaf()
	defer Leaf()
	go Leaf()
	f := func() { Leaf() }
	f()
}

// External calls into another package (io.WriteString has no body here).
func External(w io.Writer) {
	_, _ = io.WriteString(w, "x")
}

// Chain gives the SCC order something to sort: Chain → Caller → Leaf.
func Chain() int { return Caller() }
