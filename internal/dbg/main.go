package main

import (
	"fmt"
	"os"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/plan"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
)

func main() {
	g := plan.Strip(assay.MasterMix.Build(assay.Layout{W: 60, H: 30}, 16))
	placed, err := plan.NewPlacer(60, 30).Place(g)
	if err != nil {
		panic(err)
	}
	for _, mo := range placed.MOs {
		fmt.Printf("M%d %s pre=%v loc=%v\n", mo.ID, mo.Type, mo.Pre, mo.Loc)
	}
	pl, _ := route.Compile(placed, 60, 30)
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	c, _ := chip.New(cfg, randx.New(7))
	r := sim.NewRunner(sim.DefaultConfig(), c, sched.NewBaseline(), randx.New(7))
	r.Debug = os.Stdout
	r.DebugEvery = 400
	exec, _ := r.Execute(pl)
	fmt.Printf("%+v\n", exec)
}
