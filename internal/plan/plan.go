// Package plan implements the bioassay planner the routing framework sits
// on top of: "a synthesis tool maps fluidic operations to fluidic modules on
// the electrode array" and "the SG is preprocessed by a planner that
// determines the dependencies and module placements of MOs" (Sec. II-B,
// VI-A). The planner takes a location-free sequencing graph and produces a
// placed assay.Assay:
//
//   - dispenses are bound to edge reservoirs,
//   - outputs/discards are bound to the edge exit ports,
//   - processing operations (mix, split, dilute, mag) are bound to interior
//     module slots using list scheduling and lifetime analysis, so that two
//     operations whose droplets may coexist never share a slot, and
//   - among conflict-free slots, each operation prefers the slot closest to
//     its predecessors, keeping droplet routes short.
//
// The result compiles with route.Compile and executes on the simulator; the
// benchmark generators in internal/assay are hand-placed instances of the
// same discipline.
package plan

import (
	"fmt"
	"math"

	"meda/internal/assay"
)

// Op is one location-free microfluidic operation.
type Op struct {
	Type assay.Op
	// Pre lists predecessor operation indices, in input order.
	Pre []int
	// Area is the dispensed droplet area (Dis only).
	Area int
	// Hold is the detention time (Mag only).
	Hold int
}

// Graph is a location-free sequencing graph.
type Graph struct {
	Name string
	Ops  []Op
}

// Strip converts a placed assay back into its location-free graph, useful
// for re-planning an existing protocol onto a different chip.
func Strip(a *assay.Assay) Graph {
	g := Graph{Name: a.Name}
	for _, mo := range a.MOs {
		g.Ops = append(g.Ops, Op{Type: mo.Type, Pre: append([]int(nil), mo.Pre...), Area: mo.Area, Hold: mo.Hold})
	}
	return g
}

// Validate checks the graph shape (arities, topological order, single
// consumption) without requiring locations.
func (g Graph) Validate() error {
	consumed := make(map[int]int)
	for i, op := range g.Ops {
		in, _ := op.Type.Arity()
		if len(op.Pre) != in {
			return fmt.Errorf("plan: %s op %d has %d predecessors, needs %d", op.Type, i, len(op.Pre), in)
		}
		if op.Type == assay.Dis && op.Area < 1 {
			return fmt.Errorf("plan: dis op %d has no droplet area", i)
		}
		for _, p := range op.Pre {
			if p < 0 || p >= i {
				return fmt.Errorf("plan: op %d depends on %d (not topologically ordered)", i, p)
			}
			consumed[p]++
		}
	}
	for i, op := range g.Ops {
		_, out := op.Type.Arity()
		if consumed[i] != out {
			return fmt.Errorf("plan: op %d produces %d droplets but %d are consumed", i, out, consumed[i])
		}
	}
	return nil
}

// levels computes each operation's ASAP level (longest path from a source).
func (g Graph) levels() []int {
	lv := make([]int, len(g.Ops))
	for i, op := range g.Ops {
		for _, p := range op.Pre {
			if lv[p]+1 > lv[i] {
				lv[i] = lv[p] + 1
			}
		}
	}
	return lv
}

// consumersOf maps producer index → consumer indices in claim order.
func (g Graph) consumersOf() [][]int {
	out := make([][]int, len(g.Ops))
	for i, op := range g.Ops {
		for _, p := range op.Pre {
			out[p] = append(out[p], i)
		}
	}
	return out
}

// slot is one interior module slot. The module band has two rows per
// column; droplets dispensed at the edges reach the band along vertical
// corridors through the columns. Bookings therefore distinguish two kinds of
// conflict: two operations may never share the same slot while their
// droplets coexist, and an operation fed from a reservoir (a dispense
// predecessor) additionally needs its whole column clear — a droplet parked
// in the other row would wall off the corridor.
type slot struct {
	loc assay.Point
	col int
	row int
}

type booking struct {
	from, to int
	row      int
	corridor bool
}

type columnBook struct {
	bookings map[int][]booking
}

func newColumnBook() *columnBook { return &columnBook{bookings: map[int][]booking{}} }

// free reports whether a booking (col, row, [from,to], corridor) conflicts
// with nothing: same-row overlaps are always conflicts; cross-row overlaps
// conflict when either side needs the corridor.
func (cb *columnBook) free(col, row, from, to int, corridor bool) bool {
	for _, b := range cb.bookings[col] {
		if from > b.to || b.from > to {
			continue
		}
		if b.row == row || b.corridor || corridor {
			return false
		}
	}
	return true
}

func (cb *columnBook) book(col, row, from, to int, corridor bool) {
	cb.bookings[col] = append(cb.bookings[col], booking{from: from, to: to, row: row, corridor: corridor})
}

// Placer binds a graph's operations to chip resources.
type Placer struct {
	W, H int
	// layout provides the canonical resource geometry.
	layout assay.Layout
	slots  []*slot
	book   *columnBook
	// round-robin counters for reservoirs and ports.
	nextReservoir int
	nextPort      int
}

// NewPlacer returns a planner for a W×H biochip.
func NewPlacer(w, h int) *Placer {
	p := &Placer{W: w, H: h, layout: assay.Layout{W: w, H: h}, book: newColumnBook()}
	n := p.layout.ModuleSlots()
	cols := n / 2
	for i := 0; i < n; i++ {
		p.slots = append(p.slots, &slot{loc: p.layout.Module(i), col: i % cols, row: i / cols})
	}
	return p
}

// Place schedules and places the graph, returning a fully located assay.
func (p *Placer) Place(g Graph) (*assay.Assay, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	lv := g.levels()
	consumers := g.consumersOf()

	// An operation's module stays occupied from its own level until its
	// outputs are claimed: the droplet rests at the module and departs
	// when the latest consumer activates, so the slot frees at that
	// consumer's level (the consumer's own site covers the travel).
	releaseLevel := func(i int) int {
		to := lv[i]
		for _, c := range consumers[i] {
			if lv[c]-1 > to {
				to = lv[c] - 1
			}
		}
		return to
	}

	placed := make([]assay.MO, len(g.Ops))
	locOf := make([]assay.Point, len(g.Ops)) // primary location per op

	for i, op := range g.Ops {
		mo := assay.MO{ID: i, Type: op.Type, Pre: append([]int(nil), op.Pre...), Area: op.Area, Hold: op.Hold}
		switch op.Type {
		case assay.Dis:
			loc := p.layout.Reservoir(p.nextReservoir)
			p.nextReservoir++
			mo.Loc = []assay.Point{loc}
			locOf[i] = loc
		case assay.Out, assay.Dsc:
			loc := p.layout.Port(p.nextPort)
			p.nextPort++
			mo.Loc = []assay.Point{loc}
			locOf[i] = loc
		default:
			need := op.Type.Locs()
			corridor := false
			for _, pre := range op.Pre {
				if g.Ops[pre].Type == assay.Dis {
					corridor = true
				}
			}
			locs, err := p.reserve(need, lv[i], releaseLevel(i), corridor, op, locOf)
			if err != nil {
				return nil, fmt.Errorf("plan: op %d (%s): %w", i, op.Type, err)
			}
			mo.Loc = locs
			locOf[i] = locs[0]
		}
		placed[i] = mo
	}
	a := &assay.Assay{Name: g.Name, MOs: placed}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("plan: placed assay invalid: %w", err)
	}
	return a, nil
}

// reserve books `need` module slots over [from, to], preferring slots
// closest to the operation's predecessors.
func (p *Placer) reserve(need, from, to int, corridor bool, op Op, locOf []assay.Point) ([]assay.Point, error) {
	// Anchor: mean predecessor location (chip center for sources).
	ax, ay := float64(p.W)/2, float64(p.H)/2
	if len(op.Pre) > 0 {
		ax, ay = 0, 0
		for _, pre := range op.Pre {
			ax += locOf[pre].X
			ay += locOf[pre].Y
		}
		ax /= float64(len(op.Pre))
		ay /= float64(len(op.Pre))
	}
	type cand struct {
		s    *slot
		dist float64
	}
	var cands []cand
	for _, s := range p.slots {
		if p.book.free(s.col, s.row, from, to, corridor) {
			d := math.Abs(s.loc.X-ax) + math.Abs(s.loc.Y-ay)
			cands = append(cands, cand{s, d})
		}
	}
	if len(cands) < need {
		return nil, fmt.Errorf("need %d free module slots in levels [%d,%d], have %d of %d",
			need, from, to, len(cands), len(p.slots))
	}
	// Selection sort by distance (stable for ties by slot order).
	for i := 0; i < need; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist < cands[best].dist {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]assay.Point, need)
	usedSlot := map[*slot]bool{}
	firstCol := -1
	for i := 0; i < need; i++ {
		pick := -1
		for j, c := range cands {
			if usedSlot[c.s] {
				continue
			}
			if pick < 0 {
				pick = j
				continue
			}
			// A split/dilution's second site prefers the same column as
			// the first (its two droplets belong to one operation), then
			// the nearest slot.
			better := c.dist < cands[pick].dist
			if firstCol >= 0 {
				if (c.s.col == firstCol) != (cands[pick].s.col == firstCol) {
					better = c.s.col == firstCol
				}
			}
			if better {
				pick = j
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("need %d free module slots in levels [%d,%d]", need, from, to)
		}
		chosen := cands[pick].s
		p.book.book(chosen.col, chosen.row, from, to, corridor)
		usedSlot[chosen] = true
		if firstCol < 0 {
			firstCol = chosen.col
		}
		out[i] = chosen.loc
	}
	return out, nil
}
