package plan

import (
	"testing"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
)

func robustChip(t *testing.T, seed uint64) *chip.Chip {
	t.Helper()
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	c, err := chip.New(cfg, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStripRoundTripShape(t *testing.T) {
	a := assay.SerialDilution.Build(assay.Layout{W: 60, H: 30}, 16)
	g := Strip(a)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) != a.Len() {
		t.Fatalf("ops = %d, want %d", len(g.Ops), a.Len())
	}
	for i, op := range g.Ops {
		if op.Type != a.MOs[i].Type {
			t.Errorf("op %d type %v, want %v", i, op.Type, a.MOs[i].Type)
		}
	}
}

// TestPlaceAllBenchmarks: every benchmark protocol, stripped of its
// hand-made placement, can be re-planned automatically and still compiles.
func TestPlaceAllBenchmarks(t *testing.T) {
	benches := []assay.Benchmark{
		assay.MasterMix, assay.CEP, assay.SerialDilution, assay.NuIP,
		assay.CovidRAT, assay.CovidPCR, assay.ChIP, assay.InVitro,
		assay.GeneExpression, assay.Protein, assay.PCRMix,
	}
	for _, bench := range benches {
		g := Strip(bench.Build(assay.Layout{W: 60, H: 30}, 16))
		placed, err := NewPlacer(60, 30).Place(g)
		if err != nil {
			t.Errorf("%v: %v", bench, err)
			continue
		}
		if _, err := route.Compile(placed, 60, 30); err != nil {
			t.Errorf("%v: placed assay does not compile: %v", bench, err)
		}
	}
}

// TestPlacedAssaysExecute: automatically placed protocols run to completion
// on the simulator — the integration test that placement actually respects
// droplet lifetimes.
func TestPlacedAssaysExecute(t *testing.T) {
	benches := []assay.Benchmark{
		assay.MasterMix, assay.SerialDilution, assay.CovidPCR, assay.Protein,
	}
	for _, bench := range benches {
		g := Strip(bench.Build(assay.Layout{W: 60, H: 30}, 16))
		placed, err := NewPlacer(60, 30).Place(g)
		if err != nil {
			t.Fatalf("%v: %v", bench, err)
		}
		plan, err := route.Compile(placed, 60, 30)
		if err != nil {
			t.Fatalf("%v: %v", bench, err)
		}
		src := randx.New(7)
		runner := sim.NewRunner(sim.DefaultConfig(), robustChip(t, 7), sched.NewBaseline(), src)
		exec, err := runner.Execute(plan)
		if err != nil {
			t.Fatalf("%v: %v", bench, err)
		}
		if !exec.Success {
			t.Errorf("%v: auto-placed assay failed: %+v", bench, exec)
		}
	}
}

// TestLifetimeExclusion: two operations whose droplets coexist never share a
// module slot.
func TestLifetimeExclusion(t *testing.T) {
	// Four concurrent mixes (InVitro shape) must take four distinct slots.
	var g Graph
	g.Name = "concurrent"
	for i := 0; i < 4; i++ {
		a := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 16})
		b := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 16})
		m := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Mix, Pre: []int{a, b}})
		g.Ops = append(g.Ops, Op{Type: assay.Out, Pre: []int{m}})
	}
	placed, err := NewPlacer(60, 30).Place(g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[assay.Point]bool{}
	for _, mo := range placed.MOs {
		if mo.Type != assay.Mix {
			continue
		}
		if seen[mo.Loc[0]] {
			t.Errorf("concurrent mixes share slot %v", mo.Loc[0])
		}
		seen[mo.Loc[0]] = true
	}
}

// TestSlotReuseAcrossLevels: sequential operations may reuse a slot once its
// occupant has been consumed.
func TestSlotReuseAcrossLevels(t *testing.T) {
	// A long serial chain: mix → mag → mix → mag … deeper than the slot
	// count would allow without reuse.
	p := NewPlacer(60, 30)
	nslots := len(p.slots)
	var g Graph
	g.Name = "chain"
	prev := 0
	g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 16})
	for i := 0; i < nslots+4; i++ {
		r := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 16})
		m := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Mix, Pre: []int{prev, r}})
		prev = m
	}
	g.Ops = append(g.Ops, Op{Type: assay.Out, Pre: []int{prev}})
	if _, err := p.Place(g); err != nil {
		t.Fatalf("chain deeper than slot count must still place (reuse): %v", err)
	}
}

// TestPlaceExhaustion: more concurrency than slots is reported, not
// silently mangled.
func TestPlaceExhaustion(t *testing.T) {
	p := NewPlacer(28, 30) // few module columns
	n := len(p.slots) + 1
	var g Graph
	g.Name = "too-wide"
	for i := 0; i < n; i++ {
		a := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 9})
		b := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Dis, Area: 9})
		m := len(g.Ops)
		g.Ops = append(g.Ops, Op{Type: assay.Mix, Pre: []int{a, b}})
		g.Ops = append(g.Ops, Op{Type: assay.Out, Pre: []int{m}})
	}
	if _, err := p.Place(g); err == nil {
		t.Error("slot exhaustion not reported")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	bad := Graph{Ops: []Op{{Type: assay.Mix, Pre: []int{0, 0}}}}
	if err := bad.Validate(); err == nil {
		t.Error("self-dependency accepted")
	}
	bad = Graph{Ops: []Op{{Type: assay.Dis}}}
	if err := bad.Validate(); err == nil {
		t.Error("dis without area accepted")
	}
	bad = Graph{Ops: []Op{{Type: assay.Dis, Area: 16}}}
	if err := bad.Validate(); err == nil {
		t.Error("unconsumed droplet accepted")
	}
}

func TestLevels(t *testing.T) {
	g := Graph{Ops: []Op{
		{Type: assay.Dis, Area: 16},
		{Type: assay.Dis, Area: 16},
		{Type: assay.Mix, Pre: []int{0, 1}},
		{Type: assay.Mag, Pre: []int{2}, Hold: 5},
		{Type: assay.Out, Pre: []int{3}},
	}}
	lv := g.levels()
	want := []int{0, 0, 1, 2, 3}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}
