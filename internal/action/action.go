// Package action implements the droplet actuation model of Sec. V: the 20
// microfluidic actions A = A_d ∪ A_dd ∪ A_dd' ∪ A_↓ ∪ A_↑ (Fig. 9), their
// frontier sets (Table II), their enabling guards, and the probabilistic
// outcome distributions induced by microelectrode degradation (Sec. V-B,
// Fig. 11).
//
// A droplet is the rectangle of actuated microelectrodes δ = (xa, ya, xb, yb)
// (geom.Rect). An action attempts to move and/or reshape the droplet; whether
// each constituent pull succeeds depends on the mean relative EWOD force of
// the microelectrodes in the action's frontier set for that direction.
package action

import (
	"fmt"

	"meda/internal/geom"
)

// Action is one of the 20 microfluidic actions.
type Action uint8

// The action alphabet. Morph actions follow the paper's arrow convention:
// A_↓ ("widen") increases droplet width and decreases height; A_↑
// ("heighten") increases height and decreases width. The two-letter suffix
// is the ordinal direction toward which the droplet grows.
const (
	// Cardinal single-step movements A_d.
	MoveN Action = iota
	MoveS
	MoveE
	MoveW
	// Cardinal double-step movements A_dd.
	MoveNN
	MoveSS
	MoveEE
	MoveWW
	// Ordinal movements A_dd'.
	MoveNE
	MoveNW
	MoveSE
	MoveSW
	// Width-increasing morphs A_↓ (aspect ratio grows).
	WidenNE
	WidenNW
	WidenSE
	WidenSW
	// Height-increasing morphs A_↑ (aspect ratio shrinks).
	HeightenNE
	HeightenNW
	HeightenSE
	HeightenSW

	// NumActions is the size of the action alphabet |A| = 20.
	NumActions = 20
)

// All lists every action in declaration order.
func All() []Action {
	out := make([]Action, NumActions)
	for i := range out {
		out[i] = Action(i)
	}
	return out
}

// Class partitions the alphabet as in Sec. V-B.
type Class uint8

// Action classes.
const (
	Cardinal Class = iota // A_d
	Double                // A_dd
	Ordinal               // A_dd'
	Widen                 // A_↓
	Heighten              // A_↑
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Cardinal:
		return "cardinal"
	case Double:
		return "double"
	case Ordinal:
		return "ordinal"
	case Widen:
		return "widen"
	case Heighten:
		return "heighten"
	}
	return "unknown"
}

// Class returns the action's class.
func (a Action) Class() Class {
	switch {
	case a <= MoveW:
		return Cardinal
	case a <= MoveWW:
		return Double
	case a <= MoveSW:
		return Ordinal
	case a <= WidenSW:
		return Widen
	default:
		return Heighten
	}
}

var names = [NumActions]string{
	"aN", "aS", "aE", "aW",
	"aNN", "aSS", "aEE", "aWW",
	"aNE", "aNW", "aSE", "aSW",
	"aWidenNE", "aWidenNW", "aWidenSE", "aWidenSW",
	"aHeightenNE", "aHeightenNW", "aHeightenSE", "aHeightenSW",
}

// String returns the paper-style action name (aN, aNE, aWidenNE, ...).
func (a Action) String() string {
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("a?%d", uint8(a))
}

// vertical/horizontal components of the two-letter suffix for ordinal and
// morph actions; index = a - MoveNE (ordinals) or a - WidenNE etc., all use
// the NE, NW, SE, SW order.
var suffixVert = [4]geom.Dir{geom.North, geom.North, geom.South, geom.South}
var suffixHorz = [4]geom.Dir{geom.East, geom.West, geom.East, geom.West}

// cardinalDir returns the direction of a cardinal or double action.
func (a Action) cardinalDir() geom.Dir {
	switch a {
	case MoveN, MoveNN:
		return geom.North
	case MoveS, MoveSS:
		return geom.South
	case MoveE, MoveEE:
		return geom.East
	default:
		return geom.West
	}
}

// Dirs returns the cardinal directions in which the action exerts a pull:
// one direction for cardinal/double moves and morphs, two (vertical then
// horizontal) for ordinal moves.
func (a Action) Dirs() []geom.Dir {
	switch a.Class() {
	case Cardinal, Double:
		return []geom.Dir{a.cardinalDir()}
	case Ordinal:
		i := a - MoveNE
		return []geom.Dir{suffixVert[i], suffixHorz[i]}
	case Widen:
		// Widening pulls horizontally (east or west).
		return []geom.Dir{suffixHorz[a-WidenNE]}
	default: // Heighten
		// Heightening pulls vertically (north or south).
		return []geom.Dir{suffixVert[a-HeightenNE]}
	}
}

// Apply returns the droplet after fully successful execution of the action
// (the red dashed outlines of Fig. 9). It does not check guards or chip
// bounds; callers gate on Enabled and on the hazard bounds.
func (a Action) Apply(d geom.Rect) geom.Rect {
	switch a {
	case MoveN:
		return d.Translate(0, 1)
	case MoveS:
		return d.Translate(0, -1)
	case MoveE:
		return d.Translate(1, 0)
	case MoveW:
		return d.Translate(-1, 0)
	case MoveNN:
		return d.Translate(0, 2)
	case MoveSS:
		return d.Translate(0, -2)
	case MoveEE:
		return d.Translate(2, 0)
	case MoveWW:
		return d.Translate(-2, 0)
	case MoveNE:
		return d.Translate(1, 1)
	case MoveNW:
		return d.Translate(-1, 1)
	case MoveSE:
		return d.Translate(1, -1)
	case MoveSW:
		return d.Translate(-1, -1)
	case WidenNE:
		return geom.Rect{XA: d.XA, YA: d.YA + 1, XB: d.XB + 1, YB: d.YB}
	case WidenNW:
		return geom.Rect{XA: d.XA - 1, YA: d.YA + 1, XB: d.XB, YB: d.YB}
	case WidenSE:
		return geom.Rect{XA: d.XA, YA: d.YA, XB: d.XB + 1, YB: d.YB - 1}
	case WidenSW:
		return geom.Rect{XA: d.XA - 1, YA: d.YA, XB: d.XB, YB: d.YB - 1}
	case HeightenNE:
		return geom.Rect{XA: d.XA + 1, YA: d.YA, XB: d.XB, YB: d.YB + 1}
	case HeightenNW:
		return geom.Rect{XA: d.XA, YA: d.YA, XB: d.XB - 1, YB: d.YB + 1}
	case HeightenSE:
		return geom.Rect{XA: d.XA + 1, YA: d.YA - 1, XB: d.XB, YB: d.YB}
	default: // HeightenSW
		return geom.Rect{XA: d.XA, YA: d.YA - 1, XB: d.XB - 1, YB: d.YB}
	}
}

// Frontier returns the frontier set Fr(δ; a, dir) of Table II: the cells
// whose EWOD force pulls the droplet in direction dir under action a. The
// second return value is false when the frontier is empty (∅ in the table).
// For double-step actions the frontier of the *first* step is returned; the
// second step's frontier is Frontier(a.Apply-one-step(δ)) — see Outcomes.
func Frontier(d geom.Rect, a Action, dir geom.Dir) (geom.Rect, bool) {
	xa, ya, xb, yb := d.XA, d.YA, d.XB, d.YB
	switch a.Class() {
	case Cardinal, Double:
		if a.cardinalDir() != dir {
			return geom.ZeroRect, false
		}
		switch dir {
		case geom.North:
			return geom.Rect{XA: xa, YA: yb + 1, XB: xb, YB: yb + 1}, true
		case geom.South:
			return geom.Rect{XA: xa, YA: ya - 1, XB: xb, YB: ya - 1}, true
		case geom.East:
			return geom.Rect{XA: xb + 1, YA: ya, XB: xb + 1, YB: yb}, true
		default: // West
			return geom.Rect{XA: xa - 1, YA: ya, XB: xa - 1, YB: yb}, true
		}
	case Ordinal:
		i := a - MoveNE
		v, h := suffixVert[i], suffixHorz[i]
		// Horizontal shift of the vertical frontier row and vertical
		// shift of the horizontal frontier column, per Table II.
		hs := 1
		if h == geom.West {
			hs = -1
		}
		vs := 1
		if v == geom.South {
			vs = -1
		}
		switch dir {
		case v:
			row := yb + 1
			if v == geom.South {
				row = ya - 1
			}
			return geom.Rect{XA: xa + hs, YA: row, XB: xb + hs, YB: row}, true
		case h:
			col := xb + 1
			if h == geom.West {
				col = xa - 1
			}
			return geom.Rect{XA: col, YA: ya + vs, XB: col, YB: yb + vs}, true
		default:
			return geom.ZeroRect, false
		}
	case Widen:
		i := a - WidenNE
		h := suffixHorz[i]
		if dir != h {
			return geom.ZeroRect, false
		}
		col := xb + 1
		if h == geom.West {
			col = xa - 1
		}
		// The retained rows: shrink from the south for N-variants
		// (⟦ya+1, yb⟧) and from the north for S-variants (⟦ya, yb−1⟧).
		if suffixVert[i] == geom.North {
			return geom.Rect{XA: col, YA: ya + 1, XB: col, YB: yb}, yb >= ya+1
		}
		return geom.Rect{XA: col, YA: ya, XB: col, YB: yb - 1}, yb-1 >= ya
	default: // Heighten
		i := a - HeightenNE
		v := suffixVert[i]
		if dir != v {
			return geom.ZeroRect, false
		}
		row := yb + 1
		if v == geom.South {
			row = ya - 1
		}
		if suffixHorz[i] == geom.East {
			return geom.Rect{XA: xa + 1, YA: row, XB: xb, YB: row}, xb >= xa+1
		}
		return geom.Rect{XA: xa, YA: row, XB: xb - 1, YB: row}, xb-1 >= xa
	}
}

// DefaultMaxAspect is the aspect-ratio bound r used when none is specified:
// the paper notes AR may not exceed 2/1 (or drop below 1/2) without risking
// unintentional splitting.
const DefaultMaxAspect = 2.0

// Enabled evaluates the action's guard for droplet d with aspect-ratio bound
// r ≥ 1 (allowed AR range [1/r, r]):
//
//	g↑:  (yb−ya+2)/(xb−xa) ≤ r    (heighten)
//	g↓:  (xb−xa+2)/(yb−ya) ≤ r    (widen)
//	gNN, gSS: h ≥ 4;  gEE, gWW: w ≥ 4 (a droplet moves reliably at most
//	half its length per cycle)
//
// Cardinal and ordinal moves are always enabled. Morphs additionally require
// the shrinking dimension to stay ≥ 1 cell.
func (a Action) Enabled(d geom.Rect, r float64) bool {
	switch a.Class() {
	case Cardinal, Ordinal:
		return true
	case Double:
		if a.cardinalDir().Horizontal() {
			return d.Width() >= 4
		}
		return d.Height() >= 4
	case Widen:
		den := d.YB - d.YA // h − 1
		if den < 1 {
			return false
		}
		return float64(d.XB-d.XA+2)/float64(den) <= r
	default: // Heighten
		den := d.XB - d.XA // w − 1
		if den < 1 {
			return false
		}
		return float64(d.YB-d.YA+2)/float64(den) <= r
	}
}

// ForceField supplies the relative EWOD force F̄_ij ∈ [0, 1] of the
// microelectrode at (x, y); off-chip or fully failed cells must report 0.
type ForceField func(x, y int) float64

// MeanForce returns F̄(δ; a, d)/|Fr(δ; a, d)|: the mean relative force over a
// frontier rectangle, which is the success probability of that directional
// pull (all frontier MCs are assumed to contribute equally, per Sec. V-B).
func MeanForce(fr geom.Rect, f ForceField) float64 {
	n := fr.Area()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for y := fr.YA; y <= fr.YB; y++ {
		for x := fr.XA; x <= fr.XB; x++ {
			sum += f(x, y)
		}
	}
	p := sum / float64(n)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Outcome is one probabilistic result of executing an action: the droplet
// ends at Droplet with probability P. Event names follow the paper's event
// spaces (e.g. "NE", "N", "E", "ε" for an ordinal move).
type Outcome struct {
	Event   string
	Droplet geom.Rect
	P       float64
}

// MaxOutcomes bounds the distribution size of any action (the ordinal
// event space {vh, v, h, ε}), for sizing reusable outcome buffers.
const MaxOutcomes = 4

// doubleEvent and ordinalEvent precompute the concatenated event names
// ("NN", "NE", ...) so the hot outcome enumeration never builds strings.
var doubleEvent = [4]string{"NN", "SS", "EE", "WW"}
var ordinalEvent = [4][4]string{
	geom.North: {geom.East: "NE", geom.West: "NW"},
	geom.South: {geom.East: "SE", geom.West: "SW"},
}

// Outcomes returns the full outcome distribution of executing action a on
// droplet d under force field f, implementing the event probabilities of
// Sec. V-B (cardinal, double-step — second step conditioned on the first —,
// ordinal, and morph actions). The probabilities always sum to 1.
func Outcomes(d geom.Rect, a Action, f ForceField) []Outcome {
	return AppendOutcomes(nil, d, a, f)
}

// AppendOutcomes appends the outcome distribution of executing a on d under
// f to dst and returns the extended slice. It is the allocation-free form of
// Outcomes for hot loops (model induction): with a dst of sufficient
// capacity it performs no heap allocation. At most 4 outcomes are appended.
func AppendOutcomes(dst []Outcome, d geom.Rect, a Action, f ForceField) []Outcome {
	switch a.Class() {
	case Cardinal:
		dir := a.cardinalDir()
		fr, _ := Frontier(d, a, dir)
		p := MeanForce(fr, f)
		return append(dst,
			Outcome{Event: dir.String(), Droplet: a.Apply(d), P: p},
			Outcome{Event: "ε", Droplet: d, P: 1 - p},
		)
	case Double:
		dir := a.cardinalDir()
		single := singleStep(dir)
		fr1, _ := Frontier(d, single, dir)
		p1 := MeanForce(fr1, f)
		d1 := single.Apply(d)
		fr2, _ := Frontier(d1, single, dir)
		p2 := MeanForce(fr2, f)
		return append(dst,
			Outcome{Event: doubleEvent[dir], Droplet: single.Apply(d1), P: p1 * p2},
			Outcome{Event: dir.String(), Droplet: d1, P: p1 * (1 - p2)},
			Outcome{Event: "ε", Droplet: d, P: 1 - p1},
		)
	case Ordinal:
		i := a - MoveNE
		v, h := suffixVert[i], suffixHorz[i]
		frV, _ := Frontier(d, a, v)
		frH, _ := Frontier(d, a, h)
		pv := MeanForce(frV, f)
		ph := MeanForce(frH, f)
		dv := singleStep(v).Apply(d)
		dh := singleStep(h).Apply(d)
		return append(dst,
			Outcome{Event: ordinalEvent[v][h], Droplet: a.Apply(d), P: pv * ph},
			Outcome{Event: v.String(), Droplet: dv, P: pv * (1 - ph)},
			Outcome{Event: h.String(), Droplet: dh, P: (1 - pv) * ph},
			Outcome{Event: "ε", Droplet: d, P: (1 - pv) * (1 - ph)},
		)
	default: // Widen, Heighten
		var dir geom.Dir
		if a.Class() == Widen {
			dir = suffixHorz[a-WidenNE]
		} else {
			dir = suffixVert[a-HeightenNE]
		}
		fr, ok := Frontier(d, a, dir)
		p := 0.0
		if ok {
			p = MeanForce(fr, f)
		}
		return append(dst,
			Outcome{Event: "morph", Droplet: a.Apply(d), P: p},
			Outcome{Event: "ε", Droplet: d, P: 1 - p},
		)
	}
}

// singleStep returns the cardinal single-step action for a direction.
func singleStep(dir geom.Dir) Action {
	switch dir {
	case geom.North:
		return MoveN
	case geom.South:
		return MoveS
	case geom.East:
		return MoveE
	default:
		return MoveW
	}
}

// SingleStep exposes the direction→action mapping for schedulers.
func SingleStep(dir geom.Dir) Action { return singleStep(dir) }

// ActuatedCells returns the set of microelectrodes that must be actuated to
// execute action a on droplet d: the target pattern a(δ). (Under the paper's
// droplet model the actuation pattern *is* the intended next droplet
// rectangle; holding a droplet in place actuates its current rectangle.)
func ActuatedCells(d geom.Rect, a Action) geom.Rect { return a.Apply(d) }

// MovesToward reports whether executing a (fully successfully) brings the
// droplet center closer to the center of goal, used by heuristic routers.
func MovesToward(d, goal geom.Rect, a Action) bool {
	cx, cy := d.Center()
	gx, gy := goal.Center()
	nd := a.Apply(d)
	nx, ny := nd.Center()
	cur := abs(gx-cx) + abs(gy-cy)
	next := abs(gx-nx) + abs(gy-ny)
	return next < cur
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FromName returns the action with the given paper-style name (aN, aNE,
// aWidenNE, ...), for protocol and configuration parsing.
func FromName(name string) (Action, bool) {
	for i, n := range names {
		if n == name {
			return Action(i), true
		}
	}
	return 0, false
}

// MarshalText encodes the action as its name (for JSON protocols and
// configuration files).
func (a Action) MarshalText() ([]byte, error) {
	if int(a) >= NumActions {
		return nil, fmt.Errorf("action: cannot marshal invalid action %d", uint8(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText decodes an action from its name.
func (a *Action) UnmarshalText(text []byte) error {
	v, ok := FromName(string(text))
	if !ok {
		return fmt.Errorf("action: unknown action %q", text)
	}
	*a = v
	return nil
}
