package action

import (
	"math"
	"testing"
	"testing/quick"

	"meda/internal/geom"
)

// delta is the running-example droplet δ = (3,2,7,5) used by Examples 1–3.
var delta = geom.Rect{XA: 3, YA: 2, XB: 7, YB: 5}

func TestAlphabetSize(t *testing.T) {
	if len(All()) != 20 {
		t.Fatalf("|A| = %d, want 20", len(All()))
	}
	counts := map[Class]int{}
	for _, a := range All() {
		counts[a.Class()]++
	}
	for _, cls := range []Class{Cardinal, Double, Ordinal, Widen, Heighten} {
		if counts[cls] != 4 {
			t.Errorf("|%v| = %d, want 4", cls, counts[cls])
		}
	}
}

func TestActionNames(t *testing.T) {
	if MoveN.String() != "aN" || MoveNE.String() != "aNE" ||
		WidenNE.String() != "aWidenNE" || HeightenSW.String() != "aHeightenSW" {
		t.Error("action names wrong")
	}
	if Action(77).String() != "a?77" {
		t.Error("out-of-range action name wrong")
	}
	if Class(9).String() != "unknown" {
		t.Error("unknown class name wrong")
	}
}

// TestFrontierTableII exhaustively checks every row of Table II against the
// running-example droplet δ = (3,2,7,5) (so xa=3, ya=2, xb=7, yb=5, and the
// shorthand x+ = x+1, x− = x−1).
func TestFrontierTableII(t *testing.T) {
	type row struct {
		a        Action
		dir      geom.Dir
		want     geom.Rect
		wantSize int
	}
	rows := []row{
		{MoveN, geom.North, rect(3, 6, 7, 6), 5},      // ⟦xa,xb⟧×⟦yb+,yb+⟧, w
		{MoveS, geom.South, rect(3, 1, 7, 1), 5},      // ⟦xa,xb⟧×⟦ya−,ya−⟧
		{MoveE, geom.East, rect(8, 2, 8, 5), 4},       // ⟦xb+,xb+⟧×⟦ya,yb⟧, h
		{MoveW, geom.West, rect(2, 2, 2, 5), 4},       // ⟦xa−,xa−⟧×⟦ya,yb⟧
		{MoveNE, geom.North, rect(4, 6, 8, 6), 5},     // ⟦xa+,xb+⟧×⟦yb+,yb+⟧
		{MoveNE, geom.East, rect(8, 3, 8, 6), 4},      // ⟦xb+,xb+⟧×⟦ya+,yb+⟧
		{MoveNW, geom.North, rect(2, 6, 6, 6), 5},     // ⟦xa−,xb−⟧×⟦yb+,yb+⟧
		{MoveNW, geom.West, rect(2, 3, 2, 6), 4},      // ⟦xa−,xa−⟧×⟦ya+,yb+⟧
		{MoveSE, geom.South, rect(4, 1, 8, 1), 5},     // ⟦xa+,xb+⟧×⟦ya−,ya−⟧
		{MoveSE, geom.East, rect(8, 1, 8, 4), 4},      // ⟦xb+,xb+⟧×⟦ya−,yb−⟧
		{MoveSW, geom.South, rect(2, 1, 6, 1), 5},     // ⟦xa−,xb−⟧×⟦ya−,ya−⟧
		{MoveSW, geom.West, rect(2, 1, 2, 4), 4},      // ⟦xa−,xa−⟧×⟦ya−,yb−⟧
		{WidenNE, geom.East, rect(8, 3, 8, 5), 3},     // ⟦xb+,xb+⟧×⟦ya+,yb⟧, h−1
		{WidenNW, geom.West, rect(2, 3, 2, 5), 3},     // ⟦xa−,xa−⟧×⟦ya+,yb⟧
		{WidenSE, geom.East, rect(8, 2, 8, 4), 3},     // ⟦xb+,xb+⟧×⟦ya,yb−⟧
		{WidenSW, geom.West, rect(2, 2, 2, 4), 3},     // ⟦xa−,xa−⟧×⟦ya,yb−⟧
		{HeightenNE, geom.North, rect(4, 6, 7, 6), 4}, // ⟦xa+,xb⟧×⟦yb+,yb+⟧, w−1
		{HeightenNW, geom.North, rect(3, 6, 6, 6), 4}, // ⟦xa,xb−⟧×⟦yb+,yb+⟧
		{HeightenSE, geom.South, rect(4, 1, 7, 1), 4}, // ⟦xa+,xb⟧×⟦ya−,ya−⟧
		{HeightenSW, geom.South, rect(3, 1, 6, 1), 4}, // ⟦xa,xb−⟧×⟦ya−,ya−⟧
	}
	for _, r := range rows {
		got, ok := Frontier(delta, r.a, r.dir)
		if !ok {
			t.Errorf("%v dir %v: frontier unexpectedly empty", r.a, r.dir)
			continue
		}
		if got != r.want {
			t.Errorf("%v dir %v: frontier = %v, want %v", r.a, r.dir, got, r.want)
		}
		if got.Area() != r.wantSize {
			t.Errorf("%v dir %v: |Fr| = %d, want %d", r.a, r.dir, got.Area(), r.wantSize)
		}
	}
}

// TestFrontierEmptyCells checks the ∅ entries of Table II: cardinal moves
// have no frontier in orthogonal directions, widen morphs none vertically,
// heighten morphs none horizontally.
func TestFrontierEmptyCells(t *testing.T) {
	type probe struct {
		a   Action
		dir geom.Dir
	}
	empties := []probe{
		{MoveN, geom.East}, {MoveN, geom.West}, {MoveN, geom.South},
		{MoveS, geom.East}, {MoveE, geom.North}, {MoveE, geom.West},
		{MoveW, geom.South}, {MoveNE, geom.South}, {MoveNE, geom.West},
		{WidenNE, geom.North}, {WidenNE, geom.South}, {WidenNE, geom.West},
		{WidenSW, geom.East}, {HeightenNE, geom.East}, {HeightenNE, geom.South},
		{HeightenSW, geom.North}, {MoveNN, geom.East}, {MoveEE, geom.North},
	}
	for _, p := range empties {
		if _, ok := Frontier(delta, p.a, p.dir); ok {
			t.Errorf("Frontier(%v, %v) should be empty", p.a, p.dir)
		}
	}
}

// TestFrontierExample2 is Example 2 of the paper verbatim.
func TestFrontierExample2(t *testing.T) {
	frE, ok := Frontier(delta, MoveNE, geom.East)
	if !ok || frE != (rect(8, 3, 8, 6)) {
		t.Errorf("Fr(δ;aNE,E) = %v, want ⟦8,8⟧×⟦3,6⟧", frE)
	}
	frN, ok := Frontier(delta, MoveNE, geom.North)
	if !ok || frN != (rect(4, 6, 8, 6)) {
		t.Errorf("Fr(δ;aNE,N) = %v, want ⟦4,8⟧×⟦6,6⟧", frN)
	}
}

// TestFrontierSizesMatchTableII checks the |Fr| column formulas on random
// droplets: cardinal N/S frontiers have w cells, E/W have h cells; widen
// frontiers h−1; heighten frontiers w−1.
func TestFrontierSizesMatchTableII(t *testing.T) {
	f := func(xa, ya uint8, w8, h8 uint8) bool {
		w := int(w8%6) + 2
		h := int(h8%6) + 2
		d := geom.Rect{XA: int(xa) + 3, YA: int(ya) + 3, XB: int(xa) + 2 + w, YB: int(ya) + 2 + h}
		check := func(a Action, dir geom.Dir, want int) bool {
			fr, ok := Frontier(d, a, dir)
			return ok && fr.Area() == want
		}
		return check(MoveN, geom.North, w) &&
			check(MoveS, geom.South, w) &&
			check(MoveE, geom.East, h) &&
			check(MoveW, geom.West, h) &&
			check(MoveNE, geom.North, w) && check(MoveNE, geom.East, h) &&
			check(MoveSW, geom.South, w) && check(MoveSW, geom.West, h) &&
			check(WidenNE, geom.East, h-1) &&
			check(WidenSW, geom.West, h-1) &&
			check(HeightenNW, geom.North, w-1) &&
			check(HeightenSE, geom.South, w-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFrontierDisjointFromDroplet: a frontier always lies outside the
// current droplet (it is the set of cells pulling the droplet onward).
func TestFrontierDisjointFromDroplet(t *testing.T) {
	for _, a := range All() {
		for _, dir := range geom.Cardinals {
			fr, ok := Frontier(delta, a, dir)
			if !ok {
				continue
			}
			if fr.Overlaps(delta) {
				t.Errorf("%v dir %v: frontier %v overlaps droplet %v", a, dir, fr, delta)
			}
		}
	}
}

// TestFrontierInsideTarget: every frontier cell belongs to the actuation
// pattern a(δ) — the pattern is what pulls the droplet.
func TestFrontierInsideTarget(t *testing.T) {
	for _, a := range All() {
		if a.Class() == Double {
			continue // double-step frontier is the first step's pattern
		}
		target := a.Apply(delta)
		for _, dir := range geom.Cardinals {
			fr, ok := Frontier(delta, a, dir)
			if !ok {
				continue
			}
			if !target.ContainsRect(fr) {
				t.Errorf("%v dir %v: frontier %v outside target %v", a, dir, fr, target)
			}
		}
	}
}

func TestApplyGeometry(t *testing.T) {
	cases := []struct {
		a    Action
		want geom.Rect
	}{
		{MoveN, rect(3, 3, 7, 6)},
		{MoveS, rect(3, 1, 7, 4)},
		{MoveE, rect(4, 2, 8, 5)},
		{MoveW, rect(2, 2, 6, 5)},
		{MoveNN, rect(3, 4, 7, 7)},
		{MoveEE, rect(5, 2, 9, 5)},
		{MoveNE, rect(4, 3, 8, 6)},
		{MoveSW, rect(2, 1, 6, 4)},
		{WidenNE, rect(3, 3, 8, 5)},
		{WidenNW, rect(2, 3, 7, 5)},
		{WidenSE, rect(3, 2, 8, 4)},
		{WidenSW, rect(2, 2, 7, 4)},
		{HeightenNE, rect(4, 2, 7, 6)},
		{HeightenNW, rect(3, 2, 6, 6)},
		{HeightenSE, rect(4, 1, 7, 5)},
		{HeightenSW, rect(3, 1, 6, 5)},
	}
	for _, c := range cases {
		if got := c.a.Apply(delta); got != c.want {
			t.Errorf("%v(δ) = %v, want %v", c.a, got, c.want)
		}
	}
}

// TestApplyShapeInvariants: movements preserve shape; widen adds a column
// and removes a row; heighten adds a row and removes a column.
func TestApplyShapeInvariants(t *testing.T) {
	f := func(xa, ya uint8, w8, h8 uint8) bool {
		w := int(w8%7) + 2
		h := int(h8%7) + 2
		d := geom.Rect{XA: int(xa) + 3, YA: int(ya) + 3, XB: int(xa) + 2 + w, YB: int(ya) + 2 + h}
		for _, a := range All() {
			nd := a.Apply(d)
			if !nd.Valid() {
				return false
			}
			switch a.Class() {
			case Cardinal, Double, Ordinal:
				if nd.Width() != w || nd.Height() != h {
					return false
				}
			case Widen:
				if nd.Width() != w+1 || nd.Height() != h-1 {
					return false
				}
			case Heighten:
				if nd.Width() != w-1 || nd.Height() != h+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGuardsPaperExample: r = 3/2 with δ = (3,2,7,5) enables heighten (g↑=1)
// and disables widen (g↓=0).
func TestGuardsPaperExample(t *testing.T) {
	const r = 1.5
	for _, a := range []Action{HeightenNE, HeightenNW, HeightenSE, HeightenSW} {
		if !a.Enabled(delta, r) {
			t.Errorf("%v should be enabled (g↑=1)", a)
		}
	}
	for _, a := range []Action{WidenNE, WidenNW, WidenSE, WidenSW} {
		if a.Enabled(delta, r) {
			t.Errorf("%v should be disabled (g↓=0)", a)
		}
	}
}

func TestDoubleStepGuards(t *testing.T) {
	small := geom.Rect{XA: 1, YA: 1, XB: 3, YB: 3} // 3×3
	big := geom.Rect{XA: 1, YA: 1, XB: 4, YB: 4}   // 4×4
	wide := geom.Rect{XA: 1, YA: 1, XB: 5, YB: 3}  // 5×3
	for _, a := range []Action{MoveNN, MoveSS, MoveEE, MoveWW} {
		if a.Enabled(small, DefaultMaxAspect) {
			t.Errorf("%v must be disabled for 3×3", a)
		}
		if !a.Enabled(big, DefaultMaxAspect) {
			t.Errorf("%v must be enabled for 4×4", a)
		}
	}
	if !MoveEE.Enabled(wide, DefaultMaxAspect) || !MoveWW.Enabled(wide, DefaultMaxAspect) {
		t.Error("horizontal double step must be enabled for w=5")
	}
	if MoveNN.Enabled(wide, DefaultMaxAspect) || MoveSS.Enabled(wide, DefaultMaxAspect) {
		t.Error("vertical double step must be disabled for h=3")
	}
}

func TestMorphDegenerate(t *testing.T) {
	row := geom.Rect{XA: 1, YA: 1, XB: 4, YB: 1} // 4×1
	col := geom.Rect{XA: 1, YA: 1, XB: 1, YB: 4} // 1×4
	for _, a := range []Action{WidenNE, WidenNW, WidenSE, WidenSW} {
		if a.Enabled(row, 100) {
			t.Errorf("%v on height-1 droplet must be disabled", a)
		}
	}
	for _, a := range []Action{HeightenNE, HeightenNW, HeightenSE, HeightenSW} {
		if a.Enabled(col, 100) {
			t.Errorf("%v on width-1 droplet must be disabled", a)
		}
	}
	// Cardinal moves stay enabled regardless.
	if !MoveN.Enabled(row, 1) || !MoveE.Enabled(col, 1) {
		t.Error("cardinal moves must always be enabled")
	}
}

func uniformForce(v float64) ForceField {
	return func(x, y int) float64 { return v }
}

func TestOutcomesSumToOneProperty(t *testing.T) {
	f := func(fv uint8, ai uint8) bool {
		force := uniformForce(float64(fv) / 255)
		a := Action(ai % NumActions)
		total := 0.0
		for _, o := range Outcomes(delta, a, force) {
			if o.P < -1e-12 || o.P > 1+1e-12 {
				return false
			}
			total += o.P
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOutcomesExample3 reproduces Example 3: with the given frontier forces,
// p(NE|δ,aNE) = 0.532. By the paper's own event-probability formula,
// p(N) = p_N·(1−p_E) = 0.76·0.30 = 0.228 and p(E) = (1−p_N)·p_E = 0.168
// (the prose of Example 3 transposes these two numbers; we follow the
// formula), and p(ε) = 0.072.
func TestOutcomesExample3(t *testing.T) {
	// Per-cell relative force: column x=8 rows 3..6 = (0.6,0.5,0.8,0.9);
	// row y=6 cols 4..8 = (0.9,0.4,0.9,0.7,0.9).
	force := func(x, y int) float64 {
		if x == 8 && y >= 3 && y <= 5 {
			return []float64{0.6, 0.5, 0.8}[y-3]
		}
		if y == 6 {
			switch x {
			case 4:
				return 0.9
			case 5:
				return 0.4
			case 6:
				return 0.9
			case 7:
				return 0.7
			case 8:
				return 0.9
			}
		}
		return 0
	}
	// Note (8,6) belongs to both frontiers; the E frontier is rows 3..6 of
	// column 8 with values (0.6,0.5,0.8,0.9) — the shared corner (8,6)
	// carries 0.9 in both, consistent with the paper's numbers.
	outs := Outcomes(delta, MoveNE, force)
	want := map[string]float64{"NE": 0.532, "N": 0.228, "E": 0.168, "ε": 0.072}
	if len(outs) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outs))
	}
	for _, o := range outs {
		w, ok := want[o.Event]
		if !ok {
			t.Errorf("unexpected event %q", o.Event)
			continue
		}
		if math.Abs(o.P-w) > 1e-9 {
			t.Errorf("p(%s) = %v, want %v", o.Event, o.P, w)
		}
	}
}

// TestDoubleStepConditioning: the second step's success is conditioned on
// the first (Sec. V-B). With uniform force p, p(dd) = p², p(d) = p(1−p),
// p(ε) = 1−p.
func TestDoubleStepConditioning(t *testing.T) {
	const p = 0.8
	outs := Outcomes(delta, MoveEE, uniformForce(p))
	want := map[string]float64{"EE": p * p, "E": p * (1 - p), "ε": 1 - p}
	for _, o := range outs {
		if w, ok := want[o.Event]; !ok || math.Abs(o.P-w) > 1e-12 {
			t.Errorf("p(%s) = %v, want %v", o.Event, o.P, want[o.Event])
		}
	}
	// Destination of the full double step is two cells east.
	for _, o := range outs {
		switch o.Event {
		case "EE":
			if o.Droplet != delta.Translate(2, 0) {
				t.Errorf("EE destination = %v", o.Droplet)
			}
		case "E":
			if o.Droplet != delta.Translate(1, 0) {
				t.Errorf("E destination = %v", o.Droplet)
			}
		case "ε":
			if o.Droplet != delta {
				t.Errorf("ε destination = %v", o.Droplet)
			}
		}
	}
}

func TestZeroForceMeansNoMotion(t *testing.T) {
	for _, a := range All() {
		outs := Outcomes(delta, a, uniformForce(0))
		for _, o := range outs {
			if o.Event != "ε" && o.P != 0 {
				t.Errorf("%v: event %s has p=%v under zero force", a, o.Event, o.P)
			}
			if o.Event == "ε" && math.Abs(o.P-1) > 1e-12 {
				t.Errorf("%v: p(ε) = %v under zero force", a, o.P)
			}
		}
	}
}

func TestFullForceMeansCertainMotion(t *testing.T) {
	for _, a := range All() {
		outs := Outcomes(delta, a, uniformForce(1))
		for _, o := range outs {
			full := o.Droplet == a.Apply(delta)
			if full && math.Abs(o.P-1) > 1e-12 {
				t.Errorf("%v: full success p = %v under unit force", a, o.P)
			}
			if !full && o.P != 0 {
				t.Errorf("%v: partial event %s has p = %v under unit force", a, o.Event, o.P)
			}
		}
	}
}

func TestMeanForceClamps(t *testing.T) {
	fr := geom.Rect{XA: 1, YA: 1, XB: 2, YB: 1}
	if got := MeanForce(fr, uniformForce(2)); got != 1 {
		t.Errorf("MeanForce clamp high = %v", got)
	}
	if got := MeanForce(fr, uniformForce(-1)); got != 0 {
		t.Errorf("MeanForce clamp low = %v", got)
	}
	if got := MeanForce(geom.Rect{XA: 2, YA: 2, XB: 1, YB: 1}, uniformForce(1)); got != 0 {
		t.Errorf("MeanForce empty = %v", got)
	}
}

func TestDirs(t *testing.T) {
	if ds := MoveNE.Dirs(); len(ds) != 2 || ds[0] != geom.North || ds[1] != geom.East {
		t.Errorf("aNE dirs = %v", ds)
	}
	if ds := MoveSW.Dirs(); len(ds) != 2 || ds[0] != geom.South || ds[1] != geom.West {
		t.Errorf("aSW dirs = %v", ds)
	}
	if ds := MoveNN.Dirs(); len(ds) != 1 || ds[0] != geom.North {
		t.Errorf("aNN dirs = %v", ds)
	}
	if ds := WidenNW.Dirs(); len(ds) != 1 || ds[0] != geom.West {
		t.Errorf("aWidenNW dirs = %v", ds)
	}
	if ds := HeightenSE.Dirs(); len(ds) != 1 || ds[0] != geom.South {
		t.Errorf("aHeightenSE dirs = %v", ds)
	}
}

func TestSingleStep(t *testing.T) {
	if SingleStep(geom.North) != MoveN || SingleStep(geom.South) != MoveS ||
		SingleStep(geom.East) != MoveE || SingleStep(geom.West) != MoveW {
		t.Error("SingleStep mapping wrong")
	}
}

func TestMovesToward(t *testing.T) {
	goal := geom.Rect{XA: 10, YA: 2, XB: 14, YB: 5}
	if !MovesToward(delta, goal, MoveE) {
		t.Error("aE must move toward an eastern goal")
	}
	if MovesToward(delta, goal, MoveW) {
		t.Error("aW must not move toward an eastern goal")
	}
	if !MovesToward(delta, goal, MoveEE) {
		t.Error("aEE must move toward an eastern goal")
	}
}

func TestActuatedCellsIsTargetPattern(t *testing.T) {
	for _, a := range All() {
		if ActuatedCells(delta, a) != a.Apply(delta) {
			t.Errorf("%v: actuated cells must equal target pattern", a)
		}
	}
}

// rect is a test shorthand for geom.Rect literals.
func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

func TestFromNameRoundTrip(t *testing.T) {
	for _, a := range All() {
		got, ok := FromName(a.String())
		if !ok || got != a {
			t.Errorf("FromName(%q) = %v/%v", a.String(), got, ok)
		}
	}
	if _, ok := FromName("aTeleport"); ok {
		t.Error("unknown name accepted")
	}
}

func TestActionTextMarshalling(t *testing.T) {
	b, err := MoveNE.MarshalText()
	if err != nil || string(b) != "aNE" {
		t.Errorf("MarshalText = %q/%v", b, err)
	}
	var a Action
	if err := a.UnmarshalText([]byte("aWidenSW")); err != nil || a != WidenSW {
		t.Errorf("UnmarshalText = %v/%v", a, err)
	}
	if err := a.UnmarshalText([]byte("nope")); err == nil {
		t.Error("bad name accepted")
	}
	if _, err := Action(99).MarshalText(); err == nil {
		t.Error("invalid action marshalled")
	}
}
