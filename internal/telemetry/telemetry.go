// Package telemetry is the repository's observability layer: lock-free
// counters, gauges and fixed-bucket histograms with a JSON Snapshot, plus a
// lightweight span tracer (trace.go). The synthesis/scheduling/simulation
// stack is instrumented against the package-level default registry, so a
// process can expose everything it did — value-iteration sweeps, cache
// hits, re-syntheses, simulation cycles — through one snapshot
// (cmd/medad's /metrics endpoint, medabench's report) without threading a
// registry through every call site.
//
// All metric updates are single atomic operations; the hot paths (a Bellman
// sweep, a cache lookup) pay one uncontended atomic add. Metrics are
// process-wide monotone (counters), last-write-wins (gauges) or
// distributional (histograms); none of them consume randomness or otherwise
// perturb the instrumented code, which the simulator's determinism
// regression test relies on.
//
// The package is stdlib-only, like the rest of the module (DESIGN.md §11).
package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone; this is
// not enforced, mirroring expvar).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge (set/add semantics, last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metrics. Lookup is get-or-create; the maps are
// guarded by a mutex but each returned metric updates lock-free, so
// instrumented packages resolve their metrics once into package variables
// and never touch the registry again on the hot path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (see NewHistogram). The bounds of an existing
// histogram are not changed — the first registration wins.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON encoding (the /metrics endpoint and medabench's report embed it
// verbatim).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// CounterNames returns the registered counter names in sorted order (test
// and display helper).
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Handler serves the registry's Snapshot as indented JSON — the expvar-style
// /metrics endpoint of cmd/medad.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a just-taken snapshot of plain values cannot fail.
		_ = enc.Encode(r.Snapshot())
	})
}

// std is the process-wide default registry the stack is instrumented
// against.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// C returns a counter from the default registry.
func C(name string) *Counter { return std.Counter(name) }

// G returns a gauge from the default registry.
func G(name string) *Gauge { return std.Gauge(name) }

// H returns a histogram from the default registry.
func H(name string, bounds ...float64) *Histogram { return std.Histogram(name, bounds...) }
