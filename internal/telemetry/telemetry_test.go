package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter reads %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter reads %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge reads %v, want 2.5", g.Value())
	}
	g.Add(-1.25)
	if g.Value() != 1.25 {
		t.Fatalf("gauge reads %v, want 1.25", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter reads %d after concurrent increments, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge reads %v after concurrent adds, want 8000", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name resolved to two counters")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("same name resolved to two gauges")
	}
	h1 := r.Histogram("h", 1, 2, 3)
	h2 := r.Histogram("h", 10, 20) // later bounds ignored: first registration wins
	if h1 != h2 {
		t.Fatal("same name resolved to two histograms")
	}
	if got := len(h1.Snapshot().Bounds); got != 3 {
		t.Fatalf("histogram has %d bounds, want the first registration's 3", got)
	}
	if got := r.CounterNames(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("CounterNames = %v", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("synth.syntheses").Add(7)
	r.Gauge("pool.queue_depth").Set(3)
	h := r.Histogram("vi.sweeps", 10, 100, 1000)
	h.Observe(4)
	h.Observe(40)
	h.Observe(1e9) // overflow

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot did not round-trip:\n got %+v\nwant %+v", back, snap)
	}
	if back.Counters["synth.syntheses"] != 7 {
		t.Fatalf("counter lost in round trip: %+v", back)
	}
	hs := back.Histograms["vi.sweeps"]
	if hs.Count != 3 || len(hs.Counts) != len(hs.Bounds)+1 || hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	snap := r.Snapshot()
	c.Add(10)
	if snap.Counters["x"] != 1 {
		t.Fatalf("snapshot mutated after the fact: %d", snap.Counters["x"])
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdp.vi.sweeps").Add(123)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["mdp.vi.sweeps"] != 123 {
		t.Fatalf("served snapshot %+v", snap)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	// The default registry is process-global; use names no instrumented
	// package touches.
	C("telemetry_test.counter").Add(2)
	G("telemetry_test.gauge").Set(1.5)
	H("telemetry_test.hist", 1, 2).Observe(1)
	snap := Default().Snapshot()
	if snap.Counters["telemetry_test.counter"] != 2 {
		t.Fatalf("default counter = %d", snap.Counters["telemetry_test.counter"])
	}
	if snap.Gauges["telemetry_test.gauge"] != 1.5 {
		t.Fatalf("default gauge = %v", snap.Gauges["telemetry_test.gauge"])
	}
	if snap.Histograms["telemetry_test.hist"].Count != 1 {
		t.Fatalf("default histogram = %+v", snap.Histograms["telemetry_test.hist"])
	}
}
