// Label support: the fleet service serves many tenants from one process, so
// per-tenant metrics need a dimension beyond the flat metric name. Rather
// than complicate the lock-free metric kernel with label maps, labels are
// encoded canonically into the name — `serve.jobs.completed{tenant="acme"}`
// — which keeps every existing registry, snapshot, and handler working
// unchanged while letting consumers group or filter by label.
package telemetry

import (
	"sort"
	"strings"
)

// With renders a metric name with labels appended in canonical form:
// key/value pairs sorted by key, each rendered as key="value". Pairs must
// come in key, value order; With panics on an odd count (a programming
// error, like a bad Sprintf verb). Label values containing `"` or `\` are
// escaped so the rendering stays parseable.
//
//	With("serve.jobs.completed", "tenant", "acme")
//	  == `serve.jobs.completed{tenant="acme"}`
func With(name string, pairs ...string) string {
	if len(pairs) == 0 {
		return name
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: With requires an even number of label arguments")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `"\`) {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Base splits a metric name rendered by With back into its base name and
// label set. Names without labels return (name, nil). A malformed label
// suffix is treated as part of the base name rather than guessed at.
func Base(metric string) (string, map[string]string) {
	open := strings.IndexByte(metric, '{')
	if open < 0 || !strings.HasSuffix(metric, "}") {
		return metric, nil
	}
	body := metric[open+1 : len(metric)-1]
	labels := make(map[string]string)
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return metric, nil
		}
		key := body[:eq]
		rest := body[eq+2:]
		// Find the closing quote, honoring escapes.
		var val strings.Builder
		i := 0
		closed := false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				val.WriteByte(rest[i+1])
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return metric, nil
		}
		labels[key] = val.String()
		body = rest[i:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return metric, nil
		}
	}
	return metric[:open], labels
}
