package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decodeEvents parses a JSONL trace back into events, failing the test on
// any malformed line.
func decodeEvents(t *testing.T, data []byte) []SpanEvent {
	t.Helper()
	var evs []SpanEvent
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not parseable JSON: %v\n%s", i+1, err, line)
		}
		evs = append(evs, ev)
	}
	return evs
}

func TestTracerSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("synthesize")
	child := root.Child("model_build")
	child.End()
	solve := root.Child("solve")
	solve.End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(evs), evs)
	}
	if evs[0].Ev != "start" || evs[0].Name != "synthesize" || evs[0].Parent != 0 {
		t.Fatalf("root start event wrong: %+v", evs[0])
	}
	rootID := evs[0].ID
	if rootID == 0 {
		t.Fatal("span ids must start at 1")
	}
	if evs[1].Name != "model_build" || evs[1].Parent != rootID {
		t.Fatalf("child not parented to root: %+v", evs[1])
	}
	if evs[2].Ev != "end" || evs[2].ID != evs[1].ID {
		t.Fatalf("child end mismatched: %+v", evs[2])
	}
	if evs[3].Name != "solve" || evs[3].Parent != rootID {
		t.Fatalf("second child not parented to root: %+v", evs[3])
	}
	last := evs[5]
	if last.Ev != "end" || last.ID != rootID || last.DurNs < 0 {
		t.Fatalf("root end event wrong: %+v", last)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.Start("work")
				s.Child("inner").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != workers*per*4 {
		t.Fatalf("got %d events, want %d", len(evs), workers*per*4)
	}
	// Every id is unique among starts and every end matches a start.
	started := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Ev == "start" {
			if started[ev.ID] {
				t.Fatalf("duplicate span id %d", ev.ID)
			}
			started[ev.ID] = true
		}
	}
	for _, ev := range evs {
		if ev.Ev == "end" && !started[ev.ID] {
			t.Fatalf("end without start: %+v", ev)
		}
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.End()
	if c := s.Child("x"); c != nil {
		t.Fatal("nil span's child must be nil")
	}
}

func TestGlobalTracer(t *testing.T) {
	if StartSpan("off") != nil {
		t.Fatal("StartSpan must return nil with no tracer installed")
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	SetTracer(tr)
	defer SetTracer(nil)
	if ActiveTracer() != tr {
		t.Fatal("ActiveTracer does not return the installed tracer")
	}
	sp := StartSpan("on")
	if sp == nil {
		t.Fatal("StartSpan returned nil with a tracer installed")
	}
	sp.End()
	SetTracer(nil)
	if StartSpan("off-again") != nil {
		t.Fatal("StartSpan must return nil after the tracer is removed")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	evs := decodeEvents(t, buf.Bytes())
	if len(evs) != 2 || evs[0].Name != "on" {
		t.Fatalf("events %+v", evs)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	return 0, &json.UnsupportedValueError{}
}

func TestTracerWriteErrorSticks(t *testing.T) {
	tr := NewTracer(&failWriter{})
	// Overrun the bufio buffer so the underlying write fails.
	for i := 0; i < 10000; i++ {
		tr.Start("x").End()
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("expected a write error")
	}
}
