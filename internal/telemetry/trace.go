package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one line of the JSONL trace stream: a start event carries
// the span's name and parent id, an end event carries the duration. Span
// ids are unique within a Tracer and start at 1; parent 0 means a root
// span. Timestamps are Unix nanoseconds, so events from different
// processes can be merged on one axis.
type SpanEvent struct {
	Ev     string `json:"ev"` // "start" or "end"
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name,omitempty"`
	TNs    int64  `json:"t_ns"`
	DurNs  int64  `json:"dur_ns,omitempty"`
}

// Tracer writes span start/end events as JSON Lines. It is safe for
// concurrent use: event encoding happens under a mutex, while span-id
// allocation is a lone atomic so span creation does not serialize on the
// writer lock.
type Tracer struct {
	nextID atomic.Uint64

	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTracer returns a tracer emitting JSONL to w. Call Flush before the
// underlying writer is closed.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw)}
}

// Flush drains buffered events to the underlying writer and returns the
// first write error encountered so far.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Tracer) emit(ev SpanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = err
	}
}

// Span is one traced interval. A nil *Span is a valid no-op span — every
// method tolerates it — so instrumented code can call telemetry.StartSpan
// unconditionally and pay a single atomic load when tracing is off.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	start  time.Time
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent uint64) *Span {
	s := &Span{tracer: t, id: t.nextID.Add(1), parent: parent, start: time.Now()}
	t.emit(SpanEvent{Ev: "start", ID: s.id, Parent: parent, Name: name, TNs: s.start.UnixNano()})
	return s
}

// Child opens a span nested under s. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(name, s.id)
}

// End closes the span, emitting its duration. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tracer.emit(SpanEvent{Ev: "end", ID: s.id, TNs: now.UnixNano(), DurNs: now.Sub(s.start).Nanoseconds()})
}

// active is the process-wide tracer used by instrumented packages; nil
// (stored as a typed nil check in StartSpan) means tracing is off.
var active atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer that
// StartSpan draws from. Typically called once at startup by a -trace flag.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the installed process-wide tracer, or nil.
func ActiveTracer() *Tracer { return active.Load() }

// StartSpan opens a root span on the process-wide tracer, returning nil
// (a no-op span) when tracing is off.
func StartSpan(name string) *Span {
	t := active.Load()
	if t == nil {
		return nil
	}
	return t.Start(name)
}
