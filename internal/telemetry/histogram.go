package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Bucket i of a histogram
// with upper bounds b₀ < b₁ < … < bₙ₋₁ counts observations v ≤ bᵢ (and
// > bᵢ₋₁); one implicit overflow bucket counts v > bₙ₋₁. Observation is a
// single atomic add on the bucket plus atomic updates of the running count
// and sum, so concurrent observers never block each other.
//
// A Snapshot taken while observers are running is internally consistent per
// field but the buckets, count and sum may be skewed by a few in-flight
// observations; for the operational metrics here that is the right
// trade-off.
type Histogram struct {
	bounds  []float64      // sorted upper bounds; len ≥ 1
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// DurationBuckets are the default bounds for nanosecond timings, spanning
// 1 µs to 10 s in decades with a 3× midpoint each decade.
var DurationBuckets = []float64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10,
}

// CountBuckets are the default bounds for small cardinalities (sweeps per
// solve, cycles per operation, states per model).
var CountBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (sorted and deduplicated; DurationBuckets when none are given). Bounds
// must be finite — the overflow bucket is implicit.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	sorted := make([]float64, len(bounds))
	copy(sorted, bounds)
	sort.Float64s(sorted)
	dedup := sorted[:0]
	for _, b := range sorted {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("telemetry: histogram bounds must be finite")
		}
		if len(dedup) == 0 || b > dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, buckets: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration given in nanoseconds (timing call
// sites pass time.Since(t0).Nanoseconds()).
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns)) }

// bucketOf returns the index of the bucket counting v: the first bound
// ≥ v, or the overflow bucket.
func (h *Histogram) bucketOf(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, the standard fixed-bucket estimate: the
// first bucket interpolates from 0, the overflow bucket is clamped to the
// largest bound. An empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is the JSON form of a histogram: the bucket upper
// bounds, the per-bucket counts (one longer than bounds — the last entry is
// the overflow bucket), and the running count and sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
