package telemetry

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// approx compares within a small absolute tolerance (quantile estimates are
// linear interpolations, not exact order statistics).
func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHistogramBucketBoundaries(t *testing.T) {
	tests := []struct {
		name   string
		bounds []float64
		obs    []float64
		counts []int64 // per bucket, overflow last
	}{
		{
			name:   "values land in the first bucket with bound >= v",
			bounds: []float64{10, 20, 30},
			obs:    []float64{1, 10, 11, 20, 29, 30},
			counts: []int64{2, 2, 2, 0},
		},
		{
			name:   "exact boundary counts into the lower bucket",
			bounds: []float64{1, 2},
			obs:    []float64{1, 1, 2},
			counts: []int64{2, 1, 0},
		},
		{
			name:   "overflow bucket catches everything above the top bound",
			bounds: []float64{5},
			obs:    []float64{5.0001, 1e12, math.Inf(1)},
			counts: []int64{0, 3},
		},
		{
			name:   "negative and zero observations land in the first bucket",
			bounds: []float64{10, 20},
			obs:    []float64{-5, 0},
			counts: []int64{2, 0, 0},
		},
		{
			name:   "unsorted duplicate bounds are sorted and deduplicated",
			bounds: []float64{30, 10, 20, 10},
			obs:    []float64{15, 25, 5},
			counts: []int64{1, 1, 1, 0},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds...)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			s := h.Snapshot()
			if !reflect.DeepEqual(s.Counts, tc.counts) {
				t.Fatalf("bucket counts = %v, want %v (bounds %v)", s.Counts, tc.counts, s.Bounds)
			}
			if s.Count != int64(len(tc.obs)) {
				t.Fatalf("count = %d, want %d", s.Count, len(tc.obs))
			}
		})
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{0.5, 2.5, 100} {
		h.Observe(v)
	}
	if !approx(h.Sum(), 103) {
		t.Fatalf("sum = %v, want 103", h.Sum())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	tests := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
	}{
		{
			name:   "median interpolates within the containing bucket",
			bounds: []float64{10, 20},
			obs:    []float64{1, 2, 3, 4}, // all in (0, 10]
			q:      0.5,
			want:   5, // rank 2 of 4 → half-way through [0, 10]
		},
		{
			name:   "quantile crossing bucket edges",
			bounds: []float64{10, 20},
			obs:    []float64{5, 15, 15, 15}, // one in first, three in second
			q:      0.25,
			want:   10, // rank 1 of 4 → end of the first bucket
		},
		{
			name:   "upper quantile inside the second bucket",
			bounds: []float64{10, 20},
			obs:    []float64{5, 15, 15, 15},
			q:      1,
			want:   20, // rank 4 → end of the second bucket
		},
		{
			name:   "overflow observations clamp to the top bound",
			bounds: []float64{10, 20},
			obs:    []float64{100, 200, 300},
			q:      0.5,
			want:   20,
		},
		{
			name:   "q below zero clamps to the minimum",
			bounds: []float64{10},
			obs:    []float64{5, 5},
			q:      -1,
			want:   0,
		},
		{
			name:   "q above one clamps to the maximum",
			bounds: []float64{10},
			obs:    []float64{5, 5},
			q:      2,
			want:   10,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds...)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); !approx(got, tc.want) {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("NaN quantile request = %v, want NaN", got)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot %+v", s)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram() // DurationBuckets
	h.ObserveDuration(2_000_000)
	s := h.Snapshot()
	if !reflect.DeepEqual(s.Bounds, DurationBuckets) {
		t.Fatalf("default bounds = %v", s.Bounds)
	}
	// 2 ms lands in the (1e6, 3e6] bucket.
	for i, b := range s.Bounds {
		want := int64(0)
		if b == 3e6 {
			want = 1
		}
		if s.Counts[i] != want {
			t.Fatalf("bucket %v holds %d, want %d", b, s.Counts[i], want)
		}
	}
}

func TestHistogramRejectsNonFiniteBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on +Inf bound")
		}
	}()
	NewHistogram(1, math.Inf(1))
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(CountBuckets...)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 7))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	perWorker := 0
	for i := 0; i < per; i++ {
		perWorker += i % 7
	}
	wantSum := float64(workers * perWorker)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	total := int64(0)
	for _, n := range h.Snapshot().Counts {
		total += n
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}
