package telemetry

import (
	"reflect"
	"testing"
)

func TestWithCanonicalOrder(t *testing.T) {
	a := With("serve.jobs.completed", "tenant", "acme", "chip", "c1")
	b := With("serve.jobs.completed", "chip", "c1", "tenant", "acme")
	if a != b {
		t.Fatalf("label order should not matter: %q vs %q", a, b)
	}
	want := `serve.jobs.completed{chip="c1",tenant="acme"}`
	if a != want {
		t.Fatalf("got %q, want %q", a, want)
	}
	if got := With("plain"); got != "plain" {
		t.Fatalf("no labels should be identity, got %q", got)
	}
}

func TestWithOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count should panic")
		}
	}()
	With("x", "tenant")
}

func TestBaseRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		pairs  []string
		labels map[string]string
	}{
		{"serve.jobs.completed", []string{"tenant", "acme"}, map[string]string{"tenant": "acme"}},
		{"m", []string{"a", "1", "b", "2"}, map[string]string{"a": "1", "b": "2"}},
		{"m", []string{"k", `quo"te\slash`}, map[string]string{"k": `quo"te\slash`}},
	}
	for _, c := range cases {
		metric := With(c.name, c.pairs...)
		base, labels := Base(metric)
		if base != c.name || !reflect.DeepEqual(labels, c.labels) {
			t.Errorf("Base(%q) = %q, %v; want %q, %v", metric, base, labels, c.name, c.labels)
		}
	}
}

func TestBaseWithoutLabels(t *testing.T) {
	base, labels := Base("sim.cycles")
	if base != "sim.cycles" || labels != nil {
		t.Fatalf("got %q, %v", base, labels)
	}
	// Malformed suffixes fall back to the whole name.
	for _, m := range []string{"x{", "x{a=1}", `x{a="1}`} {
		base, labels = Base(m)
		if base != m || labels != nil {
			t.Errorf("Base(%q) = %q, %v; want identity", m, base, labels)
		}
	}
}

func TestLabeledMetricsAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.Counter(With("jobs", "tenant", "a")).Add(2)
	r.Counter(With("jobs", "tenant", "b")).Add(3)
	s := r.Snapshot()
	if s.Counters[`jobs{tenant="a"}`] != 2 || s.Counters[`jobs{tenant="b"}`] != 3 {
		t.Fatalf("labeled counters not distinct: %v", s.Counters)
	}
}
