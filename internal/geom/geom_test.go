package geom

import (
	"testing"
	"testing/quick"
)

func TestCellManhattan(t *testing.T) {
	cases := []struct {
		a, b Cell
		want int
	}{
		{Cell{1, 1}, Cell{1, 1}, 0},
		{Cell{1, 1}, Cell{2, 1}, 1},
		{Cell{1, 1}, Cell{4, 5}, 7},
		{Cell{4, 5}, Cell{1, 1}, 7},
		{Cell{-2, 3}, Cell{2, -3}, 10},
	}
	for _, c := range cases {
		if got := c.a.Manhattan(c.b); got != c.want {
			t.Errorf("Manhattan(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCellChebyshev(t *testing.T) {
	if got := (Cell{1, 1}).Chebyshev(Cell{4, 2}); got != 3 {
		t.Errorf("Chebyshev = %d, want 3", got)
	}
	if got := (Cell{1, 5}).Chebyshev(Cell{2, 1}); got != 4 {
		t.Errorf("Chebyshev = %d, want 4", got)
	}
}

func TestManhattanSymmetricAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Cell{int(ax), int(ay)}
		b := Cell{int(bx), int(by)}
		c := Cell{int(cx), int(cy)}
		if a.Manhattan(b) != b.Manhattan(a) {
			return false
		}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalLen(t *testing.T) {
	if got := (Interval{3, 7}).Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if got := (Interval{7, 3}).Len(); got != 0 {
		t.Errorf("empty Len = %d, want 0", got)
	}
	if !(Interval{7, 3}).Empty() {
		t.Error("Interval{7,3} should be empty")
	}
	if (Interval{4, 4}).Len() != 1 {
		t.Error("singleton interval should have length 1")
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := (Interval{1, 5}).Intersect(Interval{3, 9})
	if got != (Interval{3, 5}) {
		t.Errorf("Intersect = %v, want {3,5}", got)
	}
	if !(Interval{1, 2}).Intersect(Interval{5, 9}).Empty() {
		t.Error("disjoint intervals should intersect to empty")
	}
}

// TestRectPaperExample1 checks Example 1 of the paper: δ = (3,2,7,5) has
// w = 5, h = 4, A = 20 and AR = 5/4.
func TestRectPaperExample1(t *testing.T) {
	d := NewRect(3, 2, 7, 5)
	if d.Width() != 5 {
		t.Errorf("Width = %d, want 5", d.Width())
	}
	if d.Height() != 4 {
		t.Errorf("Height = %d, want 4", d.Height())
	}
	if d.Area() != 20 {
		t.Errorf("Area = %d, want 20", d.Area())
	}
	if d.AspectRatio() != 1.25 {
		t.Errorf("AspectRatio = %v, want 1.25", d.AspectRatio())
	}
}

func TestRectAroundPaperExample4(t *testing.T) {
	// M1 dis with center (17.5, 2.5) and a 4×4 droplet occupies (16,1,19,4).
	got := RectAround(17.5, 2.5, 4, 4)
	want := Rect{16, 1, 19, 4}
	if got != want {
		t.Errorf("RectAround(17.5,2.5,4,4) = %v, want %v", got, want)
	}
	// M4 mag centered at (40.5, 15.5) with a 6×5 droplet is (38,14,43,18).
	got = RectAround(40.5, 15.5, 6, 5)
	want = Rect{38, 14, 43, 18}
	if got != want {
		t.Errorf("RectAround(40.5,15.5,6,5) = %v, want %v", got, want)
	}
}

func TestRectCenterInverse(t *testing.T) {
	f := func(xa, ya uint8, w, h uint8) bool {
		ww := int(w%10) + 1
		hh := int(h%10) + 1
		r := Rect{int(xa) + 1, int(ya) + 1, int(xa) + ww, int(ya) + hh}
		cx, cy := r.Center()
		return RectAround(cx, cy, ww, hh) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectOverlap(t *testing.T) {
	a := NewRect(1, 1, 4, 4)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(4, 4, 6, 6), true},
		{NewRect(5, 5, 6, 6), false},
		{NewRect(2, 2, 3, 3), true},
		{NewRect(1, 5, 4, 8), false},
		{NewRect(5, 1, 8, 4), false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(1, 1, 5, 5)
	b := NewRect(3, 4, 8, 9)
	got, ok := a.Intersect(b)
	if !ok || got != (Rect{3, 4, 5, 5}) {
		t.Errorf("Intersect = %v/%v, want (3,4,5,5)/true", got, ok)
	}
	if u := a.Union(b); u != (Rect{1, 1, 8, 9}) {
		t.Errorf("Union = %v, want (1,1,8,9)", u)
	}
	if _, ok := a.Intersect(NewRect(6, 6, 7, 7)); ok {
		t.Error("disjoint rects should not intersect")
	}
}

func TestRectIntersectionIsContained(t *testing.T) {
	f := func(xa, ya, xb, yb, xc, yc, xd, yd uint8) bool {
		a := Rect{int(xa), int(ya), int(xa) + int(xb%20), int(ya) + int(yb%20)}
		b := Rect{int(xc), int(yc), int(xc) + int(xd%20), int(yc) + int(yd%20)}
		iv, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if !ok {
			return true
		}
		return a.ContainsRect(iv) && b.ContainsRect(iv) &&
			a.Union(b).ContainsRect(a) && a.Union(b).ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectClamp(t *testing.T) {
	cases := []struct {
		in   Rect
		want Rect
	}{
		{Rect{-2, 3, 1, 6}, Rect{1, 3, 4, 6}},        // slides east
		{Rect{58, 28, 63, 31}, Rect{55, 27, 60, 30}}, // slides back inside
		{Rect{5, 5, 8, 8}, Rect{5, 5, 8, 8}},         // already inside
		{Rect{-5, -5, 100, 100}, Rect{1, 1, 60, 30}}, // larger than chip
		{Rect{0, 0, 3, 3}, Rect{1, 1, 4, 4}},         // corner slide
		{Rect{60, 30, 61, 31}, Rect{59, 29, 60, 30}}, // far corner slide
	}
	for _, c := range cases {
		if got := c.in.Clamp(60, 30); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectClampPreservesSize(t *testing.T) {
	f := func(xa, ya int8, w, h uint8) bool {
		ww := int(w%8) + 1
		hh := int(h%8) + 1
		r := Rect{int(xa), int(ya), int(xa) + ww - 1, int(ya) + hh - 1}
		cl := r.Clamp(60, 30)
		return cl.Width() == ww && cl.Height() == hh &&
			cl.XA >= 1 && cl.YA >= 1 && cl.XB <= 60 && cl.YB <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectCells(t *testing.T) {
	r := NewRect(2, 3, 3, 4)
	cells := r.Cells()
	want := []Cell{{2, 3}, {3, 3}, {2, 4}, {3, 4}}
	if len(cells) != len(want) {
		t.Fatalf("len(Cells) = %d, want %d", len(cells), len(want))
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("Cells[%d] = %v, want %v", i, cells[i], want[i])
		}
	}
	if len(r.Cells()) != r.Area() {
		t.Error("len(Cells) must equal Area")
	}
}

func TestDirDelta(t *testing.T) {
	for _, d := range Cardinals {
		dx, dy := d.Delta()
		ox, oy := d.Opposite().Delta()
		if dx != -ox || dy != -oy {
			t.Errorf("Opposite(%v) delta mismatch", d)
		}
		if abs(dx)+abs(dy) != 1 {
			t.Errorf("%v delta is not a unit step", d)
		}
	}
	if !East.Horizontal() || !West.Horizontal() || North.Horizontal() || South.Horizontal() {
		t.Error("Horizontal misclassifies directions")
	}
}

func TestDirString(t *testing.T) {
	names := map[Dir]string{North: "N", South: "S", East: "E", West: "W"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("String(%d) = %q, want %q", d, d.String(), want)
		}
	}
}

func TestRectString(t *testing.T) {
	if s := NewRect(3, 2, 7, 5).String(); s != "(3,2,7,5)" {
		t.Errorf("String = %q", s)
	}
	if !ZeroRect.IsZero() {
		t.Error("ZeroRect must be zero")
	}
	if NewRect(1, 1, 1, 1).IsZero() {
		t.Error("unit rect is not zero")
	}
}

func TestTranslateExpand(t *testing.T) {
	r := NewRect(3, 2, 7, 5)
	if got := r.Translate(2, -1); got != (Rect{5, 1, 9, 4}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Expand(3); got != (Rect{0, -1, 10, 8}) {
		t.Errorf("Expand = %v", got)
	}
	if got := r.Expand(0); got != r {
		t.Errorf("Expand(0) changed rect: %v", got)
	}
}

func TestCellStringAndAdd(t *testing.T) {
	c := Cell{3, 7}
	if c.String() != "(3,7)" {
		t.Errorf("String = %q", c.String())
	}
	if c.Add(2, -3) != (Cell{5, 4}) {
		t.Errorf("Add = %v", c.Add(2, -3))
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{3, 7}
	for _, v := range []int{3, 5, 7} {
		if !iv.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int{2, 8} {
		if iv.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(3, 2, 7, 5)
	if !r.Contains(Cell{3, 2}) || !r.Contains(Cell{7, 5}) || !r.Contains(Cell{5, 4}) {
		t.Error("corner/interior cells must be contained")
	}
	if r.Contains(Cell{2, 2}) || r.Contains(Cell{8, 5}) || r.Contains(Cell{5, 6}) {
		t.Error("outside cells must not be contained")
	}
	if !r.ContainsRect(NewRect(4, 3, 6, 4)) {
		t.Error("inner rect must be contained")
	}
	if r.ContainsRect(NewRect(4, 3, 8, 4)) {
		t.Error("overhanging rect must not be contained")
	}
}

func TestNewRectPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRect(5, 5, 3, 3)
}

func TestRectAroundNegativeCenters(t *testing.T) {
	// roundHalfUp's negative branch: centers below zero still produce the
	// right-sized rectangle.
	r := RectAround(-2.5, -2.5, 4, 4)
	if r.Width() != 4 || r.Height() != 4 {
		t.Errorf("negative-center rect = %v", r)
	}
	cx, cy := r.Center()
	if cx != -2.5 || cy != -2.5 {
		t.Errorf("center round trip = (%v,%v)", cx, cy)
	}
}
