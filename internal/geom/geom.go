// Package geom provides the discrete geometry primitives used throughout the
// MEDA biochip model: microelectrode-cell coordinates, axis-aligned rectangles
// over the microelectrode grid, discrete intervals, and compass directions.
//
// Following the paper's convention, the unit of length is the center distance
// between two adjacent microelectrodes (the MC pitch), and chip coordinates
// are 1-based: x ∈ [1, W], y ∈ [1, H]. The all-zero rectangle (0,0,0,0) is
// reserved for "off-chip" (e.g. a droplet before dispensing).
package geom

import "fmt"

// Cell is the integer coordinate of a single microelectrode cell (MC).
type Cell struct {
	X, Y int
}

// String returns the cell formatted as "(x,y)".
func (c Cell) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the Manhattan (L1) distance between two cells.
func (c Cell) Manhattan(o Cell) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

// Chebyshev returns the Chebyshev (L∞) distance between two cells.
func (c Cell) Chebyshev(o Cell) int {
	dx, dy := abs(c.X-o.X), abs(c.Y-o.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// Add returns the cell translated by (dx, dy).
func (c Cell) Add(dx, dy int) Cell { return Cell{c.X + dx, c.Y + dy} }

// Interval is a discrete interval [Lo, Hi] ⊂ ℕ (inclusive on both ends),
// written ⟦Lo, Hi⟧ in the paper. An interval with Hi < Lo is empty.
type Interval struct {
	Lo, Hi int
}

// Len returns the number of integers in the interval (0 if empty).
func (iv Interval) Len() int {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{max(iv.Lo, o.Lo), min(iv.Hi, o.Hi)}
}

// Rect is an axis-aligned rectangle of microelectrode cells, described by its
// lower-left corner (XA, YA) and upper-right corner (XB, YB), both inclusive.
// This is exactly the droplet tuple δ = (x_a, y_a, x_b, y_b) of the paper.
type Rect struct {
	XA, YA, XB, YB int
}

// NewRect constructs a rectangle, panicking on inverted corners; use it for
// literals where the programmer asserts validity.
func NewRect(xa, ya, xb, yb int) Rect {
	r := Rect{xa, ya, xb, yb}
	if !r.Valid() {
		panic(fmt.Sprintf("geom: invalid rect (%d,%d,%d,%d)", xa, ya, xb, yb))
	}
	return r
}

// RectAround returns the w×h rectangle whose center is closest to the real
// point (cx, cy). It mirrors the paper's convention that a module with center
// location loc=(17.5, 2.5) and a 4×4 droplet occupies (16,1,19,4).
func RectAround(cx, cy float64, w, h int) Rect {
	xa := int(roundHalfUp(cx - float64(w)/2 + 0.5))
	ya := int(roundHalfUp(cy - float64(h)/2 + 0.5))
	return Rect{xa, ya, xa + w - 1, ya + h - 1}
}

func roundHalfUp(v float64) float64 {
	f := float64(int(v))
	if v >= 0 {
		if v-f >= 0.5 {
			return f + 1
		}
		return f
	}
	if f-v > 0.5 {
		return f - 1
	}
	return f
}

// ZeroRect is the off-chip sentinel rectangle (0,0,0,0).
var ZeroRect = Rect{}

// IsZero reports whether the rectangle is the off-chip sentinel.
func (r Rect) IsZero() bool { return r == ZeroRect }

// Valid reports whether the corners are ordered (XB ≥ XA and YB ≥ YA).
func (r Rect) Valid() bool { return r.XB >= r.XA && r.YB >= r.YA }

// Width returns w = XB − XA + 1.
func (r Rect) Width() int { return r.XB - r.XA + 1 }

// Height returns h = YB − YA + 1.
func (r Rect) Height() int { return r.YB - r.YA + 1 }

// Area returns the number of cells w·h.
func (r Rect) Area() int { return r.Width() * r.Height() }

// AspectRatio returns AR = w/h.
func (r Rect) AspectRatio() float64 {
	return float64(r.Width()) / float64(r.Height())
}

// Center returns the real-valued center ((XA+XB)/2, (YA+YB)/2).
func (r Rect) Center() (cx, cy float64) {
	return float64(r.XA+r.XB) / 2, float64(r.YA+r.YB) / 2
}

// XRange returns the horizontal extent ⟦XA, XB⟧.
func (r Rect) XRange() Interval { return Interval{r.XA, r.XB} }

// YRange returns the vertical extent ⟦YA, YB⟧.
func (r Rect) YRange() Interval { return Interval{r.YA, r.YB} }

// Contains reports whether the cell lies inside the rectangle.
func (r Rect) Contains(c Cell) bool {
	return r.XA <= c.X && c.X <= r.XB && r.YA <= c.Y && c.Y <= r.YB
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	return r.XA <= o.XA && o.XB <= r.XB && r.YA <= o.YA && o.YB <= r.YB
}

// Overlaps reports whether the two rectangles share at least one cell.
func (r Rect) Overlaps(o Rect) bool {
	return r.XA <= o.XB && o.XA <= r.XB && r.YA <= o.YB && o.YA <= r.YB
}

// Intersect returns the common sub-rectangle and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	x := r.XRange().Intersect(o.XRange())
	y := r.YRange().Intersect(o.YRange())
	if x.Empty() || y.Empty() {
		return ZeroRect, false
	}
	return Rect{x.Lo, y.Lo, x.Hi, y.Hi}, true
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		min(r.XA, o.XA), min(r.YA, o.YA),
		max(r.XB, o.XB), max(r.YB, o.YB),
	}
}

// Expand grows the rectangle by m cells on every side.
func (r Rect) Expand(m int) Rect {
	return Rect{r.XA - m, r.YA - m, r.XB + m, r.YB + m}
}

// Clamp restricts the rectangle to the chip bounds ⟦1,W⟧×⟦1,H⟧, preserving
// its size where possible by translating, and shrinking only if it does not
// fit at all.
func (r Rect) Clamp(w, h int) Rect {
	out := r
	if out.Width() > w {
		out.XA, out.XB = 1, w
	} else {
		if out.XA < 1 {
			out.XB += 1 - out.XA
			out.XA = 1
		}
		if out.XB > w {
			out.XA -= out.XB - w
			out.XB = w
		}
	}
	if out.Height() > h {
		out.YA, out.YB = 1, h
	} else {
		if out.YA < 1 {
			out.YB += 1 - out.YA
			out.YA = 1
		}
		if out.YB > h {
			out.YA -= out.YB - h
			out.YB = h
		}
	}
	return out
}

// Translate returns the rectangle shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.XA + dx, r.YA + dy, r.XB + dx, r.YB + dy}
}

// Cells returns all cells of the rectangle in row-major order (y outer).
func (r Rect) Cells() []Cell {
	if !r.Valid() {
		return nil
	}
	out := make([]Cell, 0, r.Area())
	for y := r.YA; y <= r.YB; y++ {
		for x := r.XA; x <= r.XB; x++ {
			out = append(out, Cell{x, y})
		}
	}
	return out
}

// String returns the paper-style tuple "(xa,ya,xb,yb)".
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", r.XA, r.YA, r.XB, r.YB)
}

// Dir is a compass direction. The paper uses the cardinal directions N, S, E,
// W for movement analysis; ordinal directions are composed of two cardinals.
type Dir uint8

// Cardinal directions.
const (
	North Dir = iota
	South
	East
	West
)

// Cardinals lists the four cardinal directions in the paper's N,S,E,W order.
var Cardinals = [4]Dir{North, South, East, West}

// String returns the single-letter name used in the paper.
func (d Dir) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	}
	return "?"
}

// Delta returns the unit step (dx, dy) for the direction; North is +y.
func (d Dir) Delta() (dx, dy int) {
	switch d {
	case North:
		return 0, 1
	case South:
		return 0, -1
	case East:
		return 1, 0
	case West:
		return -1, 0
	}
	return 0, 0
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	default:
		return East
	}
}

// Horizontal reports whether the direction is East or West.
func (d Dir) Horizontal() bool { return d == East || d == West }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
