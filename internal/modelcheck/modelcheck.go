// Package modelcheck statically verifies the well-formedness invariants
// that the synthesis framework's guarantees rest on. The reduction of
// Sec. VI-C (SMG → per-job MDP) and the CSR solver engine are only sound
// over models that are row-stochastic, dangling-free and label-closed, and
// the strategies they emit are only executable when total over every state
// a run can actually reach; none of that is enforced by Go's type system.
// This package checks each invariant over built artifacts — run it as
// `medalint -models` against the benchmark assays, from tests, or (behind
// the medacheck build tag) as library assertions on every synthesis.
//
// The checks are:
//
//	row-stochastic     every choice's probabilities lie in [0,1] and sum
//	                   to 1 within 1e-9
//	dangling-target    every transition targets an existing state
//	reverse-index      the CSR reverse-edge index the solvers walk agrees
//	                   exactly with the forward transition structure
//	strategy-totality  the strategy selects a valid choice at every state
//	                   reachable from the initial state under itself
//	hazard-closure     goal and hazard labels are disjoint and the hazard
//	                   set is closed under all transitions, so encoding
//	                   □¬hazard by making hazard states losing is sound
//
// Violations carry the state id, choice index and caller-supplied action
// id, so a bad choice in a generated model traces back to the microfluidic
// action that produced it.
package modelcheck

import (
	"fmt"
	"math"

	"meda/internal/action"
	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/smg"
)

// ProbEps is the row-stochasticity tolerance: choice distributions must
// sum to 1 within this bound, matching the solver's convergence epsilon.
const ProbEps = 1e-9

// Violation is one invariant breach, located by state, choice and action.
type Violation struct {
	Check  string      // which invariant: "row-stochastic", "dangling-target", ...
	State  mdp.StateID // offending state, -1 when not state-specific
	Choice int         // choice index within the state, -1 when n/a
	Action int         // caller-supplied action id of that choice, -1 when n/a
	Detail string
}

// String formats the violation with its full location.
func (v Violation) String() string {
	loc := fmt.Sprintf("state %d", v.State)
	if v.Choice >= 0 {
		loc += fmt.Sprintf(" choice %d (action %d)", v.Choice, v.Action)
	}
	return fmt.Sprintf("%s: %s: %s", v.Check, loc, v.Detail)
}

// CheckMDP verifies row-stochasticity and dangling-target freedom over the
// builder representation: every choice has transitions, probabilities lie
// in [0,1] (within ProbEps) and sum to 1 within ProbEps, rewards are
// non-negative, and every target state exists.
func CheckMDP(m *mdp.MDP) []Violation {
	var vs []Violation
	n := m.NumStates()
	for s := 0; s < n; s++ {
		for ci, c := range m.Choices(mdp.StateID(s)) {
			v := func(check, format string, args ...interface{}) {
				vs = append(vs, Violation{Check: check, State: mdp.StateID(s), Choice: ci, Action: c.Action,
					Detail: fmt.Sprintf(format, args...)})
			}
			if len(c.Transitions) == 0 {
				v("row-stochastic", "choice has no transitions")
				continue
			}
			if c.Reward < 0 {
				v("row-stochastic", "negative reward %v", c.Reward)
			}
			total := 0.0
			for _, tr := range c.Transitions {
				if tr.To < 0 || int(tr.To) >= n {
					v("dangling-target", "transition targets out-of-range state %d (|S| = %d)", tr.To, n)
					continue
				}
				if tr.P < -ProbEps || tr.P > 1+ProbEps {
					v("row-stochastic", "probability %v outside [0,1]", tr.P)
				}
				total += tr.P
			}
			if !mdp.ApproxEqual(total, 1, ProbEps) {
				v("row-stochastic", "probabilities sum to %v (want 1 within %g)", total, ProbEps)
			}
		}
	}
	return vs
}

// CheckCSR verifies that the CSR flattening the solvers run on mirrors the
// builder representation exactly, and that the reverse-edge index is
// consistent with the forward transitions: every positive-probability edge
// s→t appears (deduplicated per choice) under t, and nothing else does.
// The model must be free of dangling targets (CheckMDP) first.
func CheckCSR(m *mdp.MDP) []Violation {
	var vs []Violation
	g := m.CSR()
	n := m.NumStates()
	if g.NumStates != n {
		return []Violation{{Check: "reverse-index", State: -1, Choice: -1, Action: -1,
			Detail: fmt.Sprintf("CSR has %d states, builder has %d", g.NumStates, n)}}
	}
	ci := 0
	for s := 0; s < n; s++ {
		choices := m.Choices(mdp.StateID(s))
		if int(g.StateOff[s+1]-g.StateOff[s]) != len(choices) {
			vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(s), Choice: -1, Action: -1,
				Detail: fmt.Sprintf("CSR has %d choices, builder has %d", g.StateOff[s+1]-g.StateOff[s], len(choices))})
			return vs
		}
		for cj, c := range choices {
			gi := int(g.StateOff[s]) + cj
			if int(g.Actions[gi]) != c.Action || !mdp.ApproxEqual(g.Rewards[gi], c.Reward, 0) {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(s), Choice: cj, Action: c.Action,
					Detail: fmt.Sprintf("CSR choice (action %d, reward %v) differs from builder (action %d, reward %v)",
						g.Actions[gi], g.Rewards[gi], c.Action, c.Reward)})
			}
			if g.ChoiceState[gi] != int32(s) {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(s), Choice: cj, Action: c.Action,
					Detail: fmt.Sprintf("ChoiceState maps global choice %d to state %d", gi, g.ChoiceState[gi])})
			}
			if int(g.ChoiceOff[gi+1]-g.ChoiceOff[gi]) != len(c.Transitions) {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(s), Choice: cj, Action: c.Action,
					Detail: fmt.Sprintf("CSR has %d transitions, builder has %d",
						g.ChoiceOff[gi+1]-g.ChoiceOff[gi], len(c.Transitions))})
			}
			ci++
		}
	}
	// Expected reverse index: per target, the set of global choices with a
	// positive-probability edge in, deduplicated.
	expect := make([]map[int32]bool, n)
	for t := range expect {
		expect[t] = make(map[int32]bool)
	}
	nc := len(g.Actions)
	for gi := 0; gi < nc; gi++ {
		for ti := g.ChoiceOff[gi]; ti < g.ChoiceOff[gi+1]; ti++ {
			if g.Probs[ti] > 0 {
				expect[g.Tos[ti]][int32(gi)] = true
			}
		}
	}
	for t := 0; t < n; t++ {
		got := g.RevChoice[g.RevOff[t]:g.RevOff[t+1]]
		seen := make(map[int32]bool, len(got))
		for _, gi := range got {
			if seen[gi] {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(t), Choice: -1, Action: -1,
					Detail: fmt.Sprintf("global choice %d listed twice under target %d", gi, t)})
			}
			seen[gi] = true
			if !expect[t][gi] {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(t), Choice: -1, Action: -1,
					Detail: fmt.Sprintf("reverse index lists choice %d under target %d without a positive forward edge", gi, t)})
			}
		}
		for gi := range expect[t] {
			if !seen[gi] {
				vs = append(vs, Violation{Check: "reverse-index", State: mdp.StateID(t), Choice: -1, Action: -1,
					Detail: fmt.Sprintf("positive edge from choice %d (state %d) missing under target %d", gi, g.ChoiceState[gi], t)})
			}
		}
	}
	return vs
}

// CheckStrategy verifies totality over reachable states: walking the MDP
// from init under the strategy, every encountered state that is neither a
// target, an avoid state, nor choiceless must have a valid selected
// choice. A -1 (or out-of-range) selection at a reachable state means the
// controller would reach a configuration with no action to issue.
func CheckStrategy(m *mdp.MDP, st mdp.Strategy, init mdp.StateID, target, avoid []bool) []Violation {
	var vs []Violation
	n := m.NumStates()
	if len(st) != n {
		return []Violation{{Check: "strategy-totality", State: -1, Choice: -1, Action: -1,
			Detail: fmt.Sprintf("strategy covers %d states, model has %d", len(st), n)}}
	}
	seen := make([]bool, n)
	queue := []mdp.StateID{init}
	seen[init] = true
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if target[s] || (avoid != nil && avoid[s]) {
			continue // runs end (or are forbidden) here; no action needed
		}
		choices := m.Choices(s)
		if len(choices) == 0 {
			continue
		}
		if st[s] < 0 || st[s] >= len(choices) {
			vs = append(vs, Violation{Check: "strategy-totality", State: s, Choice: st[s], Action: -1,
				Detail: fmt.Sprintf("reachable state has no selected choice (selection %d of %d choices)", st[s], len(choices))})
			continue
		}
		for _, tr := range choices[st[s]].Transitions {
			if tr.P > 0 && !seen[tr.To] {
				seen[tr.To] = true
				queue = append(queue, tr.To)
			}
		}
	}
	return vs
}

// CheckHazardClosure verifies that the hazard label is sound for the
// solver's □¬hazard encoding: no state is both goal and hazard, and the
// hazard set is closed — every transition of every choice of a hazard
// state stays inside the hazard set. (MaxReachProb pins hazard states to
// value 0 and ignores their choices; that is only equivalent to the
// safety-constrained query when no run can leave the hazard set again.)
func CheckHazardClosure(m *mdp.MDP, goal, hazard []bool) []Violation {
	var vs []Violation
	n := m.NumStates()
	for s := 0; s < n; s++ {
		if goal[s] && hazard[s] {
			vs = append(vs, Violation{Check: "hazard-closure", State: mdp.StateID(s), Choice: -1, Action: -1,
				Detail: "state is labeled both goal and hazard"})
		}
		if !hazard[s] {
			continue
		}
		for ci, c := range m.Choices(mdp.StateID(s)) {
			for _, tr := range c.Transitions {
				if tr.P > 0 && int(tr.To) < n && !hazard[tr.To] {
					vs = append(vs, Violation{Check: "hazard-closure", State: mdp.StateID(s), Choice: ci, Action: c.Action,
						Detail: fmt.Sprintf("hazard state can leave the hazard set (to state %d with p=%v)", tr.To, tr.P)})
				}
			}
		}
	}
	return vs
}

// CheckReduced runs every invariant over a reduced per-job model as built
// by smg.Induce, plus the reduction-specific frontier condition: every
// droplet rectangle lies within the job's hazard bounds, and no enabled
// choice's action moves a frontier rectangle outside them (the guard
// construction must have dropped such actions, making HazardSink
// unreachable and the frontier hazard-closed). A nil strategy skips the
// totality check.
func CheckReduced(model *smg.Model, st mdp.Strategy, bounds geom.Rect) []Violation {
	vs := CheckMDP(model.M)
	for _, v := range vs {
		if v.Check == "dangling-target" {
			return vs // CSR construction would index out of range
		}
	}
	vs = append(vs, CheckCSR(model.M)...)
	vs = append(vs, CheckHazardClosure(model.M, model.Goal, model.Hazard)...)
	if st != nil {
		vs = append(vs, CheckStrategy(model.M, st, model.Init, model.Goal, model.Hazard)...)
	}

	// Frontier hazard-closure over the droplet rectangles.
	for id := 0; id < model.NumPositions(); id++ {
		s := mdp.StateID(id)
		d, ok := model.RectOf(s)
		if !ok {
			continue
		}
		if smg.HazardLabel(d, bounds) {
			vs = append(vs, Violation{Check: "hazard-closure", State: s, Choice: -1, Action: -1,
				Detail: fmt.Sprintf("droplet rectangle %v lies outside the hazard bounds %v", d, bounds)})
			continue
		}
		for ci, c := range model.M.Choices(s) {
			if c.Action < 0 {
				continue // bookkeeping choice
			}
			if moved := action.Action(c.Action).Apply(d); !bounds.ContainsRect(moved) {
				vs = append(vs, Violation{Check: "hazard-closure", State: s, Choice: ci, Action: c.Action,
					Detail: fmt.Sprintf("enabled action moves frontier rectangle %v to %v, outside bounds %v", d, moved, bounds)})
			}
		}
	}

	// The sinks must be absorbing with probability exactly 1.
	for _, sink := range []mdp.StateID{model.GoalSink, model.HazardSink} {
		for ci, c := range model.M.Choices(sink) {
			for _, tr := range c.Transitions {
				if tr.To != sink || !mdp.IsOneProb(tr.P) {
					vs = append(vs, Violation{Check: "hazard-closure", State: sink, Choice: ci, Action: c.Action,
						Detail: fmt.Sprintf("sink is not absorbing (to %d with p=%v)", tr.To, tr.P)})
				}
			}
		}
	}
	if !model.Goal[model.GoalSink] {
		vs = append(vs, Violation{Check: "hazard-closure", State: model.GoalSink, Choice: -1, Action: -1,
			Detail: "goal sink is not goal-labeled"})
	}
	if !model.Hazard[model.HazardSink] {
		vs = append(vs, Violation{Check: "hazard-closure", State: model.HazardSink, Choice: -1, Action: -1,
			Detail: "hazard sink is not hazard-labeled"})
	}
	return vs
}

// CheckValues verifies a solved value vector is well-formed for a
// reachability query: probabilities in [0,1] (within ProbEps), no NaNs.
// Reward queries admit +Inf (no almost-sure strategy) but never NaN.
func CheckValues(values []float64, probability bool) []Violation {
	var vs []Violation
	for s, v := range values {
		switch {
		case math.IsNaN(v):
			vs = append(vs, Violation{Check: "row-stochastic", State: mdp.StateID(s), Choice: -1, Action: -1,
				Detail: "solved value is NaN"})
		case probability && (v < -ProbEps || v > 1+ProbEps):
			vs = append(vs, Violation{Check: "row-stochastic", State: mdp.StateID(s), Choice: -1, Action: -1,
				Detail: fmt.Sprintf("solved probability %v outside [0,1]", v)})
		}
	}
	return vs
}
