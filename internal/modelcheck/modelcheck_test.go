package modelcheck_test

import (
	"math"
	"strings"
	"testing"

	"meda/internal/geom"
	"meda/internal/mdp"
	"meda/internal/modelcheck"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/spec"
	"meda/internal/synth"
)

// chain builds the well-formed 3-state model used as the baseline: s0 has a
// coin-flip choice (action 7) into s1/s2 plus a self-loop (action 3), and
// s1, s2 absorb.
func chain() *mdp.MDP {
	m := mdp.New()
	s0, s1, s2 := m.AddState(), m.AddState(), m.AddState()
	m.AddChoice(s0, 7, 1, []mdp.Transition{{To: s1, P: 0.5}, {To: s2, P: 0.5}})
	m.AddChoice(s0, 3, 1, []mdp.Transition{{To: s0, P: 1}})
	m.AddChoice(s1, -1, 0, []mdp.Transition{{To: s1, P: 1}})
	m.AddChoice(s2, -1, 0, []mdp.Transition{{To: s2, P: 1}})
	return m
}

func countCheck(vs []modelcheck.Violation, check string) int {
	n := 0
	for _, v := range vs {
		if v.Check == check {
			n++
		}
	}
	return n
}

func TestCheckMDPClean(t *testing.T) {
	if vs := modelcheck.CheckMDP(chain()); len(vs) != 0 {
		t.Fatalf("clean model reported %d violations: %v", len(vs), vs)
	}
}

func TestCheckMDPNonStochasticRow(t *testing.T) {
	m := mdp.New()
	s0, s1 := m.AddState(), m.AddState()
	m.AddChoice(s0, 5, 1, []mdp.Transition{{To: s1, P: 0.5}, {To: s0, P: 0.4}}) // sums to 0.9
	m.AddChoice(s1, -1, 0, []mdp.Transition{{To: s1, P: 1}})
	vs := modelcheck.CheckMDP(m)
	if len(vs) != 1 || vs[0].Check != "row-stochastic" {
		t.Fatalf("want one row-stochastic violation, got %v", vs)
	}
	// The violation must carry the state and action detail (satellite
	// requirement: diagnostics locate the offending choice).
	if vs[0].State != s0 || vs[0].Choice != 0 || vs[0].Action != 5 {
		t.Fatalf("violation lost its location: %+v", vs[0])
	}
	if !strings.Contains(vs[0].String(), "state 0 choice 0 (action 5)") {
		t.Fatalf("String() lacks location: %q", vs[0].String())
	}
	if !strings.Contains(vs[0].Detail, "0.9") {
		t.Fatalf("detail should report the defective sum: %q", vs[0].Detail)
	}
}

func TestCheckMDPNegativeAndExcessProbability(t *testing.T) {
	m := mdp.New()
	s0 := m.AddState()
	m.AddChoice(s0, 2, 1, []mdp.Transition{{To: s0, P: 1.25}, {To: s0, P: -0.25}})
	vs := modelcheck.CheckMDP(m)
	// Two out-of-range probabilities; the sum itself is exactly 1.
	if got := countCheck(vs, "row-stochastic"); got != 2 {
		t.Fatalf("want 2 row-stochastic violations, got %v", vs)
	}
}

func TestCheckMDPEmptyChoiceAndNegativeReward(t *testing.T) {
	m := mdp.New()
	s0 := m.AddState()
	m.AddChoice(s0, 1, -2, []mdp.Transition{{To: s0, P: 1}})
	m.AddChoice(s0, 2, 0, nil)
	vs := modelcheck.CheckMDP(m)
	if got := countCheck(vs, "row-stochastic"); got != 2 {
		t.Fatalf("want negative-reward and empty-choice violations, got %v", vs)
	}
}

func TestCheckMDPDanglingTarget(t *testing.T) {
	m := mdp.New()
	s0 := m.AddState()
	m.AddChoice(s0, 9, 1, []mdp.Transition{{To: 17, P: 1}}) // state 17 does not exist
	vs := modelcheck.CheckMDP(m)
	if got := countCheck(vs, "dangling-target"); got != 1 {
		t.Fatalf("want one dangling-target violation, got %v", vs)
	}
	for _, v := range vs {
		if v.Check == "dangling-target" {
			if v.State != s0 || v.Action != 9 || !strings.Contains(v.Detail, "17") {
				t.Fatalf("dangling-target violation lost its location: %+v", v)
			}
		}
	}
}

func TestCheckCSRConsistent(t *testing.T) {
	if vs := modelcheck.CheckCSR(chain()); len(vs) != 0 {
		t.Fatalf("CSR of clean model reported violations: %v", vs)
	}
}

func TestCheckCSRReverseIndexDedup(t *testing.T) {
	// A choice with two positive edges into the same target must appear
	// once (deduplicated) in the reverse index; zero-probability edges must
	// not appear at all. CheckCSR verifies both directions of the index.
	m := mdp.New()
	s0, s1 := m.AddState(), m.AddState()
	m.AddChoice(s0, 4, 1, []mdp.Transition{{To: s1, P: 0.5}, {To: s1, P: 0.5}})
	m.AddChoice(s1, 5, 1, []mdp.Transition{{To: s0, P: 0}, {To: s1, P: 1}})
	if vs := modelcheck.CheckCSR(m); len(vs) != 0 {
		t.Fatalf("dedup/zero-edge reverse index reported violations: %v", vs)
	}
	g := m.CSR()
	if got := g.RevOff[int(s1)+1] - g.RevOff[s1]; got != 2 {
		t.Fatalf("want 2 deduped reverse edges into s1, got %d", got)
	}
	if got := g.RevOff[int(s0)+1] - g.RevOff[s0]; got != 0 {
		t.Fatalf("zero-probability edge leaked into the reverse index: %d edges into s0", got)
	}
}

func TestCheckStrategyTotal(t *testing.T) {
	m := chain()
	target := []bool{false, true, false}
	st := mdp.Strategy{0, -1, -1} // flip at s0; s1 is the target, s2 unreachable? no: flip reaches s2
	// s2 is reachable, absorbing and not a target: its only choice must be
	// selected for the walk to be well-defined.
	vs := modelcheck.CheckStrategy(m, st, 0, target, nil)
	if got := countCheck(vs, "strategy-totality"); got != 1 {
		t.Fatalf("want one strategy-totality violation at s2, got %v", vs)
	}
	if vs[0].State != 2 {
		t.Fatalf("violation at wrong state: %+v", vs[0])
	}
	// Selecting s2's choice repairs it.
	st[2] = 0
	if vs := modelcheck.CheckStrategy(m, st, 0, target, nil); len(vs) != 0 {
		t.Fatalf("total strategy reported violations: %v", vs)
	}
}

func TestCheckStrategyPartialOnReachable(t *testing.T) {
	m := chain()
	target := []bool{false, true, false}
	avoid := []bool{false, false, true}
	// s2 is avoided, so no selection is required there; s0 itself has no
	// selection — a reachable hole.
	vs := modelcheck.CheckStrategy(m, mdp.Strategy{-1, -1, -1}, 0, target, avoid)
	if len(vs) != 1 || vs[0].State != 0 {
		t.Fatalf("want one violation at the initial state, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "no selected choice") {
		t.Fatalf("detail should explain the hole: %q", vs[0].Detail)
	}
}

func TestCheckStrategyUnreachableHoleOK(t *testing.T) {
	m := chain()
	target := []bool{false, true, true}
	// Self-loop at s0 never reaches s1/s2; holes there are fine, but the
	// strategy must still be sized to the model.
	if vs := modelcheck.CheckStrategy(m, mdp.Strategy{1, -1, -1}, 0, target, nil); len(vs) != 0 {
		t.Fatalf("unreachable holes should be tolerated, got %v", vs)
	}
	if vs := modelcheck.CheckStrategy(m, mdp.Strategy{1}, 0, target, nil); len(vs) != 1 {
		t.Fatalf("mis-sized strategy must be reported, got %v", vs)
	}
}

func TestCheckHazardClosure(t *testing.T) {
	m := chain()
	goal := []bool{false, true, false}
	hazard := []bool{true, false, false} // s0 can flip into non-hazard s1, s2 — leaks
	vs := modelcheck.CheckHazardClosure(m, goal, hazard)
	if got := countCheck(vs, "hazard-closure"); got != 2 {
		t.Fatalf("want 2 hazard-closure leaks (s1 and s2 via the flip), got %v", vs)
	}
	for _, v := range vs {
		if v.State != 0 || v.Action != 7 {
			t.Fatalf("leak violation lost its location: %+v", v)
		}
	}
	// Absorbing hazard set is clean.
	hazard = []bool{false, false, true}
	if vs := modelcheck.CheckHazardClosure(m, goal, hazard); len(vs) != 0 {
		t.Fatalf("absorbing hazard set reported violations: %v", vs)
	}
	// Overlapping labels are contradictory.
	vs = modelcheck.CheckHazardClosure(m, goal, []bool{false, true, false})
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "both goal and hazard") {
		t.Fatalf("want one overlap violation, got %v", vs)
	}
}

// healthyField is a pristine chip: full relative force everywhere.
func healthyField(x, y int) float64 { return 1 }

func TestCheckReducedOnInducedModel(t *testing.T) {
	bounds := geom.Rect{XA: 1, YA: 1, XB: 12, YB: 8}
	start := geom.Rect{XA: 1, YA: 1, XB: 4, YB: 4}
	goal := geom.Rect{XA: 8, YA: 4, XB: 12, YB: 8}
	model, err := smg.Induce(bounds, start, goal, healthyField, smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.M.MinExpectedReward(model.Goal, model.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := modelcheck.CheckReduced(model, res.Strategy, bounds); len(vs) != 0 {
		t.Fatalf("induced model failed verification: %v", vs)
	}
	if vs := modelcheck.CheckValues(res.Values, false); len(vs) != 0 {
		t.Fatalf("reward values failed verification: %v", vs)
	}
}

func TestCheckReducedThroughSynthesize(t *testing.T) {
	// The full Alg. 2 path, Pmax flavor, over a worn field and a dispense
	// job entering from the chip edge.
	worn := func(x, y int) float64 { return 0.81 }
	job := route.RJ{
		MO: 1, Index: 0,
		Goal:     geom.Rect{XA: 10, YA: 6, XB: 13, YB: 9},
		Hazard:   geom.Rect{XA: 1, YA: 1, XB: 20, YB: 14},
		Dispense: true,
	}
	rj := synth.NormalizeDispense(job, 60, 30)
	opt := synth.DefaultOptions()
	opt.Query = spec.RoutingQuery(spec.PMax)
	opt.RetainModel = true
	res, err := synth.Synthesize(rj, worn, opt)
	if err != nil {
		t.Fatal(err)
	}
	if vs := modelcheck.CheckReduced(res.Model, nil, rj.Hazard); len(vs) != 0 {
		t.Fatalf("synthesized model failed verification: %v", vs)
	}
}

func TestCheckReducedCatchesHazardMislabel(t *testing.T) {
	bounds := geom.Rect{XA: 1, YA: 1, XB: 9, YB: 6}
	start := geom.Rect{XA: 1, YA: 1, XB: 3, YB: 3}
	goal := geom.Rect{XA: 6, YA: 3, XB: 9, YB: 6}
	model, err := smg.Induce(bounds, start, goal, healthyField, smg.DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the labels the way a buggy reduction would: drop the hazard
	// mark from the sink.
	model.Hazard[model.HazardSink] = false
	vs := modelcheck.CheckReduced(model, nil, bounds)
	if got := countCheck(vs, "hazard-closure"); got == 0 {
		t.Fatalf("mislabeled hazard sink not caught: %v", vs)
	}
}

func TestCheckValues(t *testing.T) {
	vs := modelcheck.CheckValues([]float64{0, 0.5, 1.2, math.NaN()}, true)
	if len(vs) != 2 {
		t.Fatalf("want violations for 1.2 and NaN, got %v", vs)
	}
	// Reward semantics: only NaN is illegal.
	if vs := modelcheck.CheckValues([]float64{0, 17, 1.2}, false); len(vs) != 0 {
		t.Fatalf("finite rewards should pass, got %v", vs)
	}
}
