// Package device exposes a simulated MEDA biochip over a network socket —
// the cyber-physical interface of the paper's Fig. 13/14, where a controller
// (the synthesizer/scheduler) talks to the chip one operational cycle at a
// time: write an actuation, read back droplet positions and the health
// matrix. A controller written against Conn can be pointed at cmd/medad for
// simulation or, in principle, at real hardware speaking the same protocol.
//
// The protocol is newline-delimited JSON. Each request performs at most one
// operational cycle:
//
//	{"op":"info"}                                → chip dimensions, health bits
//	{"op":"dispense","rect":[16,1,19,4]}         → droplet id
//	{"op":"act","id":1,"action":"aNE"}           → one cycle; new droplet rect
//	{"op":"hold","id":1}                         → one cycle holding in place
//	{"op":"health","rect":[1,1,20,10]}           → observed H over a region
//	{"op":"remove","id":1}                       → droplet leaves the chip
//	{"op":"cycle"}                               → operational-cycle counter
package device

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/telemetry"
)

// Device telemetry (internal/telemetry default registry). Request counts
// are additionally broken out per protocol op under device.req.<op>.
var (
	telConns      = telemetry.C("device.connections")
	telRequests   = telemetry.C("device.requests")
	telReqErrors  = telemetry.C("device.request_errors")
	telDevCycles  = telemetry.C("device.cycles")
	telBadRequest = telemetry.C("device.bad_requests")
)

// Request is one protocol message from controller to chip.
type Request struct {
	Op     string `json:"op"`
	ID     int    `json:"id,omitempty"`
	Rect   [4]int `json:"rect,omitempty"`
	Action string `json:"action,omitempty"`
}

// Response is the chip's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Info fields.
	W          int `json:"w,omitempty"`
	H          int `json:"h,omitempty"`
	HealthBits int `json:"bits,omitempty"`
	// Droplet fields.
	ID   int    `json:"id,omitempty"`
	Rect [4]int `json:"rect,omitempty"`
	// Health holds row-major codes for the requested region (north row
	// first is NOT implied; rows run south→north, x fastest).
	Health []int `json:"health,omitempty"`
	Cycle  int   `json:"cycle,omitempty"`
}

func toArr(r geom.Rect) [4]int  { return [4]int{r.XA, r.YA, r.XB, r.YB} }
func toRect(a [4]int) geom.Rect { return geom.Rect{XA: a[0], YA: a[1], XB: a[2], YB: a[3]} }

// Server hosts one biochip for any number of sequential controller
// connections. All droplet and wear state is shared — reconnecting
// controllers see the same chip, like plugging back into hardware.
type Server struct {
	mu       sync.Mutex
	chip     *chip.Chip
	src      *randx.Source
	cycle    int
	nextID   int
	droplets map[int]geom.Rect
}

// NewServer wraps a chip (with its nature randomness) as a device.
func NewServer(c *chip.Chip, src *randx.Source) *Server {
	return &Server{chip: c, src: src, nextID: 1, droplets: map[int]geom.Rect{}}
}

// SaveState persists the chip's wear under the device lock, so a snapshot
// requested while controllers are connected cannot race their actuations.
func (s *Server) SaveState(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chip.SaveState(w)
}

// Serve accepts controller connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	telConns.Inc()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			telBadRequest.Inc()
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.apply(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// apply executes one request under the device lock.
func (s *Server) apply(req Request) (resp Response) {
	sp := telemetry.StartSpan("device." + req.Op)
	defer sp.End()
	telRequests.Inc()
	telemetry.C("device.req." + req.Op).Inc()
	defer func() {
		if resp.Error != "" {
			telReqErrors.Inc()
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case "info":
		return Response{OK: true, W: s.chip.W(), H: s.chip.H(), HealthBits: s.chip.HealthBits(), Cycle: s.cycle}

	case "cycle":
		return Response{OK: true, Cycle: s.cycle}

	case "dispense":
		r := toRect(req.Rect)
		if !r.Valid() || !s.chip.Bounds().ContainsRect(r) {
			return Response{Error: fmt.Sprintf("dispense rect %v off-chip", r)}
		}
		for id, d := range s.droplets {
			if d.Expand(1).Overlaps(r) {
				return Response{Error: fmt.Sprintf("dispense area occupied by droplet %d", id)}
			}
		}
		id := s.nextID
		s.nextID++
		s.droplets[id] = r
		return Response{OK: true, ID: id, Rect: toArr(r)}

	case "act", "hold":
		d, ok := s.droplets[req.ID]
		if !ok {
			return Response{Error: fmt.Sprintf("no droplet %d", req.ID)}
		}
		if req.Op == "hold" {
			s.runCycle(map[int]geom.Rect{req.ID: d})
			return Response{OK: true, ID: req.ID, Rect: toArr(d), Cycle: s.cycle}
		}
		a, err := actionByName(req.Action)
		if err != nil {
			return Response{Error: err.Error()}
		}
		target := a.Apply(d)
		if !s.chip.Bounds().ContainsRect(target) {
			return Response{Error: fmt.Sprintf("action %s would leave the chip", a)}
		}
		for id, o := range s.droplets {
			if id != req.ID && o.Expand(1).Overlaps(target) {
				return Response{Error: fmt.Sprintf("action %s violates the margin of droplet %d", a, id)}
			}
		}
		s.runCycle(map[int]geom.Rect{req.ID: target})
		outs := action.Outcomes(d, a, s.chip.TrueForceField())
		weights := make([]float64, len(outs))
		for i, o := range outs {
			weights[i] = o.P
		}
		nd := outs[s.src.Choose(weights)].Droplet
		s.droplets[req.ID] = nd
		return Response{OK: true, ID: req.ID, Rect: toArr(nd), Cycle: s.cycle}

	case "health":
		r := toRect(req.Rect)
		clipped, ok := r.Intersect(s.chip.Bounds())
		if !ok {
			return Response{Error: fmt.Sprintf("health region %v off-chip", r)}
		}
		var codes []int
		for y := clipped.YA; y <= clipped.YB; y++ {
			for x := clipped.XA; x <= clipped.XB; x++ {
				codes = append(codes, s.chip.Health(x, y))
			}
		}
		return Response{OK: true, Rect: toArr(clipped), Health: codes}

	case "remove":
		if _, ok := s.droplets[req.ID]; !ok {
			return Response{Error: fmt.Sprintf("no droplet %d", req.ID)}
		}
		delete(s.droplets, req.ID)
		return Response{OK: true, ID: req.ID}

	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// runCycle applies one operational cycle's actuations: the moving droplet's
// target pattern plus holds for every other droplet (all on-chip droplets
// must be actuated every cycle).
func (s *Server) runCycle(intents map[int]geom.Rect) {
	patterns := make([]geom.Rect, 0, len(s.droplets))
	for id, d := range s.droplets {
		if t, ok := intents[id]; ok {
			patterns = append(patterns, t)
		} else {
			patterns = append(patterns, d)
		}
	}
	s.chip.Actuate(patterns...)
	s.cycle++
	telDevCycles.Inc()
}

func actionByName(name string) (action.Action, error) {
	a, ok := action.FromName(name)
	if !ok {
		return 0, fmt.Errorf("unknown action %q", name)
	}
	return a, nil
}

// Conn is a controller-side connection to a device.
type Conn struct {
	c   net.Conn
	sc  *bufio.Scanner
	enc *json.Encoder
}

// Dial connects to a device server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// NewConn wraps an established transport (e.g. one end of net.Pipe).
func NewConn(c net.Conn) *Conn {
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Conn{c: c, sc: sc, enc: json.NewEncoder(c)}
}

// Close closes the transport.
func (c *Conn) Close() error { return c.c.Close() }

func (c *Conn) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.ErrUnexpectedEOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("device: %s", resp.Error)
	}
	return resp, nil
}

// Info returns the chip dimensions and health-sensing resolution.
func (c *Conn) Info() (w, h, bits int, err error) {
	resp, err := c.roundTrip(Request{Op: "info"})
	return resp.W, resp.H, resp.HealthBits, err
}

// Dispense places a droplet and returns its id.
func (c *Conn) Dispense(r geom.Rect) (int, error) {
	resp, err := c.roundTrip(Request{Op: "dispense", Rect: toArr(r)})
	return resp.ID, err
}

// Act issues one microfluidic action for a droplet and returns its new
// position (which may be unchanged — the move is probabilistic).
func (c *Conn) Act(id int, a action.Action) (geom.Rect, error) {
	resp, err := c.roundTrip(Request{Op: "act", ID: id, Action: a.String()})
	return toRect(resp.Rect), err
}

// Hold actuates the droplet in place for one cycle.
func (c *Conn) Hold(id int) error {
	_, err := c.roundTrip(Request{Op: "hold", ID: id})
	return err
}

// Health reads the observed health codes over a region (row-major,
// south-to-north, clipped to the chip; the clipped region is returned).
func (c *Conn) Health(region geom.Rect) (geom.Rect, []int, error) {
	resp, err := c.roundTrip(Request{Op: "health", Rect: toArr(region)})
	return toRect(resp.Rect), resp.Health, err
}

// Remove takes a droplet off the chip (output/waste).
func (c *Conn) Remove(id int) error {
	_, err := c.roundTrip(Request{Op: "remove", ID: id})
	return err
}

// Cycle returns the device's operational-cycle counter.
func (c *Conn) Cycle() (int, error) {
	resp, err := c.roundTrip(Request{Op: "cycle"})
	return resp.Cycle, err
}
