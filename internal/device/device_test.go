package device

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"meda/internal/action"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/geom"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/smg"
	"meda/internal/synth"
)

func rect(xa, ya, xb, yb int) geom.Rect { return geom.Rect{XA: xa, YA: ya, XB: xb, YB: yb} }

// startServer launches a device on a loopback listener and returns a
// connected controller.
func startServer(t *testing.T, cfg chip.Config, seed uint64) *Conn {
	t.Helper()
	c, err := chip.New(cfg, randx.New(seed).Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, randx.New(seed).Split("nature"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln)
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func robustConfig() chip.Config {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.99, Tau2: 0.999, C1: 5000, C2: 10000}
	return cfg
}

func TestInfoAndCycle(t *testing.T) {
	conn := startServer(t, robustConfig(), 1)
	w, h, bits, err := conn.Info()
	if err != nil {
		t.Fatal(err)
	}
	if w != 60 || h != 30 || bits != 2 {
		t.Errorf("info = %d×%d/%d", w, h, bits)
	}
	cyc, err := conn.Cycle()
	if err != nil || cyc != 0 {
		t.Errorf("fresh cycle = %d/%v", cyc, err)
	}
}

func TestDispenseActRemove(t *testing.T) {
	conn := startServer(t, robustConfig(), 2)
	id, err := conn.Dispense(rect(1, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// On a robust chip an east move always succeeds.
	nd, err := conn.Act(id, action.MoveE)
	if err != nil {
		t.Fatal(err)
	}
	if nd != rect(2, 1, 5, 4) {
		t.Errorf("after aE: %v", nd)
	}
	cyc, _ := conn.Cycle()
	if cyc != 1 {
		t.Errorf("cycle = %d, want 1", cyc)
	}
	if err := conn.Hold(id); err != nil {
		t.Fatal(err)
	}
	if err := conn.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Act(id, action.MoveE); err == nil {
		t.Error("acting on a removed droplet must fail")
	}
}

func TestDeviceRejectsIllegalRequests(t *testing.T) {
	conn := startServer(t, robustConfig(), 3)
	if _, err := conn.Dispense(rect(-3, 1, 0, 4)); err == nil {
		t.Error("off-chip dispense accepted")
	}
	id, err := conn.Dispense(rect(1, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Second droplet too close.
	if _, err := conn.Dispense(rect(5, 1, 8, 4)); err == nil {
		t.Error("margin-violating dispense accepted")
	}
	// Moving off the west edge.
	if _, err := conn.Act(id, action.MoveW); err == nil {
		t.Error("off-chip move accepted")
	}
	// Unknown action name via raw protocol.
	if _, err := conn.roundTrip(Request{Op: "act", ID: id, Action: "aTeleport"}); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := conn.roundTrip(Request{Op: "frobnicate"}); err == nil {
		t.Error("unknown op accepted")
	}
	if !strings.Contains(mustErr(t, conn, Request{Op: "remove", ID: 99}), "no droplet") {
		t.Error("bad remove error")
	}
}

func mustErr(t *testing.T, c *Conn, req Request) string {
	t.Helper()
	resp, err := c.roundTrip(req)
	if err == nil {
		t.Fatalf("request %+v unexpectedly succeeded: %+v", req, resp)
	}
	return err.Error()
}

// TestRemoteAdaptiveRouting is the hardware-in-the-loop integration test: a
// controller reads the health matrix over the wire, synthesizes a strategy
// locally, and drives the droplet action by action until the goal.
func TestRemoteAdaptiveRouting(t *testing.T) {
	conn := startServer(t, robustConfig(), 4)
	rj := route.RJ{
		Start:  rect(2, 2, 5, 5),
		Goal:   rect(20, 10, 23, 13),
		Hazard: rect(1, 1, 26, 16),
	}
	id, err := conn.Dispense(rj.Start)
	if err != nil {
		t.Fatal(err)
	}
	// Fetch the health matrix for the job's region and build the observed
	// force field the synthesizer needs.
	region, codes, err := conn.Health(rj.Hazard)
	if err != nil {
		t.Fatal(err)
	}
	_, _, bits, err := conn.Info()
	if err != nil {
		t.Fatal(err)
	}
	field := func(x, y int) float64 {
		if x < region.XA || x > region.XB || y < region.YA || y > region.YB {
			return 0
		}
		i := (y-region.YA)*region.Width() + (x - region.XA)
		d := degrade.DegradationFromHealth(codes[i], bits)
		return d * d
	}
	res, err := synth.Synthesize(rj, field, synth.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists() {
		t.Fatal("no strategy")
	}
	pos := rj.Start
	for step := 0; step < 200; step++ {
		if smg.GoalLabel(pos, rj.Goal) {
			if err := conn.Remove(id); err != nil {
				t.Fatal(err)
			}
			return
		}
		a, ok := res.Policy[pos]
		if !ok {
			t.Fatalf("policy undefined at %v", pos)
		}
		pos, err = conn.Act(id, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("droplet did not reach the goal in 200 cycles over the wire")
}

// TestDeviceWearIsReal: actuations over the protocol wear the chip; the
// health matrix read back eventually drops.
func TestDeviceWearIsReal(t *testing.T) {
	cfg := chip.Default()
	cfg.Normal = degrade.ParamRange{Tau1: 0.1, Tau2: 0.2, C1: 10, C2: 20}
	conn := startServer(t, cfg, 5)
	id, err := conn.Dispense(rect(10, 10, 13, 13))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := conn.Hold(id); err != nil {
			t.Fatal(err)
		}
	}
	_, codes, err := conn.Health(rect(10, 10, 13, 13))
	if err != nil {
		t.Fatal(err)
	}
	worn := false
	for _, h := range codes {
		if h < 3 {
			worn = true
		}
	}
	if !worn {
		t.Error("60 holds left every code at top health")
	}
}

// TestTwoControllersShareTheChip: a second connection sees the state the
// first created — it is one physical device.
func TestTwoControllersShareTheChip(t *testing.T) {
	c, err := chip.New(robustConfig(), randx.New(6).Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, randx.New(6).Split("nature"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	c1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	id, err := c1.Dispense(rect(1, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}

	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The second controller can move the first's droplet (same chip).
	if _, err := c2.Act(id, action.MoveE); err != nil {
		t.Fatal(err)
	}
	cyc, err := c1.Cycle()
	if err != nil || cyc != 1 {
		t.Errorf("shared cycle = %d/%v", cyc, err)
	}
}

// TestMalformedRequestLine: a line that is not JSON gets an error response
// on the same connection, which stays usable afterwards.
func TestMalformedRequestLine(t *testing.T) {
	c, err := chip.New(robustConfig(), randx.New(7).Split("chip"))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(c, randx.New(7).Split("nature"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(raw)
	if !sc.Scan() {
		t.Fatal("no response to a malformed line")
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "bad request") {
		t.Errorf("malformed line response = %+v", resp)
	}
	// The connection survives: a well-formed request still works.
	if _, err := raw.Write([]byte(`{"op":"info"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatal("connection dead after a malformed line")
	}
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil || !resp.OK {
		t.Errorf("info after malformed line = %+v/%v", resp, err)
	}
}

// TestDispenseOverlapNamesOccupant: the occupied-dispense error identifies
// the droplet in the way, including an exact (not just margin) overlap.
func TestDispenseOverlapNamesOccupant(t *testing.T) {
	conn := startServer(t, robustConfig(), 8)
	id, err := conn.Dispense(rect(10, 10, 13, 13))
	if err != nil {
		t.Fatal(err)
	}
	msg := mustErr(t, conn, Request{Op: "dispense", Rect: [4]int{10, 10, 13, 13}})
	if !strings.Contains(msg, "occupied by droplet") || !strings.Contains(msg, "1") {
		t.Errorf("exact-overlap dispense error %q does not name droplet %d", msg, id)
	}
	// Inverted (invalid) rects are rejected before any overlap check.
	if !strings.Contains(mustErr(t, conn, Request{Op: "dispense", Rect: [4]int{5, 5, 2, 2}}), "off-chip") {
		t.Error("inverted dispense rect accepted")
	}
}

// TestActHoldUnknownDroplet: act and hold on an id that was never dispensed
// both fail without advancing the operational cycle.
func TestActHoldUnknownDroplet(t *testing.T) {
	conn := startServer(t, robustConfig(), 9)
	if !strings.Contains(mustErr(t, conn, Request{Op: "act", ID: 42, Action: "aE"}), "no droplet") {
		t.Error("act on unknown id: wrong error")
	}
	if !strings.Contains(mustErr(t, conn, Request{Op: "hold", ID: 42}), "no droplet") {
		t.Error("hold on unknown id: wrong error")
	}
	cyc, err := conn.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if cyc != 0 {
		t.Errorf("failed requests advanced the cycle to %d", cyc)
	}
}

// TestHealthRegionClipping: a region entirely off-chip errors; one partially
// off-chip is clipped, and the clipped rect sizes the returned codes.
func TestHealthRegionClipping(t *testing.T) {
	conn := startServer(t, robustConfig(), 10)
	if !strings.Contains(mustErr(t, conn, Request{Op: "health", Rect: [4]int{-10, -10, -5, -5}}), "off-chip") {
		t.Error("fully off-chip health region: wrong error")
	}
	region, codes, err := conn.Health(rect(-3, -3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if region != rect(1, 1, 2, 2) {
		t.Errorf("clipped region = %v, want [1,1,2,2]", region)
	}
	if len(codes) != region.Width()*region.Height() {
		t.Errorf("%d codes for a %d-cell region", len(codes), region.Width()*region.Height())
	}
}

// TestRoundTripOnClosedTransport: requests after Close surface a transport
// error, not a silent zero response.
func TestRoundTripOnClosedTransport(t *testing.T) {
	conn := startServer(t, robustConfig(), 11)
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := conn.Info(); err == nil {
		t.Error("Info on a closed connection succeeded")
	}
}

// TestServerDropsMidResponse: the controller sees ErrUnexpectedEOF when the
// server goes away between request and response.
func TestServerDropsMidResponse(t *testing.T) {
	client, server := net.Pipe()
	conn := NewConn(client)
	defer conn.Close()
	go func() {
		// Swallow the request, then hang up without answering.
		buf := make([]byte, 1024)
		server.Read(buf)
		server.Close()
	}()
	if _, _, _, err := conn.Info(); err == nil {
		t.Error("no error when the server hung up mid-request")
	}
}
