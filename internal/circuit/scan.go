// Scan-chain and operational-cycle model (Sec. III-A). A MEDA biochip is
// driven in operational cycles: the controller shifts an actuation bitstream
// into the MC array through a scan chain, the MCs actuate, every MC senses,
// and the sensing results are shifted out as a bitstream. With the new MC
// design each cell contributes two sensing bits (the original and the added
// DFF), so the scan-out stream carries both droplet presence and health.
package circuit

import (
	"fmt"
	"time"
)

// ScanChain models the serial interface of a W×H MC array.
type ScanChain struct {
	W, H int
}

// Cells returns the number of MCs on the chain.
func (s ScanChain) Cells() int { return s.W * s.H }

// PackActuation serializes a row-major actuation matrix (true = actuate)
// into the scan-in bitstream, least significant bit first within each byte.
func (s ScanChain) PackActuation(cells []bool) ([]byte, error) {
	if len(cells) != s.Cells() {
		return nil, fmt.Errorf("circuit: %d actuation bits for a %d-cell chain", len(cells), s.Cells())
	}
	out := make([]byte, (len(cells)+7)/8)
	for i, b := range cells {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out, nil
}

// UnpackActuation reverses PackActuation.
func (s ScanChain) UnpackActuation(stream []byte) ([]bool, error) {
	n := s.Cells()
	if len(stream) != (n+7)/8 {
		return nil, fmt.Errorf("circuit: %d stream bytes for a %d-cell chain", len(stream), n)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = stream[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// PackSensing serializes per-cell 2-bit sensing results (original bit then
// added bit per cell) into the scan-out bitstream.
func (s ScanChain) PackSensing(results []Result) ([]byte, error) {
	if len(results) != s.Cells() {
		return nil, fmt.Errorf("circuit: %d sensing results for a %d-cell chain", len(results), s.Cells())
	}
	out := make([]byte, (2*len(results)+7)/8)
	for i, r := range results {
		if r.OriginalBit != 0 {
			out[(2*i)/8] |= 1 << uint((2*i)%8)
		}
		if r.AddedBit != 0 {
			out[(2*i+1)/8] |= 1 << uint((2*i+1)%8)
		}
	}
	return out, nil
}

// UnpackSensing reverses PackSensing.
func (s ScanChain) UnpackSensing(stream []byte) ([]Result, error) {
	n := s.Cells()
	if len(stream) != (2*n+7)/8 {
		return nil, fmt.Errorf("circuit: %d stream bytes for %d sensing results", len(stream), n)
	}
	out := make([]Result, n)
	for i := range out {
		if stream[(2*i)/8]&(1<<uint((2*i)%8)) != 0 {
			out[i].OriginalBit = 1
		}
		if stream[(2*i+1)/8]&(1<<uint((2*i+1)%8)) != 0 {
			out[i].AddedBit = 1
		}
	}
	return out, nil
}

// CycleTiming models the duration of one operational cycle: scan-in of one
// actuation bit per MC, the EWOD actuation dwell, the sensing phase, and
// scan-out of two sensing bits per MC.
type CycleTiming struct {
	// ScanHz is the scan-chain clock frequency.
	ScanHz float64
	// Actuation is the EWOD actuation dwell per cycle.
	Actuation time.Duration
	// Sense is the sensing phase duration (charge, discharge, two DFF
	// samples).
	Sense time.Duration
}

// DefaultCycleTiming uses a 10 MHz scan clock, a 100 ms actuation dwell
// (droplets move on millisecond scales), and a 10 µs sensing phase —
// representative of the fabricated MEDA biochips the paper cites.
func DefaultCycleTiming() CycleTiming {
	return CycleTiming{ScanHz: 10e6, Actuation: 100 * time.Millisecond, Sense: 10 * time.Microsecond}
}

// CycleDuration returns the wall-clock duration of one operational cycle
// for an n-cell array: n scan-in bits + actuation + sensing + 2n scan-out
// bits.
func (t CycleTiming) CycleDuration(n int) time.Duration {
	scan := time.Duration(float64(3*n) / t.ScanHz * float64(time.Second))
	return scan + t.Actuation + t.Sense
}

// TimeToResult converts a cycle count into wall-clock time for an n-cell
// array, the quantity a clinician actually waits for.
func (t CycleTiming) TimeToResult(cycles, n int) time.Duration {
	return time.Duration(cycles) * t.CycleDuration(n)
}
