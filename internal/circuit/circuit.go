// Package circuit is a behavioral model of the microelectrode-cell (MC)
// sensing circuit of Sec. III, replacing the paper's HSPICE simulation of the
// fabricated 350 nm CMOS cell (Fig. 1–2, Table I).
//
// During a sensing phase the bottom plate is charged to VDD and then
// discharged through the sensing path; a D flip-flop samples whether the
// plate voltage has crossed the sensing threshold at a preset clock edge.
// Charge trapping raises the electrode capacitance (Table I: 2.375 fF
// healthy, 2.380 fF partially degraded, 2.385 fF completely degraded), which
// delays the threshold crossing. The new MC design adds a second DFF whose
// clock edge arrives 5 ns later; the pair of sampled bits distinguishes the
// three degradation classes:
//
//	healthy             → "11"
//	partially degraded  → "01"  (original DFF 0, added DFF 1)
//	completely degraded → "00"
//
// The effective discharge resistance is chosen so that one capacitance step
// (5 aF) shifts the crossing time by ≈5 ns, matching the paper's finding that
// the added DFF's clock must be asserted 5 ns after the original one.
package circuit

import (
	"fmt"
	"math"
)

// Table I constants.
const (
	// MicroelectrodeAreaUM2 is the microelectrode area A (50×50 µm²).
	MicroelectrodeAreaUM2 = 2500.0
	// SiliconOilPermittivity is ε_o in F/m.
	SiliconOilPermittivity = 19e-12
	// CHealthy is C_o, the capacitance of a healthy microelectrode (F).
	CHealthy = 2.375e-15
	// CPartial is C_d1, the capacitance of a partially degraded
	// microelectrode (F).
	CPartial = 2.380e-15
	// CDegraded is C_d2, the capacitance of a completely degraded
	// microelectrode (F).
	CDegraded = 2.385e-15
)

// Electrical operating point of the sensing path.
const (
	// VDD is the supply voltage of the MC control circuit (3.3 V).
	VDD = 3.3
	// VThreshold is the DFF input threshold (mid-rail).
	VThreshold = VDD / 2
	// REffective is the effective discharge resistance of the sensing
	// path. Its value is calibrated so that the 5 aF capacitance step
	// between degradation classes maps to a ≈5 ns crossing-time step,
	// the clock-offset reported by the paper's HSPICE runs.
	REffective = 1.45e9
	// AddedDFFDelay is the extra clock delay of the new DFF (5 ns).
	AddedDFFDelay = 5e-9
)

// HealthClass is the three-way classification produced by 2-bit MC sensing.
type HealthClass int

const (
	// Healthy microelectrode: code "11".
	Healthy HealthClass = iota
	// PartiallyDegraded microelectrode: code "01".
	PartiallyDegraded
	// CompletelyDegraded microelectrode: code "00".
	CompletelyDegraded
)

// String names the class.
func (h HealthClass) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case PartiallyDegraded:
		return "partially-degraded"
	case CompletelyDegraded:
		return "completely-degraded"
	}
	return "unknown"
}

// Capacitance returns the Table I capacitance of the class.
func (h HealthClass) Capacitance() float64 {
	switch h {
	case Healthy:
		return CHealthy
	case PartiallyDegraded:
		return CPartial
	case CompletelyDegraded:
		return CDegraded
	}
	return math.NaN()
}

// Cell models the discharge path of one microelectrode cell.
type Cell struct {
	C   float64 // electrode capacitance (F)
	R   float64 // effective discharge resistance (Ω)
	Vdd float64 // initial (charged) plate voltage
	Vth float64 // DFF sampling threshold
}

// NewCell returns a cell with the default operating point and the given
// capacitance.
func NewCell(c float64) Cell {
	return Cell{C: c, R: REffective, Vdd: VDD, Vth: VThreshold}
}

// CellFor returns the cell modeling a degradation class.
func CellFor(h HealthClass) Cell { return NewCell(h.Capacitance()) }

// Voltage returns the plate voltage t seconds into the discharge phase:
// V(t) = VDD·e^(−t/RC).
func (c Cell) Voltage(t float64) float64 {
	if t <= 0 {
		return c.Vdd
	}
	return c.Vdd * math.Exp(-t/(c.R*c.C))
}

// CrossingTime returns the time at which the discharging plate crosses the
// DFF threshold: t = RC·ln(VDD/Vth).
func (c Cell) CrossingTime() float64 {
	return c.R * c.C * math.Log(c.Vdd/c.Vth)
}

// SampleBit returns the DFF value captured by a clock edge at time t: the DFF
// stores 1 once the plate has discharged below the threshold (the sensing
// event has completed), 0 while the plate is still above it.
func (c Cell) SampleBit(t float64) int {
	if c.Voltage(t) < c.Vth {
		return 1
	}
	return 0
}

// Timing is the pair of DFF clock-edge times used by the 2-bit sensing
// scheme.
type Timing struct {
	Original float64 // clock edge of the original DFF
	Added    float64 // clock edge of the added DFF (Original + 5 ns)
}

// DefaultTiming places the original DFF edge half a level-step after the
// healthy crossing time, and the added edge 5 ns later, so the three Table I
// capacitances map to the three codes.
func DefaultTiming() Timing {
	healthy := CellFor(Healthy).CrossingTime()
	partial := CellFor(PartiallyDegraded).CrossingTime()
	t1 := (healthy + partial) / 2
	return Timing{Original: t1, Added: t1 + AddedDFFDelay}
}

// Result is the outcome of one 2-bit sensing operation.
type Result struct {
	OriginalBit int
	AddedBit    int
}

// Code returns the 2-bit code string, original bit first (e.g. "11").
func (r Result) Code() string { return fmt.Sprintf("%d%d", r.OriginalBit, r.AddedBit) }

// Class maps the code to a health class. The code "10" cannot be produced by
// a monotone discharge (the added edge is strictly later) and is reported as
// CompletelyDegraded, the conservative reading.
func (r Result) Class() HealthClass {
	switch {
	case r.OriginalBit == 1 && r.AddedBit == 1:
		return Healthy
	case r.OriginalBit == 0 && r.AddedBit == 1:
		return PartiallyDegraded
	default:
		return CompletelyDegraded
	}
}

// Sense performs the 2-bit sensing operation on the cell.
func (c Cell) Sense(tm Timing) Result {
	return Result{
		OriginalBit: c.SampleBit(tm.Original),
		AddedBit:    c.SampleBit(tm.Added),
	}
}

// Classify runs the full sensing pipeline for a capacitance value and returns
// the detected health class.
func Classify(capacitance float64) HealthClass {
	return NewCell(capacitance).Sense(DefaultTiming()).Class()
}

// WaveformPoint is one (time, voltage) sample of the discharge curve.
type WaveformPoint struct {
	T float64 // seconds into the discharge phase
	V float64 // plate voltage
}

// Waveform samples the discharge curve over [0, tMax] at n+1 points,
// producing the Fig. 2 voltage traces.
func (c Cell) Waveform(tMax float64, n int) []WaveformPoint {
	if n < 1 {
		n = 1
	}
	out := make([]WaveformPoint, n+1)
	for i := 0; i <= n; i++ {
		t := tMax * float64(i) / float64(n)
		out[i] = WaveformPoint{T: t, V: c.Voltage(t)}
	}
	return out
}

// HealthBits maps the three-way class onto the b=2 health levels of the
// degradation model (Sec. IV-B): "11"→3, "01"→1, "00"→0. Level 2 is not
// produced by the three-capacitance bench but is representable by the model.
func (h HealthClass) HealthBits() int {
	switch h {
	case Healthy:
		return 3
	case PartiallyDegraded:
		return 1
	default:
		return 0
	}
}

// DFFAreaUM2 and related geometry justify that the added DFF has no chip-
// footprint impact (Sec. III-B): the DFF area (~27 µm²) is far below the
// microelectrode area (2500 µm²) minus the existing electronics (~88.2 µm²).
const (
	DFFAreaUM2         = 27.0
	ElectronicsAreaUM2 = 88.2
)

// FootprintHeadroomUM2 returns the free area under a microelectrode after
// the existing electronics, i.e. the room available for the added DFF.
func FootprintHeadroomUM2() float64 {
	return MicroelectrodeAreaUM2 - ElectronicsAreaUM2
}
