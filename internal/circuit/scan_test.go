package circuit

import (
	"testing"
	"testing/quick"
	"time"
)

func TestActuationRoundTrip(t *testing.T) {
	s := ScanChain{W: 60, H: 30}
	cells := make([]bool, s.Cells())
	for i := range cells {
		cells[i] = i%3 == 0 || i%7 == 0
	}
	stream, err := s.PackActuation(cells)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.UnpackActuation(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != back[i] {
			t.Fatalf("bit %d corrupted", i)
		}
	}
}

func TestActuationRoundTripProperty(t *testing.T) {
	f := func(raw []bool, w8, h8 uint8) bool {
		w := int(w8%16) + 1
		h := int(h8%16) + 1
		s := ScanChain{W: w, H: h}
		cells := make([]bool, s.Cells())
		for i := range cells {
			if i < len(raw) {
				cells[i] = raw[i]
			}
		}
		stream, err := s.PackActuation(cells)
		if err != nil {
			return false
		}
		back, err := s.UnpackActuation(stream)
		if err != nil {
			return false
		}
		for i := range cells {
			if cells[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSensingRoundTrip(t *testing.T) {
	s := ScanChain{W: 7, H: 5}
	results := make([]Result, s.Cells())
	for i := range results {
		results[i] = Result{OriginalBit: i % 2, AddedBit: (i / 2) % 2}
	}
	stream, err := s.PackSensing(results)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.UnpackSensing(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != back[i] {
			t.Fatalf("result %d corrupted: %v vs %v", i, results[i], back[i])
		}
	}
}

func TestSensingStreamEncodesHealthCodes(t *testing.T) {
	// A full sensing cycle through the scan chain preserves the 2-bit
	// health classification end to end.
	s := ScanChain{W: 3, H: 1}
	tm := DefaultTiming()
	results := []Result{
		CellFor(Healthy).Sense(tm),
		CellFor(PartiallyDegraded).Sense(tm),
		CellFor(CompletelyDegraded).Sense(tm),
	}
	stream, err := s.PackSensing(results)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.UnpackSensing(stream)
	if err != nil {
		t.Fatal(err)
	}
	want := []HealthClass{Healthy, PartiallyDegraded, CompletelyDegraded}
	for i, r := range back {
		if r.Class() != want[i] {
			t.Errorf("cell %d classified %v, want %v", i, r.Class(), want[i])
		}
	}
}

func TestPackLengthValidation(t *testing.T) {
	s := ScanChain{W: 4, H: 4}
	if _, err := s.PackActuation(make([]bool, 7)); err == nil {
		t.Error("short actuation vector accepted")
	}
	if _, err := s.UnpackActuation(make([]byte, 1)); err == nil {
		t.Error("short actuation stream accepted")
	}
	if _, err := s.PackSensing(make([]Result, 3)); err == nil {
		t.Error("short sensing vector accepted")
	}
	if _, err := s.UnpackSensing(make([]byte, 1)); err == nil {
		t.Error("short sensing stream accepted")
	}
}

func TestCycleTiming(t *testing.T) {
	tm := DefaultCycleTiming()
	n := 60 * 30
	d := tm.CycleDuration(n)
	// Scan of 3·1800 bits at 10 MHz = 540 µs; plus 100 ms actuation.
	if d < 100*time.Millisecond || d > 102*time.Millisecond {
		t.Errorf("cycle duration = %v, want ≈100.55 ms", d)
	}
	// Time-to-result scales linearly in cycles.
	if tm.TimeToResult(10, n) != 10*d {
		t.Error("TimeToResult must be cycles × duration")
	}
	// A 300-cycle serial dilution ≈ 30 s of wall clock: sane for a
	// point-of-care assay.
	ttr := tm.TimeToResult(300, n)
	if ttr < 25*time.Second || ttr > 45*time.Second {
		t.Errorf("300-cycle time-to-result = %v, implausible", ttr)
	}
}
