package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIConstants(t *testing.T) {
	if CHealthy != 2.375e-15 || CPartial != 2.380e-15 || CDegraded != 2.385e-15 {
		t.Error("Table I capacitances wrong")
	}
	if MicroelectrodeAreaUM2 != 2500 {
		t.Error("microelectrode area must be 50×50 µm²")
	}
	if SiliconOilPermittivity != 19e-12 {
		t.Error("silicon-oil permittivity wrong")
	}
}

func TestCapacitanceOrdering(t *testing.T) {
	if !(Healthy.Capacitance() < PartiallyDegraded.Capacitance() &&
		PartiallyDegraded.Capacitance() < CompletelyDegraded.Capacitance()) {
		t.Error("degradation must increase capacitance")
	}
}

func TestVoltageDecay(t *testing.T) {
	c := CellFor(Healthy)
	if v := c.Voltage(0); v != VDD {
		t.Errorf("V(0) = %v, want VDD", v)
	}
	if v := c.Voltage(-1); v != VDD {
		t.Errorf("V(<0) = %v, want VDD", v)
	}
	rc := c.R * c.C
	if v := c.Voltage(rc); math.Abs(v-VDD/math.E) > 1e-9 {
		t.Errorf("V(RC) = %v, want VDD/e", v)
	}
	prev := VDD + 1
	for i := 0; i < 50; i++ {
		v := c.Voltage(float64(i) * 1e-7)
		if v >= prev {
			t.Fatal("discharge must be strictly decreasing")
		}
		prev = v
	}
}

func TestCrossingTimeFormula(t *testing.T) {
	c := CellFor(Healthy)
	tc := c.CrossingTime()
	// At the crossing time the voltage equals the threshold.
	if math.Abs(c.Voltage(tc)-c.Vth) > 1e-9 {
		t.Errorf("V(crossing) = %v, want %v", c.Voltage(tc), c.Vth)
	}
}

// TestFiveNanosecondSeparation checks the headline circuit-design result of
// Fig. 2: the crossing times of adjacent degradation classes are ≈5 ns
// apart, which is why the added DFF clock is asserted 5 ns later.
func TestFiveNanosecondSeparation(t *testing.T) {
	h := CellFor(Healthy).CrossingTime()
	p := CellFor(PartiallyDegraded).CrossingTime()
	d := CellFor(CompletelyDegraded).CrossingTime()
	sep1 := p - h
	sep2 := d - p
	for _, sep := range []float64{sep1, sep2} {
		if sep < 4e-9 || sep > 6e-9 {
			t.Errorf("class separation = %v s, want ≈5 ns", sep)
		}
	}
}

// TestTwoBitCodes verifies the paper's sensing contract: healthy "11",
// partially degraded "01", completely degraded "00".
func TestTwoBitCodes(t *testing.T) {
	tm := DefaultTiming()
	cases := []struct {
		class HealthClass
		code  string
	}{
		{Healthy, "11"},
		{PartiallyDegraded, "01"},
		{CompletelyDegraded, "00"},
	}
	for _, c := range cases {
		got := CellFor(c.class).Sense(tm)
		if got.Code() != c.code {
			t.Errorf("%v: code = %q, want %q", c.class, got.Code(), c.code)
		}
		if got.Class() != c.class {
			t.Errorf("%v: round-trip class = %v", c.class, got.Class())
		}
	}
}

func TestClassify(t *testing.T) {
	if Classify(CHealthy) != Healthy {
		t.Error("healthy capacitance misclassified")
	}
	if Classify(CPartial) != PartiallyDegraded {
		t.Error("partial capacitance misclassified")
	}
	if Classify(CDegraded) != CompletelyDegraded {
		t.Error("degraded capacitance misclassified")
	}
}

func TestClassifyMonotoneProperty(t *testing.T) {
	// Any capacitance below healthy classifies healthy; any above degraded
	// classifies degraded; classification is monotone in capacitance.
	f := func(u uint16) bool {
		c := 2.370e-15 + float64(u)/65535*0.020e-15 // 2.370..2.390 fF
		cls := Classify(c)
		clsUp := Classify(c + 1e-18)
		return clsUp >= cls
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddedDFFDelayIs5ns(t *testing.T) {
	tm := DefaultTiming()
	if math.Abs(tm.Added-tm.Original-5e-9) > 1e-15 {
		t.Errorf("added DFF delay = %v, want 5 ns", tm.Added-tm.Original)
	}
}

func TestHealthBitsMapping(t *testing.T) {
	if Healthy.HealthBits() != 3 || PartiallyDegraded.HealthBits() != 1 || CompletelyDegraded.HealthBits() != 0 {
		t.Error("HealthBits mapping wrong")
	}
}

func TestResultCode10IsConservative(t *testing.T) {
	r := Result{OriginalBit: 1, AddedBit: 0}
	if r.Class() != CompletelyDegraded {
		t.Error("impossible code 10 must classify conservatively")
	}
}

func TestWaveform(t *testing.T) {
	c := CellFor(Healthy)
	wf := c.Waveform(5e-6, 100)
	if len(wf) != 101 {
		t.Fatalf("len(waveform) = %d, want 101", len(wf))
	}
	if wf[0].V != VDD || wf[0].T != 0 {
		t.Error("waveform must start at (0, VDD)")
	}
	for i := 1; i < len(wf); i++ {
		if wf[i].V >= wf[i-1].V {
			t.Fatal("waveform must be strictly decreasing")
		}
		if wf[i].T <= wf[i-1].T {
			t.Fatal("waveform time must be strictly increasing")
		}
	}
	if got := c.Waveform(1e-6, 0); len(got) != 2 {
		t.Errorf("n<1 should clamp to 1 interval, got %d points", len(got))
	}
}

func TestFootprint(t *testing.T) {
	// The added DFF (~27 µm²) must fit in the headroom under the
	// microelectrode (Sec. III-B).
	if FootprintHeadroomUM2() <= DFFAreaUM2 {
		t.Errorf("headroom %v µm² cannot fit the %v µm² DFF", FootprintHeadroomUM2(), DFFAreaUM2)
	}
	if math.Abs(FootprintHeadroomUM2()-(2500-88.2)) > 1e-9 {
		t.Error("headroom formula wrong")
	}
}

func TestHealthClassString(t *testing.T) {
	if Healthy.String() != "healthy" || PartiallyDegraded.String() != "partially-degraded" ||
		CompletelyDegraded.String() != "completely-degraded" || HealthClass(9).String() != "unknown" {
		t.Error("HealthClass names wrong")
	}
	if !math.IsNaN(HealthClass(9).Capacitance()) {
		t.Error("unknown class capacitance should be NaN")
	}
}
