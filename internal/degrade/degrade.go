// Package degrade implements the microelectrode degradation model of
// Sec. IV of the paper, the quantized health sensing of Sec. III, and the
// fault-injection modes used in the evaluation of Sec. VII.
//
// Charge trapping in the dielectric layer makes the effective actuation
// voltage on a microelectrode decay with the number of actuations n:
//
//	D(n) = V(n)/Va ≈ τ^(n/c)            (degradation level, Eq. 3)
//	F̄(n) = (V(n)/Va)² ≈ τ^(2n/c)        (relative EWOD force, Eq. 2)
//	H(n) = ⌊2^b · D(n)⌋                  (b-bit observed health level)
//
// where τ ∈ (0,1) and c > 0 are per-microelectrode constants. The observed
// health H is what the new 2-bit microelectrode-cell design senses in real
// time; the actual degradation D is hidden from the controller and only used
// by the simulator.
package degrade

import (
	"fmt"
	"math"
	"sort"

	"meda/internal/randx"
)

// Params are the degradation constants (τ, c) of a single microelectrode.
// The paper's PCB fits are in the range τ ∈ [0.53, 0.56], c ∈ [788, 823]
// (Fig. 6); the biochip-level evaluation samples c ~ U(200, 500) and
// τ ~ U(0.5, 0.9) (Sec. VII-B).
type Params struct {
	Tau float64
	C   float64
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if !(p.Tau > 0 && p.Tau <= 1) {
		return fmt.Errorf("degrade: τ = %v out of (0,1]", p.Tau)
	}
	if !(p.C > 0) {
		return fmt.Errorf("degrade: c = %v must be positive", p.C)
	}
	return nil
}

// Degradation returns D(n) = τ^(n/c) ∈ [0,1].
func (p Params) Degradation(n int) float64 {
	return math.Pow(p.Tau, float64(n)/p.C)
}

// Force returns the relative EWOD force F̄(n) = τ^(2n/c) = D(n)².
func (p Params) Force(n int) float64 {
	d := p.Degradation(n)
	return d * d
}

// Health returns the b-bit observed health level H(n) = ⌊2^b·D(n)⌋, clamped
// to the representable range [0, 2^b−1]. (At n = 0 the raw formula yields
// 2^b, which does not fit in b bits; the hardware's fully-healthy code is the
// all-ones pattern, e.g. "11" for b = 2, so the top level is saturated.)
func (p Params) Health(n, b int) int {
	return QuantizeHealth(p.Degradation(n), b)
}

// QuantizeHealth maps a degradation level D ∈ [0,1] to the b-bit health code.
func QuantizeHealth(d float64, b int) int {
	if b < 1 {
		panic("degrade: health bits must be >= 1")
	}
	levels := 1 << uint(b)
	h := int(math.Floor(float64(levels) * d))
	if h >= levels {
		h = levels - 1
	}
	if h < 0 {
		h = 0
	}
	return h
}

// DegradationFromHealth returns the controller's estimate D̂ of the hidden
// degradation level given an observed b-bit health code: the midpoint of the
// quantization cell, except the top code which is estimated as fully healthy
// (it aliases D ∈ [1−1/2^b, 1]). The all-zeros code aliases D ∈ [0, 1/2^b),
// so its midpoint keeps such microelectrodes usable as a last resort — the
// synthesizer's expected-cost objective still avoids them strongly, but a
// droplet is not declared unroutable when the true force may be positive.
// Hard-failed cells (true D = 0) remain impassable in simulation regardless
// of the estimate.
func DegradationFromHealth(h, b int) float64 {
	levels := 1 << uint(b)
	if h >= levels-1 {
		return 1
	}
	if h < 0 {
		h = 0
	}
	return (float64(h) + 0.5) / float64(levels)
}

// ForceFromDegradation returns the relative EWOD force for a degradation
// level: F̄ = D². Exposed separately so that the simulator (which knows D)
// and the synthesizer (which only knows D̂ from H) share one definition.
func ForceFromDegradation(d float64) float64 { return d * d }

// ActuationsToDegradation inverts Eq. (3): the number of actuations after
// which the degradation level first drops to d. Returns +Inf when d is not
// reachable (d > 1 is clamped; τ = 1 never degrades).
func (p Params) ActuationsToDegradation(d float64) float64 {
	if d >= 1 {
		return 0
	}
	if d <= 0 || isOne(p.Tau) {
		return math.Inf(1)
	}
	return p.C * math.Log(d) / math.Log(p.Tau)
}

// MC is the degradation state of one microelectrode cell: its constants, its
// actuation counter, and an optional hard-fault threshold (Sec. VII-C: a
// faulty MC "exhibits a sudden failure at random actuation n", after which
// D = 0).
type MC struct {
	Params Params
	N      int // number of actuations so far
	// FailAt is the actuation count at which the MC fails hard; 0 means
	// the MC is a normal (non-faulty) cell that only wears gradually.
	FailAt int
}

// Actuate records one actuation cycle.
func (m *MC) Actuate() { m.N++ }

// Failed reports whether the hard fault has triggered.
func (m *MC) Failed() bool { return m.FailAt > 0 && m.N >= m.FailAt }

// Degradation returns the current actual degradation level D (0 if the hard
// fault has triggered).
func (m *MC) Degradation() float64 {
	if m.Failed() {
		return 0
	}
	return m.Params.Degradation(m.N)
}

// Force returns the current relative EWOD force F̄ = D².
func (m *MC) Force() float64 {
	d := m.Degradation()
	return d * d
}

// Health returns the observed b-bit health code for the current state.
func (m *MC) Health(b int) int { return QuantizeHealth(m.Degradation(), b) }

// ParamRange describes a uniform distribution over degradation constants:
// c ~ U(C1, C2) and τ ~ U(Tau1, Tau2), as configured in Sec. VII.
type ParamRange struct {
	Tau1, Tau2 float64
	C1, C2     float64
}

// DefaultNormal is the evaluation configuration of Sec. VII-B for normal
// microelectrodes: c ~ U(200, 500), τ ~ U(0.5, 0.9).
var DefaultNormal = ParamRange{Tau1: 0.5, Tau2: 0.9, C1: 200, C2: 500}

// Sample draws one set of constants from the range.
func (r ParamRange) Sample(src *randx.Source) Params {
	return Params{Tau: src.Uniform(r.Tau1, r.Tau2), C: src.Uniform(r.C1, r.C2)}
}

// Validate checks the range bounds.
func (r ParamRange) Validate() error {
	if !(0 < r.Tau1 && r.Tau1 <= r.Tau2 && r.Tau2 <= 1) {
		return fmt.Errorf("degrade: invalid τ range [%v,%v]", r.Tau1, r.Tau2)
	}
	if !(0 < r.C1 && r.C1 <= r.C2) {
		return fmt.Errorf("degrade: invalid c range [%v,%v]", r.C1, r.C2)
	}
	return nil
}

// FaultMode selects how hard-faulty MCs are placed on the array (Sec. VII-C).
type FaultMode int

const (
	// FaultNone injects no hard faults.
	FaultNone FaultMode = iota
	// FaultUniform scatters faulty MCs uniformly at random.
	FaultUniform
	// FaultClustered places faults as randomly-located 2×2 clusters of
	// adjacent MCs, which Sec. III-C argues is the realistic pattern.
	FaultClustered
)

// String names the mode.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultUniform:
		return "uniform"
	case FaultClustered:
		return "clustered"
	}
	return "unknown"
}

// FaultPlan describes a fault-injection experiment: the placement mode, the
// fraction of MCs that are faulty, and the range of actuation counts at which
// a faulty MC fails hard.
type FaultPlan struct {
	Mode     FaultMode
	Fraction float64 // fraction of all MCs that are faulty, e.g. 0.05
	// FailAfter samples the hard-failure threshold (in actuations) for
	// each faulty MC: FailAt ~ U[Lo, Hi].
	FailAfterLo, FailAfterHi int
}

// Validate checks the plan.
func (p FaultPlan) Validate() error {
	if p.Mode == FaultNone {
		return nil
	}
	if p.Fraction < 0 || p.Fraction > 1 {
		return fmt.Errorf("degrade: fault fraction %v out of [0,1]", p.Fraction)
	}
	if p.FailAfterLo < 1 || p.FailAfterHi < p.FailAfterLo {
		return fmt.Errorf("degrade: invalid FailAfter range [%d,%d]", p.FailAfterLo, p.FailAfterHi)
	}
	return nil
}

// PlaceFaults returns the linear indices (y*w + x, 0-based) of the MCs made
// faulty on a w×h array under the plan, using src for all randomness. The
// clustered mode rounds the count down to whole 2×2 clusters.
func (p FaultPlan) PlaceFaults(w, h int, src *randx.Source) []int {
	if p.Mode == FaultNone || isZero(p.Fraction) {
		return nil
	}
	total := w * h
	count := int(math.Round(p.Fraction * float64(total)))
	if count == 0 {
		return nil
	}
	marked := make(map[int]bool, count)
	switch p.Mode {
	case FaultUniform:
		perm := src.Perm(total)
		for _, idx := range perm[:count] {
			marked[idx] = true
		}
	case FaultClustered:
		clusters := count / 4
		if clusters == 0 {
			clusters = 1
		}
		for len(marked) < clusters*4 {
			// Anchor of a 2×2 cluster; keep it fully on-chip.
			x := src.IntN(w - 1)
			y := src.IntN(h - 1)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					marked[(y+dy)*w+(x+dx)] = true
				}
			}
		}
	}
	out := make([]int, 0, len(marked))
	for idx := range marked {
		out = append(out, idx)
	}
	// Map iteration order is randomized; sort so that downstream parameter
	// sampling is deterministic for a given seed.
	sort.Ints(out)
	return out
}

// isZero and isOne are exact sentinel comparisons (medalint floatcmp):
// Tau and Fraction are configuration constants compared against their
// documented sentinel values, not accumulated quantities.
func isZero(x float64) bool { return x == 0 }

// isOne is the τ = 1 "never degrades" sentinel.
func isOne(x float64) bool { return x == 1 }
