// Synthetic lab bench reproducing the PCB-prototype degradation experiments
// of Sec. IV-A (Fig. 4–6). The paper actuated electrodes of three sizes on a
// fabricated PCB DMFB (1.5 kHz, 200 Vpp, R = 1 MΩ in series) and measured the
// effective capacitance with an oscilloscope after repeated 1 s and 5 s
// actuation pulses. We have no PCB, so this file generates measurement traces
// with the empirically established properties — linear capacitance growth
// whose slope increases with pulse duration (residual charge) and electrode
// size — and exposes them to the same fitting code the paper's analysis uses.
package degrade

import (
	"fmt"

	"meda/internal/randx"
)

// ElectrodeSize identifies one of the three PCB electrode sizes of Fig. 4(a).
type ElectrodeSize int

const (
	// Electrode2mm is the 2×2 mm² electrode.
	Electrode2mm ElectrodeSize = iota
	// Electrode3mm is the 3×3 mm² electrode.
	Electrode3mm
	// Electrode4mm is the 4×4 mm² electrode.
	Electrode4mm
)

// ElectrodeSizes lists the three sizes in ascending order.
var ElectrodeSizes = [3]ElectrodeSize{Electrode2mm, Electrode3mm, Electrode4mm}

// String returns e.g. "2x2mm".
func (s ElectrodeSize) String() string {
	switch s {
	case Electrode2mm:
		return "2x2mm"
	case Electrode3mm:
		return "3x3mm"
	case Electrode4mm:
		return "4x4mm"
	}
	return "unknown"
}

// SideMM returns the electrode side length in millimeters.
func (s ElectrodeSize) SideMM() float64 {
	switch s {
	case Electrode2mm:
		return 2
	case Electrode3mm:
		return 3
	case Electrode4mm:
		return 4
	}
	return 0
}

// AreaMM2 returns the electrode area in mm².
func (s ElectrodeSize) AreaMM2() float64 { side := s.SideMM(); return side * side }

// FittedParams returns the paper's Fig. 6 fitted degradation constants
// (τ, c) for the electrode size: (0.556, 822.7), (0.543, 805.5) and
// (0.530, 788.4) for 2, 3 and 4 mm electrodes respectively.
func (s ElectrodeSize) FittedParams() Params {
	switch s {
	case Electrode2mm:
		return Params{Tau: 0.556, C: 822.7}
	case Electrode3mm:
		return Params{Tau: 0.543, C: 805.5}
	case Electrode4mm:
		return Params{Tau: 0.530, C: 788.4}
	}
	return Params{}
}

// CapacitancePoint is one oscilloscope-derived measurement: the effective
// electrode capacitance (pF) after N actuation pulses.
type CapacitancePoint struct {
	N  int
	PF float64
}

// BenchConfig configures the synthetic PCB bench.
type BenchConfig struct {
	// PulseSeconds is the per-actuation pulse length: 1 s for the charge-
	// trapping experiment of Fig. 5(a), 5 s for the residual-charge
	// experiment of Fig. 5(b).
	PulseSeconds float64
	// MaxActuations is the largest actuation count measured ("hundreds of
	// times" in the paper; Fig. 5 spans a few hundred pulses).
	MaxActuations int
	// Step is the actuation-count spacing between measurements.
	Step int
	// NoisePF is the 1σ measurement noise of the oscilloscope-derived
	// capacitance, in pF.
	NoisePF float64
}

// DefaultBench returns the configuration for the given pulse duration used by
// the Fig. 5 reproduction: 400 pulses, sampled every 20, with 0.05 pF of
// measurement noise.
func DefaultBench(pulseSeconds float64) BenchConfig {
	return BenchConfig{PulseSeconds: pulseSeconds, MaxActuations: 400, Step: 20, NoisePF: 0.05}
}

// baseCapacitancePF returns the healthy electrode capacitance. A PCB
// electrode with an FR-4/soldermask dielectric stack measures in the tens of
// picofarads; we scale linearly with electrode area.
func baseCapacitancePF(s ElectrodeSize) float64 {
	return 4.0 * s.AreaMM2() // 16 pF for 2×2 mm², 64 pF for 4×4 mm²
}

// trappingSlopePF returns the per-actuation capacitance growth (pF per
// pulse). Charge trapping accumulates with delivered charge, so the slope
// scales with electrode area and grows superlinearly with pulse length — the
// paper observed "much faster" growth for 5 s pulses (residual charge) than
// for 1 s pulses.
func trappingSlopePF(s ElectrodeSize, pulseSeconds float64) float64 {
	return 0.004 * s.AreaMM2() * pulseSeconds * pulseSeconds
}

// CapacitanceTrace generates one synthetic Fig. 5 measurement series for an
// electrode size: linear capacitance growth plus oscilloscope noise.
func CapacitanceTrace(s ElectrodeSize, cfg BenchConfig, src *randx.Source) []CapacitancePoint {
	if cfg.Step <= 0 || cfg.MaxActuations <= 0 {
		panic(fmt.Sprintf("degrade: bad bench config %+v", cfg))
	}
	base := baseCapacitancePF(s)
	slope := trappingSlopePF(s, cfg.PulseSeconds)
	var out []CapacitancePoint
	for n := 0; n <= cfg.MaxActuations; n += cfg.Step {
		c := base + slope*float64(n) + src.Normal(0, cfg.NoisePF)
		out = append(out, CapacitancePoint{N: n, PF: c})
	}
	return out
}

// ForcePoint is one derived measurement of relative EWOD force after N
// actuations (Fig. 6 markers).
type ForcePoint struct {
	N     int
	Force float64
}

// ForceTrace generates the measured relative-force series of Fig. 6 for an
// electrode size: the true decay F̄(n) = τ^(2n/c) with the paper's fitted
// constants, corrupted by multiplicative measurement noise (the force is
// derived from a voltage measurement squared, so noise is relative).
func ForceTrace(s ElectrodeSize, maxN, step int, relNoise float64, src *randx.Source) []ForcePoint {
	if step <= 0 || maxN <= 0 {
		panic("degrade: bad force trace config")
	}
	p := s.FittedParams()
	var out []ForcePoint
	for n := 0; n <= maxN; n += step {
		f := p.Force(n) * (1 + src.Normal(0, relNoise))
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		out = append(out, ForcePoint{N: n, Force: f})
	}
	return out
}
