package degrade

import (
	"math"
	"testing"
	"testing/quick"

	"meda/internal/randx"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Tau: 0.7, C: 350}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{{Tau: 0, C: 100}, {Tau: 1.5, C: 100}, {Tau: 0.5, C: 0}, {Tau: 0.5, C: -3}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
}

func TestDegradationEndpoints(t *testing.T) {
	p := Params{Tau: 0.6, C: 300}
	if d := p.Degradation(0); d != 1 {
		t.Errorf("D(0) = %v, want 1", d)
	}
	if d := p.Degradation(300); math.Abs(d-0.6) > 1e-12 {
		t.Errorf("D(c) = %v, want τ = 0.6", d)
	}
	if d := p.Degradation(600); math.Abs(d-0.36) > 1e-12 {
		t.Errorf("D(2c) = %v, want τ² = 0.36", d)
	}
}

func TestForceIsDegradationSquared(t *testing.T) {
	f := func(tau8, c8, n8 uint8) bool {
		p := Params{Tau: 0.1 + 0.89*float64(tau8)/255, C: 50 + float64(c8)*4}
		n := int(n8) * 10
		d := p.Degradation(n)
		return math.Abs(p.Force(n)-d*d) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegradationMonotone(t *testing.T) {
	p := Params{Tau: 0.5, C: 250}
	prev := 2.0
	for n := 0; n <= 2000; n += 50 {
		d := p.Degradation(n)
		if d > prev {
			t.Fatalf("D not non-increasing at n=%d: %v > %v", n, d, prev)
		}
		if d < 0 || d > 1 {
			t.Fatalf("D(%d) = %v out of [0,1]", n, d)
		}
		prev = d
	}
}

func TestHealthQuantization(t *testing.T) {
	cases := []struct {
		d    float64
		b    int
		want int
	}{
		{1.0, 2, 3},   // fully healthy saturates at 2^b−1 ("11")
		{0.99, 2, 3},  // still top code
		{0.74, 2, 2},  // ⌊4·0.74⌋ = 2
		{0.5, 2, 2},   // boundary: ⌊2.0⌋ = 2
		{0.49, 2, 1},  // ⌊1.96⌋ = 1
		{0.2, 2, 0},   // ⌊0.8⌋ = 0
		{0.0, 2, 0},   // fully degraded, "00"
		{1.0, 1, 1},   // 1-bit sensing
		{0.4, 1, 0},   //
		{0.9, 4, 14},  // ⌊16·0.9⌋ = 14
		{0.95, 4, 15}, //
	}
	for _, c := range cases {
		if got := QuantizeHealth(c.d, c.b); got != c.want {
			t.Errorf("QuantizeHealth(%v, %d) = %d, want %d", c.d, c.b, got, c.want)
		}
	}
}

func TestHealthInRangeProperty(t *testing.T) {
	f := func(d float64, b8 uint8) bool {
		if math.IsNaN(d) {
			return true
		}
		b := int(b8%4) + 1
		h := QuantizeHealth(math.Mod(math.Abs(d), 1.0), b)
		return h >= 0 && h < 1<<uint(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHealthMonotoneInDegradation(t *testing.T) {
	for b := 1; b <= 4; b++ {
		prev := -1
		for d := 0.0; d <= 1.0; d += 0.001 {
			h := QuantizeHealth(d, b)
			if h < prev {
				t.Fatalf("health not monotone at d=%v b=%d", d, b)
			}
			prev = h
		}
	}
}

func TestDegradationFromHealthRoundTrip(t *testing.T) {
	// The estimate must fall in the quantization cell that produced it
	// (except the saturated endpoints, which are pinned to 0 and 1).
	for b := 1; b <= 4; b++ {
		levels := 1 << uint(b)
		for h := 1; h < levels-1; h++ {
			est := DegradationFromHealth(h, b)
			if QuantizeHealth(est, b) != h {
				t.Errorf("b=%d h=%d: estimate %v quantizes to %d", b, h, est, QuantizeHealth(est, b))
			}
		}
		// The all-zeros code estimates the midpoint of [0, 1/2^b), not
		// zero: routing keeps a last-resort option through regions the
		// sensing cannot distinguish from barely-alive.
		if got := DegradationFromHealth(0, b); got != 0.5/float64(levels) {
			t.Errorf("b=%d: zero health estimate = %v, want %v", b, got, 0.5/float64(levels))
		}
		if DegradationFromHealth(levels-1, b) != 1 {
			t.Errorf("b=%d: top health must estimate 1", b)
		}
	}
}

func TestActuationsToDegradation(t *testing.T) {
	p := Params{Tau: 0.6, C: 300}
	n := p.ActuationsToDegradation(0.6)
	if math.Abs(n-300) > 1e-9 {
		t.Errorf("n(τ) = %v, want c = 300", n)
	}
	if p.ActuationsToDegradation(1) != 0 {
		t.Error("n(1) must be 0")
	}
	if !math.IsInf(p.ActuationsToDegradation(0), 1) {
		t.Error("n(0) must be +Inf")
	}
	if !math.IsInf((Params{Tau: 1, C: 100}).ActuationsToDegradation(0.5), 1) {
		t.Error("τ=1 never degrades")
	}
}

func TestMCLifecycle(t *testing.T) {
	m := MC{Params: Params{Tau: 0.5, C: 100}}
	if m.Degradation() != 1 || m.Health(2) != 3 {
		t.Error("fresh MC must be fully healthy")
	}
	for i := 0; i < 100; i++ {
		m.Actuate()
	}
	if m.N != 100 {
		t.Errorf("N = %d, want 100", m.N)
	}
	if math.Abs(m.Degradation()-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", m.Degradation())
	}
	if math.Abs(m.Force()-0.25) > 1e-12 {
		t.Errorf("F = %v, want 0.25", m.Force())
	}
}

func TestMCHardFault(t *testing.T) {
	m := MC{Params: Params{Tau: 0.9, C: 500}, FailAt: 10}
	for i := 0; i < 9; i++ {
		m.Actuate()
	}
	if m.Failed() {
		t.Error("MC failed before threshold")
	}
	if m.Degradation() == 0 {
		t.Error("MC degradation should be positive before failure")
	}
	m.Actuate()
	if !m.Failed() {
		t.Error("MC must fail at threshold")
	}
	if m.Degradation() != 0 || m.Force() != 0 || m.Health(2) != 0 {
		t.Error("failed MC must read fully degraded")
	}
}

func TestParamRangeSample(t *testing.T) {
	src := randx.New(3)
	r := DefaultNormal
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := r.Sample(src)
		if p.Tau < 0.5 || p.Tau >= 0.9 || p.C < 200 || p.C >= 500 {
			t.Fatalf("sample out of range: %+v", p)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParamRangeValidate(t *testing.T) {
	bad := []ParamRange{
		{Tau1: 0, Tau2: 0.5, C1: 1, C2: 2},
		{Tau1: 0.9, Tau2: 0.5, C1: 1, C2: 2},
		{Tau1: 0.5, Tau2: 1.5, C1: 1, C2: 2},
		{Tau1: 0.5, Tau2: 0.9, C1: 5, C2: 2},
		{Tau1: 0.5, Tau2: 0.9, C1: 0, C2: 2},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid range %+v accepted", r)
		}
	}
}

func TestFaultPlanNone(t *testing.T) {
	plan := FaultPlan{Mode: FaultNone}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := plan.PlaceFaults(60, 30, randx.New(1)); got != nil {
		t.Errorf("FaultNone placed %d faults", len(got))
	}
}

func TestFaultPlanUniformCount(t *testing.T) {
	plan := FaultPlan{Mode: FaultUniform, Fraction: 0.05, FailAfterLo: 10, FailAfterHi: 100}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	faults := plan.PlaceFaults(60, 30, randx.New(2))
	want := int(math.Round(0.05 * 60 * 30))
	if len(faults) != want {
		t.Errorf("placed %d faults, want %d", len(faults), want)
	}
	seen := map[int]bool{}
	for _, idx := range faults {
		if idx < 0 || idx >= 60*30 {
			t.Fatalf("fault index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate fault index %d", idx)
		}
		seen[idx] = true
	}
}

func TestFaultPlanClusteredShape(t *testing.T) {
	const w, h = 60, 30
	plan := FaultPlan{Mode: FaultClustered, Fraction: 0.04, FailAfterLo: 10, FailAfterHi: 100}
	faults := plan.PlaceFaults(w, h, randx.New(7))
	if len(faults)%1 != 0 || len(faults) == 0 {
		t.Fatal("no faults placed")
	}
	set := map[int]bool{}
	for _, idx := range faults {
		set[idx] = true
	}
	// Every faulty MC must have at least one faulty neighbor in both axes
	// direction-combined sense: it belongs to a 2×2 block. Check that each
	// fault participates in at least one fully-faulty 2×2 block.
	inBlock := func(idx int) bool {
		x, y := idx%w, idx/w
		for _, dy := range []int{-1, 0} {
			for _, dx := range []int{-1, 0} {
				bx, by := x+dx, y+dy
				if bx < 0 || by < 0 || bx+1 >= w || by+1 >= h {
					continue
				}
				if set[by*w+bx] && set[by*w+bx+1] && set[(by+1)*w+bx] && set[(by+1)*w+bx+1] {
					return true
				}
			}
		}
		return false
	}
	for _, idx := range faults {
		if !inBlock(idx) {
			t.Errorf("fault at %d not part of a 2×2 cluster", idx)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Mode: FaultUniform, Fraction: -0.1, FailAfterLo: 1, FailAfterHi: 2},
		{Mode: FaultUniform, Fraction: 1.1, FailAfterLo: 1, FailAfterHi: 2},
		{Mode: FaultUniform, Fraction: 0.5, FailAfterLo: 0, FailAfterHi: 2},
		{Mode: FaultClustered, Fraction: 0.5, FailAfterLo: 5, FailAfterHi: 2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %+v accepted", p)
		}
	}
}

func TestFaultModeString(t *testing.T) {
	if FaultNone.String() != "none" || FaultUniform.String() != "uniform" || FaultClustered.String() != "clustered" {
		t.Error("FaultMode names wrong")
	}
	if FaultMode(99).String() != "unknown" {
		t.Error("unknown mode should stringify as unknown")
	}
}
