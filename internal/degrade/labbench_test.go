package degrade

import (
	"math"
	"testing"

	"meda/internal/randx"
	"meda/internal/stats"
)

func TestElectrodeSizeBasics(t *testing.T) {
	if Electrode2mm.AreaMM2() != 4 || Electrode3mm.AreaMM2() != 9 || Electrode4mm.AreaMM2() != 16 {
		t.Error("electrode areas wrong")
	}
	if Electrode3mm.String() != "3x3mm" {
		t.Errorf("String = %q", Electrode3mm.String())
	}
	if ElectrodeSize(9).SideMM() != 0 || ElectrodeSize(9).String() != "unknown" {
		t.Error("unknown size should be zero-valued")
	}
}

func TestFittedParamsMatchPaper(t *testing.T) {
	// Fig. 6: (τ2,c2)=(0.556,822.7), (τ3,c3)=(0.543,805.5), (τ4,c4)=(0.530,788.4).
	cases := []struct {
		size ElectrodeSize
		tau  float64
		c    float64
	}{
		{Electrode2mm, 0.556, 822.7},
		{Electrode3mm, 0.543, 805.5},
		{Electrode4mm, 0.530, 788.4},
	}
	for _, cse := range cases {
		p := cse.size.FittedParams()
		if p.Tau != cse.tau || p.C != cse.c {
			t.Errorf("%v params = %+v, want (%v,%v)", cse.size, p, cse.tau, cse.c)
		}
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// TestCapacitanceTraceLinear reproduces the core finding of Fig. 5: the
// capacitance grows linearly in the number of actuations, with high R².
func TestCapacitanceTraceLinear(t *testing.T) {
	src := randx.New(11)
	for _, size := range ElectrodeSizes {
		trace := CapacitanceTrace(size, DefaultBench(1), src.Split(size.String()))
		xs := make([]float64, len(trace))
		ys := make([]float64, len(trace))
		for i, pt := range trace {
			xs[i] = float64(pt.N)
			ys[i] = pt.PF
		}
		fit, err := stats.FitLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Slope <= 0 {
			t.Errorf("%v: capacitance slope %v not positive", size, fit.Slope)
		}
		if fit.R2 < 0.9 {
			t.Errorf("%v: linearity R² = %v, want > 0.9", size, fit.R2)
		}
	}
}

// TestResidualChargeFaster reproduces Fig. 5(b): 5 s pulses degrade the
// electrode much faster than 1 s pulses.
func TestResidualChargeFaster(t *testing.T) {
	src := randx.New(13)
	slope := func(pulse float64) float64 {
		trace := CapacitanceTrace(Electrode3mm, DefaultBench(pulse), src.Split("p"))
		xs := make([]float64, len(trace))
		ys := make([]float64, len(trace))
		for i, pt := range trace {
			xs[i] = float64(pt.N)
			ys[i] = pt.PF
		}
		fit, err := stats.FitLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		return fit.Slope
	}
	s1, s5 := slope(1), slope(5)
	if s5 < 5*s1 {
		t.Errorf("residual-charge slope %v not ≫ charge-trapping slope %v", s5, s1)
	}
}

// TestCapacitanceScalesWithArea: larger electrodes have larger base
// capacitance, consistent with C = εA/d.
func TestCapacitanceScalesWithArea(t *testing.T) {
	src := randx.New(17)
	base := func(s ElectrodeSize) float64 {
		return CapacitanceTrace(s, DefaultBench(1), src.Split(s.String()))[0].PF
	}
	if !(base(Electrode2mm) < base(Electrode3mm) && base(Electrode3mm) < base(Electrode4mm)) {
		t.Error("base capacitance must increase with electrode area")
	}
}

// TestForceTraceFit closes the Fig. 6 loop: generate measured force points,
// fit the τ^(2n/c) model, and verify the recovered constants and R²_adj
// match the paper's quality (R²_adj > 0.94).
func TestForceTraceFit(t *testing.T) {
	src := randx.New(19)
	for _, size := range ElectrodeSizes {
		truth := size.FittedParams()
		trace := ForceTrace(size, 1500, 50, 0.02, src.Split(size.String()))
		ns := make([]float64, len(trace))
		fs := make([]float64, len(trace))
		for i, pt := range trace {
			ns[i] = float64(pt.N)
			fs[i] = pt.Force
		}
		fit, err := stats.FitForceModel(ns, fs, truth.Tau)
		if err != nil {
			t.Fatal(err)
		}
		if fit.R2Adj <= 0.94 {
			t.Errorf("%v: R²_adj = %v, paper reports > 0.94", size, fit.R2Adj)
		}
		if math.Abs(fit.C-truth.C)/truth.C > 0.05 {
			t.Errorf("%v: recovered c = %v, want ≈%v", size, fit.C, truth.C)
		}
	}
}

func TestForceTraceBounded(t *testing.T) {
	trace := ForceTrace(Electrode2mm, 3000, 100, 0.1, randx.New(23))
	for _, pt := range trace {
		if pt.Force < 0 || pt.Force > 1 {
			t.Fatalf("force %v out of [0,1] at n=%d", pt.Force, pt.N)
		}
	}
	if trace[0].Force < 0.9 {
		t.Errorf("fresh electrode force = %v, want ≈1", trace[0].Force)
	}
}

func TestBenchConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad bench config")
		}
	}()
	CapacitanceTrace(Electrode2mm, BenchConfig{Step: 0, MaxActuations: 10}, randx.New(1))
}
