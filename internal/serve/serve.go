// Package serve is the medad fleet service: a multi-tenant controller
// multiplexing many simulated MEDA biochips over the repo's synthesis,
// scheduling, and simulation machinery, with a REST + WebSocket API,
// durable snapshot-plus-journal persistence, and webhook notifications.
// See fleet.go for the tenancy/determinism model, store.go for the
// persistence format, and handlers.go for the API surface.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// Server couples a Fleet with its HTTP front end.
type Server struct {
	Fleet *Fleet
	hs    *http.Server
}

// NewServer builds the fleet (replaying any persisted state) and its
// handler.
func NewServer(cfg Config) (*Server, error) {
	f, err := NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{Fleet: f, hs: &http.Server{Handler: Handler(f)}}, nil
}

// Serve accepts connections until Shutdown or Kill.
func (s *Server) Serve(ln net.Listener) error {
	err := s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: the HTTP server stops accepting and waits for
// in-flight handlers (WebSocket streams finish their close handshake when
// the fleet stops), then the fleet drains workers and persists. Every error
// on the way down is propagated — the caller decides what a failed flush
// means.
func (s *Server) Shutdown(ctx context.Context) error {
	// Stop the fleet first so event streams close their WebSockets and
	// hijacked connections (which http.Server.Shutdown does not track)
	// unwind before the listener closes.
	ferr := s.Fleet.Shutdown()
	herr := s.hs.Shutdown(ctx)
	return errors.Join(ferr, herr)
}

// Kill stops abruptly, simulating a crash: no snapshot, no close
// handshakes; the journal alone carries the state forward.
func (s *Server) Kill() {
	s.Fleet.Kill()
	s.hs.Close() //lint:ignore errflowstrict a simulated crash abandons connection cleanliness by design
}
