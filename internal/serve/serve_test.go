package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"meda/internal/telemetry"
	"meda/pkg/api"
	"meda/pkg/client"
)

// TestMain wires the JSONL telemetry tracer when SERVE_TRACE names a file,
// so a failing CI run leaves a trace artifact behind.
func TestMain(m *testing.M) {
	var tracer *telemetry.Tracer
	if path := os.Getenv("SERVE_TRACE"); path != "" {
		f, err := os.Create(path)
		if err == nil {
			tracer = telemetry.NewTracer(f)
			telemetry.SetTracer(tracer)
		}
	}
	code := m.Run()
	if tracer != nil {
		tracer.Flush() //lint:ignore errflowstrict best-effort trace artifact on exit
	}
	os.Exit(code)
}

// testServer starts a fleet server on a loopback port and returns an SDK
// client pointed at it. The server shuts down at test cleanup.
func testServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, client.New("http://" + ln.Addr().String())
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// slowAssay holds a merged droplet on the magnet long enough (~10s of
// simulated cycles at observed throughput) that cancel and busy-conflict
// tests can deterministically catch the job mid-flight.
const slowAssay = `assay slow
a = dis 16
b = dis 16
m = mix a b
h = mag m hold=30000
out h
`

// slowKMax comfortably covers slowAssay's hold plus routing overhead.
const slowKMax = 40000

func TestRESTLifecycle(t *testing.T) {
	_, c := testServer(t, Config{})
	ctx := ctxT(t)

	// Tenant create, duplicate, list.
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTenant(ctx, "acme"); !client.IsConflict(err) {
		t.Fatalf("duplicate tenant: %v, want conflict", err)
	}
	if _, err := c.CreateTenant(ctx, "bad id!"); err == nil {
		t.Fatal("invalid tenant id accepted")
	}
	tenants, err := c.Tenants(ctx)
	if err != nil || len(tenants) != 1 || tenants[0].ID != "acme" {
		t.Fatalf("tenants = %+v, err %v", tenants, err)
	}

	// Chip create under the tenant; 404s for unknown names.
	if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "nobody", api.ChipSpec{ID: "c1", Seed: 11}); !client.IsNotFound(err) {
		t.Fatalf("chip under unknown tenant: %v, want not-found", err)
	}
	if _, err := c.Chip(ctx, "acme", "ghost"); !client.IsNotFound(err) {
		t.Fatalf("unknown chip: %v, want not-found", err)
	}
	if _, err := c.Job(ctx, "acme", "j-999999"); !client.IsNotFound(err) {
		t.Fatalf("unknown job: %v, want not-found", err)
	}

	// Invalid job specs are rejected up front.
	if _, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1"}); err == nil {
		t.Fatal("job without benchmark or assay accepted")
	}
	if _, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "no-such-assay", Seed: 3}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}

	// A real job runs to completion.
	js, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if js.State != api.JobQueued && js.State != api.JobRunning {
		t.Fatalf("submitted job state = %q", js.State)
	}
	final, err := c.WaitJob(ctx, "acme", js.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobDone || final.Result == nil || !final.Result.Success {
		t.Fatalf("final = %+v", final)
	}
	if final.Result.HazardViolations != 0 {
		t.Fatalf("hazard violations = %d", final.Result.HazardViolations)
	}

	// Job listing filters by chip.
	jobs, err := c.Jobs(ctx, "acme", "c1")
	if err != nil || len(jobs) != 1 || jobs[0].ID != js.ID {
		t.Fatalf("jobs(c1) = %+v, err %v", jobs, err)
	}
	jobs, err = c.Jobs(ctx, "acme", "ghost")
	if err != nil || len(jobs) != 0 {
		t.Fatalf("jobs(ghost) = %+v, err %v", jobs, err)
	}

	// Chip status reflects the finished job; health state round-trips.
	cs, err := c.Chip(ctx, "acme", "c1")
	if err != nil || cs.JobsDone != 1 || cs.Actuations == 0 {
		t.Fatalf("chip status = %+v, err %v", cs, err)
	}
	state, err := c.ChipHealth(ctx, "acme", "c1")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Version int `json:"version"`
		W       int `json:"w"`
		H       int `json:"h"`
	}
	if err := json.Unmarshal(state, &decoded); err != nil || decoded.W == 0 {
		t.Fatalf("chip health payload: %v (%s...)", err, state[:40])
	}
	if err := c.UploadChipHealth(ctx, "acme", "c1", state); err != nil {
		t.Fatalf("health re-upload: %v", err)
	}

	// Healthz and metrics observe the activity.
	h, err := c.Healthz(ctx)
	if err != nil || !h.OK || h.Tenants != 1 || h.Chips != 1 || h.JobsDone != 1 {
		t.Fatalf("healthz = %+v, err %v", h, err)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["serve.jobs.submitted"] == 0 {
		t.Fatalf("metrics missing serve.jobs.submitted: %+v", m.Counters)
	}
}

// The WebSocket feed delivers the job lifecycle in order with increasing
// sequence numbers, scoped to the subscribed tenant.
func TestEventStreamJobLifecycle(t *testing.T) {
	_, c := testServer(t, Config{CheckpointEvery: 8})
	ctx := ctxT(t)
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTenant(ctx, "other"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "other", api.ChipSpec{ID: "c9", Seed: 6}); err != nil {
		t.Fatal(err)
	}

	es, err := c.StreamEvents(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close() //lint:ignore errflowstrict test cleanup of a drained stream

	js, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Activity on the other tenant must not leak into acme's stream.
	if _, err := c.SubmitJob(ctx, "other", api.JobSpec{Chip: "c9", Benchmark: "serial-dilution", Seed: 6}); err != nil {
		t.Fatal(err)
	}

	var types []string
	lastSeq := int64(-1)
	sawProgress := false
	for {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("stream: %v (saw %v)", err, types)
		}
		if ev.Tenant != "acme" {
			t.Fatalf("cross-tenant event leaked: %+v", ev)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Job != js.ID {
			continue
		}
		types = append(types, ev.Type)
		if ev.Type == api.EvJobProgress {
			var p api.Progress
			if err := json.Unmarshal(ev.Data, &p); err != nil || p.Digest == "" {
				t.Fatalf("progress payload: %v (%s)", err, ev.Data)
			}
			sawProgress = true
		}
		if ev.Type == api.EvJobDone {
			break
		}
	}
	if types[0] != api.EvJobQueued || types[1] != api.EvJobStarted {
		t.Fatalf("lifecycle order = %v", types)
	}
	if !sawProgress {
		t.Fatalf("no progress events seen: %v", types)
	}
}

// Webhooks fire on matching event types with the event as JSON body.
func TestWebhookDelivery(t *testing.T) {
	got := make(chan api.Event, 16)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev api.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err == nil {
			got <- ev
		}
	}))
	defer hook.Close()

	_, c := testServer(t, Config{})
	ctx := ctxT(t)
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddWebhook(ctx, "acme", api.WebhookSpec{URL: hook.URL, Events: []string{api.EvJobDone}}); err != nil {
		t.Fatal(err)
	}
	hooks, err := c.Webhooks(ctx, "acme")
	if err != nil || len(hooks) != 1 || hooks[0].URL != hook.URL {
		t.Fatalf("webhooks = %+v, err %v", hooks, err)
	}

	js, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, "acme", js.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.Type != api.EvJobDone || ev.Job != js.ID || ev.Tenant != "acme" {
			t.Fatalf("webhook event = %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
}

// Canceling a queued job is immediate; canceling a running job lands at
// the next checkpoint. Both surface the canceled state and event.
func TestCancelQueuedAndRunning(t *testing.T) {
	_, c := testServer(t, Config{CheckpointEvery: 8})
	ctx := ctxT(t)
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 4}); err != nil {
		t.Fatal(err)
	}

	slow := api.JobSpec{Chip: "c1", Assay: slowAssay, Seed: 4, KMax: slowKMax}
	j1, err := c.SubmitJob(ctx, "acme", slow)
	if err != nil {
		t.Fatal(err)
	}
	// j2 sits queued behind j1 on the same chip: its cancel is the
	// deterministic queued-cancel path.
	j2, err := c.SubmitJob(ctx, "acme", slow)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.CancelJob(ctx, "acme", j2.ID)
	if err != nil || st.State != api.JobCanceled {
		t.Fatalf("queued cancel = %+v, err %v", st, err)
	}
	// Canceling an already-terminal job is idempotent.
	if st, err = c.CancelJob(ctx, "acme", j2.ID); err != nil || st.State != api.JobCanceled {
		t.Fatalf("double cancel = %+v, err %v", st, err)
	}

	// Wait for j1 to actually run, then cancel mid-flight.
	for {
		st, err = c.Job(ctx, "acme", j1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.JobRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("slow job finished before cancel: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.CancelJob(ctx, "acme", j1.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitJob(ctx, "acme", j1.ID)
	if err != nil || final.State != api.JobCanceled {
		t.Fatalf("running cancel final = %+v, err %v", final, err)
	}

	// The chip is free again: a fresh job completes normally.
	j3, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if final, err = c.WaitJob(ctx, "acme", j3.ID); err != nil || final.State != api.JobDone {
		t.Fatalf("post-cancel job = %+v, err %v", final, err)
	}
}

// Health upload is refused while work is queued or running (409), and
// accepted once the chip is idle.
func TestHealthUploadConflictWhileBusy(t *testing.T) {
	_, c := testServer(t, Config{CheckpointEvery: 8})
	ctx := ctxT(t)
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	state, err := c.ChipHealth(ctx, "acme", "c1")
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Assay: slowAssay, Seed: 2, KMax: slowKMax})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UploadChipHealth(ctx, "acme", "c1", state); !client.IsConflict(err) {
		t.Fatalf("upload while busy: %v, want conflict", err)
	}
	if _, err := c.CancelJob(ctx, "acme", j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, "acme", j.ID); err != nil {
		t.Fatal(err)
	}
	// The worker releases the chip an instant after the job's terminal
	// state becomes visible; retry through that window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.UploadChipHealth(ctx, "acme", "c1", state)
		if err == nil {
			break
		}
		if !client.IsConflict(err) || time.Now().After(deadline) {
			t.Fatalf("upload while idle: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The store survives a full server restart: tenants, chips, webhooks and
// finished jobs all reappear.
func TestServerRestartKeepsState(t *testing.T) {
	dir := t.TempDir()

	srv1, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(ln1) //nolint
	c1 := client.New("http://" + ln1.Addr().String())
	ctx := ctxT(t)
	if _, err := c1.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateChip(ctx, "acme", api.ChipSpec{ID: "c1", Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if err := c1.AddWebhook(ctx, "acme", api.WebhookSpec{URL: "http://127.0.0.1:1/hook"}); err != nil {
		t.Fatal(err)
	}
	j, err := c1.SubmitJob(ctx, "acme", api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.WaitJob(ctx, "acme", j.ID)
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	_, c2 := testServer(t, Config{DataDir: dir})
	got, err := c2.Job(ctx, "acme", j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobDone || got.Result == nil || *got.Result != *want.Result {
		t.Fatalf("restarted job = %+v, want %+v", got, want)
	}
	hooks, err := c2.Webhooks(ctx, "acme")
	if err != nil || len(hooks) != 1 {
		t.Fatalf("webhooks after restart = %+v, err %v", hooks, err)
	}
	cs, err := c2.Chip(ctx, "acme", "c1")
	if err != nil || cs.JobsDone != 1 {
		t.Fatalf("chip after restart = %+v, err %v", cs, err)
	}
}

// MaxConcurrent=1 serializes across chips but every job still finishes.
func TestMaxConcurrentSerializes(t *testing.T) {
	_, c := testServer(t, Config{MaxConcurrent: 1})
	ctx := ctxT(t)
	if _, err := c.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		chipID := fmt.Sprintf("c%d", i)
		if _, err := c.CreateChip(ctx, "acme", api.ChipSpec{ID: chipID, Seed: uint64(20 + i)}); err != nil {
			t.Fatal(err)
		}
		j, err := c.SubmitJob(ctx, "acme", api.JobSpec{Chip: chipID, Benchmark: "serial-dilution", Seed: uint64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		final, err := c.WaitJob(ctx, "acme", id)
		if err != nil || final.State != api.JobDone {
			t.Fatalf("job %s = %+v, err %v", id, final, err)
		}
	}
}
