// Durable fleet state: a JSON snapshot plus the journal of journal.go.
//
// The Store keeps an in-memory mirror of the persisted state and applies
// every appended record to it, so the mirror is — by construction — exactly
// what a restart would reconstruct by replaying the journal over the last
// snapshot. Snapshotting marshals the mirror through the classic
// write-temp / fsync / rename dance and then truncates the journal, so a
// crash at any instant leaves either the old snapshot with the full journal
// or the new snapshot with an empty (or stale, replay-skipped) journal.
//
// Chip states, job results, and the shared strategy library are carried as
// raw JSON produced by their owning packages (chip.SaveState,
// sched.Library.Save); the store never interprets them.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"meda/pkg/api"
)

// Journal record types.
const (
	recTenantCreate = "tenant_create"
	recWebhookAdd   = "webhook_add"
	recChipCreate   = "chip_create"
	recChipHealth   = "chip_health"
	recJobSubmit    = "job_submit"
	recJobStart     = "job_start"
	recJobProgress  = "job_progress"
	recJobDone      = "job_done"
	recJobCancel    = "job_cancel"
)

// Journal record payloads.
type tenantCreateRec struct {
	ID string `json:"id"`
}

type webhookAddRec struct {
	Tenant string          `json:"tenant"`
	Spec   api.WebhookSpec `json:"spec"`
}

type chipCreateRec struct {
	Tenant string          `json:"tenant"`
	Spec   api.ChipSpec    `json:"spec"`
	State  json.RawMessage `json:"state"`
}

type chipHealthRec struct {
	Tenant string          `json:"tenant"`
	Chip   string          `json:"chip"`
	State  json.RawMessage `json:"state"`
}

type jobSubmitRec struct {
	ID     string      `json:"id"`
	Tenant string      `json:"tenant"`
	Spec   api.JobSpec `json:"spec"`
}

// jobStartRec pins the chip state the job starts from. Execution is a
// deterministic function of (chip state, job spec, chip spec), so this
// record is the resume point: a job with a start record but no done record
// re-executes from State and lands on byte-identical results.
type jobStartRec struct {
	Job    string          `json:"job"`
	Tenant string          `json:"tenant"`
	Chip   string          `json:"chip"`
	State  json.RawMessage `json:"state"`
}

type jobProgressRec struct {
	Job      string       `json:"job"`
	Progress api.Progress `json:"progress"`
}

type jobDoneRec struct {
	Job string `json:"job"`
	// Result and Error are mutually exclusive: a Result (even an aborted
	// one) means the execution ran to a verdict, an Error means it did not.
	Result *api.Execution  `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	State  json.RawMessage `json:"state,omitempty"` // chip state after the job
}

type jobCancelRec struct {
	Job string `json:"job"`
}

// PersistedChip is one chip's durable state.
type PersistedChip struct {
	Spec api.ChipSpec `json:"spec"`
	// State is the chip.SaveState JSON as of the last job boundary (or
	// health upload) — the base state the next job starts from.
	State    json.RawMessage `json:"state"`
	JobsDone int             `json:"jobs_done"`
}

// PersistedTenant is one tenant's durable state.
type PersistedTenant struct {
	ID       string                    `json:"id"`
	Webhooks []api.WebhookSpec         `json:"webhooks,omitempty"`
	Chips    map[string]*PersistedChip `json:"chips"`
}

// PersistedJob is one job's durable state.
type PersistedJob struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant"`
	Spec     api.JobSpec    `json:"spec"`
	State    api.JobState   `json:"state"`
	Result   *api.Execution `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
	Progress *api.Progress  `json:"progress,omitempty"`
}

// State is the full durable fleet state: the snapshot schema and the
// journal-replay target.
type State struct {
	Version int                         `json:"version"`
	Seq     int64                       `json:"seq"`
	JobSeq  int                         `json:"job_seq"`
	Tenants map[string]*PersistedTenant `json:"tenants"`
	Jobs    map[string]*PersistedJob    `json:"jobs"`
	// JobOrder preserves submission order so a restart re-queues unfinished
	// jobs in the order they were accepted.
	JobOrder []string `json:"job_order"`
	// Library is the shared strategy library (sched.Library.Save JSON). It
	// is refreshed at snapshot time only: strategies synthesized since the
	// last snapshot are recomputed deterministically on demand, so losing
	// them to a crash costs time, never correctness.
	Library json.RawMessage `json:"library,omitempty"`
}

func newState() *State {
	return &State{
		Version: 1,
		Tenants: make(map[string]*PersistedTenant),
		Jobs:    make(map[string]*PersistedJob),
	}
}

// apply folds one journal record into the state. Unknown record types are
// an error — they mean the journal was written by a newer build.
func (s *State) apply(rec Record) error {
	fail := func(err error) error {
		return fmt.Errorf("serve: journal record %d (%s): %w", rec.Seq, rec.Type, err)
	}
	switch rec.Type {
	case recTenantCreate:
		var r tenantCreateRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if _, ok := s.Tenants[r.ID]; !ok {
			s.Tenants[r.ID] = &PersistedTenant{ID: r.ID, Chips: make(map[string]*PersistedChip)}
		}
	case recWebhookAdd:
		var r webhookAddRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if t := s.Tenants[r.Tenant]; t != nil {
			t.Webhooks = append(t.Webhooks, r.Spec)
		}
	case recChipCreate:
		var r chipCreateRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if t := s.Tenants[r.Tenant]; t != nil {
			t.Chips[r.Spec.ID] = &PersistedChip{Spec: r.Spec, State: r.State}
		}
	case recChipHealth:
		var r chipHealthRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if t := s.Tenants[r.Tenant]; t != nil {
			if c := t.Chips[r.Chip]; c != nil {
				c.State = r.State
			}
		}
	case recJobSubmit:
		var r jobSubmitRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		s.JobSeq++
		s.Jobs[r.ID] = &PersistedJob{ID: r.ID, Tenant: r.Tenant, Spec: r.Spec, State: api.JobQueued}
		s.JobOrder = append(s.JobOrder, r.ID)
	case recJobStart:
		var r jobStartRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if j := s.Jobs[r.Job]; j != nil {
			j.State = api.JobRunning
		}
		// Pin the chip's state to the job's start state; normally a no-op
		// (it already is the post-previous-job state), but it makes replay
		// independent of how the chip record got there.
		if t := s.Tenants[r.Tenant]; t != nil {
			if c := t.Chips[r.Chip]; c != nil && len(r.State) > 0 {
				c.State = r.State
			}
		}
	case recJobProgress:
		var r jobProgressRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if j := s.Jobs[r.Job]; j != nil {
			p := r.Progress
			j.Progress = &p
		}
	case recJobDone:
		var r jobDoneRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		j := s.Jobs[r.Job]
		if j == nil {
			return nil
		}
		j.Progress = nil
		if r.Error != "" {
			j.State = api.JobFailed
			j.Error = r.Error
		} else {
			j.State = api.JobDone
			j.Result = r.Result
		}
		if t := s.Tenants[j.Tenant]; t != nil {
			if c := t.Chips[j.Spec.Chip]; c != nil {
				if len(r.State) > 0 {
					c.State = r.State
				}
				c.JobsDone++
			}
		}
	case recJobCancel:
		var r jobCancelRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return fail(err)
		}
		if j := s.Jobs[r.Job]; j != nil && !j.State.Terminal() {
			j.State = api.JobCanceled
			j.Progress = nil
		}
	default:
		return fail(fmt.Errorf("unknown record type"))
	}
	return nil
}

// Store owns the data directory: snapshot.json plus journal.jsonl. All
// methods are safe for concurrent use.
type Store struct {
	dir string
	// mu guards state, jw, and the files: sequence assignment, the mirror
	// update, and the journal append form one atomic step.
	mu      sync.Mutex
	state   *State
	jw      *journalWriter
	dropped int // crash-damaged journal tail records dropped at open
}

const (
	snapshotName = "snapshot.json"
	journalName  = "journal.jsonl"
)

// OpenStore opens (or initializes) a data directory, replays
// snapshot + journal into the in-memory mirror, and compacts: it writes a
// fresh snapshot of the recovered state and truncates the journal, which
// both bounds journal growth and amputates any crash-damaged tail before
// new records are appended after it.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	s := &Store{dir: dir, state: newState()}

	// Snapshot, if one landed (a leftover .tmp from a crashed snapshot
	// attempt is ignored; the journal still holds those records).
	snapPath := filepath.Join(dir, snapshotName)
	if raw, err := os.ReadFile(snapPath); err == nil {
		var snap State
		if err := json.Unmarshal(raw, &snap); err != nil {
			return nil, fmt.Errorf("serve: corrupt snapshot %s: %w", snapPath, err)
		}
		if snap.Version != 1 {
			return nil, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version)
		}
		if snap.Tenants == nil {
			snap.Tenants = make(map[string]*PersistedTenant)
		}
		if snap.Jobs == nil {
			snap.Jobs = make(map[string]*PersistedJob)
		}
		s.state = &snap
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: reading snapshot: %w", err)
	}

	// Journal replay, skipping records the snapshot already covers.
	jPath := filepath.Join(dir, journalName)
	if f, err := os.Open(jPath); err == nil {
		recs, dropped, rerr := readJournal(f, s.state.Seq)
		cerr := f.Close()
		if rerr != nil {
			return nil, errors.Join(rerr, cerr)
		}
		if cerr != nil {
			return nil, fmt.Errorf("serve: closing journal: %w", cerr)
		}
		s.dropped = dropped
		for _, rec := range recs {
			if err := s.state.apply(rec); err != nil {
				return nil, err
			}
			s.state.Seq = rec.Seq
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}

	// Compact: snapshot the recovered state, then start a clean journal.
	if err := s.writeSnapshot(); err != nil {
		return nil, err
	}
	if err := os.Truncate(jPath, 0); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: truncating journal: %w", err)
	}
	jw, err := openJournal(jPath)
	if err != nil {
		return nil, err
	}
	s.jw = jw
	return s, nil
}

// State exposes the in-memory mirror. The fleet reads it once at startup to
// rebuild runtime state; afterwards mutation happens only through Append.
func (s *Store) State() *State { return s.state }

// Dropped reports how many crash-damaged journal tail records were dropped
// when the store was opened.
func (s *Store) Dropped() int { return s.dropped }

// Append journals one record and folds it into the mirror. sync forces the
// record to stable storage before returning; callers reserve it for
// transitions that must survive a power cut (job and chip lifecycle), while
// high-rate progress beacons ride on the OS flush.
func (s *Store) Append(typ string, payload any, sync bool) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("serve: encoding %s record: %w", typ, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.state.Seq + 1
	rec := Record{Seq: seq, Type: typ, Data: data, CRC: recordCRC(seq, typ, data)}
	if err := s.state.apply(rec); err != nil {
		return err
	}
	s.state.Seq = seq
	return s.jw.Append(rec, sync)
}

// SetLibrary replaces the mirrored strategy-library JSON; the next snapshot
// persists it.
func (s *Store) SetLibrary(raw []byte) {
	s.mu.Lock()
	s.state.Library = raw
	s.mu.Unlock()
}

// Snapshot persists the mirror and truncates the journal.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	if err := s.jw.bw.Flush(); err != nil {
		return fmt.Errorf("serve: flushing journal: %w", err)
	}
	if err := s.jw.f.Truncate(0); err != nil {
		return fmt.Errorf("serve: truncating journal: %w", err)
	}
	if _, err := s.jw.f.Seek(0, 0); err != nil {
		return fmt.Errorf("serve: rewinding journal: %w", err)
	}
	return nil
}

// writeSnapshot marshals the mirror to snapshot.json via temp-file rename.
// Callers hold the journal lock (or have exclusive access during open).
func (s *Store) writeSnapshot() error {
	raw, err := json.Marshal(s.state)
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close() //lint:ignore errflowstrict write already failed; the close error cannot add anything
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:ignore errflowstrict sync already failed; the close error cannot add anything
		return fmt.Errorf("serve: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("serve: publishing snapshot: %w", err)
	}
	return nil
}

// CloseAbrupt closes the journal file descriptor without snapshotting or
// syncing — the closest a clean process gets to a crash. The journal alone
// (every record of which was flushed at append time) carries the state; the
// kill-and-resume tests exercise recovery through this path.
func (s *Store) CloseAbrupt() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jw.f.Close() //lint:ignore errflowstrict simulating a crash: the close error is the point of abandoning cleanliness
}

// Close snapshots and closes the journal.
func (s *Store) Close() error {
	if err := s.Snapshot(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jw.Close()
}
