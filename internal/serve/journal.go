// Durable journal: an append-only JSONL file of CRC-guarded records. The
// fleet service journals every state transition (tenant/chip creation,
// health uploads, job lifecycle) so a crashed or killed controller replays
// the journal on restart and resumes exactly where it stopped.
//
// Each line is one Record; the CRC covers the sequence number, type, and
// payload, so a record truncated or corrupted by a crash mid-append is
// detected and the tail from that point on is dropped cleanly — the journal
// is always a valid prefix of what was written. Records with sequence
// numbers at or below the latest snapshot's are skipped on replay, which
// makes the crash window of snapshot-then-truncate safe: replaying old
// records after a completed snapshot is a no-op, and a snapshot that never
// landed (its temp file was not renamed) leaves the full journal in force.
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record is one journal line.
type Record struct {
	Seq  int64           `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
	CRC  uint32          `json:"crc"`
}

// recordCRC computes the checksum over (seq, type, data). The layout is
// length-prefixed so no (type, data) pair collides with another.
func recordCRC(seq int64, typ string, data []byte) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seq))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(typ)))
	h.Write(buf[:])
	io.WriteString(h, typ)
	h.Write(data)
	return h.Sum32()
}

// Check reports whether the record's CRC matches its contents.
func (r Record) Check() bool { return r.CRC == recordCRC(r.Seq, r.Type, r.Data) }

// journalWriter appends records to a JSONL file. It does no locking of its
// own: the Store serializes all access under one mutex so sequence
// assignment, the state-mirror update, and the file append stay atomic.
type journalWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &journalWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

// Append writes one record and flushes it to the OS; when sync is set the
// record is also fsynced to stable storage before Append returns.
func (w *journalWriter) Append(rec Record, sync bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding journal record: %w", err)
	}
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("serve: flushing journal: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("serve: syncing journal: %w", err)
		}
	}
	return nil
}

// Close flushes, syncs, and closes the journal file.
func (w *journalWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("serve: flushing journal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("serve: closing journal: %w", err)
	}
	return nil
}

// readJournal parses a journal stream, returning every valid record with
// Seq > afterSeq, in order. Parsing stops — without error — at the first
// malformed line, CRC mismatch, or sequence regression: anything past that
// point is a crash-damaged tail and dropped is its record-or-fragment count.
// Real I/O errors (not corruption) are returned as err.
func readJournal(r io.Reader, afterSeq int64) (recs []Record, dropped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lastSeq := int64(-1)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || !rec.Check() || (lastSeq >= 0 && rec.Seq <= lastSeq) {
			// Corrupt or out-of-order tail: count the rest and stop.
			dropped++
			for sc.Scan() {
				dropped++
			}
			break
		}
		lastSeq = rec.Seq
		if rec.Seq > afterSeq {
			recs = append(recs, rec)
		}
	}
	if scanErr := sc.Err(); scanErr != nil {
		if scanErr == bufio.ErrTooLong {
			// An over-long line is tail damage, not an I/O failure.
			dropped++
			return recs, dropped, nil
		}
		return recs, dropped, fmt.Errorf("serve: reading journal: %w", scanErr)
	}
	return recs, dropped, nil
}
