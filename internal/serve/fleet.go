// The fleet: multiplexing many tenants' simulated MEDA biochips over the
// repo's synthesis/scheduling/simulation machinery in one controller
// process.
//
// # Tenancy and sharing
//
// Every chip belongs to one tenant and is owned by one worker goroutine,
// which executes that chip's jobs strictly in order (wear carries from job
// to job, so order is semantics, not scheduling detail). What *is* shared —
// deliberately, across tenants — are the strategy stores: one
// sched.Library of healthy-chip strategies and one sched.Cache of
// degraded-region strategies serve every chip's Adaptive router. Cache
// entries in canonical form (CacheKey.Form == FormCanon) are position- and
// chip-agnostic, so tenant B's uniformly-degraded window reuses the
// strategy synthesized for tenant A's (visible as
// sched.cache.canonical_hits in /metrics). This is safe precisely because
// strategies served from either store are bit-identical to what a fresh
// synthesis would produce; sharing changes latency, never results.
//
// # Determinism and resume
//
// A job's execution is a pure function of (chip state at job start, chip
// spec, job spec): the simulation RNG derives from the job seed, the
// soft-fault injector from the chip and job seeds, and routing strategies
// are deterministic however they are obtained. The store journals the chip
// state when a job starts; a controller restart re-queues unfinished jobs
// and replays them from that state, landing on byte-identical results —
// checkpoint digests journaled along the way let tests verify this.
// Per-chip fault-injection seeds keep tenants isolated: no tenant's seed
// choice can perturb another's executions.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"meda/internal/assay"
	"meda/internal/chip"
	"meda/internal/degrade"
	"meda/internal/dsl"
	"meda/internal/fault"
	"meda/internal/plan"
	"meda/internal/randx"
	"meda/internal/route"
	"meda/internal/sched"
	"meda/internal/sim"
	"meda/internal/synth"
	"meda/internal/telemetry"
	"meda/pkg/api"
)

var (
	telJobsSubmitted = telemetry.C("serve.jobs.submitted")
	telJobsResumed   = telemetry.C("serve.jobs.resumed")
	telJournalDrops  = telemetry.C("serve.journal.dropped_records")
)

// Config tunes the fleet controller.
type Config struct {
	// DataDir is the durable-state directory; empty runs ephemerally (no
	// persistence, no resume).
	DataDir string
	// MaxConcurrent bounds simultaneously executing assays fleet-wide;
	// zero means GOMAXPROCS.
	MaxConcurrent int
	// CheckpointEvery is the cycle interval between execution checkpoints
	// (progress journaling, event emission, cooperative abort); zero
	// means 16.
	CheckpointEvery int
	// SnapshotEvery, when positive, snapshots the store periodically so
	// journal replay after a crash stays short.
	SnapshotEvery time.Duration
	// WebhookTimeout bounds each webhook delivery; zero means 5s.
	WebhookTimeout time.Duration
	// CacheSize bounds the shared degraded-region strategy cache;
	// zero means sched.DefaultCacheSize.
	CacheSize int
}

// Cooperative-abort causes, distinguished by the job runner after an
// execution stops at a checkpoint.
var (
	errStopping = errors.New("serve: controller stopping")
	errCanceled = errors.New("serve: job canceled")
)

// job is the runtime state of one submitted job.
type job struct {
	id     string
	tenant string
	spec   api.JobSpec
	state  api.JobState
	result *api.Execution
	errMsg string
	prog   *api.Progress
	// cancelReq asks the running execution to stop at its next
	// checkpoint.
	cancelReq bool
	resumed   bool
}

func (j *job) status() api.JobStatus {
	st := api.JobStatus{
		ID: j.id, Tenant: j.tenant, Spec: j.spec, State: j.state,
		Error: j.errMsg, Resumed: j.resumed,
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	if j.prog != nil {
		p := *j.prog
		st.Progress = &p
	}
	return st
}

// chipEntry is the runtime state of one chip. The chip object itself is
// owned by the chip's worker goroutine while a job runs; handler-visible
// facts (summary, stateJSON, queue) live here under the fleet mutex.
type chipEntry struct {
	tenant   string
	spec     api.ChipSpec
	c        *chip.Chip
	router   sched.Router
	adaptive *sched.Adaptive
	queue    []*job
	running  *job
	jobsDone int
	// stateJSON is chip.SaveState as of the last job boundary or health
	// upload: the base state the next job starts from, and what the
	// health-download endpoint serves.
	stateJSON []byte
	summary   chipSummary
	notify    chan struct{}
}

type chipSummary struct {
	minHealth  int
	meanMilli  int
	actuations int
}

type tenantRT struct {
	id       string
	chips    map[string]*chipEntry
	webhooks []api.WebhookSpec
}

// Fleet is the multi-tenant controller.
type Fleet struct {
	cfg      Config
	store    *Store // nil when ephemeral
	bus      *Bus
	notifier *webhookNotifier
	lib      *sched.Library
	cache    *sched.Cache
	libSaved uint64 // library generation at last persisted save

	mu       sync.Mutex
	tenants  map[string]*tenantRT
	jobs     map[string]*job
	jobOrder []string
	jobSeq   int
	resumed  int
	stopped  bool

	sem    chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup // chip workers
	bgWG   sync.WaitGroup // periodic snapshotter
	doneCh chan struct{}  // closed when the snapshotter should quit
}

// NewFleet opens the store (replaying any journal), rebuilds tenants,
// chips, and jobs, re-queues unfinished jobs for deterministic replay, and
// starts the per-chip workers.
func NewFleet(cfg Config) (*Fleet, error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = sched.DefaultCacheSize
	}
	f := &Fleet{
		cfg:      cfg,
		bus:      NewBus(),
		notifier: newWebhookNotifier(cfg.WebhookTimeout),
		lib:      sched.NewLibrary(),
		cache:    sched.NewCache(cacheSize),
		tenants:  make(map[string]*tenantRT),
		jobs:     make(map[string]*job),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		stop:     make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	if cfg.DataDir != "" {
		store, err := OpenStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		f.store = store
		telJournalDrops.Add(int64(store.Dropped()))
		if err := f.restore(store.State()); err != nil {
			return nil, err
		}
	}
	f.mu.Lock()
	for _, t := range f.tenants {
		for _, ce := range t.chips {
			f.startWorker(ce)
		}
	}
	f.mu.Unlock()
	if f.store != nil && cfg.SnapshotEvery > 0 {
		f.bgWG.Add(1)
		go f.snapshotLoop()
	}
	return f, nil
}

// restore rebuilds runtime state from the persisted mirror.
func (f *Fleet) restore(st *State) error {
	if len(st.Library) > 0 {
		if err := f.lib.Load(bytes.NewReader(st.Library)); err != nil {
			return err
		}
	}
	f.libSaved = f.lib.Generation()
	f.jobSeq = st.JobSeq
	for id, pt := range st.Tenants {
		t := &tenantRT{id: id, chips: make(map[string]*chipEntry)}
		t.webhooks = append(t.webhooks, pt.Webhooks...)
		for cid, pc := range pt.Chips {
			ce, err := f.buildChip(id, pc.Spec, pc.State)
			if err != nil {
				return fmt.Errorf("serve: restoring chip %s/%s: %w", id, cid, err)
			}
			ce.jobsDone = pc.JobsDone
			t.chips[cid] = ce
		}
		f.tenants[id] = t
	}
	// Jobs, in submission order; unfinished ones are re-queued for replay.
	for _, jid := range st.JobOrder {
		pj := st.Jobs[jid]
		if pj == nil {
			continue
		}
		j := &job{id: pj.ID, tenant: pj.Tenant, spec: pj.Spec, state: pj.State, errMsg: pj.Error}
		if pj.Result != nil {
			r := *pj.Result
			j.result = &r
		}
		if !pj.State.Terminal() {
			j.state = api.JobQueued
			j.resumed = true
			f.resumed++
			telJobsResumed.Inc()
			if t := f.tenants[pj.Tenant]; t != nil {
				if ce := t.chips[pj.Spec.Chip]; ce != nil {
					ce.queue = append(ce.queue, j)
				}
			}
		}
		f.jobs[jid] = j
		f.jobOrder = append(f.jobOrder, jid)
	}
	return nil
}

// buildChip constructs the runtime chip entry: the chip object (from a
// persisted state when given, freshly fabricated otherwise) and its router
// wired to the fleet-shared strategy library and cache.
func (f *Fleet) buildChip(tenantID string, spec api.ChipSpec, state []byte) (*chipEntry, error) {
	var c *chip.Chip
	var err error
	if len(state) > 0 {
		c, err = chip.LoadState(bytes.NewReader(state))
	} else {
		c, err = chip.New(chipConfig(spec), randx.New(spec.Seed).Split("chip"))
	}
	if err != nil {
		return nil, err
	}
	if len(state) == 0 {
		var buf bytes.Buffer
		if err := c.SaveState(&buf); err != nil {
			return nil, err
		}
		state = buf.Bytes()
	}
	ad := &sched.Adaptive{Opt: synth.DefaultOptions(), Lib: f.lib, Cache: f.cache}
	var r sched.Router = ad
	if spec.InjectRate > 0 {
		r = sched.NewFallback(ad, sched.NewBaseline())
	}
	ce := &chipEntry{
		tenant: tenantID, spec: spec, c: c, router: r, adaptive: ad,
		stateJSON: state, notify: make(chan struct{}, 1),
		summary: summarize(c),
	}
	return ce, nil
}

// chipConfig maps a wire spec onto the chip package's configuration.
func chipConfig(spec api.ChipSpec) chip.Config {
	cfg := chip.Default()
	if spec.W > 0 {
		cfg.W = spec.W
	}
	if spec.H > 0 {
		cfg.H = spec.H
	}
	switch strings.ToLower(spec.HardFaults) {
	case "uniform":
		cfg.Faults = degrade.FaultPlan{Mode: degrade.FaultUniform, Fraction: spec.FaultFraction, FailAfterLo: 10, FailAfterHi: 120}
	case "clustered":
		cfg.Faults = degrade.FaultPlan{Mode: degrade.FaultClustered, Fraction: spec.FaultFraction, FailAfterLo: 10, FailAfterHi: 120}
	}
	return cfg
}

// validateChipSpec rejects specs chipConfig cannot honor.
func validateChipSpec(spec api.ChipSpec) error {
	if err := api.ValidateID("chip", spec.ID); err != nil {
		return err
	}
	switch strings.ToLower(spec.HardFaults) {
	case "", "none", "uniform", "clustered":
	default:
		return fmt.Errorf("hard_faults must be none, uniform, or clustered")
	}
	if spec.InjectRate < 0 || spec.InjectRate > 1 {
		return fmt.Errorf("inject_rate must be in [0,1]")
	}
	if spec.InjectKinds != "" {
		if _, err := fault.ParseKinds(spec.InjectKinds); err != nil {
			return err
		}
	}
	return chipConfig(spec).Validate()
}

// summarize derives the handler-visible health summary. The caller must own
// the chip (its worker goroutine, or the fleet lock while the chip is
// idle).
func summarize(c *chip.Chip) chipSummary {
	m := c.HealthMatrix()
	minH := 1<<c.HealthBits() - 1
	sum, n := 0, 0
	for _, row := range m {
		for _, h := range row {
			if h < minH {
				minH = h
			}
			sum += h
			n++
		}
	}
	mean := 0
	if n > 0 {
		mean = sum * 1000 / n
	}
	return chipSummary{minHealth: minH, meanMilli: mean, actuations: c.TotalActuations()}
}

// startWorker launches the chip's worker goroutine. Caller holds f.mu.
func (f *Fleet) startWorker(ce *chipEntry) {
	f.wg.Add(1)
	go f.worker(ce)
	// Wake it immediately in case restore left jobs queued.
	select {
	case ce.notify <- struct{}{}:
	default:
	}
}

// worker owns one chip: it executes the chip's queue in order until the
// fleet stops.
func (f *Fleet) worker(ce *chipEntry) {
	defer f.wg.Done()
	for {
		j := f.takeJob(ce)
		if j == nil {
			select {
			case <-f.stop:
				return
			case <-ce.notify:
				continue
			}
		}
		select {
		case f.sem <- struct{}{}:
		case <-f.stop:
			f.requeue(ce, j)
			return
		}
		f.runJob(ce, j)
		<-f.sem
		select {
		case <-f.stop:
			return
		default:
		}
	}
}

// takeJob pops the queue head, skipping jobs canceled while queued.
func (f *Fleet) takeJob(ce *chipEntry) *job {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(ce.queue) > 0 {
		j := ce.queue[0]
		ce.queue = ce.queue[1:]
		if j.state == api.JobQueued && !j.cancelReq {
			return j
		}
	}
	return nil
}

// requeue puts a popped-but-never-started job back at the queue head.
func (f *Fleet) requeue(ce *chipEntry, j *job) {
	f.mu.Lock()
	ce.queue = append([]*job{j}, ce.queue...)
	f.mu.Unlock()
}

// compilePlan builds the routing-job plan for a job spec on a chip.
func compilePlan(spec api.JobSpec, w, h int) (*route.Plan, error) {
	area := spec.Area
	if area <= 0 {
		area = 16
	}
	if spec.Benchmark != "" {
		b, ok := assay.ParseBenchmark(spec.Benchmark)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (want one of %s)",
				spec.Benchmark, strings.Join(assay.BenchmarkSlugs(), ", "))
		}
		return route.Compile(b.Build(assay.Layout{W: w, H: h}, area), w, h)
	}
	g, err := dsl.Parse(strings.NewReader(spec.Assay))
	if err != nil {
		return nil, err
	}
	placed, err := plan.NewPlacer(w, h).Place(g)
	if err != nil {
		return nil, err
	}
	return route.Compile(placed, w, h)
}

// injectionSeed derives the per-job soft-fault seed from the chip's
// injection seed and the job seed, so tenants are isolated (chip seed) and
// replays are exact (both inputs are journaled).
func injectionSeed(spec api.ChipSpec, jobSeed uint64) uint64 {
	base := spec.InjectSeed
	if base == 0 {
		base = spec.Seed
	}
	return base ^ (jobSeed * 0x9E3779B97F4A7C15)
}

// convertExec maps the simulator's outcome onto the wire type.
func convertExec(e sim.Execution) api.Execution {
	return api.Execution{
		Success: e.Success, Cycles: e.Cycles, Stalls: e.Stalls,
		Resyntheses: e.Resyntheses, JobsCompleted: e.JobsCompleted,
		Rollbacks: e.Rollbacks, RedoneOps: e.RedoneOps,
		Divergences: e.Divergences, DegradedJobs: e.DegradedJobs,
		HazardViolations: e.HazardViolations, Deadlocks: e.Deadlocks,
		SerializedOps: e.SerializedOps, DispenseDeferrals: e.DispenseDeferrals,
		PeakDroplets: e.PeakDroplets,
	}
}

// runJob executes one job on the worker's chip. Every state transition is
// journaled (sync on the boundaries), evented, and reflected in telemetry.
func (f *Fleet) runJob(ce *chipEntry, j *job) {
	// Journal the start state first: this is the replay point.
	var startState []byte
	{
		var buf bytes.Buffer
		if err := ce.c.SaveState(&buf); err != nil {
			f.finishJob(ce, j, nil, fmt.Errorf("serializing chip state: %w", err))
			return
		}
		startState = buf.Bytes()
	}
	if f.store != nil {
		rec := jobStartRec{Job: j.id, Tenant: j.tenant, Chip: ce.spec.ID, State: startState}
		if err := f.store.Append(recJobStart, rec, true); err != nil {
			f.finishJob(ce, j, nil, err)
			return
		}
	}
	f.mu.Lock()
	j.state = api.JobRunning
	ce.running = j
	ce.stateJSON = startState
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvJobStarted, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id})

	rplan, err := compilePlan(j.spec, ce.c.W(), ce.c.H())
	if err != nil {
		f.finishJob(ce, j, nil, err)
		return
	}

	cfg := sim.DefaultConfig()
	if j.spec.KMax > 0 {
		cfg.KMax = j.spec.KMax
	}
	cfg.Concurrent = j.spec.Concurrent
	if ce.spec.InjectRate > 0 {
		kinds := fault.AllKinds
		if ce.spec.InjectKinds != "" {
			kinds, _ = fault.ParseKinds(ce.spec.InjectKinds) // validated at chip creation
		}
		cfg = cfg.WithFaults(fault.Mixed(injectionSeed(ce.spec, j.spec.Seed), ce.spec.InjectRate, kinds))
	}
	cfg.CheckHazards = true
	cfg.Checkpoint = sim.CheckpointConfig{Every: f.cfg.CheckpointEvery, Fn: f.checkpointHook(ce, j)}

	runner := sim.NewRunner(cfg, ce.c, ce.router, randx.New(j.spec.Seed).Split("sim"))
	exec, err := runner.Execute(rplan)

	var abort *sim.CheckpointAbort
	if errors.As(err, &abort) {
		switch {
		case errors.Is(abort.Cause, errStopping):
			// Leave the job unfinished: the journal holds its start
			// record and no done record, so the next start replays it.
			f.mu.Lock()
			j.state = api.JobQueued
			j.prog = nil
			ce.running = nil
			ce.queue = append([]*job{j}, ce.queue...)
			f.mu.Unlock()
			return
		case errors.Is(abort.Cause, errCanceled):
			f.cancelFinish(ce, j)
			return
		}
	}
	if err != nil {
		f.finishJob(ce, j, nil, err)
		return
	}
	f.finishJob(ce, j, &exec, nil)
}

// checkpointHook builds the per-job checkpoint observer: cooperative abort,
// progress journaling, event emission, and fault-escalation deltas.
func (f *Fleet) checkpointHook(ce *chipEntry, j *job) func(sim.Checkpoint) error {
	var prev sim.Checkpoint
	return func(cp sim.Checkpoint) error {
		select {
		case <-f.stop:
			return errStopping
		default:
		}
		// The hook runs on the worker goroutine, which owns the chip:
		// summarizing here is race-free.
		sum := summarize(ce.c)
		f.mu.Lock()
		canceled := j.cancelReq
		degradedChip := sum.minHealth < ce.summary.minHealth
		ce.summary = sum
		prog := api.Progress{
			Cycle:         cp.Exec.Cycles,
			JobsCompleted: cp.Exec.JobsCompleted,
			Droplets:      cp.Droplets,
			Digest:        fmt.Sprintf("%016x", cp.Digest()),
		}
		j.prog = &prog
		f.mu.Unlock()
		if canceled {
			return errCanceled
		}
		if f.store != nil {
			// Progress beacons ride the OS flush; only boundaries fsync.
			if err := f.store.Append(recJobProgress, jobProgressRec{Job: j.id, Progress: prog}, false); err != nil {
				return err
			}
		}
		f.emit(api.Event{Type: api.EvJobProgress, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id, Data: mustJSON(prog)})
		if degradedChip {
			f.emit(api.Event{Type: api.EvChipDegraded, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id,
				Data: mustJSON(map[string]int{"min_health": sum.minHealth})})
		}
		type delta struct {
			ev   string
			prev int
			cur  int
		}
		for _, d := range []delta{
			{api.EvJobDegraded, prev.Exec.DegradedJobs, cp.Exec.DegradedJobs},
			{api.EvJobDeadlock, prev.Exec.Deadlocks, cp.Exec.Deadlocks},
			{api.EvJobDivergence, prev.Exec.Divergences, cp.Exec.Divergences},
			{api.EvJobHazard, prev.Exec.HazardViolations, cp.Exec.HazardViolations},
		} {
			if d.cur > d.prev {
				f.emit(api.Event{Type: d.ev, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id,
					Data: mustJSON(map[string]int{"count": d.cur})})
			}
		}
		prev = cp
		return nil
	}
}

// finishJob records a completed or failed execution.
func (f *Fleet) finishJob(ce *chipEntry, j *job, exec *sim.Execution, err error) {
	var endState []byte
	var result *api.Execution
	if err == nil && exec != nil {
		var buf bytes.Buffer
		if serr := ce.c.SaveState(&buf); serr != nil {
			err = fmt.Errorf("serializing chip state: %w", serr)
		} else {
			endState = buf.Bytes()
			r := convertExec(*exec)
			result = &r
		}
	}
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	if f.store != nil {
		rec := jobDoneRec{Job: j.id, Result: result, Error: errMsg, State: endState}
		if aerr := f.store.Append(recJobDone, rec, true); aerr != nil && errMsg == "" {
			errMsg = aerr.Error()
			result = nil
		}
	}
	sum := summarize(ce.c)
	f.mu.Lock()
	ce.running = nil
	ce.summary = sum
	j.prog = nil
	if errMsg != "" {
		j.state = api.JobFailed
		j.errMsg = errMsg
	} else {
		j.state = api.JobDone
		j.result = result
		ce.jobsDone++
		ce.stateJSON = endState
	}
	f.mu.Unlock()
	if errMsg != "" {
		f.emit(api.Event{Type: api.EvJobFailed, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id,
			Data: mustJSON(map[string]string{"error": errMsg})})
		return
	}
	f.emit(api.Event{Type: api.EvJobDone, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id, Data: mustJSON(result)})
}

// cancelFinish records a cancellation that stopped a running execution.
func (f *Fleet) cancelFinish(ce *chipEntry, j *job) {
	if f.store != nil {
		if err := f.store.Append(recJobCancel, jobCancelRec{Job: j.id}, true); err != nil {
			f.finishJob(ce, j, nil, err)
			return
		}
	}
	f.mu.Lock()
	ce.running = nil
	j.state = api.JobCanceled
	j.prog = nil
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvJobCanceled, Tenant: j.tenant, Chip: ce.spec.ID, Job: j.id})
}

// emit publishes an event on the bus and to the tenant's webhooks.
func (f *Fleet) emit(ev api.Event) {
	ev = f.bus.Publish(ev)
	f.mu.Lock()
	var hooks []api.WebhookSpec
	if t := f.tenants[ev.Tenant]; t != nil {
		hooks = append(hooks, t.webhooks...)
	}
	f.mu.Unlock()
	if len(hooks) > 0 {
		f.notifier.Notify(hooks, ev)
	}
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All payloads are plain structs/maps of scalars; failure is a
		// programming error.
		panic(err)
	}
	return b
}

// saveLibrary refreshes the persisted strategy library when it changed.
func (f *Fleet) saveLibrary() error {
	if f.store == nil {
		return nil
	}
	gen := f.lib.Generation()
	if gen == f.libSaved {
		return nil
	}
	var buf bytes.Buffer
	if err := f.lib.Save(&buf); err != nil {
		return err
	}
	f.store.SetLibrary(buf.Bytes())
	f.libSaved = gen
	return nil
}

// snapshotLoop periodically persists library + snapshot.
func (f *Fleet) snapshotLoop() {
	defer f.bgWG.Done()
	t := time.NewTicker(f.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-f.doneCh:
			return
		case <-t.C:
			if err := f.saveLibrary(); err != nil {
				continue
			}
			f.store.Snapshot() //lint:ignore errflowstrict periodic snapshot failure is retried next tick; shutdown's snapshot error is propagated
		}
	}
}

// Shutdown drains gracefully: workers abort in-flight executions at their
// next checkpoint (their jobs stay journaled as unfinished and resume on
// the next start), background synthesis pools drain, the strategy library
// and a final snapshot persist, and webhook deliveries finish. Every
// persistence error propagates.
func (f *Fleet) Shutdown() error {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return nil
	}
	f.stopped = true
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvServerShutdown})
	close(f.stop)
	close(f.doneCh)
	f.wg.Wait()
	f.bgWG.Wait()
	// Collect under the lock, drain outside it: Drain waits on the
	// synthesis pool and must not block other fleet calls.
	f.mu.Lock()
	adaptives := make([]*sched.Adaptive, 0, len(f.tenants))
	for _, t := range f.tenants {
		for _, ce := range t.chips {
			adaptives = append(adaptives, ce.adaptive)
		}
	}
	f.mu.Unlock()
	for _, a := range adaptives {
		a.Drain()
	}
	var err error
	if f.store != nil {
		if lerr := f.saveLibrary(); lerr != nil {
			err = lerr
		}
		if cerr := f.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	f.notifier.Wait()
	return err
}

// Kill stops the fleet abruptly, simulating a crash: workers abort at their
// next checkpoint, but nothing is snapshotted — the journal alone carries
// the state forward, exactly as after a power cut. Tests use it to exercise
// the resume path.
func (f *Fleet) Kill() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	f.mu.Unlock()
	close(f.stop)
	close(f.doneCh)
	f.wg.Wait()
	f.bgWG.Wait()
	if f.store != nil {
		f.store.CloseAbrupt()
	}
}

// --- handler-facing API ---

// errNotFound distinguishes lookup failures so handlers map them to 404.
type errNotFound struct{ what string }

func (e errNotFound) Error() string { return e.what + " not found" }

// errConflict distinguishes already-exists / wrong-state failures (409).
type errConflict struct{ msg string }

func (e errConflict) Error() string { return e.msg }

// CreateTenant registers a tenant.
func (f *Fleet) CreateTenant(spec api.TenantSpec) error {
	if err := api.ValidateID("tenant", spec.ID); err != nil {
		return err
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return errConflict{"controller stopping"}
	}
	if _, ok := f.tenants[spec.ID]; ok {
		f.mu.Unlock()
		return errConflict{fmt.Sprintf("tenant %q already exists", spec.ID)}
	}
	if f.store != nil {
		if err := f.store.Append(recTenantCreate, tenantCreateRec{ID: spec.ID}, true); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	f.tenants[spec.ID] = &tenantRT{id: spec.ID, chips: make(map[string]*chipEntry)}
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvTenantCreated, Tenant: spec.ID})
	return nil
}

// Tenants lists tenants, sorted by ID.
func (f *Fleet) Tenants() []api.Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]api.Tenant, 0, len(f.tenants))
	for _, t := range f.tenants {
		jobs := 0
		for _, j := range f.jobs {
			if j.tenant == t.id {
				jobs++
			}
		}
		out = append(out, api.Tenant{ID: t.id, Chips: len(t.chips), Jobs: jobs})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Tenant reports one tenant.
func (f *Fleet) Tenant(id string) (api.Tenant, error) {
	for _, t := range f.Tenants() {
		if t.ID == id {
			return t, nil
		}
	}
	return api.Tenant{}, errNotFound{"tenant"}
}

// CreateChip fabricates (or, with state, restores) a chip under a tenant.
func (f *Fleet) CreateChip(tenantID string, spec api.ChipSpec, state []byte) error {
	if err := validateChipSpec(spec); err != nil {
		return err
	}
	if len(state) > 0 {
		if err := validateChipState(spec, state); err != nil {
			return err
		}
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return errConflict{"controller stopping"}
	}
	t := f.tenants[tenantID]
	if t == nil {
		f.mu.Unlock()
		return errNotFound{"tenant"}
	}
	if _, ok := t.chips[spec.ID]; ok {
		f.mu.Unlock()
		return errConflict{fmt.Sprintf("chip %q already exists", spec.ID)}
	}
	ce, err := f.buildChip(tenantID, spec, state)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if f.store != nil {
		rec := chipCreateRec{Tenant: tenantID, Spec: spec, State: ce.stateJSON}
		if err := f.store.Append(recChipCreate, rec, true); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	t.chips[spec.ID] = ce
	f.startWorker(ce)
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvChipCreated, Tenant: tenantID, Chip: spec.ID})
	return nil
}

// validateChipState checks an uploaded chip state against the spec's
// geometry by round-tripping it through the chip loader.
func validateChipState(spec api.ChipSpec, state []byte) error {
	c, err := chip.LoadState(bytes.NewReader(state))
	if err != nil {
		return err
	}
	cfg := chipConfig(spec)
	if c.W() != cfg.W || c.H() != cfg.H {
		return fmt.Errorf("uploaded state is %d×%d but the chip is %d×%d", c.W(), c.H(), cfg.W, cfg.H)
	}
	return nil
}

func (f *Fleet) chipEntry(tenantID, chipID string) (*chipEntry, error) {
	t := f.tenants[tenantID]
	if t == nil {
		return nil, errNotFound{"tenant"}
	}
	ce := t.chips[chipID]
	if ce == nil {
		return nil, errNotFound{"chip"}
	}
	return ce, nil
}

// Chips lists a tenant's chips, sorted by ID.
func (f *Fleet) Chips(tenantID string) ([]api.ChipStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenants[tenantID]
	if t == nil {
		return nil, errNotFound{"tenant"}
	}
	out := make([]api.ChipStatus, 0, len(t.chips))
	for _, ce := range t.chips {
		out = append(out, ce.statusLocked())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Spec.ID < out[k].Spec.ID })
	return out, nil
}

// statusLocked renders the chip status; caller holds f.mu.
func (ce *chipEntry) statusLocked() api.ChipStatus {
	st := api.ChipStatus{
		Tenant: ce.tenant, Spec: ce.spec,
		QueuedJobs: len(ce.queue), JobsDone: ce.jobsDone,
		MinHealth: ce.summary.minHealth, MeanHealthMilli: ce.summary.meanMilli,
		Actuations: ce.summary.actuations,
	}
	if ce.running != nil {
		st.RunningJob = ce.running.id
	}
	return st
}

// Chip reports one chip.
func (f *Fleet) Chip(tenantID, chipID string) (api.ChipStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ce, err := f.chipEntry(tenantID, chipID)
	if err != nil {
		return api.ChipStatus{}, err
	}
	return ce.statusLocked(), nil
}

// ChipHealth returns the chip's serialized state (chip.SaveState JSON) as
// of the last job boundary or health upload.
func (f *Fleet) ChipHealth(tenantID, chipID string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ce, err := f.chipEntry(tenantID, chipID)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), ce.stateJSON...), nil
}

// UploadChipHealth replaces an idle chip's state with an uploaded health
// map (chip.SaveState JSON). A chip with queued or running jobs rejects the
// upload: the execution owns the state.
func (f *Fleet) UploadChipHealth(tenantID, chipID string, state []byte) error {
	f.mu.Lock()
	ce, err := f.chipEntry(tenantID, chipID)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if ce.running != nil || len(ce.queue) > 0 {
		f.mu.Unlock()
		return errConflict{"chip has queued or running jobs"}
	}
	if err := validateChipState(ce.spec, state); err != nil {
		f.mu.Unlock()
		return err
	}
	c, err := chip.LoadState(bytes.NewReader(state))
	if err != nil {
		f.mu.Unlock()
		return err
	}
	if f.store != nil {
		rec := chipHealthRec{Tenant: tenantID, Chip: chipID, State: state}
		if err := f.store.Append(recChipHealth, rec, true); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	// Safe handoff: the worker only touches ce.c inside runJob, and every
	// job it could run was queued after this critical section.
	ce.c = c
	ce.stateJSON = append([]byte(nil), state...)
	ce.summary = summarize(c)
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvChipHealth, Tenant: tenantID, Chip: chipID})
	return nil
}

// SubmitJob queues a job on a chip.
func (f *Fleet) SubmitJob(tenantID string, spec api.JobSpec) (api.JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return api.JobStatus{}, err
	}
	if spec.Benchmark != "" {
		if _, ok := assay.ParseBenchmark(spec.Benchmark); !ok {
			return api.JobStatus{}, fmt.Errorf("unknown benchmark %q (want one of %s)",
				spec.Benchmark, strings.Join(assay.BenchmarkSlugs(), ", "))
		}
	} else if _, err := dsl.Parse(strings.NewReader(spec.Assay)); err != nil {
		return api.JobStatus{}, err
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return api.JobStatus{}, errConflict{"controller stopping"}
	}
	ce, err := f.chipEntry(tenantID, spec.Chip)
	if err != nil {
		f.mu.Unlock()
		return api.JobStatus{}, err
	}
	id := fmt.Sprintf("j-%06d", f.jobSeq+1)
	if f.store != nil {
		if err := f.store.Append(recJobSubmit, jobSubmitRec{ID: id, Tenant: tenantID, Spec: spec}, true); err != nil {
			f.mu.Unlock()
			return api.JobStatus{}, err
		}
	}
	f.jobSeq++
	j := &job{id: id, tenant: tenantID, spec: spec, state: api.JobQueued}
	f.jobs[id] = j
	f.jobOrder = append(f.jobOrder, id)
	ce.queue = append(ce.queue, j)
	select {
	case ce.notify <- struct{}{}:
	default:
	}
	telJobsSubmitted.Inc()
	st := j.status()
	f.mu.Unlock()
	f.emit(api.Event{Type: api.EvJobQueued, Tenant: tenantID, Chip: spec.Chip, Job: id})
	return st, nil
}

// Jobs lists a tenant's jobs in submission order, optionally filtered by
// chip.
func (f *Fleet) Jobs(tenantID, chipID string) ([]api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tenants[tenantID] == nil {
		return nil, errNotFound{"tenant"}
	}
	var out []api.JobStatus
	for _, id := range f.jobOrder {
		j := f.jobs[id]
		if j == nil || j.tenant != tenantID {
			continue
		}
		if chipID != "" && j.spec.Chip != chipID {
			continue
		}
		out = append(out, j.status())
	}
	return out, nil
}

// Job reports one job.
func (f *Fleet) Job(tenantID, jobID string) (api.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j := f.jobs[jobID]
	if j == nil || j.tenant != tenantID {
		return api.JobStatus{}, errNotFound{"job"}
	}
	return j.status(), nil
}

// CancelJob cancels a queued job immediately or asks a running one to stop
// at its next checkpoint.
func (f *Fleet) CancelJob(tenantID, jobID string) (api.JobStatus, error) {
	f.mu.Lock()
	j := f.jobs[jobID]
	if j == nil || j.tenant != tenantID {
		f.mu.Unlock()
		return api.JobStatus{}, errNotFound{"job"}
	}
	if j.state.Terminal() {
		st := j.status()
		f.mu.Unlock()
		return st, nil
	}
	j.cancelReq = true
	queued := j.state == api.JobQueued
	var chipID string
	if queued {
		j.state = api.JobCanceled
		chipID = j.spec.Chip
	}
	st := j.status()
	f.mu.Unlock()
	if queued {
		if f.store != nil {
			if err := f.store.Append(recJobCancel, jobCancelRec{Job: jobID}, true); err != nil {
				return st, err
			}
		}
		f.emit(api.Event{Type: api.EvJobCanceled, Tenant: tenantID, Chip: chipID, Job: jobID})
	}
	return st, nil
}

// AddWebhook registers a webhook for a tenant.
func (f *Fleet) AddWebhook(tenantID string, spec api.WebhookSpec) error {
	if spec.URL == "" {
		return fmt.Errorf("webhook url is required")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenants[tenantID]
	if t == nil {
		return errNotFound{"tenant"}
	}
	if f.store != nil {
		if err := f.store.Append(recWebhookAdd, webhookAddRec{Tenant: tenantID, Spec: spec}, true); err != nil {
			return err
		}
	}
	t.webhooks = append(t.webhooks, spec)
	return nil
}

// Webhooks lists a tenant's webhooks.
func (f *Fleet) Webhooks(tenantID string) ([]api.WebhookSpec, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenants[tenantID]
	if t == nil {
		return nil, errNotFound{"tenant"}
	}
	return append([]api.WebhookSpec(nil), t.webhooks...), nil
}

// Subscribe attaches an event-stream consumer for a tenant ("" = all).
func (f *Fleet) Subscribe(tenantID string) (<-chan api.Event, func()) {
	return f.bus.Subscribe(tenantID, 0)
}

// Healthz summarizes the controller.
func (f *Fleet) Healthz() api.Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	h := api.Health{OK: !f.stopped, Tenants: len(f.tenants), ResumedJobs: f.resumed}
	for _, t := range f.tenants {
		h.Chips += len(t.chips)
	}
	for _, j := range f.jobs {
		switch j.state {
		case api.JobQueued:
			h.JobsQueued++
		case api.JobRunning:
			h.JobsRunning++
		case api.JobDone:
			h.JobsDone++
		}
	}
	return h
}
