// REST + WebSocket surface of the fleet service. Routes use the Go 1.22
// method-and-wildcard mux patterns; every body is JSON; errors use the
// {"error": "..."} envelope with conventional status codes (400 validation,
// 404 unknown resource, 409 conflicting state).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"meda/internal/telemetry"
	"meda/pkg/api"
)

// maxBodyBytes bounds request bodies; chip states for the default 60×30
// array are ~200 KiB, so 8 MiB leaves room for large custom chips.
const maxBodyBytes = 8 << 20

// Handler builds the service mux over a fleet.
func Handler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Healthz())
	})
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))

	mux.HandleFunc("POST /api/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var spec api.TenantSpec
		if !readJSON(w, r, &spec) {
			return
		}
		if err := f.CreateTenant(spec); err != nil {
			writeErr(w, err)
			return
		}
		t, err := f.Tenant(spec.ID)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, t)
	})
	mux.HandleFunc("GET /api/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Tenants())
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		t, err := f.Tenant(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, t)
	})

	mux.HandleFunc("POST /api/v1/tenants/{tenant}/chips", func(w http.ResponseWriter, r *http.Request) {
		var spec api.ChipSpec
		if !readJSON(w, r, &spec) {
			return
		}
		tenant := r.PathValue("tenant")
		if err := f.CreateChip(tenant, spec, nil); err != nil {
			writeErr(w, err)
			return
		}
		st, err := f.Chip(tenant, spec.ID)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/chips", func(w http.ResponseWriter, r *http.Request) {
		chips, err := f.Chips(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, chips)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/chips/{chip}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.Chip(r.PathValue("tenant"), r.PathValue("chip"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/chips/{chip}/health", func(w http.ResponseWriter, r *http.Request) {
		state, err := f.ChipHealth(r.PathValue("tenant"), r.PathValue("chip"))
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(state) //lint:ignore errflowstrict a failed response write means the client went away; nothing to do
	})
	mux.HandleFunc("PUT /api/v1/tenants/{tenant}/chips/{chip}/health", func(w http.ResponseWriter, r *http.Request) {
		state, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, api.Error{Message: err.Error()})
			return
		}
		if err := f.UploadChipHealth(r.PathValue("tenant"), r.PathValue("chip"), state); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("POST /api/v1/tenants/{tenant}/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec api.JobSpec
		if !readJSON(w, r, &spec) {
			return
		}
		st, err := f.SubmitJob(r.PathValue("tenant"), spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs, err := f.Jobs(r.PathValue("tenant"), r.URL.Query().Get("chip"))
		if err != nil {
			writeErr(w, err)
			return
		}
		if jobs == nil {
			jobs = []api.JobStatus{}
		}
		writeJSON(w, http.StatusOK, jobs)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/jobs/{job}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.Job(r.PathValue("tenant"), r.PathValue("job"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /api/v1/tenants/{tenant}/jobs/{job}", func(w http.ResponseWriter, r *http.Request) {
		st, err := f.CancelJob(r.PathValue("tenant"), r.PathValue("job"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /api/v1/tenants/{tenant}/webhooks", func(w http.ResponseWriter, r *http.Request) {
		var spec api.WebhookSpec
		if !readJSON(w, r, &spec) {
			return
		}
		if err := f.AddWebhook(r.PathValue("tenant"), spec); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, spec)
	})
	mux.HandleFunc("GET /api/v1/tenants/{tenant}/webhooks", func(w http.ResponseWriter, r *http.Request) {
		hooks, err := f.Webhooks(r.PathValue("tenant"))
		if err != nil {
			writeErr(w, err)
			return
		}
		if hooks == nil {
			hooks = []api.WebhookSpec{}
		}
		writeJSON(w, http.StatusOK, hooks)
	})

	mux.HandleFunc("GET /api/v1/tenants/{tenant}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(f, w, r, r.PathValue("tenant"))
	})
	mux.HandleFunc("GET /api/v1/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(f, w, r, "")
	})
	return mux
}

// serveEvents upgrades to WebSocket and streams the tenant's events as one
// JSON text frame each until the client disconnects or the fleet stops.
func serveEvents(f *Fleet, w http.ResponseWriter, r *http.Request, tenant string) {
	if tenant != "" {
		if _, err := f.Tenant(tenant); err != nil {
			writeErr(w, err)
			return
		}
	}
	conn, err := wsUpgrade(w, r)
	if err != nil {
		return // wsUpgrade already wrote the HTTP error
	}
	events, cancel := f.Subscribe(tenant)
	defer cancel()

	// Reader: answers pings, detects the client's close frame or a dead
	// connection, and signals the writer loop to stop.
	gone := make(chan struct{})
	go wsEventReader(conn, gone)

	// goingAway performs the closing handshake without a second reader:
	// send our close frame, let the reader goroutine observe the peer's
	// reply (or give up after the grace period), then drop the transport.
	goingAway := func() {
		conn.WriteClose(wsCloseGoingAway, "server shutting down") //lint:ignore errflowstrict the peer may already be gone; the stream is over either way
		select {
		case <-gone:
		case <-time.After(wsCloseWait):
		}
		conn.Close() //lint:ignore errflowstrict the stream is over either way; unblocks a still-waiting reader
		<-gone
	}

	for {
		select {
		case ev, ok := <-events:
			if !ok {
				goingAway() // fleet shutdown closed the subscription
				return
			}
			payload, merr := json.Marshal(ev)
			if merr != nil {
				continue
			}
			if conn.WriteText(payload) != nil {
				conn.Close() //lint:ignore errflowstrict write already failed; the close error cannot add anything
				<-gone
				return
			}
		case <-gone:
			conn.Close() //lint:ignore errflowstrict client initiated the teardown; nothing left to report to it
			return
		case <-f.stop:
			goingAway()
			return
		}
	}
}

// wsEventReader is the event stream's read side: it answers pings, and
// closes gone when the client sends its close frame or the connection
// dies. It is the channel's only sender (a close is its one message).
func wsEventReader(conn *WSConn, gone chan<- struct{}) {
	defer close(gone)
	for {
		op, payload, err := conn.ReadFrame()
		if err != nil {
			return
		}
		if op == wsOpPing {
			if conn.WritePong(payload) != nil {
				return
			}
		}
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //lint:ignore errflowstrict a failed response write means the client went away; nothing to do
}

// readJSON decodes the body into v, writing a 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, api.Error{Message: fmt.Sprintf("decoding request: %v", err)})
		return false
	}
	return true
}

// writeErr maps fleet errors onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var nf errNotFound
	var cf errConflict
	switch {
	case errors.As(err, &nf):
		status = http.StatusNotFound
	case errors.As(err, &cf):
		status = http.StatusConflict
	}
	writeJSON(w, status, api.Error{Message: err.Error()})
}
