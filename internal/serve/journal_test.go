package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"meda/pkg/api"
)

// mkRecord builds a CRC-valid record.
func mkRecord(seq int64, typ string, payload any) Record {
	data, err := json.Marshal(payload)
	if err != nil {
		panic(err)
	}
	return Record{Seq: seq, Type: typ, Data: data, CRC: recordCRC(seq, typ, data)}
}

// journalBytes serializes records the way journalWriter does.
func journalBytes(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func testRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, mkRecord(int64(i+1), recTenantCreate, tenantCreateRec{ID: "t"}))
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	recs := testRecords(20)
	got, dropped, err := readJournal(bytes.NewReader(journalBytes(t, recs)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round-trip mismatch: got %d records", len(got))
	}
}

func TestJournalSkipsSnapshotCoveredRecords(t *testing.T) {
	recs := testRecords(10)
	got, _, err := readJournal(bytes.NewReader(journalBytes(t, recs)), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("afterSeq=7: got %d records starting at %d, want 3 starting at 8", len(got), got[0].Seq)
	}
}

// isPrefix reports whether got is a prefix of want.
func isPrefix(got, want []Record) bool {
	if len(got) > len(want) {
		return false
	}
	if len(got) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want[:len(got)])
}

// A journal truncated at ANY byte offset — the on-disk state after a crash
// mid-append — must read back as a valid prefix of what was written, with
// no error.
func TestJournalTruncationYieldsPrefix(t *testing.T) {
	recs := testRecords(8)
	full := journalBytes(t, recs)
	for cut := 0; cut <= len(full); cut++ {
		got, _, err := readJournal(bytes.NewReader(full[:cut]), 0)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !isPrefix(got, recs) {
			t.Fatalf("cut at %d: %d records are not a prefix", cut, len(got))
		}
	}
}

// Flipping any single byte must never fabricate state: the CRC catches the
// damage and everything from the damaged record on is dropped.
func TestJournalByteFlipYieldsPrefix(t *testing.T) {
	recs := testRecords(8)
	full := journalBytes(t, recs)
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x20
		got, _, err := readJournal(bytes.NewReader(mut), 0)
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		if !isPrefix(got, recs) {
			t.Fatalf("flip at %d: result is not a prefix of the original records", off)
		}
	}
}

func TestJournalSequenceRegressionStops(t *testing.T) {
	recs := testRecords(5)
	recs[3] = mkRecord(2, recTenantCreate, tenantCreateRec{ID: "t"}) // CRC-valid but out of order
	got, dropped, err := readJournal(bytes.NewReader(journalBytes(t, recs)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || dropped != 2 {
		t.Fatalf("got %d records, %d dropped; want 3 and 2", len(got), dropped)
	}
}

// storeFixtureState drives a store through a representative record sequence.
func storeFixtureState(t *testing.T, s *Store) {
	t.Helper()
	chipState := json.RawMessage(`{"version":1,"w":2,"h":2}`)
	appends := []struct {
		typ     string
		payload any
	}{
		{recTenantCreate, tenantCreateRec{ID: "acme"}},
		{recWebhookAdd, webhookAddRec{Tenant: "acme", Spec: api.WebhookSpec{URL: "http://x/hook"}}},
		{recChipCreate, chipCreateRec{Tenant: "acme", Spec: api.ChipSpec{ID: "c1", Seed: 7}, State: chipState}},
		{recJobSubmit, jobSubmitRec{ID: "j-000001", Tenant: "acme", Spec: api.JobSpec{Chip: "c1", Benchmark: "serial-dilution", Seed: 7}}},
		{recJobStart, jobStartRec{Job: "j-000001", Tenant: "acme", Chip: "c1", State: chipState}},
		{recJobProgress, jobProgressRec{Job: "j-000001", Progress: api.Progress{Cycle: 16, Digest: "00deadbeef00cafe"}}},
		{recJobDone, jobDoneRec{Job: "j-000001", Result: &api.Execution{Success: true, Cycles: 120}, State: chipState}},
		{recJobSubmit, jobSubmitRec{ID: "j-000002", Tenant: "acme", Spec: api.JobSpec{Chip: "c1", Benchmark: "cep", Seed: 8}}},
		{recJobCancel, jobCancelRec{Job: "j-000002"}},
	}
	for _, a := range appends {
		if err := s.Append(a.typ, a.payload, false); err != nil {
			t.Fatalf("append %s: %v", a.typ, err)
		}
	}
}

func marshalState(t *testing.T, st *State) []byte {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// Replaying snapshot + journal must reconstruct exactly the in-memory
// mirror the writing process had — the store's core invariant.
func TestStoreReplayMatchesMirror(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeFixtureState(t, s)
	want := marshalState(t, s.State())
	s.CloseAbrupt() // crash: no snapshot, journal only

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseAbrupt()
	if got := marshalState(t, re.State()); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs from mirror:\n got %s\nwant %s", got, want)
	}
	if re.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", re.Dropped())
	}
	// JobsDone must not double-count (job_done applied exactly once).
	if n := re.State().Tenants["acme"].Chips["c1"].JobsDone; n != 1 {
		t.Fatalf("jobs done = %d, want 1", n)
	}
}

// A crash-damaged journal tail (garbage after the last good record) is
// dropped cleanly and counted; the good prefix survives.
func TestStoreCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeFixtureState(t, s)
	want := marshalState(t, s.State())
	s.CloseAbrupt()

	jPath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{torn rec\n{\"seq\":99,\"type\":\"tenant_create\",\"crc\":1}\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseAbrupt()
	if re.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", re.Dropped())
	}
	if got := marshalState(t, re.State()); !bytes.Equal(got, want) {
		t.Fatalf("state after tail damage differs from the pre-damage mirror")
	}
}

// The snapshot-then-truncate crash window: if the snapshot lands but the
// truncate never happens, replaying the stale journal over the snapshot
// must be a no-op (every record's seq is covered by the snapshot).
func TestStoreSnapshotTruncateCrashWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeFixtureState(t, s)
	want := marshalState(t, s.State())
	jPath := filepath.Join(dir, journalName)
	stale, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Undo the truncate, as if the crash hit between rename and truncate.
	if err := os.WriteFile(jPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s.CloseAbrupt()

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseAbrupt()
	if got := marshalState(t, re.State()); !bytes.Equal(got, want) {
		t.Fatalf("stale-journal replay changed state (double-applied records)")
	}
	if n := re.State().Tenants["acme"].Chips["c1"].JobsDone; n != 1 {
		t.Fatalf("jobs done = %d after stale replay, want 1", n)
	}
}

// A leftover snapshot temp file from a crashed snapshot attempt is ignored;
// the journal still carries those records.
func TestStoreIgnoresSnapshotTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeFixtureState(t, s)
	want := marshalState(t, s.State())
	s.CloseAbrupt()
	if err := os.WriteFile(filepath.Join(dir, snapshotName+".tmp"), []byte("{half a snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseAbrupt()
	if got := marshalState(t, re.State()); !bytes.Equal(got, want) {
		t.Fatalf("temp snapshot file perturbed recovery")
	}
}

// Close persists via snapshot; a clean reopen needs no journal at all.
func TestStoreCleanCloseReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	storeFixtureState(t, s)
	want := marshalState(t, s.State())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalState(t, re.State()); !bytes.Equal(got, want) {
		t.Fatalf("clean close/reopen changed state")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
