// Live event distribution: an in-process bus fanning execution and
// telemetry events out to WebSocket subscribers, plus the webhook notifier
// that POSTs fault-escalation events to tenant-registered URLs.
//
// Delivery is best-effort by design: a subscriber that cannot keep up has
// events dropped (and counted) rather than back-pressuring the simulation
// loop — the durable journal, not the event stream, is the source of truth.
package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"meda/internal/telemetry"
	"meda/pkg/api"
)

var (
	telEvents        = telemetry.C("serve.events.published")
	telEventsDropped = telemetry.C("serve.events.dropped")
	telWebhooksSent  = telemetry.C("serve.webhooks.sent")
	telWebhooksErr   = telemetry.C("serve.webhooks.errors")
)

// subscriber is one event-stream consumer with an optional tenant filter.
type subscriber struct {
	ch     chan api.Event
	tenant string // "" matches every tenant
}

// Bus assigns sequence numbers and fans events out to subscribers.
type Bus struct {
	mu   sync.Mutex
	seq  int64
	subs map[int]*subscriber
	next int
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*subscriber)}
}

// Subscribe registers a consumer for events matching tenant ("" = all),
// buffered to buf events. The returned cancel function unregisters and
// closes the channel; it is idempotent.
func (b *Bus) Subscribe(tenant string, buf int) (<-chan api.Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	s := &subscriber{ch: make(chan api.Event, buf), tenant: tenant}
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = s
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(s.ch)
		})
	}
	return s.ch, cancel
}

// Publish assigns the event a sequence number and offers it to every
// matching subscriber without blocking; full subscribers lose the event.
// The stamped event is returned for further delivery (webhooks).
func (b *Bus) Publish(ev api.Event) api.Event {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	for _, s := range b.subs {
		if s.tenant != "" && s.tenant != ev.Tenant {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			telEventsDropped.Inc()
		}
	}
	b.mu.Unlock()
	telEvents.Inc()
	return ev
}

// webhookNotifier POSTs matching events to registered URLs. Deliveries run
// on their own goroutines with a bounded timeout so a slow or dead endpoint
// never stalls the fleet; Wait drains in-flight deliveries at shutdown.
type webhookNotifier struct {
	client *http.Client
	wg     sync.WaitGroup
}

func newWebhookNotifier(timeout time.Duration) *webhookNotifier {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &webhookNotifier{client: &http.Client{Timeout: timeout}}
}

// matches reports whether the webhook subscribes to the event type. An
// empty filter means the degradation/fault-escalation feed.
func webhookMatches(spec api.WebhookSpec, evType string) bool {
	events := spec.Events
	if len(events) == 0 {
		events = api.DegradationEvents
	}
	for _, e := range events {
		if e == evType {
			return true
		}
	}
	return false
}

// Notify delivers ev to every matching webhook asynchronously.
func (n *webhookNotifier) Notify(hooks []api.WebhookSpec, ev api.Event) {
	var body []byte
	for _, h := range hooks {
		if !webhookMatches(h, ev.Type) {
			continue
		}
		if body == nil {
			var err error
			if body, err = json.Marshal(ev); err != nil {
				telWebhooksErr.Inc()
				return
			}
		}
		url := h.URL
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			resp, err := n.client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				telWebhooksErr.Inc()
				return
			}
			resp.Body.Close() //lint:ignore errflowstrict the delivery outcome is the status code; the body is discarded
			if resp.StatusCode >= 300 {
				telWebhooksErr.Inc()
				return
			}
			telWebhooksSent.Inc()
		}()
	}
}

// Wait blocks until every in-flight delivery has finished or timed out
// (deliveries are bounded by the client timeout, so Wait is too).
func (n *webhookNotifier) Wait() { n.wg.Wait() }
