package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"meda/internal/telemetry"
	"meda/pkg/api"
	"meda/pkg/client"
)

// mediumAssay runs a couple of simulated seconds — long enough to kill the
// server mid-flight, short enough to replay twice in a test.
const mediumAssay = `assay medium
a = dis 16
b = dis 16
m = mix a b
h = mag m hold=6000
out h
`

// startServer launches a server without registering cleanup — callers that
// kill and restart manage the lifecycle themselves.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint
	return srv, client.New("http://" + ln.Addr().String())
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestKillAndResume is the crash-recovery acceptance test: kill the server
// mid-assay, restart on the same data directory, and require the resumed
// execution to complete hazard-free with a result and final chip state
// byte-identical to an uninterrupted control run.
func TestKillAndResume(t *testing.T) {
	spec := api.ChipSpec{ID: "c1", Seed: 77}
	job := api.JobSpec{Chip: "c1", Assay: mediumAssay, Seed: 77, KMax: 10000}
	ctx := ctxT(t)

	// Control: the same chip and job, uninterrupted.
	ctrlSrv, ctrl := startServer(t, Config{DataDir: t.TempDir(), CheckpointEvery: 4})
	if _, err := ctrl.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.CreateChip(ctx, "acme", spec); err != nil {
		t.Fatal(err)
	}
	cj, err := ctrl.SubmitJob(ctx, "acme", job)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctrl.WaitJob(ctx, "acme", cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want.State != api.JobDone || !want.Result.Success {
		t.Fatalf("control run = %+v", want)
	}
	wantState, err := ctrl.ChipHealth(ctx, "acme", "c1")
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, ctrlSrv)

	// Interrupted run: same specs, crash after the first checkpoint.
	dir := t.TempDir()
	srv1, c1 := startServer(t, Config{DataDir: dir, CheckpointEvery: 4})
	if _, err := c1.CreateTenant(ctx, "acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CreateChip(ctx, "acme", spec); err != nil {
		t.Fatal(err)
	}
	es, err := c1.StreamEvents(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	j1, err := c1.SubmitJob(ctx, "acme", job)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != cj.ID {
		t.Fatalf("job id %q differs from control %q; determinism comparison is off", j1.ID, cj.ID)
	}
	for {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("stream before kill: %v", err)
		}
		if ev.Type == api.EvJobProgress && ev.Job == j1.ID {
			break
		}
		if ev.Type == api.EvJobDone {
			t.Fatal("job finished before the kill — assay too short for this machine")
		}
	}
	srv1.Kill()
	es.Close() //lint:ignore errflowstrict the kill already severed the transport

	// Restart on the journal alone. The unfinished job re-queues and
	// replays from its journaled start state.
	srv2, c2 := startServer(t, Config{DataDir: dir, CheckpointEvery: 4})
	defer shutdown(t, srv2)
	h, err := c2.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ResumedJobs != 1 {
		t.Fatalf("healthz resumed_jobs = %d, want 1", h.ResumedJobs)
	}
	got, err := c2.WaitJob(ctx, "acme", j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.JobDone || got.Result == nil {
		t.Fatalf("resumed run = %+v", got)
	}
	if !got.Resumed {
		t.Fatal("resumed job not flagged Resumed")
	}
	if got.Result.HazardViolations != 0 {
		t.Fatalf("resumed run had %d hazard violations", got.Result.HazardViolations)
	}
	if *got.Result != *want.Result {
		t.Fatalf("resumed result diverged:\n got %+v\nwant %+v", *got.Result, *want.Result)
	}
	gotState, err := c2.ChipHealth(ctx, "acme", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotState, wantState) {
		t.Fatalf("final chip state diverged after resume (%d vs %d bytes)", len(gotState), len(wantState))
	}
}

// uniformDegradedState builds a 60×30 chip state whose every cell sits at
// degradation 0.6 (health code 2 of 3): uniformly degraded, so the
// scheduler keys every window strategy by its D4-canonical form.
func uniformDegradedState(t *testing.T) []byte {
	t.Helper()
	type cell struct {
		Tau float64 `json:"tau"`
		C   float64 `json:"c"`
		N   float64 `json:"n"`
	}
	const w, h = 60, 30
	cells := make([]cell, w*h)
	for i := range cells {
		cells[i] = cell{Tau: 0.6, C: 300, N: 300}
	}
	raw, err := json.Marshal(map[string]any{
		"version": 1, "w": w, "h": h, "bits": 2, "cells": cells,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCanonicalCacheAcrossTenants is the strategy-sharing acceptance test:
// two tenants with identically degraded chips run the same assay; the
// second tenant's run must hit canonical cache entries the first tenant's
// run stored. Tenants are isolated at the API layer, but strategies for
// congruent degraded windows are physics, not data — they share.
func TestCanonicalCacheAcrossTenants(t *testing.T) {
	_, c := testServer(t, Config{})
	ctx := ctxT(t)
	state := uniformDegradedState(t)
	job := func(chip string) api.JobSpec {
		return api.JobSpec{Chip: chip, Benchmark: "serial-dilution", Seed: 21}
	}

	for _, tenant := range []string{"alpha", "beta"} {
		if _, err := c.CreateTenant(ctx, tenant); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateChip(ctx, tenant, api.ChipSpec{ID: "d1", Seed: 21}); err != nil {
			t.Fatal(err)
		}
		if err := c.UploadChipHealth(ctx, tenant, "d1", state); err != nil {
			t.Fatal(err)
		}
		cs, err := c.Chip(ctx, tenant, "d1")
		if err != nil {
			t.Fatal(err)
		}
		if cs.MinHealth != 2 || cs.MeanHealthMilli != 2000 {
			t.Fatalf("%s chip not uniformly degraded: %+v", tenant, cs)
		}
	}

	// Tenant alpha warms the shared cache.
	j, err := c.SubmitJob(ctx, "alpha", job("d1"))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.WaitJob(ctx, "alpha", j.ID); err != nil || st.State != api.JobDone {
		t.Fatalf("alpha job = %+v, err %v", st, err)
	}

	// Tenant beta's identical run must reuse alpha's canonical entries.
	before := telemetry.C("sched.cache.canonical_hits").Value()
	j, err = c.SubmitJob(ctx, "beta", job("d1"))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.WaitJob(ctx, "beta", j.ID); err != nil || st.State != api.JobDone {
		t.Fatalf("beta job = %+v, err %v", st, err)
	}
	delta := telemetry.C("sched.cache.canonical_hits").Value() - before
	if delta <= 0 {
		t.Fatalf("sched.cache.canonical_hits delta = %d during beta's run, want > 0", delta)
	}
	t.Logf("canonical cache hits across tenants: %d", delta)
}
