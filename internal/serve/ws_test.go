package serve

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// RFC 6455 §1.3 handshake test vector.
func TestWSAcceptKeyRFCVector(t *testing.T) {
	got := wsAcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; got != want {
		t.Fatalf("wsAcceptKey = %q, want %q", got, want)
	}
}

func TestHeaderHasToken(t *testing.T) {
	cases := []struct {
		header, token string
		want          bool
	}{
		{"Upgrade", "upgrade", true},
		{"keep-alive, Upgrade", "upgrade", true},
		{"keep-alive,upgrade", "upgrade", true},
		{"keep-alive", "upgrade", false},
		{"", "upgrade", false},
		{"upgraded", "upgrade", false},
	}
	for _, c := range cases {
		if got := headerHasToken(c.header, c.token); got != c.want {
			t.Errorf("headerHasToken(%q, %q) = %v, want %v", c.header, c.token, got, c.want)
		}
	}
}

// wsPipe builds a server-side and client-side WSConn over an in-memory pipe.
func wsPipe(t *testing.T) (srv, cli *WSConn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	srv = &WSConn{conn: a, br: bufio.NewReader(a), server: true}
	cli = NewWSClientConn(b, nil)
	return srv, cli
}

// Frames round-trip in both directions across the three length encodings:
// 7-bit (<126), 16-bit (126..65535), and 64-bit (>65535).
func TestWSFrameRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 125, 126, 4096, 65535, 65536, 200_000}
	srv, cli := wsPipe(t)
	for _, n := range sizes {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		for dir, pair := range map[string][2]*WSConn{
			"client->server": {cli, srv},
			"server->client": {srv, cli},
		} {
			from, to := pair[0], pair[1]
			errCh := make(chan error, 1)
			go func() { errCh <- from.WriteText(payload) }()
			op, got, err := to.ReadFrame()
			if err != nil {
				t.Fatalf("%s len %d: read: %v", dir, n, err)
			}
			if werr := <-errCh; werr != nil {
				t.Fatalf("%s len %d: write: %v", dir, n, werr)
			}
			if op != wsOpText || !bytes.Equal(got, payload) {
				t.Fatalf("%s len %d: op %#x, payload mismatch (%d bytes)", dir, n, op, len(got))
			}
		}
	}
}

// A ping surfaces to the caller (the event loop answers it); WritePong
// mirrors the payload back.
func TestWSPingPong(t *testing.T) {
	srv, cli := wsPipe(t)
	go func() { cli.writeFrame(wsOpPing, []byte("hb")) }() //nolint
	op, payload, err := srv.ReadFrame()
	if err != nil || op != wsOpPing || string(payload) != "hb" {
		t.Fatalf("ping: op %#x payload %q err %v", op, payload, err)
	}
	go func() { srv.WritePong(payload) }() //nolint
	op, payload, err = cli.ReadFrame()
	if err != nil || op != wsOpPong || string(payload) != "hb" {
		t.Fatalf("pong: op %#x payload %q err %v", op, payload, err)
	}
}

// The close handshake surfaces as errWSClosed on the reader side.
func TestWSCloseHandshake(t *testing.T) {
	srv, cli := wsPipe(t)
	go func() { cli.WriteClose(wsCloseNormal, "bye") }() //nolint
	_, _, err := srv.ReadFrame()
	if !errors.Is(err, errWSClosed) {
		t.Fatalf("err = %v, want errWSClosed", err)
	}
}

// Oversized frames are refused before the payload is swallowed.
func TestWSMaxPayloadEnforced(t *testing.T) {
	srv, cli := wsPipe(t)
	go func() { cli.WriteText(make([]byte, wsMaxPayload+1)) }() //nolint
	_, _, err := srv.ReadFrame()
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if errors.Is(err, errWSClosed) {
		t.Fatalf("oversized frame reported as clean close: %v", err)
	}
}

// A plain GET without upgrade headers is rejected with 400, not hijacked.
func TestWSUpgradeRejectsPlainGET(t *testing.T) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/api/v1/tenants/t/events", nil)
	if _, err := wsUpgrade(rr, req); err == nil {
		t.Fatal("wsUpgrade accepted a plain GET")
	}
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rr.Code)
	}
}

// Full handshake over a real TCP-like stack: wsUpgrade on an httptest
// server, client side via NewWSClientConn, one echo round-trip, then a
// clean CloseHandshake.
func TestWSUpgradeEndToEnd(t *testing.T) {
	upgraded := make(chan *WSConn, 1)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := wsUpgrade(w, r)
		if err != nil {
			return
		}
		upgraded <- c
	}))
	defer hs.Close()

	conn, err := net.Dial("tcp", hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := "GET /ws HTTP/1.1\r\n" +
		"Host: " + hs.Listener.Addr().String() + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("status = %d, want 101", resp.StatusCode)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("accept key = %q", got)
	}
	cli := NewWSClientConn(conn, br)

	var srv *WSConn
	select {
	case srv = <-upgraded:
	case <-time.After(5 * time.Second):
		t.Fatal("server side never upgraded")
	}
	if err := cli.WriteText([]byte("ping over tcp")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := srv.ReadFrame()
	if err != nil || op != wsOpText || string(payload) != "ping over tcp" {
		t.Fatalf("server read: op %#x payload %q err %v", op, payload, err)
	}
	if err := srv.WriteText(payload); err != nil {
		t.Fatal(err)
	}
	op, payload, err = cli.ReadFrame()
	if err != nil || op != wsOpText || string(payload) != "ping over tcp" {
		t.Fatalf("client read: op %#x payload %q err %v", op, payload, err)
	}
	// Closing handshake: client initiates, server reads the close and
	// echoes its own, which satisfies the client's bounded wait.
	closed := make(chan error, 1)
	go func() { closed <- cli.CloseHandshake(wsCloseNormal, "done", 5*time.Second) }()
	if _, _, err := srv.ReadFrame(); !errors.Is(err, errWSClosed) {
		t.Fatalf("server after client close: %v, want errWSClosed", err)
	}
	if err := srv.WriteClose(wsCloseNormal, "done"); err != nil {
		t.Fatalf("server close reply: %v", err)
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close handshake: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close handshake never completed")
	}
}
