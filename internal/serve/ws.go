// Minimal RFC 6455 WebSocket support, server side, on the standard library
// alone (the repo deliberately takes no dependencies). Only what the event
// stream needs is implemented: the HTTP/1.1 upgrade handshake, text/ping/
// pong/close frames, client-to-server masking, and the closing handshake.
// Fragmented messages and extensions are rejected.
package serve

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// wsGUID is the protocol-mandated accept-key suffix (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes.
const (
	wsOpText  = 0x1
	wsOpClose = 0x8
	wsOpPing  = 0x9
	wsOpPong  = 0xA
)

// wsMaxPayload bounds a single frame; event payloads are small, so anything
// larger is a protocol violation rather than a legitimate message.
const wsMaxPayload = 1 << 20

// Close status codes (RFC 6455 §7.4.1) and the closing-handshake grace
// period the server allows the peer's close frame.
const (
	wsCloseNormal    uint16 = 1000
	wsCloseGoingAway uint16 = 1001
)

const wsCloseWait = 2 * time.Second

// wsAcceptKey computes the Sec-WebSocket-Accept value for a client key.
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// WSConn is one upgraded WebSocket connection. Writes are internally
// serialized; reads must come from a single goroutine.
type WSConn struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	// server marks which side we are: servers send unmasked frames and
	// require masked ones, clients the reverse (RFC 6455 §5.1).
	server bool
}

// wsUpgrade performs the server-side opening handshake, hijacking the HTTP
// connection. On failure it writes the error response itself and returns.
func wsUpgrade(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
		!headerHasToken(r.Header.Get("Connection"), "upgrade") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return nil, fmt.Errorf("serve: not a websocket upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" || r.Header.Get("Sec-WebSocket-Version") != "13" {
		http.Error(w, "unsupported websocket version", http.StatusBadRequest)
		return nil, fmt.Errorf("serve: unsupported websocket handshake")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket unsupported", http.StatusInternalServerError)
		return nil, fmt.Errorf("serve: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("serve: hijacking connection: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close() //lint:ignore errflowstrict handshake already failed; the close error cannot add anything
		return nil, fmt.Errorf("serve: writing upgrade response: %w", err)
	}
	if err := rw.Flush(); err != nil {
		conn.Close() //lint:ignore errflowstrict handshake already failed; the close error cannot add anything
		return nil, fmt.Errorf("serve: flushing upgrade response: %w", err)
	}
	// The hijacked bufio.Reader may hold bytes the client pipelined after
	// the handshake, but reading PAST its buffer goes through net/http's
	// connReader, which panics once hijacked. Drain exactly the buffered
	// residue, then read the connection directly.
	var src io.Reader = conn
	if n := rw.Reader.Buffered(); n > 0 {
		src = io.MultiReader(io.LimitReader(rw.Reader, int64(n)), conn)
	}
	return &WSConn{conn: conn, br: bufio.NewReader(src), server: true}, nil
}

// headerHasToken reports whether a comma-separated header value contains
// the token, case-insensitively ("Connection: keep-alive, Upgrade").
func headerHasToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// NewWSClientConn wraps an already-handshaken connection as the client
// side (frames are masked on write, unmasked expected on read). The SDK
// performs its own HTTP handshake and hands the connection over.
func NewWSClientConn(conn net.Conn, br *bufio.Reader) *WSConn {
	if br == nil {
		br = bufio.NewReader(conn)
	}
	return &WSConn{conn: conn, br: br}
}

// writeFrame emits one unfragmented frame. Server frames are unmasked;
// client frames are masked with a key drawn from the payload bytes'
// addresses — predictability is fine here, masking exists to defeat proxy
// cache poisoning, not for secrecy.
func (c *WSConn) writeFrame(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	header := make([]byte, 0, 14)
	header = append(header, 0x80|op)
	maskBit := byte(0)
	if !c.server {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		header = append(header, maskBit|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		header = append(header, maskBit|126)
		header = binary.BigEndian.AppendUint16(header, uint16(len(payload)))
	default:
		header = append(header, maskBit|127)
		header = binary.BigEndian.AppendUint64(header, uint64(len(payload)))
	}
	body := payload
	if !c.server {
		var key [4]byte
		// A fixed key is protocol-legal; see above.
		key = [4]byte{0x37, 0xfa, 0x21, 0x3d}
		header = append(header, key[:]...)
		body = make([]byte, len(payload))
		for i, b := range payload {
			body[i] = b ^ key[i%4]
		}
	}
	if _, err := c.conn.Write(header); err != nil {
		return fmt.Errorf("serve: websocket write: %w", err)
	}
	if len(body) > 0 {
		if _, err := c.conn.Write(body); err != nil {
			return fmt.Errorf("serve: websocket write: %w", err)
		}
	}
	return nil
}

// WriteText sends one text frame.
func (c *WSConn) WriteText(p []byte) error { return c.writeFrame(wsOpText, p) }

// WritePong answers a ping.
func (c *WSConn) WritePong(p []byte) error { return c.writeFrame(wsOpPong, p) }

// WriteClose sends a close frame with the given status code.
func (c *WSConn) WriteClose(code uint16, reason string) error {
	payload := make([]byte, 2, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	payload = append(payload, reason...)
	return c.writeFrame(wsOpClose, payload)
}

// errWSClosed reports a clean close handshake from the peer.
var errWSClosed = errors.New("serve: websocket closed by peer")

// ReadFrame reads the next frame, transparently unmasking. It returns the
// opcode and payload; a close frame returns errWSClosed after the payload.
func (c *WSConn) ReadFrame() (byte, []byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("serve: websocket read: %w", err)
	}
	fin := hdr[0]&0x80 != 0
	op := hdr[0] & 0x0F
	if !fin || hdr[0]&0x70 != 0 {
		return 0, nil, fmt.Errorf("serve: fragmented or extended websocket frames unsupported")
	}
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, fmt.Errorf("serve: websocket read: %w", err)
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, fmt.Errorf("serve: websocket read: %w", err)
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxPayload {
		return 0, nil, fmt.Errorf("serve: websocket frame of %d bytes exceeds limit", length)
	}
	var key [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, key[:]); err != nil {
			return 0, nil, fmt.Errorf("serve: websocket read: %w", err)
		}
	}
	if c.server && !masked {
		return 0, nil, fmt.Errorf("serve: client frames must be masked")
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, fmt.Errorf("serve: websocket read: %w", err)
	}
	if masked {
		for i := range payload {
			payload[i] ^= key[i%4]
		}
	}
	if op == wsOpClose {
		return op, payload, errWSClosed
	}
	return op, payload, nil
}

// CloseHandshake performs the closing handshake from our side: send close,
// wait (bounded) for the peer's close or EOF, then close the transport.
func (c *WSConn) CloseHandshake(code uint16, reason string, wait time.Duration) error {
	werr := c.WriteClose(code, reason)
	if wait > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(wait)); err == nil {
			for {
				if _, _, err := c.ReadFrame(); err != nil {
					break // peer's close frame, EOF, or deadline — all end the wait
				}
			}
		}
	}
	cerr := c.conn.Close()
	return errors.Join(werr, cerr)
}

// Close tears the connection down without a handshake.
func (c *WSConn) Close() error { return c.conn.Close() }
