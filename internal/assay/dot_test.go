package assay

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	a := MasterMix.Build(defaultLayout(), 16)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph \"Master-Mix\"") {
		t.Errorf("header: %q", out[:40])
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("missing closing brace")
	}
	// One node per operation and one edge per consumed droplet.
	if got := strings.Count(out, "label=\"M"); got != a.Len() {
		t.Errorf("nodes = %d, want %d", got, a.Len())
	}
	edges := 0
	for _, mo := range a.MOs {
		edges += len(mo.Pre)
	}
	if got := strings.Count(out, "->"); got != edges {
		t.Errorf("edges = %d, want %d", got, edges)
	}
	if !strings.Contains(out, "area 16") {
		t.Error("dispense area annotation missing")
	}
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Error("dispense styling missing")
	}
}

func TestWriteDOTAllBenchmarksParseable(t *testing.T) {
	for _, bm := range []Benchmark{SerialDilution, NuIP, Protein, PCRMix} {
		var buf bytes.Buffer
		if err := WriteDOT(&buf, bm.Build(defaultLayout(), 16)); err != nil {
			t.Errorf("%v: %v", bm, err)
		}
		// Minimal structural sanity: braces balance.
		out := buf.String()
		if strings.Count(out, "{") != strings.Count(out, "}") {
			t.Errorf("%v: unbalanced braces", bm)
		}
	}
}
