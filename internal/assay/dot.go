// Graphviz export of sequencing graphs: render a bioassay's dataflow for
// documentation or debugging with `dot -Tsvg`.
package assay

import (
	"fmt"
	"io"
)

// WriteDOT writes the assay's sequencing graph in Graphviz DOT format, one
// node per operation (labeled like Fig. 12's SG) and one edge per droplet.
func WriteDOT(w io.Writer, a *Assay) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", a.Name); err != nil {
		return err
	}
	for _, mo := range a.MOs {
		label := fmt.Sprintf("M%d %s", mo.ID, mo.Type)
		switch mo.Type {
		case Dis:
			label += fmt.Sprintf("\\narea %d", mo.Area)
		case Mag:
			label += fmt.Sprintf("\\nhold %d", mo.Hold)
		}
		shape := ""
		switch mo.Type {
		case Dis:
			shape = ", style=filled, fillcolor=lightblue"
		case Out, Dsc:
			shape = ", style=filled, fillcolor=lightgray"
		}
		if _, err := fmt.Fprintf(w, "  m%d [label=\"%s\"%s];\n", mo.ID, label, shape); err != nil {
			return err
		}
		for _, pre := range mo.Pre {
			if _, err := fmt.Fprintf(w, "  m%d -> m%d;\n", pre, mo.ID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
