// Benchmark bioassay generators. Six protocols drive the evaluation of
// Sec. VII (Master-Mix, CEP, Serial Dilution, NuIP, COVID-RAT, COVID-PCR),
// three more drive the degradation-pattern study of Sec. III-C (ChIP,
// multiplex in-vitro, gene expression), and two classic DMFB benchmarks
// (Protein, PCR-Mix) extend the suite. Every generator takes the chip
// layout and the dispensed droplet area, so the same protocol can be run at
// the droplet sizes 3×3 … 6×6 studied in Fig. 3.
package assay

import "strings"

// Benchmark identifies one of the generated benchmark protocols.
type Benchmark int

// The benchmark protocols.
const (
	MasterMix Benchmark = iota
	CEP
	SerialDilution
	NuIP
	CovidRAT
	CovidPCR
	ChIP
	InVitro
	GeneExpression
	// Protein and PCRMix are classic DMFB synthesis benchmarks provided
	// beyond the paper's evaluation set: Protein exercises the split tree
	// of a colorimetric protein assay, PCRMix the binary mixing tree of a
	// polymerase-chain-reaction master-mix stage.
	Protein
	PCRMix
)

// AllBenchmarks lists every generated benchmark protocol, in declaration
// order.
var AllBenchmarks = []Benchmark{
	MasterMix, CEP, SerialDilution, NuIP, CovidRAT, CovidPCR,
	ChIP, InVitro, GeneExpression, Protein, PCRMix,
}

// EvaluationBenchmarks are the six bioassays of the Sec. VII evaluation
// (Figs. 15–16), in the paper's order.
var EvaluationBenchmarks = []Benchmark{MasterMix, CEP, SerialDilution, NuIP, CovidRAT, CovidPCR}

// CorrelationBenchmarks are the three bioassays of the Sec. III-C
// degradation-pattern study (Fig. 3).
var CorrelationBenchmarks = []Benchmark{ChIP, InVitro, GeneExpression}

// String returns the benchmark's display name.
func (b Benchmark) String() string {
	switch b {
	case MasterMix:
		return "Master-Mix"
	case CEP:
		return "CEP"
	case SerialDilution:
		return "Serial-Dilution"
	case NuIP:
		return "NuIP"
	case CovidRAT:
		return "COVID-RAT"
	case CovidPCR:
		return "COVID-PCR"
	case ChIP:
		return "ChIP"
	case InVitro:
		return "In-Vitro"
	case GeneExpression:
		return "Gene-Expression"
	case Protein:
		return "Protein"
	case PCRMix:
		return "PCR-Mix"
	}
	return "unknown"
}

// Slug returns the benchmark's lowercase machine name ("serial-dilution"),
// the form CLI flags and the fleet-service API accept.
func (b Benchmark) Slug() string { return strings.ToLower(b.String()) }

// ParseBenchmark resolves a benchmark by slug or display name,
// case-insensitively. The boolean reports whether the name was recognized.
func ParseBenchmark(name string) (Benchmark, bool) {
	for _, b := range AllBenchmarks {
		if strings.EqualFold(name, b.String()) {
			return b, true
		}
	}
	return 0, false
}

// BenchmarkSlugs lists every benchmark's slug, for usage strings.
func BenchmarkSlugs() []string {
	out := make([]string, len(AllBenchmarks))
	for i, b := range AllBenchmarks {
		out[i] = b.Slug()
	}
	return out
}

// Build generates the benchmark's sequencing graph for the given layout and
// dispensed droplet area.
func (b Benchmark) Build(l Layout, area int) *Assay {
	switch b {
	case MasterMix:
		return buildMasterMix(l, area)
	case CEP:
		return buildCEP(l, area)
	case SerialDilution:
		return buildSerialDilution(l, area, 6)
	case NuIP:
		return buildNuIP(l, area)
	case CovidRAT:
		return buildCovidRAT(l, area)
	case CovidPCR:
		return buildCovidPCR(l, area)
	case ChIP:
		return buildChIP(l, area)
	case InVitro:
		return buildInVitro(l, area, 2, 2)
	case GeneExpression:
		return buildGeneExpression(l, area, 4)
	case Protein:
		return buildProtein(l, area)
	case PCRMix:
		return buildPCRMix(l, area)
	}
	return nil
}

// buildMasterMix prepares a PCR master mix: four reagents (polymerase,
// dNTPs, primers, buffer) combined in a binary mix tree and dispensed out.
func buildMasterMix(l Layout, area int) *Assay {
	b := builder{name: MasterMix.String()}
	r0 := b.dis(l.Reservoir(0), area)
	r1 := b.dis(l.Reservoir(1), area)
	r2 := b.dis(l.Reservoir(2), area)
	r3 := b.dis(l.Reservoir(3), area)
	m0 := b.mix(r0, r1, l.Module(0))
	m1 := b.mix(r2, r3, l.Module(3))
	m2 := b.mix(m0, m1, l.Module(1))
	b.out(m2, l.Port(0))
	return b.assay()
}

// buildCEP is the three-stage CEP bioprotocol: cell lysis, mRNA extraction,
// and mRNA purification, each a reagent mix followed by bead capture, with
// the stage product feeding the next stage.
func buildCEP(l Layout, area int) *Assay {
	b := builder{name: CEP.String()}
	sample := b.dis(l.Reservoir(0), area)
	stage := sample
	for s := 0; s < 3; s++ {
		reagent := b.dis(l.Reservoir(2*s+1), area)
		mixed := b.mix(stage, reagent, l.Module(2*s))
		held := b.mag(mixed, l.Module(2*s+1), 15)
		if s < 2 {
			// Discard the supernatant aliquot and carry the capture on.
			spl := b.spt(held, l.Module(2*s+2), l.Module(2*s))
			b.dsc(spl, l.Port(s)) // consumes output 0
			stage = spl           // output 1 carries forward
		} else {
			stage = held
		}
	}
	b.out(stage, l.Port(3))
	return b.assay()
}

// buildSerialDilution performs the exponential-gradient serial dilution of
// the paper's reference [40]: each stage dilutes the carried sample with
// fresh buffer (mix + split) and discards one half.
func buildSerialDilution(l Layout, area, stages int) *Assay {
	b := builder{name: SerialDilution.String()}
	carried := b.dis(l.Reservoir(0), area)
	for s := 0; s < stages; s++ {
		buffer := b.dis(l.Reservoir(s+1), area)
		d := b.dlt(carried, buffer, l.Module(s), l.Module(s+1))
		// dlt produces two droplets; the first consumer claims the half
		// at loc[0] (discarded to waste), the second carries on from
		// loc[1].
		b.dsc(d, l.Port(s%3))
		carried = d
	}
	b.out(carried, l.Port(3))
	return b.assay()
}

// buildNuIP is the nucleosome-immunoprecipitation protocol of reference
// [17]: bead binding, antibody incubation, and three wash cycles with
// magnetic holds, then elution and collection.
func buildNuIP(l Layout, area int) *Assay {
	b := builder{name: NuIP.String()}
	chromatin := b.dis(l.Reservoir(0), area)
	beads := b.dis(l.Reservoir(1), area)
	bound := b.mix(chromatin, beads, l.Module(0))
	capture := b.mag(bound, l.Module(1), 25)
	antibody := b.dis(l.Reservoir(2), area)
	incubated := b.mix(capture, antibody, l.Module(2))
	stage := b.mag(incubated, l.Module(3), 25)
	for w := 0; w < 3; w++ {
		wash := b.dis(l.Reservoir(3+w), area)
		mixed := b.mix(stage, wash, l.Module(4+w))
		held := b.mag(mixed, l.Module(5+w), 15)
		spl := b.spt(held, l.Module(4+w), l.Module(6+w))
		b.dsc(spl, l.Port(w))
		stage = spl
	}
	eluent := b.dis(l.Reservoir(6), area)
	eluted := b.mix(stage, eluent, l.Module(2))
	final := b.mag(eluted, l.Module(0), 25)
	b.out(final, l.Port(3))
	return b.assay()
}

// buildCovidRAT is the rapid antigen test: swab extract mixed with assay
// buffer, held at the detection module, and collected. The shortest
// protocol in the suite.
func buildCovidRAT(l Layout, area int) *Assay {
	b := builder{name: CovidRAT.String()}
	sample := b.dis(l.Reservoir(0), area)
	buffer := b.dis(l.Reservoir(1), area)
	mixed := b.mix(sample, buffer, l.Module(0))
	detect := b.mag(mixed, l.Module(4), 20)
	b.out(detect, l.Port(0))
	return b.assay()
}

// buildCovidPCR is the PCR-based test: lysis, RNA capture, elution dilution,
// master-mix addition, and thermocycling hold.
func buildCovidPCR(l Layout, area int) *Assay {
	b := builder{name: CovidPCR.String()}
	sample := b.dis(l.Reservoir(0), area)
	lysis := b.dis(l.Reservoir(1), area)
	lysed := b.mix(sample, lysis, l.Module(0))
	captured := b.mag(lysed, l.Module(1), 20)
	eluent := b.dis(l.Reservoir(2), area)
	d := b.dlt(captured, eluent, l.Module(2), l.Module(4))
	b.dsc(d, l.Port(0))
	master := b.dis(l.Reservoir(3), area)
	reaction := b.mix(d, master, l.Module(3))
	cycled := b.mag(reaction, l.Module(5), 30)
	b.out(cycled, l.Port(1))
	return b.assay()
}

// buildChIP is the chromatin-immunoprecipitation benchmark used in the
// Fig. 3 correlation study: bead binding, two washes, and elution.
func buildChIP(l Layout, area int) *Assay {
	b := builder{name: ChIP.String()}
	chromatin := b.dis(l.Reservoir(0), area)
	antibody := b.dis(l.Reservoir(1), area)
	complexed := b.mix(chromatin, antibody, l.Module(0))
	beads := b.dis(l.Reservoir(2), area)
	bound := b.mix(complexed, beads, l.Module(2))
	stage := b.mag(bound, l.Module(3), 20)
	for w := 0; w < 2; w++ {
		wash := b.dis(l.Reservoir(3+w), area)
		mixed := b.mix(stage, wash, l.Module(4+w))
		held := b.mag(mixed, l.Module(1+w), 12)
		spl := b.spt(held, l.Module(4+w), l.Module(2+w))
		b.dsc(spl, l.Port(w))
		stage = spl
	}
	eluent := b.dis(l.Reservoir(5), area)
	eluted := b.mix(stage, eluent, l.Module(0))
	b.out(eluted, l.Port(2))
	return b.assay()
}

// buildInVitro is the classic multiplexed in-vitro diagnostics benchmark:
// every sample (plasma, serum, …) is assayed against every reagent, with an
// optical detection hold per pair.
func buildInVitro(l Layout, area, samples, reagents int) *Assay {
	b := builder{name: InVitro.String()}
	k := 0
	for s := 0; s < samples; s++ {
		for r := 0; r < reagents; r++ {
			sd := b.dis(l.Reservoir(2*s), area)
			rd := b.dis(l.Reservoir(2*r+1), area)
			// Disjoint module pairs per chain: the chains execute
			// concurrently, so their modules must not collide.
			mixed := b.mix(sd, rd, l.Module(2*k))
			held := b.mag(mixed, l.Module(2*k+1), 10)
			b.out(held, l.Port(k))
			k++
		}
	}
	return b.assay()
}

// buildGeneExpression is the gene-expression benchmark: a probe is serially
// combined with reporter reagent across dilution points and read out.
func buildGeneExpression(l Layout, area, points int) *Assay {
	b := builder{name: GeneExpression.String()}
	probe := b.dis(l.Reservoir(0), area)
	carried := probe
	for p := 0; p < points; p++ {
		reporter := b.dis(l.Reservoir(p+1), area)
		// Three modules per dilution point: point p's readout (mag) may
		// still be holding while point p+1 mixes, so module lifetimes
		// must not overlap.
		d := b.dlt(carried, reporter, l.Module(3*p), l.Module(3*p+1))
		read := b.mag(d, l.Module(3*p+2), 10)
		// The dlt's first droplet is read out; the second carries on.
		b.out(read, l.Port(p%3))
		carried = d
	}
	b.dsc(carried, l.Port(3))
	return b.assay()
}

// buildProtein is the classic colorimetric protein assay: the sample is
// split through a binary tree into four aliquots, each mixed with reagent
// and read optically. Split-heavy: it exercises the spt pathway harder than
// any protocol in the paper's suite.
func buildProtein(l Layout, area int) *Assay {
	b := builder{name: Protein.String()}
	sample := b.dis(l.Reservoir(0), area)
	// Level 1 split.
	top := b.spt(sample, l.Module(0), l.Module(3))
	// Level 2 splits (first consumer claims loc[0], second loc[1]).
	left := b.spt(top, l.Module(1), l.Module(2))
	right := b.spt(top, l.Module(4), l.Module(5))
	leaves := []int{left, left, right, right}
	for i, leaf := range leaves {
		reagent := b.dis(l.Reservoir(i+1), area)
		mixed := b.mix(leaf, reagent, l.Module(6+i))
		read := b.mag(mixed, l.Module(10-i), 12)
		b.out(read, l.Port(i))
	}
	return b.assay()
}

// buildPCRMix is the PCR master-mix preparation stage: eight reagents
// combined through a binary mixing tree, then thermocycled and collected.
func buildPCRMix(l Layout, area int) *Assay {
	b := builder{name: PCRMix.String()}
	var level []int
	for i := 0; i < 8; i++ {
		level = append(level, b.dis(l.Reservoir(i), area))
	}
	mod := 0
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.mix(level[i], level[i+1], l.Module(mod)))
			mod++
		}
		level = next
	}
	cycled := b.mag(level[0], l.Module(mod), 25)
	b.out(cycled, l.Port(0))
	return b.assay()
}
