// Randomized workload generator for the concurrent-executor evaluation. A
// Mixture assay concatenates several independent benchmark protocols into one
// sequencing graph, offsetting each sub-protocol's reservoir/port/module
// indexing so the sub-protocols spread over — and contend for — the shared
// physical sites. Because the sub-protocols have no data dependencies between
// them, a sequential executor (one operation at a time) leaves almost all of
// the available parallelism on the table, which is exactly the workload shape
// the concurrent executor is built for.
package assay

import (
	"fmt"

	"meda/internal/randx"
)

// mixturePool is the draw pool for Mixture sub-protocols: the six evaluation
// bioassays of Sec. VII plus the three degradation-study bioassays of
// Sec. III-C.
var mixturePool = append(append([]Benchmark{}, EvaluationBenchmarks...), CorrelationBenchmarks...)

// Mixture generates a random composite assay: n sub-protocols drawn (with
// replacement) from the nine paper bioassays, each built at the given droplet
// area on a differently-offset copy of the layout, concatenated into one
// sequencing graph. The result is deterministic in (seed, l, area, n) —
// draws come from labeled randx splits — and always satisfies Validate,
// since each sub-graph is valid and ID/Pre re-basing preserves topological
// order.
func Mixture(seed uint64, l Layout, area, n int) *Assay {
	if n < 1 {
		n = 1
	}
	src := randx.New(seed).Split("assay.mixture")
	out := &Assay{Name: fmt.Sprintf("Mixture-%d[%d]", seed, n)}
	for i := 0; i < n; i++ {
		pick := src.SplitN("pick", i)
		bench := mixturePool[pick.IntN(len(mixturePool))]
		// Offset each sub-protocol's site indexing so independent
		// sub-protocols land on overlapping-but-shifted reservoir, port and
		// module sets: enough sharing to create contention, enough spread to
		// keep the composite routable.
		sub := Layout{
			W: l.W, H: l.H,
			ResOff:  l.ResOff + pick.IntN(4),
			PortOff: l.PortOff + pick.IntN(2),
			ModOff:  l.ModOff + pick.IntN(max(1, l.ModuleSlots())),
		}
		base := len(out.MOs)
		for _, mo := range bench.Build(sub, area).MOs {
			mo.ID += base
			if len(mo.Pre) > 0 {
				pre := make([]int, len(mo.Pre))
				for j, p := range mo.Pre {
					pre[j] = p + base
				}
				mo.Pre = pre
			}
			out.MOs = append(out.MOs, mo)
		}
	}
	return out
}
