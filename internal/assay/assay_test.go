package assay

import "testing"

// TestArityMatchesTableIII checks the (in, out) droplet counts of Table III.
func TestArityMatchesTableIII(t *testing.T) {
	cases := []struct {
		op      Op
		in, out int
	}{
		{Dis, 0, 1},
		{Out, 1, 0},
		{Dsc, 1, 0},
		{Mix, 2, 1},
		{Spt, 1, 2},
		{Dlt, 2, 2},
		{Mag, 1, 1},
	}
	for _, c := range cases {
		in, out := c.op.Arity()
		if in != c.in || out != c.out {
			t.Errorf("%v arity = (%d,%d), want (%d,%d)", c.op, in, out, c.in, c.out)
		}
	}
}

func TestOpNames(t *testing.T) {
	names := map[Op]string{Dis: "dis", Out: "out", Dsc: "dsc", Mix: "mix", Spt: "spt", Dlt: "dlt", Mag: "mag"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d name = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "unknown" {
		t.Error("unknown op name")
	}
	if in, out := Op(99).Arity(); in != 0 || out != 0 {
		t.Error("unknown op arity")
	}
}

func TestLocsPerOp(t *testing.T) {
	for _, op := range []Op{Dis, Out, Dsc, Mix, Mag} {
		if op.Locs() != 1 {
			t.Errorf("%v needs %d locs, want 1", op, op.Locs())
		}
	}
	if Spt.Locs() != 2 || Dlt.Locs() != 2 {
		t.Error("spt/dlt need two locations")
	}
}

func defaultLayout() Layout { return Layout{W: 60, H: 30} }

// TestAllBenchmarksValid: every generated benchmark is a well-formed
// sequencing graph at every studied droplet size.
func TestAllBenchmarksValid(t *testing.T) {
	all := []Benchmark{MasterMix, CEP, SerialDilution, NuIP, CovidRAT, CovidPCR, ChIP, InVitro, GeneExpression, Protein, PCRMix}
	for _, bm := range all {
		for _, side := range []int{3, 4, 5, 6} {
			a := bm.Build(defaultLayout(), side*side)
			if a == nil {
				t.Fatalf("%v: nil assay", bm)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%v (droplet %d×%d): %v", bm, side, side, err)
			}
		}
	}
}

func TestBenchmarkNames(t *testing.T) {
	if MasterMix.String() != "Master-Mix" || SerialDilution.String() != "Serial-Dilution" ||
		CovidRAT.String() != "COVID-RAT" || Benchmark(99).String() != "unknown" {
		t.Error("benchmark names wrong")
	}
	if Benchmark(99).Build(defaultLayout(), 16) != nil {
		t.Error("unknown benchmark must build nil")
	}
}

// TestBenchmarkLengthOrdering: the paper's adaptive-routing win grows with
// assay length; the suite must actually span short → long. COVID-RAT is the
// shortest; Serial Dilution and NuIP are among the longest.
func TestBenchmarkLengthOrdering(t *testing.T) {
	l := defaultLayout()
	length := func(b Benchmark) int { return b.Build(l, 16).Len() }
	rat := length(CovidRAT)
	for _, b := range []Benchmark{MasterMix, CEP, SerialDilution, NuIP, CovidPCR} {
		if length(b) <= rat {
			t.Errorf("%v (%d MOs) should be longer than COVID-RAT (%d)", b, length(b), rat)
		}
	}
	if length(SerialDilution) < 15 || length(NuIP) < 15 {
		t.Error("long benchmarks should have at least 15 operations")
	}
}

func TestEvaluationSuiteComposition(t *testing.T) {
	if len(EvaluationBenchmarks) != 6 {
		t.Fatalf("evaluation suite has %d assays, want 6", len(EvaluationBenchmarks))
	}
	if len(CorrelationBenchmarks) != 3 {
		t.Fatalf("correlation suite has %d assays, want 3", len(CorrelationBenchmarks))
	}
}

func TestCountByType(t *testing.T) {
	a := SerialDilution.Build(defaultLayout(), 16)
	counts := a.CountByType()
	if counts[Dlt] != 6 {
		t.Errorf("serial dilution has %d dlt ops, want 6", counts[Dlt])
	}
	if counts[Dis] != 7 {
		t.Errorf("serial dilution has %d dis ops, want 7", counts[Dis])
	}
	if counts[Out] != 1 {
		t.Errorf("serial dilution has %d out ops, want 1", counts[Out])
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	// Forward dependency.
	bad := &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Mag, Pre: []int{1}, Loc: []Point{{1, 1}}},
		{ID: 1, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("forward dependency accepted")
	}
	// Wrong arity.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
		{ID: 1, Type: Mix, Pre: []int{0}, Loc: []Point{{1, 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("mix with one input accepted")
	}
	// Unconsumed droplet.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("unconsumed droplet accepted")
	}
	// Missing area on dis.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Dis, Loc: []Point{{1, 1}}},
		{ID: 1, Type: Out, Pre: []int{0}, Loc: []Point{{1, 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("dis without area accepted")
	}
	// Non-positional ID.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 5, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("non-positional ID accepted")
	}
	// Over-consumed droplet.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
		{ID: 1, Type: Out, Pre: []int{0}, Loc: []Point{{1, 1}}},
		{ID: 2, Type: Out, Pre: []int{0}, Loc: []Point{{1, 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("doubly consumed droplet accepted")
	}
	// Wrong number of locations.
	bad = &Assay{Name: "bad", MOs: []MO{
		{ID: 0, Type: Dis, Loc: []Point{{1, 1}}, Area: 16},
		{ID: 1, Type: Spt, Pre: []int{0}, Loc: []Point{{1, 1}}},
		{ID: 2, Type: Out, Pre: []int{1}, Loc: []Point{{1, 1}}},
		{ID: 3, Type: Out, Pre: []int{1}, Loc: []Point{{1, 1}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("split with one location accepted")
	}
}

// TestLayoutPlacementsOnChip: all generated module/port/reservoir centers
// must denote rectangles that fit a 60×30 chip for droplets up to 6×6.
func TestLayoutPlacementsOnChip(t *testing.T) {
	l := defaultLayout()
	inChip := func(p Point) bool {
		// A 6×6 module centered at p spans p±3; require it to fit with
		// its center coordinates inside the chip.
		return p.X >= 1 && p.X <= 60 && p.Y >= 1 && p.Y <= 30
	}
	for i := 0; i < 12; i++ {
		if !inChip(l.Reservoir(i)) {
			t.Errorf("reservoir %d at %v off-chip", i, l.Reservoir(i))
		}
		if !inChip(l.Port(i)) {
			t.Errorf("port %d at %v off-chip", i, l.Port(i))
		}
		if !inChip(l.Module(i)) {
			t.Errorf("module %d at %v off-chip", i, l.Module(i))
		}
	}
}

// TestMagHoldTimes: mag operations carry positive hold times (they model
// sensing/incubation).
func TestMagHoldTimes(t *testing.T) {
	for _, bm := range []Benchmark{CEP, NuIP, CovidRAT, CovidPCR, ChIP, InVitro, GeneExpression} {
		a := bm.Build(defaultLayout(), 16)
		for _, mo := range a.MOs {
			if mo.Type == Mag && mo.Hold <= 0 {
				t.Errorf("%v: mag M%d has no hold time", bm, mo.ID)
			}
		}
	}
}

// TestFig12Example reconstructs the sequence-graph example of Fig. 12:
// two dispenses, a mix, and a mag.
func TestFig12Example(t *testing.T) {
	b := builder{name: "fig12"}
	m1 := b.dis(Point{17.5, 2.5}, 16)
	m2 := b.dis(Point{17.5, 28.5}, 16)
	m3 := b.mix(m1, m2, Point{10.5, 15.5})
	m4 := b.mag(m3, Point{40.5, 15.5}, 10)
	b.out(m4, Point{58.5, 15.5})
	a := b.assay()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.MOs[2].Type != Mix || a.MOs[2].Pre[0] != 0 || a.MOs[2].Pre[1] != 1 {
		t.Error("mix wiring wrong")
	}
}

// TestExtensionBenchmarks: the two extra protocols have their promised
// operation mixes.
func TestExtensionBenchmarks(t *testing.T) {
	protein := Protein.Build(defaultLayout(), 16)
	if err := protein.Validate(); err != nil {
		t.Fatal(err)
	}
	if protein.CountByType()[Spt] != 3 {
		t.Errorf("protein has %d splits, want 3", protein.CountByType()[Spt])
	}
	if protein.CountByType()[Out] != 4 {
		t.Errorf("protein has %d outputs, want 4", protein.CountByType()[Out])
	}
	pcr := PCRMix.Build(defaultLayout(), 16)
	if err := pcr.Validate(); err != nil {
		t.Fatal(err)
	}
	if pcr.CountByType()[Mix] != 7 {
		t.Errorf("pcr-mix has %d mixes, want 7", pcr.CountByType()[Mix])
	}
	if pcr.CountByType()[Dis] != 8 {
		t.Errorf("pcr-mix has %d dispenses, want 8", pcr.CountByType()[Dis])
	}
}
