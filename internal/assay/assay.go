// Package assay models bioassays as sequencing graphs of microfluidic
// operations (Sec. VI-A): each operation MO = (type, pre, loc) has a type
// from Table III, a list of predecessor operations, and a placed center
// location produced by the planner. The package also provides generators for
// the benchmark bioassays used in the paper's evaluation (Sec. VII-A:
// Master-Mix, CEP, Serial Dilution, NuIP, COVID-RAT, COVID-PCR) and in the
// degradation-pattern study of Sec. III-C (ChIP, multiplex in-vitro, gene
// expression).
//
// The paper does not publish the exact MO lists of these protocols; the
// generators below follow the published protocol structure (operation mix,
// dependency shape, and length) so that routing workload — the quantity that
// drives every experiment — is representative. See DESIGN.md for the
// substitution rationale.
package assay

import (
	"fmt"
)

// Op is a microfluidic operation type (Table III).
type Op int

// Operation types and their droplet arities (in, out):
const (
	// Dis dispenses a droplet from a reservoir onto the biochip (0, 1).
	Dis Op = iota
	// Out outputs a droplet for collection; the droplet exits the biochip
	// (1, 0).
	Out
	// Dsc discards a droplet to waste; the droplet exits the biochip
	// (1, 0).
	Dsc
	// Mix merges two droplets into one (2, 1).
	Mix
	// Spt splits a droplet into two (1, 2).
	Spt
	// Dlt dilutes a droplet using another droplet: a mix immediately
	// followed by a split (2, 2).
	Dlt
	// Mag holds a droplet over a magnetic-bead/sensing module (1, 1).
	Mag
)

// String returns the paper's operation mnemonic.
func (o Op) String() string {
	switch o {
	case Dis:
		return "dis"
	case Out:
		return "out"
	case Dsc:
		return "dsc"
	case Mix:
		return "mix"
	case Spt:
		return "spt"
	case Dlt:
		return "dlt"
	case Mag:
		return "mag"
	}
	return "unknown"
}

// Arity returns the number of input and output droplets of the operation
// type, exactly as listed in Table III.
func (o Op) Arity() (in, out int) {
	switch o {
	case Dis:
		return 0, 1
	case Out, Dsc:
		return 1, 0
	case Mix:
		return 2, 1
	case Spt:
		return 1, 2
	case Dlt:
		return 2, 2
	case Mag:
		return 1, 1
	}
	return 0, 0
}

// Locs returns the number of placed center locations the operation needs:
// one for every type except split and dilute, whose two output droplets may
// be placed separately (for Dlt, loc[0] doubles as the mix site, per
// Alg. 1).
func (o Op) Locs() int {
	if o == Spt || o == Dlt {
		return 2
	}
	return 1
}

// Point is a real-valued module center location, e.g. (17.5, 2.5) for a 4×4
// module at (16,1,19,4).
type Point struct {
	X, Y float64
}

// MO is one microfluidic operation of a sequencing graph.
type MO struct {
	// ID is the operation's index within the assay (0-based).
	ID int
	// Type is the operation type.
	Type Op
	// Pre lists the IDs of predecessor operations supplying the input
	// droplets, in input order.
	Pre []int
	// Loc lists the placed center locations (len = Type.Locs()).
	Loc []Point
	// Area is the dispensed droplet area for Dis operations (e.g. 16 for
	// a 4×4 droplet); ignored for other types, whose droplet sizes are
	// derived from their inputs.
	Area int
	// Hold is the number of cycles a Mag operation detains its droplet at
	// the module (sensing/incubation time); ignored for other types.
	Hold int
}

// Assay is a bioassay: a named sequencing graph of operations.
type Assay struct {
	Name string
	MOs  []MO
}

// Validate checks that the assay is a well-formed sequencing graph: IDs are
// positional, predecessors precede their consumers (the graph is a DAG in
// topological order), arities and location counts match Table III, and every
// non-terminal droplet is consumed exactly once.
func (a *Assay) Validate() error {
	consumed := make(map[int]int) // producer MO id → droplets consumed
	for i, mo := range a.MOs {
		if mo.ID != i {
			return fmt.Errorf("assay %s: MO %d has ID %d (must be positional)", a.Name, i, mo.ID)
		}
		in, _ := mo.Type.Arity()
		if len(mo.Pre) != in {
			return fmt.Errorf("assay %s: %s M%d has %d predecessors, needs %d",
				a.Name, mo.Type, i, len(mo.Pre), in)
		}
		if len(mo.Loc) != mo.Type.Locs() {
			return fmt.Errorf("assay %s: %s M%d has %d locations, needs %d",
				a.Name, mo.Type, i, len(mo.Loc), mo.Type.Locs())
		}
		if mo.Type == Dis && mo.Area < 1 {
			return fmt.Errorf("assay %s: dis M%d has no droplet area", a.Name, i)
		}
		for _, p := range mo.Pre {
			if p < 0 || p >= i {
				return fmt.Errorf("assay %s: M%d depends on M%d (not topologically ordered)", a.Name, i, p)
			}
			consumed[p]++
		}
	}
	for i, mo := range a.MOs {
		_, out := mo.Type.Arity()
		if consumed[i] != out {
			return fmt.Errorf("assay %s: M%d produces %d droplets but %d are consumed",
				a.Name, i, out, consumed[i])
		}
	}
	return nil
}

// Len returns the number of operations.
func (a *Assay) Len() int { return len(a.MOs) }

// CountByType tallies operations per type.
func (a *Assay) CountByType() map[Op]int {
	out := make(map[Op]int)
	for _, mo := range a.MOs {
		out[mo.Type]++
	}
	return out
}

// builder accumulates MOs with automatic ID assignment.
type builder struct {
	name string
	mos  []MO
}

func (b *builder) add(mo MO) int {
	mo.ID = len(b.mos)
	b.mos = append(b.mos, mo)
	return mo.ID
}

func (b *builder) dis(loc Point, area int) int {
	return b.add(MO{Type: Dis, Loc: []Point{loc}, Area: area})
}

func (b *builder) mix(a, c int, loc Point) int {
	return b.add(MO{Type: Mix, Pre: []int{a, c}, Loc: []Point{loc}})
}

func (b *builder) mag(pre int, loc Point, hold int) int {
	return b.add(MO{Type: Mag, Pre: []int{pre}, Loc: []Point{loc}, Hold: hold})
}

func (b *builder) dlt(a, c int, l0, l1 Point) int {
	return b.add(MO{Type: Dlt, Pre: []int{a, c}, Loc: []Point{l0, l1}})
}

func (b *builder) spt(pre int, l0, l1 Point) int {
	return b.add(MO{Type: Spt, Pre: []int{pre}, Loc: []Point{l0, l1}})
}

func (b *builder) out(pre int, loc Point) int {
	return b.add(MO{Type: Out, Pre: []int{pre}, Loc: []Point{loc}})
}

func (b *builder) dsc(pre int, loc Point) int {
	return b.add(MO{Type: Dsc, Pre: []int{pre}, Loc: []Point{loc}})
}

func (b *builder) assay() *Assay { return &Assay{Name: b.name, MOs: b.mos} }

// Layout computes canonical module placements for a W×H biochip, mirroring
// the planner's role: dispense reservoirs along the west and east edges,
// output/waste ports along the east edge, and processing modules spread over
// the interior.
type Layout struct {
	W, H int
	// ResOff, PortOff and ModOff rotate the reservoir, port and module
	// indexing (Reservoir(i) behaves like the zero layout's
	// Reservoir(i+ResOff), and so on). The zero offsets reproduce the
	// canonical placement; the random-workload generator (Mixture) offsets
	// each sub-assay differently so concurrent protocols spread over — and
	// contend for — the same physical sites instead of stacking onto
	// identical ones.
	ResOff, PortOff, ModOff int
}

// Reservoir returns the center of the i-th dispense site; sites alternate
// between the south and north edges (cf. the two dispense ports of Fig. 12)
// and walk eastward, staying clear of the interior module band.
func (l Layout) Reservoir(i int) Point {
	i += l.ResOff
	x := 2.5 + 6*float64(i/2%max(1, (l.W-10)/6))
	if i%2 == 0 {
		return Point{X: x, Y: 2.5}
	}
	return Point{X: x, Y: float64(l.H) - 1.5}
}

// Port returns the center of the i-th output/waste site on the east edge.
// Ports alternate between two lanes just off the interior module band (near
// the south-east and north-east corners), so exiting droplets drop out of
// the band and travel east without crossing active modules.
func (l Layout) Port(i int) Point {
	if (i+l.PortOff)%2 == 0 {
		return Point{X: float64(l.W) - 1.5, Y: 5.5}
	}
	return Point{X: float64(l.W) - 1.5, Y: float64(l.H) - 4.5}
}

// Module returns the center of the i-th interior processing slot. Modules
// occupy a horizontal band through the middle of the chip, well away from
// the edge reservoirs, so droplets resting at a module never obstruct a
// dispense area — the separation a real placement tool guarantees.
func (l Layout) Module(i int) Point {
	i += l.ModOff
	cols := max(1, (l.W-10)/8)
	c := i % cols
	r := (i / cols) % 2
	y := float64(l.H)/2 - 2.5 + 6*float64(r)
	return Point{X: 8.5 + 8*float64(c), Y: y}
}

// ModuleSlots returns the number of distinct interior module slots Module(i)
// can address before wrapping.
func (l Layout) ModuleSlots() int {
	return 2 * max(1, (l.W-10)/8)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
