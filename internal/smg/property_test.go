package smg

import (
	"math"
	"testing"

	"meda/internal/mdp"
	"meda/internal/randx"
)

// TestRminMonotoneInForce: improving any microelectrode's force can only
// reduce (never increase) the expected routing time — the defining
// monotonicity of the Rmin objective.
func TestRminMonotoneInForce(t *testing.T) {
	src := randx.New(77)
	bounds := rect(1, 1, 12, 12)
	start := rect(1, 1, 3, 3)
	goal := rect(10, 10, 12, 12)
	for trial := 0; trial < 8; trial++ {
		tsrc := src.SplitN("trial", trial)
		// A random field bounded away from zero so both solves converge.
		base := make(map[[2]int]float64)
		field := func(scale float64) func(int, int) float64 {
			return func(x, y int) float64 {
				v, ok := base[[2]int{x, y}]
				if !ok {
					v = 0.3 + 0.7*tsrc.Float64()
					base[[2]int{x, y}] = v
				}
				v *= scale
				if v > 1 {
					v = 1
				}
				return v
			}
		}
		solve := func(f func(int, int) float64) float64 {
			m, err := Induce(bounds, start, goal, f, DefaultModelOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return res.Values[m.Start]
		}
		weak := solve(field(1))
		strong := solve(field(1.3)) // uniformly stronger forces
		if strong > weak+1e-9 {
			t.Fatalf("trial %d: stronger forces worsened Rmin: %v > %v", trial, strong, weak)
		}
	}
}

// TestRminLowerBoundedByDistance: the expected number of cycles can never
// beat the deterministic shortest path on a perfect chip.
func TestRminLowerBoundedByDistance(t *testing.T) {
	src := randx.New(78)
	bounds := rect(1, 1, 12, 12)
	start := rect(2, 2, 4, 4)
	goal := rect(9, 9, 11, 11)
	// Chebyshev distance with ordinal moves = 7.
	const optimal = 7.0
	for trial := 0; trial < 8; trial++ {
		tsrc := src.SplitN("trial", trial)
		cache := make(map[[2]int]float64)
		field := func(x, y int) float64 {
			v, ok := cache[[2]int{x, y}]
			if !ok {
				v = 0.2 + 0.8*tsrc.Float64()
				cache[[2]int{x, y}] = v
			}
			return v
		}
		m, err := Induce(bounds, start, goal, field, DefaultModelOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.M.MinExpectedReward(m.Goal, m.Hazard, mdp.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v := res.Values[m.Start]; v < optimal-1e-9 {
			t.Fatalf("trial %d: Rmin %v beats the physical optimum %v", trial, v, optimal)
		}
	}
}

// TestPmaxIsOneWithoutHazards: with every force positive and exits disabled
// by construction, the droplet reaches the goal almost surely: Pmax = 1.
func TestPmaxIsOneWithoutHazards(t *testing.T) {
	src := randx.New(79)
	bounds := rect(1, 1, 10, 10)
	start := rect(1, 1, 3, 3)
	goal := rect(7, 7, 9, 9)
	cache := make(map[[2]int]float64)
	field := func(x, y int) float64 {
		v, ok := cache[[2]int{x, y}]
		if !ok {
			v = 0.05 + 0.95*src.Float64()
			cache[[2]int{x, y}] = v
		}
		return v
	}
	m, err := Induce(bounds, start, goal, field, DefaultModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.M.MaxReachProb(m.Goal, m.Hazard, mdp.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[m.Start]-1) > 1e-6 {
		t.Errorf("Pmax = %v, want 1 (all forces positive, no exits)", res.Values[m.Start])
	}
}

// TestModelStochastic: every induced model is a valid MDP for random fields
// and geometries.
func TestModelStochastic(t *testing.T) {
	src := randx.New(80)
	for trial := 0; trial < 20; trial++ {
		tsrc := src.SplitN("t", trial)
		wh := tsrc.IntRange(6, 14)
		d := tsrc.IntRange(2, 4)
		bounds := rect(1, 1, wh, wh)
		start := rect(1, 1, d, d)
		gx := tsrc.IntRange(1, wh-d+1)
		gy := tsrc.IntRange(1, wh-d+1)
		goal := rect(gx, gy, gx+d-1, gy+d-1)
		opt := DefaultModelOptions()
		opt.AllowMorph = tsrc.Bool(0.5)
		field := func(x, y int) float64 { return tsrc.Float64() }
		m, err := Induce(bounds, start, goal, field, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.M.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
